#!/usr/bin/env bash
# Local CI: the exact checks the GitHub workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== metricsdiff against committed baselines =="
# Perf-regression gate: regenerate the three baseline experiments with
# hardware counters on and compare metric-for-metric against baselines/.
# Tolerances: 2% relative by default; 5% on the classifier-pressure
# metrics (headroom_pct, *_pressure, eligible_warps_avg) — see
# crates/bench/src/metricsdiff.rs. The simulator is deterministic, so a
# clean tree reproduces the baselines exactly; any drift is a real
# behaviour change and must come with regenerated baselines (see
# EXPERIMENTS.md, "Metrics baselines").
fresh="$(mktemp -d)"
trap 'rm -rf "$fresh"' EXIT
./target/release/table2 --metrics --json "$fresh/table2.json" > /dev/null
./target/release/fig7 --metrics --json "$fresh/fig7.json" > /dev/null
./target/release/ablation --metrics --json "$fresh/ablation.json" > /dev/null
./target/release/metricsdiff --baseline baselines \
  "$fresh/table2.json" "$fresh/fig7.json" "$fresh/ablation.json"

echo "== simspeed smoke =="
# Host-throughput sanity check of the timing hot loop: runs the tracked
# simspeed matrix once and verifies every point produces sane cycle and
# issue counts. No wall-clock gate — CI machines are too noisy for that;
# the tracked numbers live in BENCH_simspeed.json (see EXPERIMENTS.md,
# "Simulator speed").
./target/release/simspeed --smoke --json "$fresh/simspeed.json" > /dev/null

echo "== multiwave smoke =="
# Multi-wave timing cross-check: times one Table 2 point per device under
# both the one-wave extrapolation and the full-device simulation, asserting
# both produce positive, mutually sane times. (Bit-for-bit agreement on
# exact-multiple grids is pinned by gpusim/tests/device_sim.rs.) The full
# tracked run lives in BENCH_multiwave.json (see EXPERIMENTS.md,
# "Multi-wave timing model").
./target/release/multiwave --smoke --json "$fresh/multiwave.json" > /dev/null

echo "== tune smoke =="
# Autotuner smoke: tiny fixed-seed 2-island search on V100, run twice
# (--jobs 1 and --jobs 2) inside the binary, asserting byte-identical
# outcomes across the two, a monotone best-so-far trace, and at least one
# accepted improving move (every visited candidate passes sass::lint by
# construction). Deterministic (fixed seed, --no-cache) — the full tracked
# run lives in BENCH_tune.json (see EXPERIMENTS.md, "Autotuner v2").
./target/release/tune --smoke --no-cache --json "$fresh/tune.json" > /dev/null

echo "== tune digest verify =="
# Metricsdiff-style drift gate for the autotuner: re-run the full two-tier
# search (full recovery gate ≥97% + Conv2-beats-hand gate live) against a
# copy of the committed BENCH_tune.json and assert every schedule digest of
# the re-run appears in it. Warm simcache makes this cheap; the search is
# byte-deterministic for the fixed default seed, so a mismatch means the
# committed file is stale — regenerate it (EXPERIMENTS.md, "Autotuner v2").
cp BENCH_tune.json "$fresh/tune_full.json"
./target/release/tune --verify --json "$fresh/tune_full.json" > /dev/null

echo "== resnet smoke =="
# Whole-network runtime smoke: plans the 4-node smoke graph on both devices
# under all three policies, asserting the planner invariants in-process —
# per-layer sum-consistency with the end-to-end report, every workspace
# arena validates (no live-range overlap, peak bounds), linear-scan reuse
# never loses to bump allocation, and hoisting the filter transforms
# strictly reduces network time. Byte-determinism across --jobs and
# simcache state is pinned by bench/tests/resnet_determinism.rs; the full
# tracked run lives in BENCH_resnet.json (see EXPERIMENTS.md,
# "Whole-network ResNet").
./target/release/resnet --smoke --json "$fresh/resnet.json" > /dev/null

echo "== serve smoke =="
# Serving-engine smoke: tiny shapes, short bursty stream, both devices;
# asserts both phases drain, the warm plan cache beats cold
# time-to-first-dispatch for every class, and every plan round-trips its
# warm-start verification. Byte-determinism across --jobs and cache state
# is pinned by bench/tests/serve_determinism.rs; the full tracked run
# lives in BENCH_serve.json (see EXPERIMENTS.md, "Serving engine").
./target/release/serve --smoke --plan-dir "$fresh/plans" --json "$fresh/serve.json" > /dev/null

echo "== servemon smoke =="
# Telemetry round-trip: re-run the serve smoke with the flight recorder on
# (reusing the plan directory the previous stage populated), which also
# asserts the recorded stream reconciles with the engine stats, then replay
# the events log through servemon's consistency checks. The report JSON is
# byte-identical with telemetry on or off (pinned by
# bench/tests/serve_telemetry.rs), so this stage can never change results.
./target/release/serve --smoke --plan-dir "$fresh/plans" --json "$fresh/serve_tel.json" \
  --events "$fresh/serve_events.jsonl" --pool-trace "$fresh/serve_pool.json" > /dev/null
cmp "$fresh/serve.json" "$fresh/serve_tel.json"
./target/release/servemon --log "$fresh/serve_events.jsonl" --smoke > /dev/null

echo "== doclinks =="
# Docs-link gate: every relative link (and heading anchor) in README.md,
# EXPERIMENTS.md and docs/** must resolve.
./target/release/doclinks

echo "CI green."
