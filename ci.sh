#!/usr/bin/env bash
# Local CI: the exact checks the GitHub workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "CI green."
