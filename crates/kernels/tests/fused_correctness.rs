//! End-to-end functional correctness of the fused Winograd kernel: host
//! data → filter-transform kernel → fused kernel on the simulator → compare
//! against a direct-convolution reference, over a range of shapes including
//! ragged edges (odd H/W), multiple k-blocks and batch groups, both cache
//! block sizes, and the no-P2R variant.

use gpusim::{DeviceSpec, Gpu, LaunchDims, ParamBuilder};
use kernels::filter_transform::emit_filter_transform;
use kernels::{FusedConfig, FusedKernel};
use tensor::XorShiftRng;

struct Problem {
    c: usize,
    h: usize,
    w: usize,
    n: usize,
    k: usize,
}

/// Direct convolution reference (3×3, pad 1, stride 1).
/// input CHWN layout, filter CRSK layout, output KHWN layout.
fn reference(p: &Problem, input: &[f32], filter: &[f32]) -> Vec<f32> {
    let (c_d, h_d, w_d, n_d, k_d) = (p.c, p.h, p.w, p.n, p.k);
    let mut out = vec![0.0f32; k_d * h_d * w_d * n_d];
    for k in 0..k_d {
        for y in 0..h_d {
            for x in 0..w_d {
                for n in 0..n_d {
                    let mut acc = 0.0f32;
                    for c in 0..c_d {
                        for r in 0..3 {
                            let iy = y as isize + r as isize - 1;
                            if iy < 0 || iy >= h_d as isize {
                                continue;
                            }
                            for s in 0..3 {
                                let ix = x as isize + s as isize - 1;
                                if ix < 0 || ix >= w_d as isize {
                                    continue;
                                }
                                let iv =
                                    input[((c * h_d + iy as usize) * w_d + ix as usize) * n_d + n];
                                let fv = filter[((c * 3 + r) * 3 + s) * k_d + k];
                                acc += iv * fv;
                            }
                        }
                    }
                    out[((k * h_d + y) * w_d + x) * n_d + n] = acc;
                }
            }
        }
    }
    out
}

fn run_case(cfg: FusedConfig, seed: u64) {
    let p = Problem {
        c: cfg.c as usize,
        h: cfg.h as usize,
        w: cfg.w as usize,
        n: cfg.n as usize,
        k: cfg.k as usize,
    };
    let mut rng = XorShiftRng::new(seed);
    let input: Vec<f32> = (0..p.c * p.h * p.w * p.n)
        .map(|_| rng.gen_range(-1.0, 1.0))
        .collect();
    let filter: Vec<f32> = (0..p.c * 9 * p.k)
        .map(|_| rng.gen_range(-1.0, 1.0))
        .collect();
    let want = reference(&p, &input, &filter);

    // The kernel reads CHWN (ours) or NCHW (cuDNN-like, §7).
    let dev_input: Vec<f32> = if cfg.input_nchw {
        let mut v = vec![0.0f32; input.len()];
        for c in 0..p.c {
            for y in 0..p.h {
                for x in 0..p.w {
                    for n in 0..p.n {
                        v[((n * p.c + c) * p.h + y) * p.w + x] =
                            input[((c * p.h + y) * p.w + x) * p.n + n];
                    }
                }
            }
        }
        v
    } else {
        input.clone()
    };

    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 28);
    let d_in = gpu.alloc_upload_f32(&dev_input);
    let d_filt = gpu.alloc_upload_f32(&filter);
    let d_tf = gpu.alloc((p.c * 16 * p.k) as u64 * 4);
    let d_out = gpu.alloc((p.k * p.h * p.w * p.n) as u64 * 4);

    // Phase 1: filter transform.
    let fx = emit_filter_transform(cfg.c, cfg.k);
    let fx_params = ParamBuilder::new().push_ptr(d_filt).push_ptr(d_tf).build();
    gpu.launch_parallel(
        &fx,
        LaunchDims::linear(cfg.c * cfg.k / 256, 256),
        &fx_params,
    )
    .expect("filter transform");

    // Phase 2: fused Winograd.
    let kern = FusedKernel::emit(cfg);
    let params = kern.params(d_in, d_tf, d_out);
    gpu.launch_parallel(&kern.module, kern.launch_dims(), &params)
        .unwrap_or_else(|e| panic!("fused kernel failed: {e}"));

    let raw = gpu.mem.download_f32(d_out, p.k * p.h * p.w * p.n).unwrap();
    // NCHW-path kernels write NCHW output; normalize to KHWN for compare.
    let got: Vec<f32> = if cfg.input_nchw {
        let mut v = vec![0.0f32; raw.len()];
        for n in 0..p.n {
            for k in 0..p.k {
                for y in 0..p.h {
                    for x in 0..p.w {
                        v[((k * p.h + y) * p.w + x) * p.n + n] =
                            raw[((n * p.k + k) * p.h + y) * p.w + x];
                    }
                }
            }
        }
        v
    } else {
        raw
    };
    let rep = tensor::compare(&want, &got, 1e-3, 1e-3);
    assert!(
        rep.num_bad == 0,
        "bk={} c={} h={}x{} n={} k={} p2r={}: {rep}",
        cfg.bk,
        cfg.c,
        cfg.h,
        cfg.w,
        cfg.n,
        cfg.k,
        cfg.use_p2r
    );
}

#[test]
fn ours_small_even() {
    run_case(FusedConfig::ours(8, 8, 8, 32, 64), 1);
}

#[test]
fn ours_odd_hw() {
    // Ragged tile edges exercise the zero-padding masks and the guarded
    // output stores (Conv5-style 7×7).
    run_case(FusedConfig::ours(8, 7, 7, 32, 64), 2);
}

#[test]
fn ours_multi_kblock_and_ngroup() {
    run_case(FusedConfig::ours(8, 6, 6, 64, 128), 3);
}

#[test]
fn ours_deep_channels() {
    run_case(FusedConfig::ours(32, 4, 4, 32, 64), 4);
}

#[test]
fn ours_rect_image() {
    run_case(FusedConfig::ours(8, 5, 9, 32, 64), 5);
}

#[test]
fn cudnn_like_small() {
    run_case(FusedConfig::cudnn_like(8, 8, 8, 32, 32), 6);
}

#[test]
fn cudnn_like_odd() {
    run_case(FusedConfig::cudnn_like(8, 7, 7, 32, 64), 7);
}

#[test]
fn no_p2r_variant_matches() {
    let mut cfg = FusedConfig::ours(8, 7, 7, 32, 64);
    cfg.use_p2r = false;
    run_case(cfg, 8);
}

#[test]
fn resnet_conv5_shape() {
    // The real Conv5 layer at reduced channel depth (full C=512 is covered
    // by the slower release-mode benches).
    run_case(FusedConfig::ours(16, 7, 7, 32, 512), 9);
}

#[test]
fn ours_nchw_port_matches() {
    // §8.4: the kernel ported to NCHW layout (spatial tile partitioning).
    run_case(FusedConfig::ours_nchw(8, 7, 7, 32, 64), 10);
    run_case(FusedConfig::ours_nchw(16, 10, 10, 32, 128), 11);
}
