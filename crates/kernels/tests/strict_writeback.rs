//! Dynamic schedule validation: run the generated kernels with strict load
//! writeback (loads deposit poison at issue; real data arrives only when
//! their scoreboard signals). If any control code is wrong — a missing wait,
//! an underfilled stall chain feeding a wait, a loop-carried WAR the static
//! linter's per-block analysis cannot see — consumers read poison and the
//! output diverges from the reference.

use gpusim::{DeviceSpec, Gpu, TimingOptions};
use kernels::filter_transform::emit_filter_transform;
use kernels::gemm::{GemmConfig, GemmKernel};
use kernels::{FusedConfig, FusedKernel};
use tensor::XorShiftRng;

fn reference(
    c: usize,
    h: usize,
    w: usize,
    n: usize,
    k: usize,
    input: &[f32],
    filter: &[f32],
) -> Vec<f32> {
    let mut out = vec![0.0f32; k * h * w * n];
    for kk in 0..k {
        for y in 0..h {
            for x in 0..w {
                for nn in 0..n {
                    let mut acc = 0.0f32;
                    for cc in 0..c {
                        for r in 0..3 {
                            let iy = y as isize + r as isize - 1;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for s in 0..3 {
                                let ix = x as isize + s as isize - 1;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input[((cc * h + iy as usize) * w + ix as usize) * n + nn]
                                    * filter[((cc * 3 + r) * 3 + s) * k + kk];
                            }
                        }
                    }
                    out[((kk * h + y) * w + x) * n + nn] = acc;
                }
            }
        }
    }
    out
}

/// Time (and thereby strictly execute) one wave of the fused kernel and
/// check every output element the simulated blocks produced. The filter
/// transform runs through the functional launcher — `time_kernel` executes
/// only one wave, and the fused kernel needs the *complete* transformed
/// filter (the FX kernel's own strict validation is a separate test below).
fn strict_case(cfg: FusedConfig, seed: u64) {
    assert!(!cfg.input_nchw, "this harness feeds CHWN data");
    let (c, h, w, n, k) = (
        cfg.c as usize,
        cfg.h as usize,
        cfg.w as usize,
        cfg.n as usize,
        cfg.k as usize,
    );
    let mut rng = XorShiftRng::new(seed);
    let input: Vec<f32> = (0..c * h * w * n)
        .map(|_| rng.gen_range(-1.0, 1.0))
        .collect();
    let filter: Vec<f32> = (0..c * 9 * k).map(|_| rng.gen_range(-1.0, 1.0)).collect();
    let want = reference(c, h, w, n, k, &input, &filter);

    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 28);
    let d_in = gpu.alloc_upload_f32(&input);
    let d_filt = gpu.alloc_upload_f32(&filter);
    let d_tf = gpu.alloc((c * 16 * k) as u64 * 4);
    let d_out = gpu.alloc((k * h * w * n) as u64 * 4);

    let fx = emit_filter_transform(cfg.c, cfg.k);
    let fx_params = gpusim::ParamBuilder::new()
        .push_ptr(d_filt)
        .push_ptr(d_tf)
        .build();
    gpu.launch(
        &fx,
        gpusim::LaunchDims::linear(cfg.c * cfg.k / 256, 256),
        &fx_params,
    )
    .expect("filter transform");

    let kern = FusedKernel::emit(cfg);
    let params = kern.params(d_in, d_tf, d_out);
    let t = gpusim::timing::time_kernel(
        &mut gpu,
        &kern.module,
        kern.launch_dims(),
        &params,
        TimingOptions {
            strict_writeback: true,
            ..Default::default()
        },
    )
    .expect("strict fused kernel");

    // Check the outputs of the blocks the strict wave actually ran (the
    // warm-up block 0 ran un-strictly through the functional path; the
    // timed wave is blocks 1..=resident when the grid is large enough).
    let got = gpu.mem.download_f32(d_out, k * h * w * n).unwrap();
    let total_blocks = kern.launch_dims().num_blocks();
    let resident = t.blocks_per_sm as u64;
    let first = if total_blocks > resident { 1u64 } else { 0 };
    let wt = cfg.wtiles() as u64;
    let mut checked = 0usize;
    for b in first..(first + resident).min(total_blocks) {
        // Grid is (wtiles, htiles, ngroups*kblocks); block covers output
        // tile (hx, wx) for 32 batches of group ng and 64 filters of kb.
        let wx = (b % wt) as usize;
        let hx = ((b / wt) % cfg.htiles() as u64) as usize;
        let z = (b / (wt * cfg.htiles() as u64)) as u32;
        let ng = (z / cfg.kblocks()) as usize;
        let kb = (z % cfg.kblocks()) as usize;
        for kl in 0..cfg.bk as usize {
            let kk = kb * cfg.bk as usize + kl;
            for dy in 0..2usize {
                let y = 2 * hx + dy;
                if y >= h {
                    continue;
                }
                for dx in 0..2usize {
                    let x = 2 * wx + dx;
                    if x >= w {
                        continue;
                    }
                    for nl in 0..32usize {
                        let nn = ng * 32 + nl;
                        let idx = ((kk * h + y) * w + x) * n + nn;
                        let (a, bv) = (want[idx], got[idx]);
                        assert!(
                            (a - bv).abs() <= 1e-3 + 1e-3 * a.abs().max(bv.abs()),
                            "block {b} out[{kk},{y},{x},{nn}] = {bv} vs {a} — schedule hazard (poison leak)?"
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 1000, "checked only {checked} elements");
}

#[test]
fn fused_b64_schedule_is_hazard_free_dynamically() {
    strict_case(FusedConfig::ours(32, 12, 12, 32, 64), 3);
}

#[test]
fn fused_b64_odd_shape_schedule() {
    strict_case(FusedConfig::ours(16, 7, 7, 32, 64), 4);
}

#[test]
fn fused_b64_deep_channels_schedule() {
    strict_case(FusedConfig::ours(64, 12, 12, 32, 64), 5);
}

#[test]
fn cudnn_like_chwn_variant_schedule() {
    // The compact bk=32 layout with CHWN input (its schedule machinery is
    // shared with the NCHW flavour; the harness feeds CHWN).
    let mut cfg = FusedConfig::cudnn_like(32, 12, 12, 32, 64);
    cfg.input_nchw = false;
    strict_case(cfg, 6);
}

#[test]
fn filter_transform_schedule_is_hazard_free() {
    // Grid sized to one simulated wave so the strict pass executes every
    // block functionally. Residency is capped at ceil(total/SMs), so a
    // multi-block grid on V100 would spread across SMs and the one-wave
    // path would only run one block — a single-block grid keeps the
    // whole-grid comparison against the functional launcher.
    let (c, k) = (4u32, 64u32); // 1 block
    let len = (c * 9 * k) as usize;
    let mut rng = XorShiftRng::new(12);
    let filt: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0, 1.0)).collect();
    let fx = emit_filter_transform(c, k);
    let run = |strict: bool| -> Vec<f32> {
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 24);
        let d_in = gpu.alloc_upload_f32(&filt);
        let d_tf = gpu.alloc((c * 16 * k) as u64 * 4);
        let params = gpusim::ParamBuilder::new()
            .push_ptr(d_in)
            .push_ptr(d_tf)
            .build();
        let dims = gpusim::LaunchDims::linear(c * k / 256, 256);
        if strict {
            gpusim::timing::time_kernel(
                &mut gpu,
                &fx,
                dims,
                &params,
                TimingOptions {
                    strict_writeback: true,
                    ..Default::default()
                },
            )
            .unwrap();
        } else {
            gpu.launch(&fx, dims, &params).unwrap();
        }
        gpu.mem.download_f32(d_tf, (c * 16 * k) as usize).unwrap()
    };
    assert_eq!(run(true), run(false), "FX schedule hazard");
}

#[test]
fn gemm_schedule_is_hazard_free_dynamically() {
    let cfg = GemmConfig::new(64, 128, 64);
    let kern = GemmKernel::emit(cfg);
    let (m, n, kd) = (64usize, 128usize, 64usize);
    let mut rng = XorShiftRng::new(9);
    let at: Vec<f32> = (0..kd * m).map(|_| rng.gen_range(-1.0, 1.0)).collect();
    let b: Vec<f32> = (0..kd * n).map(|_| rng.gen_range(-1.0, 1.0)).collect();
    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 24);
    let da = gpu.alloc_upload_f32(&at);
    let db = gpu.alloc_upload_f32(&b);
    let dc = gpu.alloc((m * n) as u64 * 4);
    gpusim::timing::time_kernel(
        &mut gpu,
        &kern.module,
        kern.launch_dims(),
        &kern.params(da, db, dc),
        TimingOptions {
            strict_writeback: true,
            ..Default::default()
        },
    )
    .unwrap();
    let got = gpu.mem.download_f32(dc, m * n).unwrap();
    for i in 0..m {
        for j in 0..n {
            let mut want = 0.0f32;
            for kk2 in 0..kd {
                want += at[kk2 * m + i] * b[kk2 * n + j];
            }
            let g = got[i * n + j];
            assert!(
                (g - want).abs() <= 1e-3 + 1e-3 * want.abs(),
                "C[{i}][{j}] = {g} vs {want} — schedule hazard?"
            );
        }
    }
}
