//! The §8.3 fp16 port: correctness of the half2 data path against an f32
//! reference (at fp16 tolerance), and the 2× throughput claim on the
//! timing model.

use gpusim::{DeviceSpec, Gpu, TimingOptions};
use kernels::fp16::{pack_f16_duplicated, pack_f16_pairs, unpack_f16_pairs};
use kernels::{FusedConfig, FusedKernel};
use tensor::XorShiftRng;

/// Direct convolution on data pre-rounded to f16 (the inputs the kernel
/// actually sees), accumulated in f32.
#[allow(clippy::too_many_arguments)]
fn reference_f16(
    c: usize,
    h: usize,
    w: usize,
    n: usize,
    k: usize,
    input: &[f32],
    tf_dup: &[f32],
    filter: &[f32],
) -> Vec<f32> {
    let _ = tf_dup;
    let mut out = vec![0.0f32; k * h * w * n];
    for kk in 0..k {
        for y in 0..h {
            for x in 0..w {
                for nn in 0..n {
                    let mut acc = 0.0f32;
                    for cc in 0..c {
                        for r in 0..3 {
                            let iy = y as isize + r as isize - 1;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for s in 0..3 {
                                let ix = x as isize + s as isize - 1;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input[((cc * h + iy as usize) * w + ix as usize) * n + nn]
                                    * filter[((cc * 3 + r) * 3 + s) * k + kk];
                            }
                        }
                    }
                    out[((kk * h + y) * w + x) * n + nn] = acc;
                }
            }
        }
    }
    out
}

/// Host filter transform G f Gᵀ (f32), producing the (C,4,4,K) layout.
fn host_tf(c: usize, k: usize, filter: &[f32]) -> Vec<f32> {
    let g: [[f32; 3]; 4] = [
        [1.0, 0.0, 0.0],
        [0.5, 0.5, 0.5],
        [0.5, -0.5, 0.5],
        [0.0, 0.0, 1.0],
    ];
    let mut tf = vec![0.0f32; c * 16 * k];
    for cc in 0..c {
        for kk in 0..k {
            let mut f = [[0.0f32; 3]; 3];
            for r in 0..3 {
                for s in 0..3 {
                    f[r][s] = filter[((cc * 3 + r) * 3 + s) * k + kk];
                }
            }
            for i in 0..4 {
                for j in 0..4 {
                    let mut v = 0.0;
                    for a in 0..3 {
                        for b in 0..3 {
                            v += g[i][a] * f[a][b] * g[j][b];
                        }
                    }
                    tf[(cc * 16 + i * 4 + j) * k + kk] = v;
                }
            }
        }
    }
    tf
}

#[test]
fn fp16_kernel_matches_reference() {
    let cfg = FusedConfig::ours_fp16(8, 8, 8, 64, 64);
    let (c, h, w, n, k) = (8usize, 8, 8, 64, 64);
    let mut rng = XorShiftRng::new(21);
    // Generate data, then round through f16 so the reference sees exactly
    // what the kernel sees.
    let raw_in: Vec<f32> = (0..c * h * w * n)
        .map(|_| rng.gen_range(-1.0, 1.0))
        .collect();
    let input = unpack_f16_pairs(&pack_f16_pairs(&raw_in));
    let filter: Vec<f32> = (0..c * 9 * k).map(|_| rng.gen_range(-1.0, 1.0)).collect();
    let tf = host_tf(c, k, &filter);
    let tf_rounded: Vec<f32> = tf
        .iter()
        .map(|&v| sass::half::f16_to_f32(sass::half::f32_to_f16(v)))
        .collect();
    let want = reference_f16(c, h, w, n, k, &input, &tf_rounded, &filter);

    let kern = FusedKernel::emit(cfg);
    assert!(kern.module.info.num_regs <= 253);
    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 26);
    // Upload as raw u32 words via the f32 channel (bit reinterpretation).
    let in_words = pack_f16_pairs(&input);
    let d_in = gpu.alloc_upload_f32(
        &in_words
            .iter()
            .map(|&w| f32::from_bits(w))
            .collect::<Vec<_>>(),
    );
    let tf_words = pack_f16_duplicated(&tf);
    let d_tf = gpu.alloc_upload_f32(
        &tf_words
            .iter()
            .map(|&w| f32::from_bits(w))
            .collect::<Vec<_>>(),
    );
    let d_out = gpu.alloc((k * h * w * n / 2) as u64 * 4);
    let params = kern.params(d_in, d_tf, d_out);
    gpu.launch_parallel(&kern.module, kern.launch_dims(), &params)
        .expect("fp16 kernel");

    let out_words: Vec<u32> = gpu
        .mem
        .download_f32(d_out, k * h * w * n / 2)
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let got = unpack_f16_pairs(&out_words);

    // fp16 accumulate over C·9 = 72 MACs of O(1) values: tolerance ~0.1.
    let mut worst = 0.0f32;
    for i in 0..want.len() {
        worst = worst.max((want[i] - got[i]).abs());
        assert!(
            (want[i] - got[i]).abs() < 0.25,
            "idx {i}: {} vs {}",
            got[i],
            want[i]
        );
    }
    assert!(worst < 0.25, "worst abs err {worst}");
}

#[test]
fn fp16_doubles_mainloop_throughput() {
    // §8.3: same schedule, twice the element FLOPs per instruction.
    let dev = DeviceSpec::rtx2070();
    let mut f32cfg = FusedConfig::ours(64, 28, 28, 32, 64);
    f32cfg.main_loop_only = true;
    let mut f16cfg = FusedConfig::ours_fp16(64, 28, 28, 64, 64);
    f16cfg.main_loop_only = true;

    let run = |cfg: FusedConfig| {
        let kern = FusedKernel::emit(cfg);
        let mut gpu = Gpu::new(dev.clone(), 1 << 28);
        let d_in = gpu.alloc(1 << 24);
        let d_tf = gpu.alloc(1 << 22);
        let d_out = gpu.alloc(1 << 24);
        let params = kern.params(d_in, d_tf, d_out);
        let t = gpusim::timing::time_kernel(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &params,
            TimingOptions {
                region: Some(kern.region),
                ..Default::default()
            },
        )
        .unwrap();
        t.region_tflops(&dev, cfg.mainloop_flops_per_block())
    };
    let tf32 = run(f32cfg);
    let tf16 = run(f16cfg);
    let ratio = tf16 / tf32;
    assert!(
        (1.7..2.3).contains(&ratio),
        "fp16/fp32 main-loop ratio {ratio} (f32 {tf32}, f16 {tf16})"
    );
}

#[test]
fn fp16_kernel_lints_clean() {
    let kern = FusedKernel::emit(FusedConfig::ours_fp16(64, 28, 28, 64, 64));
    let d = sass::lint(&kern.module.insts);
    assert!(
        d.is_empty(),
        "{} hazards, first {:?}",
        d.len(),
        d.first().map(|x| x.to_string())
    );
}
