//! Every emitted kernel must be schedule-hazard-free: the emitter's
//! auto-repair pass (sass::lint::fix_schedule) runs at build time, and this
//! test pins the invariant so schedule regressions fail loudly.

use kernels::filter_transform::emit_filter_transform;
use kernels::gemm::{GemmConfig, GemmKernel};
use kernels::{FusedConfig, FusedKernel};

fn assert_clean(name: &str, insts: &[sass::Instruction]) {
    let d = sass::lint(insts);
    assert!(
        d.is_empty(),
        "{name}: {} hazards, first: {}",
        d.len(),
        d.first().map(|x| x.to_string()).unwrap_or_default()
    );
}

#[test]
fn fused_kernels_lint_clean() {
    for cfg in [
        FusedConfig::ours(64, 56, 56, 32, 64),
        FusedConfig::ours(512, 7, 7, 128, 512),
        FusedConfig::cudnn_like(64, 56, 56, 32, 32),
        FusedConfig::cudnn_like(256, 14, 14, 96, 256),
        {
            let mut c = FusedConfig::ours(64, 28, 28, 32, 64);
            c.use_p2r = false;
            c
        },
        {
            let mut c = FusedConfig::ours(64, 28, 28, 32, 64);
            c.main_loop_only = true;
            c
        },
    ] {
        let kern = FusedKernel::emit(cfg);
        assert_clean(&format!("fused bk={}", cfg.bk), &kern.module.insts);
    }
}

#[test]
fn gemm_kernels_lint_clean() {
    for cfg in [
        GemmConfig::new(64, 128, 8),
        GemmConfig::new(512, 1024, 576).batched(36),
        {
            let mut c = GemmConfig::new(64, 128, 64);
            c.extra_index_ops = 6;
            c
        },
    ] {
        assert_clean("gemm", &GemmKernel::emit(cfg).module.insts);
    }
}

#[test]
fn filter_transform_lints_clean() {
    assert_clean("fx", &emit_filter_transform(64, 64).insts);
    assert_clean("fx512", &emit_filter_transform(512, 512).insts);
}
