//! Differential functional check for the schedule autotuner (ISSUE 5).
//!
//! Schedule moves — stall/yield/reuse/barrier edits and dependence-legal
//! reorders — must never change what a kernel *computes*. This harness runs
//! the real tuner over the detuned fused Winograd kernel, samples accepted
//! candidates along the seeded search trajectory (plus every evaluated
//! candidate, capped), executes each through the functional `gpusim` launch
//! path on real data, and compares:
//!
//! * candidate output vs the baseline kernel's output — **bit-exact**.
//!   A dependence-legal reorder cannot even change rounding: any two
//!   instructions the oracle lets commute share no registers, so every
//!   FFMA accumulation chain keeps its order and the IEEE result is
//!   identical down to the last ulp;
//! * baseline output vs a direct-convolution reference — within the usual
//!   Winograd-vs-direct tolerance (different summation order, 1e-3), the
//!   same bar `fused_correctness.rs` holds the hand kernel to.

use gpusim::{DeviceSpec, Gpu, LaunchDims, ParamBuilder};
use kernels::filter_transform::emit_filter_transform;
use kernels::{EmitterParams, FusedConfig, FusedKernel};
use sass::tune::Tuner;
use sass::Instruction;
use tensor::XorShiftRng;

/// Direct convolution reference (3×3, pad 1, stride 1), CHWN/CRSK/KHWN.
fn reference(
    c_d: usize,
    h_d: usize,
    w_d: usize,
    n_d: usize,
    k_d: usize,
    input: &[f32],
    filter: &[f32],
) -> Vec<f32> {
    let mut out = vec![0.0f32; k_d * h_d * w_d * n_d];
    for k in 0..k_d {
        for y in 0..h_d {
            for x in 0..w_d {
                for n in 0..n_d {
                    let mut acc = 0.0f32;
                    for c in 0..c_d {
                        for r in 0..3 {
                            let iy = y as isize + r as isize - 1;
                            if iy < 0 || iy >= h_d as isize {
                                continue;
                            }
                            for s in 0..3 {
                                let ix = x as isize + s as isize - 1;
                                if ix < 0 || ix >= w_d as isize {
                                    continue;
                                }
                                let iv =
                                    input[((c * h_d + iy as usize) * w_d + ix as usize) * n_d + n];
                                let fv = filter[((c * 3 + r) * 3 + s) * k_d + k];
                                acc += iv * fv;
                            }
                        }
                    }
                    out[((k * h_d + y) * w_d + x) * n_d + n] = acc;
                }
            }
        }
    }
    out
}

/// Every legal Tier-2 emitter point (the `EmitterParams` grid the two-tier
/// autotuner searches) must emit a lint-clean kernel whose output is
/// bit-exact against every other legal point. The knobs — `bk` blocking,
/// filter LDG width, fragment pipelining depth — reshuffle loads and
/// register layouts but never the FFMA accumulation chain: channels
/// accumulate in ascending order in the transform domain and the inverse
/// transform runs once at the end, so even across layouts the IEEE result
/// is identical down to the last ulp. The direct-convolution reference
/// anchors the family within the usual Winograd tolerance.
#[test]
fn tier2_variants_lint_clean_and_bit_exact() {
    let base = FusedConfig::ours(32, 4, 4, 32, 64);
    let (c, h, w, n, k) = (
        base.c as usize,
        base.h as usize,
        base.w as usize,
        base.n as usize,
        base.k as usize,
    );
    let mut rng = XorShiftRng::new(0x7157);
    let input: Vec<f32> = (0..c * h * w * n)
        .map(|_| rng.gen_range(-1.0, 1.0))
        .collect();
    let filter: Vec<f32> = (0..c * 9 * k).map(|_| rng.gen_range(-1.0, 1.0)).collect();

    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 26);
    let d_in = gpu.alloc_upload_f32(&input);
    let d_filt = gpu.alloc_upload_f32(&filter);
    let d_tf = gpu.alloc((c * 16 * k) as u64 * 4);
    let d_out = gpu.alloc((k * h * w * n) as u64 * 4);
    let fx = emit_filter_transform(base.c, base.k);
    let fx_params = ParamBuilder::new().push_ptr(d_filt).push_ptr(d_tf).build();
    gpu.launch_parallel(
        &fx,
        LaunchDims::linear(base.c * base.k / 256, 256),
        &fx_params,
    )
    .expect("filter transform");

    let want = reference(c, h, w, n, k, &input, &filter);
    let points = EmitterParams::legal_points();
    assert!(points.len() >= 5, "tier-2 grid lost legal points");
    let mut anchor: Option<Vec<f32>> = None;
    for p in points {
        let cfg = p.apply(base);
        let kern = FusedKernel::emit(cfg);
        assert!(
            sass::lint(&kern.module.insts).is_empty(),
            "{}: emitted kernel fails lint",
            p.label()
        );
        gpu.mem
            .upload_f32(d_out, &vec![f32::NAN; k * h * w * n])
            .unwrap();
        let params = kern.params(d_in, d_tf, d_out);
        gpu.launch_parallel(&kern.module, kern.launch_dims(), &params)
            .unwrap_or_else(|e| panic!("{}: failed to execute: {e}", p.label()));
        let got = gpu.mem.download_f32(d_out, k * h * w * n).unwrap();
        let rep = tensor::compare(&want, &got, 1e-3, 1e-3);
        assert!(rep.num_bad == 0, "{} vs direct reference: {rep}", p.label());
        match &anchor {
            None => anchor = Some(got),
            Some(a) => {
                for (j, (x, y)) in a.iter().zip(&got).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "{}: output[{j}] differs bit-for-bit from anchor: {x:?} vs {y:?}",
                        p.label()
                    );
                }
            }
        }
    }
}

#[test]
fn tuner_candidates_compute_identical_results() {
    let cfg = FusedConfig::ours(32, 4, 4, 32, 64);
    let (c, h, w, n, k) = (
        cfg.c as usize,
        cfg.h as usize,
        cfg.w as usize,
        cfg.n as usize,
        cfg.k as usize,
    );
    let mut rng = XorShiftRng::new(0x5eed);
    let input: Vec<f32> = (0..c * h * w * n)
        .map(|_| rng.gen_range(-1.0, 1.0))
        .collect();
    let filter: Vec<f32> = (0..c * 9 * k).map(|_| rng.gen_range(-1.0, 1.0)).collect();

    // Device state: input + transformed filter, shared by every launch.
    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 26);
    let d_in = gpu.alloc_upload_f32(&input);
    let d_filt = gpu.alloc_upload_f32(&filter);
    let d_tf = gpu.alloc((c * 16 * k) as u64 * 4);
    let d_out = gpu.alloc((k * h * w * n) as u64 * 4);
    let fx = emit_filter_transform(cfg.c, cfg.k);
    let fx_params = ParamBuilder::new().push_ptr(d_filt).push_ptr(d_tf).build();
    gpu.launch_parallel(
        &fx,
        LaunchDims::linear(cfg.c * cfg.k / 256, 256),
        &fx_params,
    )
    .expect("filter transform");

    // Baseline: the detuned kernel. Its output anchors the bit-exact
    // comparison and must itself match the direct reference.
    let naive = FusedKernel::emit_detuned(cfg);
    let params = naive.params(d_in, d_tf, d_out);
    let dims = naive.launch_dims();
    gpu.launch_parallel(&naive.module, dims, &params)
        .expect("baseline kernel");
    let base_out = gpu.mem.download_f32(d_out, k * h * w * n).unwrap();
    let want = reference(c, h, w, n, k, &input, &filter);
    let rep = tensor::compare(&want, &base_out, 1e-3, 1e-3);
    assert!(rep.num_bad == 0, "baseline vs direct reference: {rep}");

    // Tune with a cheap static objective — cycle counts are irrelevant
    // here; what matters is that the *real* move generators and legality
    // gates produce the candidates. Sample every evaluated candidate up to
    // a cap, plus periodic snapshots of the accepted stream.
    let mut tuner = Tuner::new(naive.module.insts.clone(), Vec::new(), 0xd1ff);
    tuner.snapshot_every = 8;
    let mut sampled: Vec<Vec<Instruction>> = Vec::new();
    let mut obj = |insts: &[Instruction], _perm: &[u32]| {
        if sampled.len() < 16 {
            sampled.push(insts.to_vec());
        }
        Some(
            insts
                .iter()
                .map(|i| i.ctrl.stall.max(1) as u64 + !i.ctrl.yield_flag as u64)
                .sum(),
        )
    };
    tuner.prime(&mut obj);
    tuner.greedy_tighten(&mut obj);
    tuner.start_anneal(160);
    for _ in 0..160 {
        tuner.anneal_step(&mut obj);
    }
    assert!(tuner.stats.accepted > 0, "search accepted nothing to test");
    sampled.extend(tuner.snapshots.iter().cloned());
    sampled.push(tuner.best_insts.clone());
    // Dedup identical streams to keep the launch count down.
    sampled.dedup();

    assert!(sampled.len() >= 6, "too few candidates sampled");
    for (i, insts) in sampled.iter().enumerate() {
        assert!(sass::lint(insts).is_empty(), "candidate {i} fails lint");
        let cand = sass::Module::new(
            &naive.module.info.name,
            naive.module.info.smem_bytes,
            naive.module.info.param_bytes,
            insts.clone(),
        );
        // Scrub the output so a candidate that silently skipped stores
        // cannot inherit a previous launch's correct answer.
        gpu.mem
            .upload_f32(d_out, &vec![f32::NAN; k * h * w * n])
            .unwrap();
        gpu.launch_parallel(&cand, dims, &params)
            .unwrap_or_else(|e| panic!("candidate {i} failed to execute: {e}"));
        let got = gpu.mem.download_f32(d_out, k * h * w * n).unwrap();
        for (j, (a, b)) in base_out.iter().zip(&got).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "candidate {i}: output[{j}] differs bit-for-bit: {a:?} vs {b:?}"
            );
        }
    }
}
