//! Hardware-counter expectations for the generated fused Winograd kernels:
//! the §4/§5 design claims, checked on the counters instead of end timing.

use gpusim::{DeviceSpec, Gpu, HwCounters, TimingOptions};
use kernels::filter_transform::emit_filter_transform;
use kernels::{FusedConfig, FusedKernel};

fn count(cfg: FusedConfig) -> HwCounters {
    let (c, h, w, n, k) = (
        cfg.c as usize,
        cfg.h as usize,
        cfg.w as usize,
        cfg.n as usize,
        cfg.k as usize,
    );
    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 28);
    let d_in = gpu.alloc((c * h * w * n) as u64 * 4);
    let d_filt = gpu.alloc((c * 9 * k) as u64 * 4);
    let d_tf = gpu.alloc((c * 16 * k) as u64 * 4);
    let d_out = gpu.alloc((k * h * w * n) as u64 * 4);

    let fx = emit_filter_transform(cfg.c, cfg.k);
    let fx_params = gpusim::ParamBuilder::new()
        .push_ptr(d_filt)
        .push_ptr(d_tf)
        .build();
    gpu.launch(
        &fx,
        gpusim::LaunchDims::linear(cfg.c * cfg.k / 256, 256),
        &fx_params,
    )
    .expect("filter transform");

    let kern = FusedKernel::emit(cfg);
    let params = kern.params(d_in, d_tf, d_out);
    let t = gpusim::timing::time_kernel(
        &mut gpu,
        &kern.module,
        kern.launch_dims(),
        &params,
        TimingOptions {
            counters: true,
            ..Default::default()
        },
    )
    .expect("counted fused kernel");
    let c = t.counters.expect("counters requested");
    c.validate().expect("fused kernel counters reconcile");
    c
}

#[test]
fn ours_counters_match_the_design_claims() {
    let c = count(FusedConfig::ours(32, 12, 12, 32, 64));
    // §4.3/§5: the main loop leans on wide 128-bit LDS.
    assert!(
        c.smem_accesses_by_width[2] > 0,
        "main loop reads smem with LDS.128"
    );
    // §5.2.2: the FFMA operand allocation is register-bank clean.
    assert_eq!(c.reg_bank_conflicts, 0, "ours FFMAs are bank-clean");
    // §5.2: the FFMA operand schedule exploits the reuse cache.
    assert!(
        c.reuse_hits.iter().sum::<u64>() > 0,
        "register reuse cache must see hits"
    );
    // The main loop is FP32 work: the FP pipe dominates issue traffic.
    assert!(
        c.issued_by_pipe[0] > c.issued / 2,
        "FP32 pipe issues must dominate: {:?} of {}",
        c.issued_by_pipe,
        c.issued
    );
    // The kernel reads inputs/filters through L2: real memory footprint.
    assert!(c.global_sectors > 0 && c.dram_read_bytes > 0);
}

#[test]
fn ours_beats_cudnn_like_on_the_counters() {
    let ours = count(FusedConfig::ours(32, 12, 12, 32, 64));
    let cudnn = count(FusedConfig::cudnn_like(32, 12, 12, 32, 64));
    // §5.2.2: our operand allocation eliminates the register-bank conflicts
    // the cuDNN-style schedule pays for on every other FFMA group.
    assert_eq!(ours.reg_bank_conflicts, 0, "ours FFMAs are bank-clean");
    assert!(
        cudnn.reg_bank_conflicts > 0,
        "cudnn-like schedule pays reg-bank conflicts"
    );
    // §4.3: 128-bit shared loads mean fewer LDS instructions and fewer MIO
    // phases for the same bytes.
    assert!(
        ours.smem_accesses < cudnn.smem_accesses,
        "wide LDS: {} vs {}",
        ours.smem_accesses,
        cudnn.smem_accesses
    );
    assert!(
        ours.smem_phases < cudnn.smem_phases,
        "smem phase totals: {} vs {}",
        ours.smem_phases,
        cudnn.smem_phases
    );
    // §3.3: bk=64 halves the input overfetch of bk=32 — ours moves fewer
    // DRAM bytes per resident wave for the same tile work.
    let ours_dram = ours.dram_read_bytes + ours.dram_write_bytes;
    let cudnn_dram = cudnn.dram_read_bytes + cudnn.dram_write_bytes;
    assert!(
        ours_dram < cudnn_dram,
        "ours {ours_dram} B vs cudnn-like {cudnn_dram} B"
    );
    // Net effect: fewer instructions issued for the same convolution.
    assert!(ours.issued < cudnn.issued);
}
