//! The fused batched `F(2×2, 3×3)` Winograd convolution kernel — the
//! paper's primary contribution (§3–§4), emitted as scheduled SASS.
//!
//! Structure (Algorithm 1):
//!
//! ```text
//! setup: indices, base addresses, zero-padding mask (P2R-packed, §3.5),
//!        zeroed accumulators
//! prologue: LDG filter+input tiles for iteration 0
//! main loop over C in steps of bc = 8:
//!   BAR; STS filter tiles + ITF (32 FADDs, §4.2) + STS input tiles; BAR
//!   inner i = 0..8 (fully unrolled):
//!     FFMA batches (8×8 outer products per plane, register allocation per
//!     Fig. 4, bank-conflict-free pairing per §4.3), software-pipelined
//!     with LDS.128 fragment loads (lane arrangement per Fig. 3) and the
//!     LDG prefetch of the next channel block (§3.4)
//! epilogue: output transform in 4 rounds through shared memory (§4.4)
//! ```
//!
//! Two register layouts exist, mirroring Table 7:
//!
//! * **bk = 64 (ours)**: 128 accumulators, double-buffered fragments,
//!   dedicated LDG staging — 253 registers, 1 block/SM everywhere.
//! * **bk = 32 (cuDNN-like)**: 64 accumulators, *single-buffered*
//!   fragments, input staging shared with the fragment registers —
//!   ≤126 registers, so two blocks fit per SM on the V100's 96 KiB shared
//!   memory but only one on Turing's 64 KiB (§7.1's mechanism).
//!
//! Every knob the paper studies is a config field: `bk` (§3.3), the yield
//! strategy (§6.1), LDG/STS interleave distances (§6.2), and P2R packing vs
//! per-iteration mask recomputation (§3.5). Problem dims specialize the
//! emitted code (immediates), exactly like the paper's TuringAs-generated
//! kernels.

use sass::ctrl::Ctrl;
use sass::isa::{build, CmpOp, Instruction, MemWidth, Op, PredGuard, PredSrc, SrcB};
use sass::reg::{Pred, Reg, RZ};
use sass::Module;

pub use crate::emit::YieldStrategy;
use crate::emit::{Emitter, YieldApplier};

/// LDG interleave distance (§6.2, Fig. 8): one LDG every n FFMAs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LdgStrategy {
    Ldg2,
    Ldg4,
    Ldg8,
}

impl LdgStrategy {
    pub fn distance(self) -> u32 {
        match self {
            LdgStrategy::Ldg2 => 2,
            LdgStrategy::Ldg4 => 4,
            LdgStrategy::Ldg8 => 8,
        }
    }
}

/// STS interleave distance (§6.2, Fig. 9): one STS every n instruction
/// slots of the store phase (realized as stall spacing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StsStrategy {
    Sts2,
    Sts4,
    Sts6,
}

impl StsStrategy {
    pub fn distance(self) -> u32 {
        match self {
            StsStrategy::Sts2 => 2,
            StsStrategy::Sts4 => 4,
            StsStrategy::Sts6 => 6,
        }
    }
}

/// Width of the 16 filter-tile global loads (§4.1). `W64` loads each
/// lane's k-pair with one LDG.64 (bk=64 only — a lane owns two consecutive
/// k there); `W32` splits the pair into two LDG.32 (twice the LDG count,
/// same registers, same bytes — the schedule space the Tier-2 search
/// probes). bk=32 lanes own a single k, so only `W32` is emittable there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterLdgWidth {
    W32,
    W64,
}

impl FilterLdgWidth {
    pub fn bits(self) -> u32 {
        match self {
            FilterLdgWidth::W32 => 32,
            FilterLdgWidth::W64 => 64,
        }
    }
}

/// Full configuration of the fused kernel.
#[derive(Clone, Copy, Debug)]
pub struct FusedConfig {
    pub c: u32,
    pub h: u32,
    pub w: u32,
    pub n: u32,
    pub k: u32,
    /// Filters per thread block (§3.3): 64 = ours, 32 = cuDNN-like.
    pub bk: u32,
    /// Filter LDG width (bk=64 only; see [`FilterLdgWidth`]).
    pub filter_ldg: FilterLdgWidth,
    /// Fragment software-pipelining depth: 2 = double-buffered LDS
    /// prefetch one sub-iteration ahead (the paper's schedule, §3.4),
    /// 1 = single-buffered (each sub-iteration loads its own fragments —
    /// fewer live registers, no LDS latency hiding). Depth 2 requires
    /// bk=64: the compact bk=32 layout stages input LDGs in the fragment
    /// registers, which aliases any second buffer.
    pub pipeline_depth: u32,
    pub yield_strategy: YieldStrategy,
    pub ldg: LdgStrategy,
    pub sts: StsStrategy,
    /// Pack the 16 zero-padding predicates into one register with P2R and
    /// unpack with R2P inside the loop (§3.5). When false, the masks are
    /// recomputed with ISETPs every iteration — the overhead P2R eliminates.
    pub use_p2r: bool,
    /// Emit only setup + main loop (timing runs for the paper's "main loop"
    /// figures); functional output is not written.
    pub main_loop_only: bool,
    /// Override the declared shared-memory footprint (cuDNN's kernel
    /// declares 48 KiB; used to reproduce Table 7 occupancy).
    pub smem_override: Option<u32>,
    /// Overlap the input STS with the ITF row passes (our schedule). When
    /// false, the transform completes first and the stores trail in a bunch
    /// (the tighter STS2-style schedule §6.2 observes in cuDNN's code).
    pub overlap_sts: bool,
    /// Read the input in NCHW layout (cuDNN's default, §7: "with NCHW data
    /// layout") instead of the CHWN layout our kernel is designed around
    /// (§4.2). NCHW scatters a warp's 32 batch lanes across 32 distinct
    /// sectors per element, losing the coalescing the paper's layout buys.
    pub input_nchw: bool,
    /// fp16 data path (§8.3): bn doubles to 64 by packing two batches into
    /// each 32-bit register as `half2`; FFMA/FADD become HFMA2/HADD2 and
    /// every per-element address halves (the byte math is otherwise
    /// identical to the fp32 kernel at N/2).
    pub fp16: bool,
}

/// Input tiles per block (fixed: 32 batches, §3.2).
pub const BN: u32 = 32;
/// Channels per main-loop iteration (fixed, §3.2).
pub const BC: u32 = 8;

impl FusedConfig {
    /// The paper's configuration: bk=64, Natural yield, LDG8, STS6, P2R.
    pub fn ours(c: u32, h: u32, w: u32, n: u32, k: u32) -> Self {
        FusedConfig {
            c,
            h,
            w,
            n,
            k,
            bk: 64,
            filter_ldg: FilterLdgWidth::W64,
            pipeline_depth: 2,
            yield_strategy: YieldStrategy::Natural,
            ldg: LdgStrategy::Ldg8,
            sts: StsStrategy::Sts6,
            use_p2r: true,
            main_loop_only: false,
            smem_override: None,
            overlap_sts: true,
            input_nchw: false,
            fp16: false,
        }
    }

    /// The §8.3 fp16 port of our kernel: bn = 64, half2 arithmetic.
    /// The transformed filter must be supplied in duplicated-half2 format
    /// (see `crate::fp16`), and input/output buffers hold f16 in CHWN/KHWN.
    pub fn ours_fp16(c: u32, h: u32, w: u32, n: u32, k: u32) -> Self {
        FusedConfig {
            fp16: true,
            ..FusedConfig::ours(c, h, w, n, k)
        }
    }

    /// Our kernel ported to NCHW input, per the §8.4 sketch: the spatial
    /// 8×4-tile block partitioning with every other optimization kept
    /// ("The offsets of global and shared memory accesses need to be
    /// recomputed, while all other optimizations can be adopted").
    pub fn ours_nchw(c: u32, h: u32, w: u32, n: u32, k: u32) -> Self {
        FusedConfig {
            input_nchw: true,
            ..FusedConfig::ours(c, h, w, n, k)
        }
    }

    /// The cuDNN-7.6.1-like fused Winograd configuration the paper measures
    /// against (§3.3, §6, Table 7): bk=32, yield every 7 float instructions,
    /// LDG2, STS2, 48 KiB shared memory, ≤126 registers.
    pub fn cudnn_like(c: u32, h: u32, w: u32, n: u32, k: u32) -> Self {
        FusedConfig {
            c,
            h,
            w,
            n,
            k,
            bk: 32,
            filter_ldg: FilterLdgWidth::W32,
            pipeline_depth: 1,
            yield_strategy: YieldStrategy::Cudnn,
            ldg: LdgStrategy::Ldg2,
            sts: StsStrategy::Sts2,
            use_p2r: true,
            main_loop_only: false,
            smem_override: Some(48 * 1024),
            overlap_sts: false,
            input_nchw: true,
            fp16: false,
        }
    }

    pub fn validate(&self) {
        assert!(self.bk == 64 || self.bk == 32, "bk must be 32 or 64");
        assert!(
            self.pipeline_depth == 1 || self.pipeline_depth == 2,
            "pipeline_depth must be 1 or 2"
        );
        if self.bk == 32 {
            assert_eq!(
                self.filter_ldg,
                FilterLdgWidth::W32,
                "bk=32 lanes own one k: filter LDG must be 32-bit"
            );
            assert_eq!(
                self.pipeline_depth, 1,
                "bk=32 stages input LDGs in the fragment registers: no double buffer"
            );
        }
        if self.fp16 {
            assert_eq!(
                self.n % (2 * BN),
                0,
                "fp16: N must be a multiple of 64 (bn = 64, §8.3)"
            );
            assert!(!self.input_nchw, "fp16 path supports CHWN input only");
        }
        assert_eq!(self.n % BN, 0, "N must be a multiple of 32");
        assert_eq!(self.k % self.bk, 0, "K must be a multiple of bk");
        assert_eq!(self.c % BC, 0, "C must be a multiple of 8");
        assert!(self.h >= 2 && self.w >= 2, "image too small");
    }

    pub fn htiles(&self) -> u32 {
        self.h.div_ceil(2)
    }
    pub fn wtiles(&self) -> u32 {
        self.w.div_ceil(2)
    }
    pub fn kblocks(&self) -> u32 {
        self.k / self.bk
    }
    pub fn ngroups(&self) -> u32 {
        if self.fp16 {
            self.n / (2 * BN)
        } else {
            self.n / BN
        }
    }

    /// Shared memory: input (16·8·32) + filter (16·8·bk) floats; the
    /// output-transform rounds reuse the same arena (§4.5, Table 4).
    pub fn smem_bytes(&self) -> u32 {
        self.smem_override.unwrap_or(16 * BC * (BN + self.bk) * 4)
    }

    /// FMA FLOPs per block in the main loop (each thread: 1024 FFMAs per
    /// iteration when bk=64, §4.3; the fp16 path does two element-FMAs per
    /// HFMA2 lane).
    pub fn mainloop_flops_per_block(&self) -> f64 {
        let bn_eff = if self.fp16 { 2 * BN } else { BN };
        let per_iter = 16.0 * self.bk as f64 * bn_eff as f64 * BC as f64 * 2.0;
        per_iter * (self.c / BC) as f64
    }

    /// EWMM FLOPs of the whole problem — the quantity behind the paper's
    /// main-loop TFLOPS plots.
    pub fn wino_flops(&self) -> f64 {
        self.mainloop_flops_per_block()
            * (self.htiles() * self.wtiles() * self.ngroups() * self.kblocks()) as f64
    }
}

/// Fig. 3 lane arrangement: filter-fragment word offset for a lane.
pub fn lane_filter_offset(lane: u32) -> u32 {
    4 * ((lane % 16) / 2)
}

/// Fig. 3 lane arrangement: input-fragment word offset for a lane.
pub fn lane_input_offset(lane: u32) -> u32 {
    4 * ((lane % 2) + 2 * (lane / 16))
}

/// The emitted kernel plus its launch metadata.
/// Signature shared by the FADD/HADD2-style two-source emit helpers.
type BinEmit = fn(Reg, Reg, Reg) -> Op;

pub struct FusedKernel {
    pub module: Module,
    pub config: FusedConfig,
    /// Instruction index range `[start, end)` of the main loop, for the
    /// timing model's region accounting.
    pub region: (u32, u32),
    /// Named kernel phases (setup / prologue / main_loop / output_transform)
    /// as repaired instruction-index ranges, for `simprof` reports.
    pub regions: Vec<gpusim::Region>,
}

// ---- register layouts ----------------------------------------------------------

/// Register assignment for one kernel flavour. See module docs: the bk=64
/// layout matches Fig. 4/Table 5; the bk=32 layout is the compact ≤126-reg
/// variant that reproduces cuDNN's Table 7 occupancy.
#[derive(Clone, Copy, Debug)]
struct Lay {
    bk: u32,
    /// Double-buffered fragments (bk=64) vs single-buffered (bk=32).
    double_frag: bool,
    /// Input LDG staging shares the fragment registers (bk=32).
    shared_input_staging: bool,
    pf_filter: u8,
    pf_input: u8,
    inptr: u8,
    fptr: u8,
    ists: u8,
    /// Filter smem write address register; `None` = derive from `ists` with
    /// an immediate (+16 KiB), valid when `bk == 32` (same lane function).
    fsts: Option<u8>,
    flds: u8,
    ilds: u8,
    mask: u8,
    t0: u8,
    t1: u8,
    t2: u8,
    ctr: u8,
    /// Epilogue scratch base (≥14 consecutive regs, dead during epilogue).
    ep: u8,
    /// Epilogue OTF value regs: 16 plane values, 8 intermediates, 4 outputs.
    ep_o: u8,
    ep_y: u8,
    ep_out: u8,
    /// Epilogue output-pointer pair.
    ep_optr: u8,
}

impl Lay {
    fn for_cfg(cfg: &FusedConfig) -> Lay {
        if cfg.bk == 64 {
            Lay {
                bk: 64,
                double_frag: cfg.pipeline_depth == 2,
                shared_input_staging: false,
                pf_filter: 192,
                pf_input: 224,
                inptr: 240,
                fptr: 242,
                ists: 244,
                fsts: Some(245),
                flds: 246,
                ilds: 247,
                mask: 248,
                t0: 249,
                t1: 250,
                t2: 251,
                ctr: 252,
                ep: 192,
                ep_o: 128,
                ep_y: 144,
                ep_out: 152,
                ep_optr: 250, // pair 250:251 (t1:t2, dead in epilogue)
            }
        } else {
            Lay {
                bk: 32,
                double_frag: false,
                shared_input_staging: true,
                pf_filter: 88,
                pf_input: 64, // shared with the fragment registers
                inptr: 104,
                fptr: 106,
                ists: 108,
                fsts: None,
                flds: 109,
                ilds: 110,
                mask: 111,
                t0: 112,
                t1: 113,
                t2: 114,
                ctr: 115,
                ep: 88,
                ep_o: 64,
                ep_y: 80,
                ep_out: 64,   // reuses o() after the first OTF pass
                ep_optr: 102, // pair 102:103 inside the ep area
            }
        }
    }

    /// Accumulator register (Fig. 4): plane δ, filter f, batch n.
    fn acc(&self, delta: u32, f: u32, n: u32) -> Reg {
        let fmax = self.bk / 8; // 8 or 4
        Reg((delta * fmax * 8 + f * 8 + n) as u8)
    }

    /// Fragment-buffer base: after the accumulators.
    fn frag_base(&self) -> u32 {
        2 * (self.bk / 8) * 8
    }

    fn frag_filter(&self, buf: u32, delta: u32, f: u32) -> Reg {
        let fmax = self.bk / 8;
        let per_buf = 2 * fmax + 16; // filter (2·fmax) + input (16) per buffer
        let buf = if self.double_frag { buf } else { 0 };
        Reg((self.frag_base() + buf * per_buf + delta * fmax + f) as u8)
    }

    fn frag_input(&self, buf: u32, delta: u32, n: u32) -> Reg {
        let fmax = self.bk / 8;
        let per_buf = 2 * fmax + 16;
        let buf = if self.double_frag { buf } else { 0 };
        Reg((self.frag_base() + buf * per_buf + 2 * fmax + delta * 8 + n) as u8)
    }
}

// Predicates: P0..P3 pad masks / scratch; P2..P4 epilogue guards; P5 loop;
// P6 prefetch guard.
const P_LOOP: Pred = Pred(5);
const P_MORE: Pred = Pred(6);

/// Byte offset of the filter region inside the shared-memory arena.
const SMEM_FILTER_BASE: u32 = 16 * BC * BN * 4; // 16 KiB

impl FusedKernel {
    /// Emit the kernel for `cfg`.
    pub fn emit(cfg: FusedConfig) -> FusedKernel {
        cfg.validate();
        let lay = Lay::for_cfg(&cfg);
        let mut e = Emitter::new();
        let rg_setup = e.region_begin("setup");
        let bk = cfg.bk;
        // fp16 packs two batches per 32-bit word, so every N-indexed byte
        // computation matches the fp32 kernel at N/2 (§8.3).
        let n_words = if cfg.fp16 { cfg.n / 2 } else { cfg.n };
        let (hh, ww, nn, kk, cc) = (cfg.h, cfg.w, n_words, cfg.k, cfg.c);
        let wn = ww * nn;

        let rt = Reg(lay.t0);
        let rs = Reg(lay.t1);
        // Setup-only staging in accumulator registers (zeroed afterwards).
        let rtid = Reg(0);
        let r_hx = Reg(1);
        let r_wx = Reg(2);
        let r_zx = Reg(3);
        let r_ng = Reg(4);
        let r_kb = Reg(5);
        let r_nu = Reg(6);
        let r_cl = Reg(7);
        let r_y = Reg(8);
        let r_x = Reg(9);

        e.op(build::s2r(rtid, sass::isa::SpecialReg::TidX));
        e.op(build::s2r(r_wx, sass::isa::SpecialReg::CtaidX));
        e.op(build::s2r(r_hx, sass::isa::SpecialReg::CtaidY));
        e.opc(
            build::s2r(r_zx, sass::isa::SpecialReg::CtaidZ),
            Ctrl::new().with_stall(6),
        );
        e.div_rem_const(r_ng, r_kb, r_zx, cfg.kblocks(), rt);
        e.op(build::and(r_nu, rtid, 31u32));
        e.op(build::shr(r_cl, rtid, 5));

        // Input base.
        //   CHWN (ours, §4.2): lane ν = batch; biased_ptr + 4·(c_l·H·W·N +
        //     2h·W·N + 2w·N + ng·32 + ν) — 32 consecutive batches per warp,
        //     fully coalesced.
        //   NCHW (cuDNN's, per the §8.4 sketch): the 32 tiles of a block are
        //     an 8×4 *spatial* patch of one image; lane ν = tile (ty, tx) =
        //     (ν/8, ν%8); biased_ptr + 4·(n·C·H·W + c_l·H·W + 2h_t·W +
        //     2w_t) — stride-2 rows, roughly half of every sector wasted.
        e.load_param_ptr(Reg(lay.inptr), 0);
        if cfg.input_nchw {
            // Per-lane tile coordinates: h_t = 4·ctaid.y + ν/8,
            // w_t = 8·ctaid.x + ν%8. r_ng holds the batch index.
            let r_ht = r_y; // staged in the mask registers computed below
            let r_wt = r_x;
            e.op(build::shr(rt, r_nu, 3));
            e.op(build::imad(r_ht, r_hx, 4u32, rt));
            e.op(build::and(rt, r_nu, 7u32));
            e.op(build::imad(r_wt, r_wx, 8u32, rt));
            e.op(build::imad(rt, r_ng, cc * hh * ww, RZ));
            e.op(build::imad(rs, r_cl, hh * ww, RZ));
            e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
            e.op(build::imad(rt, r_ht, 2 * ww, rt));
            e.op(build::shl(rs, r_wt, 1));
            e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        } else {
            e.op(build::imad(rt, r_cl, hh * wn, RZ));
            e.op(build::imad(rt, r_hx, 2 * wn, rt));
            e.op(build::imad(rt, r_wx, 2 * nn, rt));
            e.op(build::imad(rs, r_ng, 32u32, r_nu));
            e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        }
        e.op(build::imad_wide(Reg(lay.inptr), rt, 4u32, Reg(lay.inptr)));

        // Filter base: tf_ptr + 4·(c_l·16·K + kblk·bk + lane_k),
        // lane_k = 2ν (bk=64, LDG.64 pairs) or ν (bk=32).
        e.load_param_ptr(Reg(lay.fptr), 8);
        e.op(build::imad(rt, r_cl, 16 * kk, RZ));
        e.op(build::imad(rt, r_kb, bk, rt));
        if bk == 64 {
            e.op(build::shl(rs, r_nu, 1));
        } else {
            e.op(build::mov(rs, r_nu));
        }
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::imad_wide(Reg(lay.fptr), rt, 4u32, Reg(lay.fptr)));

        // Shared-memory write addresses.
        e.op(build::imad(rt, r_cl, 32u32, r_nu));
        e.op(build::shl(Reg(lay.ists), rt, 2)); // input_sts = (c_l·32 + ν)·4
        if let Some(fsts) = lay.fsts {
            e.op(build::imad(rt, r_cl, bk, RZ));
            e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ)); // + lane_k (in rs)
            e.op(build::shl(rt, rt, 2));
            e.op(build::iadd3(Reg(fsts), rt, SMEM_FILTER_BASE, RZ));
        }

        // Shared-memory read bases (Fig. 3).
        e.op(build::and(rt, r_nu, 14u32));
        e.op(build::shl(rt, rt, 3)); // foff bytes = (ν & 14)·8
        e.op(build::imad(rs, r_cl, 2 * BC * bk * 4, RZ));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::iadd3(Reg(lay.flds), rt, SMEM_FILTER_BASE, RZ));
        e.op(build::and(rt, r_nu, 1u32));
        e.op(build::shl(rt, rt, 4));
        e.op(build::shr(rs, r_nu, 4));
        e.op(build::shl(rs, rs, 5));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ)); // ioff bytes
        e.op(build::imad(Reg(lay.ilds), r_cl, 2 * BC * BN * 4, rt));

        // Zero-padding masks over rows 2h-1+r and cols 2w-1+s (r,s ∈ 0..4).
        // The -1 cases wrap as u32 and fail the unsigned bound compare. In
        // the NCHW path the tile coordinates (already in r_y/r_x) are
        // per-lane, so the masks are per-lane too.
        if cfg.input_nchw {
            e.op(build::shl(r_y, r_y, 1));
            e.op(build::iadd3(r_y, r_y, (-1i32) as u32, RZ));
            e.op(build::shl(r_x, r_x, 1));
            e.op(build::iadd3(r_x, r_x, (-1i32) as u32, RZ));
        } else {
            e.op(build::shl(r_y, r_hx, 1));
            e.op(build::iadd3(r_y, r_y, (-1i32) as u32, RZ));
            e.op(build::shl(r_x, r_wx, 1));
            e.op(build::iadd3(r_x, r_x, (-1i32) as u32, RZ));
        }
        if cfg.use_p2r {
            e.op(build::mov(Reg(lay.mask), RZ));
            let ru = Reg(lay.t2);
            for r in 0..4u32 {
                e.op(build::iadd3(rt, r_y, r, RZ));
                for s in 0..4u32 {
                    e.op(build::iadd3(rs, r_x, s, RZ));
                    e.op(build::isetp_u32(Pred(s as u8), CmpOp::Lt, rt, hh));
                    e.op(Op::Isetp {
                        p: Pred(s as u8),
                        cmp: CmpOp::Lt,
                        u32: true,
                        a: rs,
                        b: SrcB::Imm(ww),
                        combine: PredSrc::of(Pred(s as u8)),
                    });
                }
                e.opc(
                    Op::P2r {
                        d: ru,
                        a: RZ,
                        mask: 0xf,
                    },
                    Ctrl::new().with_stall(2),
                );
                e.op(build::shl(ru, ru, (r * 4) as u8));
                e.op(build::or(Reg(lay.mask), Reg(lay.mask), ru));
            }
        } else {
            // Keep the tile origin live for per-iteration recomputation: the
            // mask register holds 2h-1 and t2 holds 2w-1 (t2 is otherwise
            // scratch; the recompute path avoids it in-loop).
            e.op(build::mov(Reg(lay.mask), r_y));
            e.op(build::mov(Reg(lay.t2), r_x));
        }

        e.mov_imm(Reg(lay.ctr), cc / BC);

        // Zero the accumulators (also clears the setup staging).
        let fmax = bk / 8;
        for d in 0..2u32 {
            for f in 0..fmax {
                for n in 0..8u32 {
                    e.op(build::mov(lay.acc(d, f, n), RZ));
                }
            }
        }

        // ---- prologue: stage iteration 0 -------------------------------
        e.region_end(rg_setup);
        let rg_prologue = e.region_begin("prologue");
        for i in filter_ldg_insts(&cfg, &lay) {
            push(&mut e, i);
        }
        for i in input_zero_insts(&lay) {
            push(&mut e, i);
        }
        for i in input_ldg_insts(&cfg, &lay, None) {
            push(&mut e, i);
        }

        // ---- main loop ---------------------------------------------------
        e.region_end(rg_prologue);
        let rg_main = e.region_begin("main_loop");
        let loop_top = e.label();
        e.bind(loop_top);

        e.op(build::isetp(P_MORE, CmpOp::Gt, Reg(lay.ctr), 1u32));
        e.opc(Op::BarSync, Ctrl::new().with_stall(1));
        emit_store_phase(&mut e, &cfg, &lay);
        // Advance base pointers (32-bit low word; device arenas fit).
        let in_step = if cfg.input_nchw {
            BC * hh * ww * 4
        } else {
            BC * hh * wn * 4
        };
        e.op(build::iadd3(Reg(lay.inptr), Reg(lay.inptr), in_step, RZ));
        e.op(build::iadd3(
            Reg(lay.fptr),
            Reg(lay.fptr),
            BC * 16 * kk * 4,
            RZ,
        ));
        e.opc(Op::BarSync, Ctrl::new().with_stall(1));

        if lay.double_frag {
            for i in lds_frag_insts(&cfg, &lay, 0, 0) {
                push(&mut e, i);
            }
        }
        emit_inner_loop(&mut e, &cfg, &lay);

        e.loop_dec(Reg(lay.ctr), 1, P_LOOP, loop_top);
        e.region_end(rg_main);

        // ---- epilogue ------------------------------------------------------
        if !cfg.main_loop_only {
            let rg_ep = e.region_begin("output_transform");
            emit_epilogue(&mut e, &cfg, &lay);
            e.region_end(rg_ep);
        }
        e.opc(Op::Exit, Ctrl::new().with_stall(5));

        let (module, regions) = e.build_with_regions(
            if bk == 64 {
                "winograd_fused_b64"
            } else {
                "winograd_fused_b32"
            },
            cfg.smem_bytes(),
            24,
        );
        let main = regions.iter().find(|r| r.name == "main_loop").unwrap();
        FusedKernel {
            module,
            config: cfg,
            region: (main.start, main.end),
            regions,
        }
    }

    /// Emit the kernel for `cfg` with its hand schedule degraded to the
    /// naive legal baseline the schedule autotuner starts from: full
    /// fixed-latency stalls, no operand reuse, all yields set
    /// (`sass::tune::detune`). Instruction count, registers, region markers
    /// and functional behaviour are identical to [`FusedKernel::emit`].
    pub fn emit_detuned(cfg: FusedConfig) -> FusedKernel {
        let mut kern = FusedKernel::emit(cfg);
        sass::tune::detune(&mut kern.module.insts);
        kern
    }

    /// Launch dims, 256 threads per block.
    ///
    /// CHWN: grid (wtiles, htiles, ngroups·kblocks) — one (h,w) tile × 32
    /// batches per block. NCHW: grid (⌈wtiles/8⌉, ⌈htiles/4⌉, N·kblocks) —
    /// an 8×4 spatial tile patch of one image per block (§8.4).
    pub fn launch_dims(&self) -> gpusim::LaunchDims {
        let c = &self.config;
        if c.input_nchw {
            gpusim::LaunchDims::new(
                [
                    c.wtiles().div_ceil(8),
                    c.htiles().div_ceil(4),
                    c.n * c.kblocks(),
                ],
                [256, 1, 1],
            )
        } else {
            gpusim::LaunchDims::new(
                [c.wtiles(), c.htiles(), c.ngroups() * c.kblocks()],
                [256, 1, 1],
            )
        }
    }

    /// Build the parameter blob. `input` is the raw CHWN input pointer,
    /// `tf_filter` the transformed `(C,4,4,K)` filter, `output` the KHWN
    /// output. The kernel expects the input pointer pre-biased by one row
    /// and one column of padding so in-kernel offsets stay non-negative.
    pub fn params(&self, input: u64, tf_filter: u64, output: u64) -> Vec<u8> {
        let c = &self.config;
        let n_words = if c.fp16 { c.n as u64 / 2 } else { c.n as u64 };
        let bias = if c.input_nchw {
            4 * (c.w as u64 + 1)
        } else {
            4 * (c.w as u64 * n_words + n_words)
        };
        gpusim::ParamBuilder::new()
            .push_ptr(input.wrapping_sub(bias))
            .push_ptr(tf_filter)
            .push_ptr(output)
            .build()
    }
}

fn push(e: &mut Emitter, i: Instruction) {
    e.opc(i.op, i.ctrl).guard = i.guard;
}

/// The 16 filter tile loads (bk=64: LDG.64 k-pairs, or 2×LDG.32 under
/// `FilterLdgWidth::W32`; bk=32: LDG.32).
fn filter_ldg_insts(cfg: &FusedConfig, lay: &Lay) -> Vec<Instruction> {
    let mut v = Vec::new();
    for el in 0..16u32 {
        let off = (el * cfg.k * 4) as i32;
        let first = v.is_empty();
        if cfg.bk == 64 && cfg.filter_ldg == FilterLdgWidth::W32 {
            // Narrow split of the k-pair: same registers, same bytes, two
            // 32-bit transactions instead of one 64-bit.
            for half in 0..2u32 {
                v.push(
                    Instruction::new(build::ldg(
                        MemWidth::B32,
                        Reg(lay.pf_filter + (2 * el + half) as u8),
                        Reg(lay.fptr),
                        off + 4 * half as i32,
                    ))
                    .with_ctrl(Ctrl::new().with_write_bar(2).with_stall(1)),
                );
            }
        } else {
            let (width, dst) = if cfg.bk == 64 {
                (MemWidth::B64, Reg(lay.pf_filter + (2 * el) as u8))
            } else {
                (MemWidth::B32, Reg(lay.pf_filter + el as u8))
            };
            v.push(
                Instruction::new(build::ldg(width, dst, Reg(lay.fptr), off))
                    .with_ctrl(Ctrl::new().with_write_bar(2).with_stall(1)),
            );
        }
        if first {
            // WAR vs the store phase that read the staging registers.
            v[0].ctrl.wait_mask |= 1 << 4;
        }
    }
    v
}

/// Zero the input staging registers (masked-off LDGs must read as zero).
fn input_zero_insts(lay: &Lay) -> Vec<Instruction> {
    (0..16u8)
        .map(|el| Instruction::new(build::mov(Reg(lay.pf_input + el), RZ)))
        .collect()
}

/// The 16 predicated input tile loads with their mask plumbing. When
/// `more_guard` is set (in-loop prefetch), the pad predicates are
/// additionally cleared unless another iteration follows.
fn input_ldg_insts(cfg: &FusedConfig, lay: &Lay, more_guard: Option<Pred>) -> Vec<Instruction> {
    let mut v = Vec::new();
    for r in 0..4u32 {
        if cfg.use_p2r {
            // Unpack this row's nibble: P0..P3 ← mask >> 4r (§3.5).
            let mut sh = Instruction::new(build::shr(Reg(lay.t0), Reg(lay.mask), (4 * r) as u8));
            if r == 0 {
                sh.ctrl.wait_mask |= 1 << 5;
            }
            v.push(sh);
            if let Some(p) = more_guard {
                v.push(Instruction::new(Op::Sel {
                    d: Reg(lay.t0),
                    a: Reg(lay.t0),
                    b: SrcB::Imm(0),
                    p: PredSrc::of(p),
                }));
            }
            v.push(
                Instruction::new(Op::R2p {
                    a: Reg(lay.t0),
                    mask: 0xf,
                })
                .with_ctrl(Ctrl::new().with_stall(2)),
            );
        } else {
            // Recompute the row's predicates — the per-iteration cost that
            // P2R packing eliminates (§3.5). 2h-1 lives in `mask`, 2w-1 in
            // `t2` on this path.
            let mut y = Instruction::new(build::iadd3(Reg(lay.t0), Reg(lay.mask), r, RZ));
            if r == 0 {
                y.ctrl.wait_mask |= 1 << 5;
            }
            v.push(y);
            for s in 0..4u32 {
                v.push(Instruction::new(build::isetp_u32(
                    Pred(s as u8),
                    CmpOp::Lt,
                    Reg(lay.t0),
                    cfg.h,
                )));
            }
            for s in 0..4u32 {
                v.push(Instruction::new(build::iadd3(
                    Reg(lay.t1),
                    Reg(lay.t2),
                    s,
                    RZ,
                )));
                v.push(Instruction::new(Op::Isetp {
                    p: Pred(s as u8),
                    cmp: CmpOp::Lt,
                    u32: true,
                    a: Reg(lay.t1),
                    b: SrcB::Imm(cfg.w),
                    combine: PredSrc::of(Pred(s as u8)),
                }));
            }
            if let Some(p) = more_guard {
                for s in 0..4u32 {
                    v.push(
                        Instruction::new(Op::Isetp {
                            p: Pred(s as u8),
                            cmp: CmpOp::Ne,
                            u32: true,
                            a: RZ,
                            b: SrcB::Imm(0),
                            combine: PredSrc::pt(),
                        })
                        .with_guard(PredGuard::on_not(p)),
                    );
                }
            }
        }
        for s in 0..4u32 {
            let stride = if cfg.input_nchw {
                1
            } else if cfg.fp16 {
                cfg.n / 2
            } else {
                cfg.n
            };
            let off = ((r * cfg.w + s) * stride * 4) as i32;
            let el = (r * 4 + s) as u8;
            v.push(
                Instruction::new(build::ldg(
                    MemWidth::B32,
                    Reg(lay.pf_input + el),
                    Reg(lay.inptr),
                    off,
                ))
                .with_guard(PredGuard::on(Pred(s as u8)))
                .with_ctrl(Ctrl::new().with_write_bar(3).with_stall(1)),
            );
        }
    }
    v
}

/// Store phase: filter STS + ITF FADDs + input STS, with STS spacing per
/// the configured strategy (§6.2).
fn emit_store_phase(e: &mut Emitter, cfg: &FusedConfig, lay: &Lay) {
    let bk = cfg.bk;
    let dist = cfg.sts.distance() as usize;

    // ITF filler stream: BᵀXB on the staged input tile, in place, one temp.
    // The second (row) pass finishes one output row per 5 instructions, so
    // that row's input STS go out right behind it — the stores overlap the
    // remaining transform arithmetic instead of trailing it.
    let x = |r: u32, s: u32| Reg(lay.pf_input + (r * 4 + s) as u8);
    let t = Reg(lay.t1);
    let mut fillers: Vec<Instruction> = Vec::new();
    let (add, sub): (BinEmit, BinEmit) = if cfg.fp16 {
        (
            |d, a, b| build::hadd2(d, a, b),
            |d, a, b| build::hsub2(d, a, b),
        )
    } else {
        (
            |d, a, b| build::fadd(d, a, b),
            |d, a, b| build::fsub(d, a, b),
        )
    };
    let pass = |fillers: &mut Vec<Instruction>, a: [Reg; 4]| {
        // a0 -= a2; t = a1 + a2; a2 = a2 - a1; a3 = a1 - a3; a1 = t.
        fillers.push(Instruction::new(sub(a[0], a[0], a[2])).with_ctrl(Ctrl::new().with_stall(1)));
        fillers.push(Instruction::new(add(t, a[1], a[2])).with_ctrl(Ctrl::new().with_stall(1)));
        fillers.push(Instruction::new(sub(a[2], a[2], a[1])).with_ctrl(Ctrl::new().with_stall(1)));
        fillers.push(Instruction::new(sub(a[3], a[1], a[3])).with_ctrl(Ctrl::new().with_stall(2)));
        fillers.push(Instruction::new(build::mov(a[1], t)).with_ctrl(Ctrl::new().with_stall(4)));
    };
    for s in 0..4u32 {
        pass(&mut fillers, [x(0, s), x(1, s), x(2, s), x(3, s)]);
    }
    let input_sts_for_row = |r: u32, first_stall: u8| -> Vec<Instruction> {
        (0..4u32)
            .map(|sx| {
                let el = r * 4 + sx;
                let off = (el * BC * BN * 4) as i32;
                let mut inst = Instruction::new(build::sts(
                    MemWidth::B32,
                    Reg(lay.ists),
                    off,
                    Reg(lay.pf_input + el as u8),
                ));
                inst.ctrl = Ctrl::new().with_stall(1).with_read_bar(5);
                if sx == 0 {
                    inst.ctrl.stall = first_stall;
                }
                inst
            })
            .collect()
    };
    for r in 0..4u32 {
        pass(&mut fillers, [x(r, 0), x(r, 1), x(r, 2), x(r, 3)]);
        if cfg.overlap_sts {
            // Row r is final: store its 4 transformed elements right away so
            // the stores overlap the remaining transform arithmetic.
            fillers.extend(input_sts_for_row(r, 4));
        }
    }
    if !cfg.overlap_sts {
        // Trailing bunch: all 16 input STS after the whole ITF, spaced only
        // by their stall counts (cuDNN's STS2-style schedule).
        let dist = cfg.sts.distance() as u8;
        for r in 0..4u32 {
            for mut inst in input_sts_for_row(r, 4) {
                if inst.ctrl.stall == 1 {
                    inst.ctrl.stall = dist;
                }
                fillers.push(inst);
            }
        }
    }
    // First filler reads staged input → wait for the input LDGs.
    fillers[0].ctrl.wait_mask |= 1 << 3;

    // Filter STS (independent of the ITF), interleaved into the fillers.
    let filter_sts: Vec<Instruction> = (0..16u32)
        .map(|el| {
            let (base, extra) = match lay.fsts {
                Some(r) => (Reg(r), 0),
                None => (Reg(lay.ists), SMEM_FILTER_BASE as i32),
            };
            let off = extra + (el * BC * bk * 4) as i32;
            let (width, src) = if bk == 64 {
                (MemWidth::B64, Reg(lay.pf_filter + (2 * el) as u8))
            } else {
                (MemWidth::B32, Reg(lay.pf_filter + el as u8))
            };
            let mut inst = Instruction::new(build::sts(width, base, off, src));
            inst.ctrl = Ctrl::new().with_stall(1).with_read_bar(4);
            if el == 0 {
                inst.ctrl.wait_mask |= 1 << 2; // filter LDGs landed
            }
            inst
        })
        .collect();

    let mut f_iter = fillers.into_iter();
    for s in filter_sts {
        push(e, s);
        for _ in 0..dist {
            if let Some(f) = f_iter.next() {
                push(e, f);
            }
        }
    }
    for f in f_iter {
        push(e, f);
    }
}

/// Fragment loads for inner iteration `i` into buffer `buf` (Fig. 3).
fn lds_frag_insts(cfg: &FusedConfig, lay: &Lay, i: u32, buf: u32) -> Vec<Instruction> {
    let bk = cfg.bk;
    let mut v = Vec::new();
    for delta in 0..2u32 {
        let base = ((delta * BC + i) * bk * 4) as i32;
        let chunks: &[(u32, i32)] = if bk == 64 {
            &[(0, 0), (4, 128)]
        } else {
            &[(0, 0)]
        };
        for &(f0, coff) in chunks {
            v.push(
                Instruction::new(build::lds(
                    MemWidth::B128,
                    lay.frag_filter(buf, delta, f0),
                    Reg(lay.flds),
                    base + coff,
                ))
                .with_ctrl(Ctrl::new().with_write_bar(0).with_stall(1)),
            );
        }
        let ibase = ((delta * BC + i) * BN * 4) as i32;
        for &(n0, coff) in &[(0u32, 0i32), (4, 64)] {
            v.push(
                Instruction::new(build::lds(
                    MemWidth::B128,
                    lay.frag_input(buf, delta, n0),
                    Reg(lay.ilds),
                    ibase + coff,
                ))
                .with_ctrl(Ctrl::new().with_write_bar(1).with_stall(1)),
            );
        }
    }
    v
}

/// The unrolled inner loop: 8 FFMA batches with LDS pipelining and the LDG
/// prefetch stream interleaved (§3.4, §6.2).
fn emit_inner_loop(e: &mut Emitter, cfg: &FusedConfig, lay: &Lay) {
    let fmax = cfg.bk / 8;
    let mut yield_app = YieldApplier::new(cfg.yield_strategy);
    let ldg_dist = cfg.ldg.distance();

    // Prefetch stream for the next channel block (guarded by P_MORE). With
    // shared input staging (bk=32), the input part must wait until the last
    // sub-iteration's FFMAs have issued, so it is appended after the loop.
    let mut filter_pf: Vec<Instruction> = Vec::new();
    for mut inst in filter_ldg_insts(cfg, lay) {
        inst.guard = PredGuard::on(P_MORE);
        filter_pf.push(inst);
    }
    let mut input_pf: Vec<Instruction> = Vec::new();
    input_pf.extend(input_zero_insts(lay));
    input_pf.extend(input_ldg_insts(cfg, lay, Some(P_MORE)));

    let mut prefetch: Vec<Instruction> = filter_pf;
    if !lay.shared_input_staging {
        prefetch.append(&mut input_pf);
    }
    let mut prefetch = prefetch.into_iter();

    for i in 0..BC {
        let buf = i % 2;
        if !lay.double_frag {
            // Single-buffered fragments: load this sub-iteration's data now
            // (the latency-hiding weakness of the compact layout).
            for l in lds_frag_insts(cfg, lay, i, 0) {
                push(e, l);
            }
        }
        let lds = if lay.double_frag && i + 1 < BC {
            lds_frag_insts(cfg, lay, i + 1, buf ^ 1)
        } else {
            Vec::new()
        };
        let mut lds = lds.into_iter();

        let mut ffma_count = 0u32;
        for delta in 0..2u32 {
            for f in 0..fmax {
                // Bank-conflict-free pairing (§4.3): even f starts with an
                // odd n and reuses the filter operand; odd f starts even.
                let order: [u32; 8] = if f % 2 == 0 {
                    [1, 0, 3, 2, 5, 4, 7, 6]
                } else {
                    [0, 1, 2, 3, 4, 5, 6, 7]
                };
                for (j, &n) in order.iter().enumerate() {
                    let mk = if cfg.fp16 {
                        build::hfma2
                    } else {
                        |d, a, b: Reg, c| build::ffma(d, a, b, c)
                    };
                    let mut inst = Instruction::new(mk(
                        lay.acc(delta, f, n),
                        lay.frag_input(buf, delta, n),
                        lay.frag_filter(buf, delta, f),
                        lay.acc(delta, f, n),
                    ));
                    if j % 2 == 0 {
                        inst.ctrl = inst.ctrl.reuse_slot(1);
                    }
                    if yield_app.next_clears() {
                        inst.ctrl.yield_flag = false;
                    }
                    if ffma_count == 0 {
                        inst.ctrl.wait_mask |= 0b11; // this buffer's LDS
                    }
                    push(e, inst);
                    ffma_count += 1;

                    if ffma_count.is_multiple_of(4) {
                        if let Some(l) = lds.next() {
                            push(e, l);
                        }
                    }
                    if ffma_count.is_multiple_of(ldg_dist) {
                        if let Some(pf) = prefetch.next() {
                            push(e, pf);
                        }
                    }
                }
            }
        }
        for l in lds {
            push(e, l);
        }
        if i + 1 == BC {
            for pf in prefetch.by_ref() {
                push(e, pf);
            }
            // Shared-staging input prefetch: safe only after every FFMA of
            // the loop has issued (the staging aliases the fragments).
            for pf in input_pf.drain(..) {
                push(e, pf);
            }
        }
    }
}

/// Output-transform epilogue: 4 rounds through shared memory (§4.4).
fn emit_epilogue(e: &mut Emitter, cfg: &FusedConfig, lay: &Lay) {
    let bk = cfg.bk;
    let kr = bk / 4; // k values per round (16 for bk=64, 8 for bk=32)
    let n_words = if cfg.fp16 { cfg.n / 2 } else { cfg.n };
    let (hh, ww, nn) = (cfg.h, cfg.w, n_words);

    // Recompute per-thread indices in the epilogue scratch area.
    let ep = |i: u8| Reg(lay.ep + i);
    let rtid = ep(0);
    let r_nu = ep(1);
    let r_wp = ep(2);
    let r_foff = ep(3); // filter word offset (Fig. 3)
    let r_ioff = ep(4); // input word offset
    let r_hx = ep(5);
    let r_wx = ep(6);
    let r_zx = ep(7);
    let r_ng = ep(8);
    let r_kb = ep(9);
    let r_rnd = ep(10); // chunk-1 round index
    let rt = ep(11);
    let rs = ep(12);
    e.op(build::s2r(rtid, sass::isa::SpecialReg::TidX));
    e.op(build::s2r(r_wx, sass::isa::SpecialReg::CtaidX));
    e.op(build::s2r(r_hx, sass::isa::SpecialReg::CtaidY));
    e.opc(
        build::s2r(r_zx, sass::isa::SpecialReg::CtaidZ),
        Ctrl::new().with_stall(6),
    );
    e.op(build::and(r_nu, rtid, 31u32));
    e.op(build::shr(r_wp, rtid, 5));
    e.op(build::and(rt, r_nu, 14u32));
    e.op(build::shl(r_foff, rt, 1)); // foff words = (ν & 14)·2
    e.op(build::and(rt, r_nu, 1u32));
    e.op(build::shl(rt, rt, 2));
    e.op(build::shr(rs, r_nu, 4));
    e.op(build::shl(rs, rs, 3));
    e.op(build::iadd3(r_ioff, rt, SrcB::Reg(rs), RZ)); // ioff words
    e.div_rem_const(r_ng, r_kb, r_zx, cfg.kblocks(), rt);
    e.op(build::shr(r_rnd, r_foff, kr.trailing_zeros() as u8));

    // Output-edge guards.
    //   CHWN: uniform per block — P4 = 2h+1 < H ; P3 = 2w+1 < W ; P2 = both;
    //         the (0,0) store is always in bounds.
    //   NCHW: per-lane tile coords, and whole tiles may overshoot the 8×4
    //         patch, so the (0,0) store needs its own guard (P5).
    let r_ht = rtid; // dead after setup; reused for per-lane tile coords
    let r_wt = ep(13);
    if cfg.input_nchw {
        e.op(build::shr(rt, r_nu, 3));
        e.op(build::imad(r_ht, r_hx, 4u32, rt));
        e.op(build::and(rt, r_nu, 7u32));
        e.op(build::imad(r_wt, r_wx, 8u32, rt));
        // y0 = 2h_t, y1 = y0+1, x0 = 2w_t, x1 = x0+1.
        e.op(build::shl(r_ht, r_ht, 1));
        e.op(build::shl(r_wt, r_wt, 1));
        e.op(build::isetp_u32(Pred(5), CmpOp::Lt, r_ht, hh)); // y0 ok
        e.op(Op::Isetp {
            p: Pred(5),
            cmp: CmpOp::Lt,
            u32: true,
            a: r_wt,
            b: SrcB::Imm(ww),
            combine: PredSrc::of(Pred(5)),
        }); // P5 = y0<H && x0<W
        e.op(build::iadd3(rt, r_wt, 1u32, RZ));
        e.op(build::isetp_u32(Pred(3), CmpOp::Lt, rt, ww));
        e.op(Op::Isetp {
            p: Pred(3),
            cmp: CmpOp::Lt,
            u32: true,
            a: r_ht,
            b: SrcB::Imm(hh),
            combine: PredSrc::of(Pred(3)),
        }); // P3 = y0<H && x1<W
        e.op(build::iadd3(rs, r_ht, 1u32, RZ));
        e.op(build::isetp_u32(Pred(4), CmpOp::Lt, rs, hh));
        e.op(Op::Isetp {
            p: Pred(4),
            cmp: CmpOp::Lt,
            u32: true,
            a: r_wt,
            b: SrcB::Imm(ww),
            combine: PredSrc::of(Pred(4)),
        }); // P4 = y1<H && x0<W
        e.op(build::isetp_u32(Pred(2), CmpOp::Lt, rs, hh));
        e.op(Op::Isetp {
            p: Pred(2),
            cmp: CmpOp::Lt,
            u32: true,
            a: rt,
            b: SrcB::Imm(ww),
            combine: PredSrc::of(Pred(2)),
        }); // P2 = y1<H && x1<W
    } else {
        e.op(build::shl(rt, r_hx, 1));
        e.op(build::iadd3(rt, rt, 1u32, RZ));
        e.op(build::isetp_u32(Pred(4), CmpOp::Lt, rt, hh));
        e.op(build::shl(rt, r_wx, 1));
        e.op(build::iadd3(rt, rt, 1u32, RZ));
        e.op(build::isetp_u32(Pred(3), CmpOp::Lt, rt, ww));
        e.op(Op::Isetp {
            p: Pred(2),
            cmp: CmpOp::Lt,
            u32: true,
            a: rt,
            b: SrcB::Imm(ww),
            combine: PredSrc::of(Pred(4)),
        });
        // (0,0) is always in bounds in the CHWN partitioning.
        e.op(build::isetp_u32(Pred(5), CmpOp::Ge, RZ, 0u32));
    }

    let tiles_per_thread: u32 = if bk == 64 { 2 } else { 1 };

    for g in 0..4u32 {
        e.opc(Op::BarSync, Ctrl::new().with_stall(1));

        // --- scatter: participating chunks STS their accumulators --------
        // bk=64: chunk 0 (acc f 0..4, k_local = foff+fl) owns rounds 0–1
        // (when r_rnd == g); chunk 1 (acc f 4..8, k_local = foff+32+fl)
        // owns rounds 2–3 (when r_rnd == g-2).
        // bk=32: the single chunk owns round r_rnd == g (r_rnd ∈ 0..4).
        let chunks: &[(u32, u32)] = if bk == 64 {
            if g < 2 {
                &[(0, 0)]
            } else {
                &[(4, 2)]
            }
        } else {
            &[(0, 0)]
        };
        for &(fbase, gbias) in chunks {
            e.op(build::isetp_u32(Pred(0), CmpOp::Eq, r_rnd, g - gbias));
            // smem word address = (2·warp + δ)·kr·32 + (foff % kr + fl)·32
            //                     + ioff (+ nq·16); δ, fl, nq via immediates.
            e.op(build::and(rt, r_foff, kr - 1));
            e.op(build::imad(rs, r_wp, 2 * kr * 32, RZ));
            e.op(build::imad(rt, rt, 32u32, rs));
            e.op(build::iadd3(rt, rt, SrcB::Reg(r_ioff), RZ));
            e.op(build::shl(rt, rt, 2));
            for delta in 0..2u32 {
                for fl in 0..4u32 {
                    for nq in 0..2u32 {
                        let off = (delta * kr * 32 * 4 + fl * 32 * 4 + nq * 16 * 4) as i32;
                        let src = lay.acc(delta, fbase + fl, nq * 4);
                        let mut inst = Instruction::new(build::sts(MemWidth::B128, rt, off, src))
                            .with_guard(PredGuard::on(Pred(0)));
                        inst.ctrl = Ctrl::new().with_stall(1);
                        push(e, inst);
                    }
                }
            }
        }
        e.opc(Op::BarSync, Ctrl::new().with_stall(1));

        // --- gather + OTF + STG ------------------------------------------
        for tile in 0..tiles_per_thread {
            let kr0_add = if bk == 64 { tile * 8 } else { 0 };
            let o = |idx: u32| Reg(lay.ep_o + idx as u8);
            e.op(build::iadd3(rt, r_wp, kr0_add, RZ));
            e.op(build::imad(rt, rt, 32u32, r_nu));
            e.op(build::shl(rt, rt, 2));
            for el in 0..16u32 {
                let off = (el * kr * 32 * 4) as i32;
                push(
                    e,
                    Instruction::new(build::lds(MemWidth::B32, o(el), rt, off))
                        .with_ctrl(Ctrl::new().with_write_bar(0).with_stall(1)),
                );
            }
            // OTF: Aᵀ O A — 24 FADDs (§2.1).
            let y = |j: u32, s: u32| Reg(lay.ep_y + (j * 4 + s) as u8);
            let (add, sub): (BinEmit, BinEmit) = if cfg.fp16 {
                (
                    |d, a, b| build::hadd2(d, a, b),
                    |d, a, b| build::hsub2(d, a, b),
                )
            } else {
                (
                    |d, a, b| build::fadd(d, a, b),
                    |d, a, b| build::fsub(d, a, b),
                )
            };
            for s in 0..4u32 {
                let c0 = if s == 0 {
                    Ctrl::new().with_wait_mask(1).with_stall(2)
                } else {
                    Ctrl::new().with_stall(2)
                };
                e.opc(add(y(0, s), o(s), o(4 + s)), c0);
                e.opc(add(y(0, s), y(0, s), o(8 + s)), Ctrl::new().with_stall(4));
                e.opc(sub(y(1, s), o(4 + s), o(8 + s)), Ctrl::new().with_stall(2));
                e.opc(sub(y(1, s), y(1, s), o(12 + s)), Ctrl::new().with_stall(4));
            }
            let out = |dy: u32, dx: u32| Reg(lay.ep_out + (dy * 2 + dx) as u8);
            for dy in 0..2u32 {
                e.opc(
                    add(out(dy, 0), y(dy, 0), y(dy, 1)),
                    Ctrl::new().with_stall(2),
                );
                e.opc(
                    add(out(dy, 0), out(dy, 0), y(dy, 2)),
                    Ctrl::new().with_stall(4),
                );
                e.opc(
                    sub(out(dy, 1), y(dy, 1), y(dy, 2)),
                    Ctrl::new().with_stall(2),
                );
                e.opc(
                    sub(out(dy, 1), out(dy, 1), y(dy, 3)),
                    Ctrl::new().with_stall(4),
                );
            }
            // k_global = kblk·bk + g·kr + kr0.
            // CHWN output (KHWN): elem = ((k·H + 2h)·W + 2w)·N + ng·32 + ν.
            // NCHW output:        elem = ((n·K + k)·H + 2h_t)·W + 2w_t.
            e.op(build::iadd3(rt, r_wp, kr0_add + g * kr, RZ));
            e.op(build::imad(rt, r_kb, bk, rt));
            let (dx_off, dy_off) = if cfg.input_nchw {
                e.op(build::imad(rs, r_ng, cfg.k, rt));
                e.op(build::imad(rt, rs, hh, RZ));
                e.op(build::iadd3(rt, rt, SrcB::Reg(r_ht), RZ));
                e.op(build::imad(rt, rt, ww, RZ));
                e.op(build::iadd3(rt, rt, SrcB::Reg(r_wt), RZ));
                (4i32, (ww * 4) as i32)
            } else {
                e.op(build::imad(rt, rt, hh, RZ));
                e.op(build::shl(rs, r_hx, 1));
                e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
                e.op(build::imad(rt, rt, ww, RZ));
                e.op(build::shl(rs, r_wx, 1));
                e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
                e.op(build::imad(rt, rt, nn, RZ));
                e.op(build::imad(rs, r_ng, 32u32, r_nu));
                e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
                ((nn * 4) as i32, (ww * nn * 4) as i32)
            };
            let r_optr = Reg(lay.ep_optr);
            e.load_param_ptr(r_optr, 16);
            e.opc(
                build::imad_wide(r_optr, rt, 4u32, r_optr),
                Ctrl::new().with_stall(6),
            );
            // Read barrier 4 protects the out registers until the stores
            // have consumed them (the next tile's OTF reuses them).
            let stg_ctrl = Ctrl::new().with_stall(1).with_read_bar(4);
            let i0 = e.opc(build::stg(MemWidth::B32, r_optr, 0, out(0, 0)), stg_ctrl);
            i0.guard = PredGuard::on(Pred(5));
            e.opc(
                build::stg(MemWidth::B32, r_optr, dx_off, out(0, 1)),
                stg_ctrl,
            )
            .guard = PredGuard::on(Pred(3));
            e.opc(
                build::stg(MemWidth::B32, r_optr, dy_off, out(1, 0)),
                stg_ctrl,
            )
            .guard = PredGuard::on(Pred(4));
            e.opc(
                build::stg(MemWidth::B32, r_optr, dy_off + dx_off, out(1, 1)),
                stg_ctrl,
            )
            .guard = PredGuard::on(Pred(2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detuned_baseline_is_legal_and_shape_identical() {
        let cfg = FusedConfig::ours(32, 8, 8, 32, 64);
        let hand = FusedKernel::emit(cfg);
        let naive = FusedKernel::emit_detuned(cfg);
        assert_eq!(naive.module.insts.len(), hand.module.insts.len());
        assert_eq!(naive.module.info.num_regs, hand.module.info.num_regs);
        assert_eq!(naive.region, hand.region);
        assert_eq!(naive.regions.len(), hand.regions.len());
        for (a, b) in naive.regions.iter().zip(&hand.regions) {
            assert_eq!(
                (a.name.as_str(), a.start, a.end),
                (b.name.as_str(), b.start, b.end)
            );
        }
        assert!(sass::lint(&naive.module.insts).is_empty());
        // The baseline really is degraded: no reuse flags, stalls no lower.
        assert!(naive.module.insts.iter().all(|i| i.ctrl.reuse == 0));
        assert!(naive
            .module
            .insts
            .iter()
            .zip(&hand.module.insts)
            .all(|(n, h)| n.ctrl.stall >= h.ctrl.stall && n.op == h.op));
        assert!(naive
            .module
            .insts
            .iter()
            .zip(&hand.module.insts)
            .any(|(n, h)| n.ctrl.stall > h.ctrl.stall || h.ctrl.reuse != 0));
    }

    #[test]
    fn lane_offsets_match_fig3() {
        assert_eq!(lane_filter_offset(0), 0);
        assert_eq!(lane_filter_offset(2), 4);
        assert_eq!(lane_filter_offset(14), 28);
        assert_eq!(lane_filter_offset(1), 0);
        assert_eq!(lane_filter_offset(17), 0);
        assert_eq!(lane_input_offset(0), 0);
        assert_eq!(lane_input_offset(1), 4);
        assert_eq!(lane_input_offset(16), 8);
        assert_eq!(lane_input_offset(17), 12);
    }

    #[test]
    fn register_budgets_match_table7() {
        let cfg = FusedConfig::ours(64, 56, 56, 32, 64);
        cfg.validate();
        let kern = FusedKernel::emit(cfg);
        // Ours: must fit in 253 registers (§3.5/Table 5) and be large
        // enough to be register-bound to 1 block/SM.
        assert!(
            kern.module.info.num_regs <= 253,
            "ours: {}",
            kern.module.info.num_regs
        );
        assert!(
            kern.module.info.num_regs >= 250,
            "ours suspiciously small: {}",
            kern.module.info.num_regs
        );
        // cuDNN-like: ≤128 registers so V100 fits two blocks per SM (§7.1).
        let cu = FusedKernel::emit(FusedConfig::cudnn_like(64, 56, 56, 32, 32));
        assert!(
            cu.module.info.num_regs <= 128,
            "cudnn-like: {}",
            cu.module.info.num_regs
        );
        assert_eq!(cu.module.info.smem_bytes, 48 * 1024);
        let v100 = gpusim::DeviceSpec::v100();
        let t2070 = gpusim::DeviceSpec::rtx2070();
        assert_eq!(
            v100.blocks_per_sm(
                256,
                cu.module.info.num_regs as u32,
                cu.module.info.smem_bytes
            ),
            2
        );
        assert_eq!(
            t2070.blocks_per_sm(
                256,
                cu.module.info.num_regs as u32,
                cu.module.info.smem_bytes
            ),
            1
        );
        assert_eq!(
            v100.blocks_per_sm(
                256,
                kern.module.info.num_regs as u32,
                kern.module.info.smem_bytes
            ),
            1
        );
    }

    #[test]
    fn launch_dims_match_partitioning() {
        let kern = FusedKernel::emit(FusedConfig::ours(64, 56, 56, 32, 64));
        let d = kern.launch_dims();
        // Conv2N32: 28×28 tiles × 1 ngroup × 1 kblock = 784 blocks (§3.2).
        assert_eq!(d.grid, [28, 28, 1]);
        assert_eq!(d.num_blocks(), 784);
        let kern = FusedKernel::emit(FusedConfig::ours(512, 7, 7, 128, 512));
        // Conv5N128: 4×4 tiles × 4 ngroups × 8 kblocks.
        assert_eq!(kern.launch_dims().grid, [4, 4, 32]);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn rejects_bad_n() {
        FusedConfig::ours(64, 56, 56, 30, 64).validate();
    }

    /// Region markers survive schedule repair: the phases tile the module
    /// contiguously from instruction 0 and `region` matches `main_loop`.
    #[test]
    fn regions_tile_the_kernel() {
        let kern = FusedKernel::emit(FusedConfig::ours(64, 56, 56, 32, 64));
        let names: Vec<&str> = kern.regions.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            ["setup", "prologue", "main_loop", "output_transform"]
        );
        assert_eq!(kern.regions[0].start, 0);
        for w in kern.regions.windows(2) {
            assert_eq!(w[0].end, w[1].start, "phases must be contiguous");
        }
        let last = kern.regions.last().unwrap();
        // Only the final EXIT may sit outside the named phases.
        assert!(kern.module.insts.len() as u32 - last.end <= 1);
        let main = kern.regions.iter().find(|r| r.name == "main_loop").unwrap();
        assert_eq!((main.start, main.end), kern.region);
        assert!(
            main.end > main.start + 1000,
            "main loop holds the FFMA bulk"
        );
        // main_loop_only drops the output transform.
        let mut cfg = FusedConfig::ours(64, 56, 56, 32, 64);
        cfg.main_loop_only = true;
        let short = FusedKernel::emit(cfg);
        assert!(short.regions.iter().all(|r| r.name != "output_transform"));
    }
}
