//! Tier-2 emitter-parameter search space for the fused Winograd kernel.
//!
//! The schedule autotuner (`sass::tune`) searches *within* one emitted
//! kernel; this module enumerates the discrete knobs the emitter itself
//! exposes — block-level tiling (`bk`/`bn`/`bc`), filter LDG width and
//! fragment software-pipelining depth — the space the Volta
//! kernel-generation line of work searches over (see PAPERS.md). Each point
//! carries an explicit legality verdict with the *reason* a configuration
//! cannot be emitted, so the search reports what it pruned instead of
//! silently shrinking the grid.
//!
//! Every legal point produces the same arithmetic in the same order (the
//! accumulation chain over channels is fixed by the FFMA emission order,
//! which none of these knobs touch), so variants are functionally
//! *bit-exact* against each other — pinned by
//! `kernels/tests/tune_differential.rs`.

use crate::winograd_fused::{FilterLdgWidth, FusedConfig, BC, BN};

/// One point of the emitter-parameter grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmitterParams {
    /// Filters per block: 32 or 64.
    pub bk: u32,
    /// Input tiles (batches) per block.
    pub bn: u32,
    /// Channels per main-loop iteration.
    pub bc: u32,
    /// Filter LDG width in bits: 32, 64 or 128.
    pub ldg_width: u32,
    /// Fragment pipelining depth: 1 (single buffer) or 2 (double buffer).
    pub pipeline_depth: u32,
}

impl EmitterParams {
    /// The paper's hand-chosen point: bk=64, 64-bit filter loads,
    /// double-buffered fragments.
    pub fn hand() -> EmitterParams {
        EmitterParams {
            bk: 64,
            bn: BN,
            bc: BC,
            ldg_width: 64,
            pipeline_depth: 2,
        }
    }

    /// Compact display label, e.g. `bk64-bn32-bc8-w64-p2`.
    pub fn label(&self) -> String {
        format!(
            "bk{}-bn{}-bc{}-w{}-p{}",
            self.bk, self.bn, self.bc, self.ldg_width, self.pipeline_depth
        )
    }

    /// Why this point cannot be emitted, or `Ok(())` if it can.
    ///
    /// The block structure (256 threads = 8 warps of 32 lanes) hard-wires
    /// two of the nominal tiling knobs:
    ///
    /// * `bn` must be 32 — each warp lane owns one batch of the input
    ///   fragment (Fig. 3); bn=64 would double the accumulator file past
    ///   the 255-register budget, bn=16 would idle half of every warp;
    /// * `bc` must be 8 — the warp index (`tid/32` ∈ 0..8) *is* the
    ///   channel-within-iteration coordinate, and the 32 KiB smem arena is
    ///   sized as `16·bc·(bn+bk)` words;
    /// * `bk` ∈ {32, 64} — the two register layouts that exist (Table 5's
    ///   and the compact ≤126-reg variant);
    /// * 128-bit filter LDGs would need each lane to own four consecutive
    ///   k (a different lane→filter mapping and 64 staging registers);
    ///   64-bit loads need the k-pair mapping, which only bk=64 has;
    /// * double-buffered fragments need bk=64 — the bk=32 layout stages
    ///   input LDGs *in* the fragment registers, aliasing any second
    ///   buffer.
    pub fn legality(&self) -> Result<(), String> {
        if self.bn != BN {
            return Err(format!(
                "bn={} unsupported: warp lanes map 1:1 to {BN} batches (Fig. 3); \
                 bn=64 overflows the register file, bn=16 idles half-warps",
                self.bn
            ));
        }
        if self.bc != BC {
            return Err(format!(
                "bc={} unsupported: the warp index is the channel coordinate \
                 (8 warps) and the smem arena is sized 16·{BC}·(bn+bk) words",
                self.bc
            ));
        }
        if self.bk != 32 && self.bk != 64 {
            return Err(format!("bk={} unsupported: no register layout", self.bk));
        }
        match (self.bk, self.ldg_width) {
            (_, 128) => {
                return Err("128-bit filter LDG needs 4 consecutive k per lane: \
                     incompatible with both lane→filter mappings"
                    .into())
            }
            (32, 64) => {
                return Err("bk=32 lanes own a single k: 64-bit filter LDG impossible".into())
            }
            _ => {}
        }
        if self.pipeline_depth == 2 && self.bk != 64 {
            return Err("double-buffered fragments need bk=64: the compact layout \
                 stages input LDGs in the fragment registers"
                .into());
        }
        if self.pipeline_depth != 1 && self.pipeline_depth != 2 {
            return Err(format!(
                "pipeline_depth={} unsupported (1 or 2)",
                self.pipeline_depth
            ));
        }
        Ok(())
    }

    /// The full candidate grid (legal and illegal points).
    pub fn enumerate() -> Vec<EmitterParams> {
        let mut v = Vec::new();
        for &bk in &[32u32, 64] {
            for &bn in &[16u32, 32, 64] {
                for &bc in &[4u32, 8, 16] {
                    for &ldg_width in &[32u32, 64, 128] {
                        for &pipeline_depth in &[1u32, 2] {
                            v.push(EmitterParams {
                                bk,
                                bn,
                                bc,
                                ldg_width,
                                pipeline_depth,
                            });
                        }
                    }
                }
            }
        }
        v
    }

    /// The emittable subset of [`EmitterParams::enumerate`], grid order.
    pub fn legal_points() -> Vec<EmitterParams> {
        Self::enumerate()
            .into_iter()
            .filter(|p| p.legality().is_ok())
            .collect()
    }

    /// Specialize a problem-shaped base config to this parameter point.
    /// Panics if the point is illegal.
    pub fn apply(&self, base: FusedConfig) -> FusedConfig {
        self.legality()
            .unwrap_or_else(|e| panic!("{}: {e}", self.label()));
        let mut cfg = base;
        cfg.bk = self.bk;
        cfg.filter_ldg = if self.ldg_width == 64 {
            FilterLdgWidth::W64
        } else {
            FilterLdgWidth::W32
        };
        cfg.pipeline_depth = self.pipeline_depth;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_legal_subset() {
        let all = EmitterParams::enumerate();
        assert_eq!(all.len(), 2 * 3 * 3 * 3 * 2);
        let legal = EmitterParams::legal_points();
        // bk=64: {32,64}-bit loads × depth {1,2}; bk=32: one point.
        assert_eq!(legal.len(), 5);
        assert!(legal.contains(&EmitterParams::hand()));
        for p in &legal {
            assert_eq!(p.bn, BN);
            assert_eq!(p.bc, BC);
        }
        // Every illegal point names its reason.
        for p in &all {
            if let Err(e) = p.legality() {
                assert!(!e.is_empty(), "{} rejected without a reason", p.label());
            }
        }
    }

    #[test]
    fn apply_produces_valid_configs() {
        for p in EmitterParams::legal_points() {
            let cfg = p.apply(FusedConfig::ours(32, 4, 4, 32, 64));
            cfg.validate();
            assert_eq!(cfg.bk, p.bk);
            assert_eq!(cfg.pipeline_depth, p.pipeline_depth);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn apply_rejects_illegal_points() {
        let p = EmitterParams {
            bn: 64,
            ..EmitterParams::hand()
        };
        p.apply(FusedConfig::ours(32, 4, 4, 32, 64));
    }
}
