//! Emitter infrastructure: a thin typed layer over `sass::Instruction`
//! streams with label patching, scheduling helpers, and the host-side magic
//! constants for division by compile-time divisors.

use sass::ctrl::Ctrl;
use sass::isa::{build, CmpOp, Instruction, Op, PredGuard, SrcB};
use sass::reg::{Pred, Reg, RZ};
use sass::Module;

/// Incrementally builds an instruction stream.
pub struct Emitter {
    insts: Vec<Instruction>,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, usize)>, // (inst index, label id)
    markers: Vec<u32>,
    /// Named regions as (name, start marker id, end marker id).
    regions: Vec<(String, usize, Option<usize>)>,
}

/// A forward-referenceable branch label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(usize);

/// Handle of an open named region (see [`Emitter::region_begin`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionHandle(usize);

impl Emitter {
    pub fn new() -> Self {
        Emitter {
            insts: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            markers: Vec::new(),
            regions: Vec::new(),
        }
    }

    /// Append an op with default control (stall 1, yield).
    pub fn op(&mut self, op: Op) -> &mut Instruction {
        self.insts.push(Instruction::new(op));
        self.insts.last_mut().unwrap()
    }

    /// Append an op with explicit control.
    pub fn opc(&mut self, op: Op, ctrl: Ctrl) -> &mut Instruction {
        self.insts.push(Instruction::new(op).with_ctrl(ctrl));
        self.insts.last_mut().unwrap()
    }

    /// Append a guarded op.
    pub fn op_if(&mut self, guard: PredGuard, op: Op) -> &mut Instruction {
        self.insts.push(Instruction::new(op).with_guard(guard));
        self.insts.last_mut().unwrap()
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind a label to the current position.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.insts.len() as u32);
    }

    /// Branch to a label (patched at build).
    pub fn bra(&mut self, l: Label) -> &mut Instruction {
        self.patches.push((self.insts.len(), l.0));
        self.insts
            .push(Instruction::new(Op::Bra { target: u32::MAX }));
        self.insts.last_mut().unwrap()
    }

    /// Guarded branch to a label.
    pub fn bra_if(&mut self, guard: PredGuard, l: Label) -> &mut Instruction {
        self.patches.push((self.insts.len(), l.0));
        self.insts
            .push(Instruction::new(Op::Bra { target: u32::MAX }).with_guard(guard));
        self.insts.last_mut().unwrap()
    }

    /// Current instruction index (for region accounting).
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Register a marker at the current position. Markers stay consistent
    /// across the build-time schedule repair (NOP insertions shift them);
    /// resolve with the vector [`Emitter::build_with_markers`] returns.
    pub fn mark(&mut self) -> usize {
        self.markers.push(self.insts.len() as u32);
        self.markers.len() - 1
    }

    /// Open a named region (a kernel phase: setup, main loop, ...) at the
    /// current position. Region boundaries are markers, so they survive the
    /// build-time schedule repair; resolve them with
    /// [`Emitter::build_with_regions`].
    pub fn region_begin(&mut self, name: &str) -> RegionHandle {
        let m = self.mark();
        self.regions.push((name.to_string(), m, None));
        RegionHandle(self.regions.len() - 1)
    }

    /// Close a region opened with [`Emitter::region_begin`] at the current
    /// position.
    pub fn region_end(&mut self, h: RegionHandle) {
        assert!(self.regions[h.0].2.is_none(), "region closed twice");
        let m = self.mark();
        self.regions[h.0].2 = Some(m);
    }

    /// Load a 32-bit value into `d` (MOV imm).
    pub fn mov_imm(&mut self, d: Reg, v: u32) {
        self.op(build::mov(d, v));
    }

    /// Load a 64-bit parameter pointer at `param_off` (relative to the
    /// parameter base) into the pair `(d, d+1)`.
    pub fn load_param_ptr(&mut self, d: Reg, param_off: u16) {
        let base = gpusim::PARAM_BASE + param_off;
        self.op(build::mov(d, SrcB::Const(base)));
        self.op(build::mov(d.offset(1), SrcB::Const(base + 4)));
    }

    /// `d = a / divisor` and `m = a % divisor` for a compile-time `divisor`,
    /// exact for `a < 65536` (grid coordinates). Uses the IMAD.HI magic
    /// sequence, or a plain shift for powers of two. `tmp` must differ from
    /// `a`.
    pub fn div_rem_const(&mut self, d: Reg, m: Reg, a: Reg, divisor: u32, tmp: Reg) {
        assert!(divisor > 0);
        assert_ne!(tmp, a);
        if divisor == 1 {
            self.op(build::mov(d, a));
            self.op(build::mov(m, RZ));
            return;
        }
        if divisor.is_power_of_two() {
            let sh = divisor.trailing_zeros() as u8;
            self.op(build::shr(d, a, sh));
            self.op(build::and(m, a, divisor - 1));
            return;
        }
        // q = (a * ceil(2^32/d)) >> 32 — exact for a < 2^16, d < 2^16.
        let magic = ((1u64 << 32).div_ceil(divisor as u64)) as u32;
        self.op(Op::ImadHi {
            d: tmp,
            a,
            b: SrcB::Imm(magic),
            c: RZ,
        });
        self.op(build::mov(d, tmp));
        // m = a - q*d
        self.op(build::imad(tmp, tmp, SrcB::Imm(divisor.wrapping_neg()), a));
        self.op(build::mov(m, tmp));
    }

    /// Finish: patch branches, auto-repair schedule hazards (stall counts
    /// and scoreboard waits, like maxas's auto-scheduling pass — see
    /// `sass::lint::fix_schedule`), derive the register count, and build
    /// the module.
    pub fn build(self, name: &str, smem_bytes: u32, param_bytes: u32) -> Module {
        self.build_with_markers(name, smem_bytes, param_bytes).0
    }

    /// Like [`Emitter::build`], also returning the repaired positions of
    /// every marker registered with [`Emitter::mark`].
    pub fn build_with_markers(
        mut self,
        name: &str,
        smem_bytes: u32,
        param_bytes: u32,
    ) -> (Module, Vec<u32>) {
        for (idx, label) in self.patches.drain(..) {
            let target = self.labels[label].expect("unbound label");
            if let Op::Bra { target: t } = &mut self.insts[idx].op {
                *t = target;
            }
        }
        sass::lint::fix_schedule_marked(&mut self.insts, &mut self.markers);
        (
            Module::new(name, smem_bytes, param_bytes, self.insts),
            self.markers,
        )
    }

    /// Like [`Emitter::build`], also resolving every region opened with
    /// [`Emitter::region_begin`] to repaired instruction-index ranges.
    pub fn build_with_regions(
        self,
        name: &str,
        smem_bytes: u32,
        param_bytes: u32,
    ) -> (Module, Vec<gpusim::Region>) {
        let region_meta: Vec<(String, usize, usize)> = self
            .regions
            .iter()
            .map(|(n, s, e)| {
                (
                    n.clone(),
                    *s,
                    e.unwrap_or_else(|| panic!("region '{n}' never closed")),
                )
            })
            .collect();
        let (module, markers) = self.build_with_markers(name, smem_bytes, param_bytes);
        let regions = region_meta
            .into_iter()
            .map(|(name, s, e)| gpusim::Region {
                name,
                start: markers[s],
                end: markers[e],
            })
            .collect();
        (module, regions)
    }

    /// Emit a decrementing counter loop guard:
    /// `ctr -= step; P = ctr > 0; @P BRA top`.
    pub fn loop_dec(&mut self, ctr: Reg, step: u32, p: Pred, top: Label) {
        self.op(build::iadd3(
            ctr,
            ctr,
            (step as i32).wrapping_neg() as u32,
            RZ,
        ));
        self.opc(
            build::isetp(p, CmpOp::Gt, ctr, 0u32),
            Ctrl::new().with_stall(4),
        );
        self.bra_if(PredGuard::on(p), top).ctrl.stall = 5;
    }
}

impl Default for Emitter {
    fn default() -> Self {
        Self::new()
    }
}

/// Yield-flag placement strategies from §6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum YieldStrategy {
    /// Never clear the yield flag (the paper's winning "Natural" strategy).
    Natural,
    /// Clear the yield flag every 8 float instructions (NVCC's heuristic).
    Nvcc,
    /// Clear the yield flag every 7 float instructions (cuDNN's heuristic).
    Cudnn,
}

impl YieldStrategy {
    /// Period between cleared yield flags (None = never clear).
    pub fn period(self) -> Option<u32> {
        match self {
            YieldStrategy::Natural => None,
            YieldStrategy::Nvcc => Some(8),
            YieldStrategy::Cudnn => Some(7),
        }
    }
}

/// Tracks float-instruction count and applies a yield strategy.
pub struct YieldApplier {
    strategy: YieldStrategy,
    count: u32,
}

impl YieldApplier {
    pub fn new(strategy: YieldStrategy) -> Self {
        YieldApplier { strategy, count: 0 }
    }

    /// Call on each float instruction; returns whether the yield flag should
    /// be *cleared* on it.
    pub fn next_clears(&mut self) -> bool {
        self.count += 1;
        match self.strategy.period() {
            Some(p) => self.count.is_multiple_of(p),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{Gpu, LaunchDims};

    #[test]
    fn div_rem_const_is_exact() {
        for divisor in [1u32, 2, 3, 4, 7, 8, 12, 28, 49, 196, 784] {
            let mut e = Emitter::new();
            e.op(build::s2r(Reg(0), sass::isa::SpecialReg::CtaidX));
            e.div_rem_const(Reg(1), Reg(2), Reg(0), divisor, Reg(3));
            e.load_param_ptr(Reg(4), 0);
            // out[2*ctaid] = q, out[2*ctaid+1] = m.
            e.op(build::shl(Reg(6), Reg(0), 3));
            e.op(build::iadd3(Reg(4), Reg(4), Reg(6), RZ));
            e.op(build::stg(sass::isa::MemWidth::B32, Reg(4), 0, Reg(1)));
            e.op(build::stg(sass::isa::MemWidth::B32, Reg(4), 4, Reg(2)));
            e.op(Op::Exit);
            let m = e.build("divtest", 0, 8);
            let mut gpu = Gpu::new(gpusim::DeviceSpec::v100(), 1 << 22);
            let blocks = 1000u32;
            let out = gpu.alloc(blocks as u64 * 8);
            let params = gpusim::ParamBuilder::new().push_ptr(out).build();
            gpu.launch(&m, LaunchDims::linear(blocks, 1), &params)
                .unwrap();
            for a in (0..blocks).step_by(37) {
                let q = gpu.mem.read_u32(out + a as u64 * 8).unwrap();
                let r = gpu.mem.read_u32(out + a as u64 * 8 + 4).unwrap();
                assert_eq!((q, r), (a / divisor, a % divisor), "a={a} d={divisor}");
            }
        }
    }

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut e = Emitter::new();
        let top = e.label();
        let done = e.label();
        e.mov_imm(Reg(0), 3);
        e.bind(top);
        e.op(build::iadd3(Reg(0), Reg(0), (-1i32) as u32, RZ));
        e.op(build::isetp(Pred(0), CmpOp::Le, Reg(0), 0u32));
        e.bra_if(PredGuard::on(Pred(0)), done);
        e.bra(top);
        e.bind(done);
        e.op(Op::Exit);
        let m = e.build("loop", 0, 0);
        // Branch targets resolved.
        match m.insts[3].op {
            Op::Bra { target } => assert_eq!(target, 5),
            ref o => panic!("{o:?}"),
        }
        match m.insts[4].op {
            Op::Bra { target } => assert_eq!(target, 1),
            ref o => panic!("{o:?}"),
        }
        let mut gpu = Gpu::new(gpusim::DeviceSpec::v100(), 1 << 16);
        gpu.launch(&m, LaunchDims::linear(1, 32), &[]).unwrap();
    }

    #[test]
    fn yield_applier_periods() {
        let mut y = YieldApplier::new(YieldStrategy::Cudnn);
        let clears: Vec<bool> = (0..14).map(|_| y.next_clears()).collect();
        assert_eq!(clears.iter().filter(|&&c| c).count(), 2);
        assert!(clears[6] && clears[13]);
        let mut y = YieldApplier::new(YieldStrategy::Natural);
        assert!((0..100).all(|_| !y.next_clears()));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut e = Emitter::new();
        let l = e.label();
        e.bra(l);
        let _ = e.build("bad", 0, 0);
    }
}
