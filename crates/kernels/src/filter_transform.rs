//! The standalone filter-transform (FX) kernel (§4.1).
//!
//! Computes `F̂ = G F Gᵀ` for every `(c, k)` filter tile, reading the
//! `(C, 3, 3, K)` filter array and writing the `(C, 4, 4, K)` transformed
//! array. With `k` innermost in both layouts, a warp processes 32
//! consecutive `k` and every global access is fully coalesced.
//!
//! Each 1-D stage uses 4 float instructions per column/row by factoring the
//! `1/2` rows of `G` through FFMA — 12 + 16 = 28 float instructions per
//! tile, matching the paper's count for the FTF step (§2.1).

use sass::ctrl::Ctrl;
use sass::isa::{build, MemWidth, Op, SrcB};
use sass::reg::{Reg, RZ};
use sass::Module;

use crate::emit::Emitter;

/// Emit the filter-transform kernel for fixed `(C, K)`.
///
/// Launch with 256-thread blocks and `C·K / 256` blocks (the emitter
/// requires `C·K` to be a multiple of 256, which holds for every layer in
/// Table 1).
///
/// Parameters: `filter_in` pointer (CRSK), `filter_out` pointer (CR'S'K).
pub fn emit_filter_transform(c_dim: u32, k_dim: u32) -> Module {
    assert_eq!(
        (c_dim * k_dim) % 256,
        0,
        "filter transform requires C*K to be a multiple of 256"
    );
    let mut e = Emitter::new();

    // Registers:
    //   R0  tid, R1 ctaid, R2:R3 input ptr, R4:R5 output ptr
    //   R6  global (c,k) linear index, R7 scratch
    //   R8..R16   f (3×3 input tile)
    //   R20..R31  G·f (4×3)
    //   R32..R47  (G·f)·Gᵀ (4×4 output tile)
    let f = |r: usize, s: usize| Reg(8 + (r * 3 + s) as u8);
    let gf = |r: usize, s: usize| Reg(20 + (r * 3 + s) as u8);
    let out = |r: usize, s: usize| Reg(32 + (r * 4 + s) as u8);

    e.op(build::s2r(Reg(0), sass::isa::SpecialReg::TidX));
    e.op(build::s2r(Reg(1), sass::isa::SpecialReg::CtaidX));
    e.load_param_ptr(Reg(2), 0);
    e.load_param_ptr(Reg(4), 8);
    // linear = ctaid*256 + tid; c = linear / K, k = linear % K.
    e.op(build::imad(Reg(6), Reg(1), 256u32, Reg(0)));
    e.div_rem_const(Reg(48), Reg(49), Reg(6), k_dim, Reg(7));
    // in  += (c*9*K + k)*4 ; out += (c*16*K + k)*4
    e.op(build::imad(Reg(50), Reg(48), 9 * k_dim, Reg(49)));
    e.op(build::imad_wide(Reg(2), Reg(50), 4u32, Reg(2)));
    e.op(build::imad(Reg(51), Reg(48), 16 * k_dim, Reg(49)));
    e.op(build::imad_wide(Reg(4), Reg(51), 4u32, Reg(4)));

    // Load the 9 filter elements; offsets are (r*3+s)*K*4.
    for r in 0..3 {
        for s in 0..3 {
            let off = ((r * 3 + s) as u32 * k_dim * 4) as i32;
            e.opc(
                build::ldg(MemWidth::B32, f(r, s), Reg(2), off),
                Ctrl::new().with_write_bar(0).with_stall(1),
            );
        }
    }

    // Columns: Gf[.][s] from f[.][s] — 4 float ops per column.
    // gf0 = f0; gf1 = 0.5(f0+f1+f2); gf2 = 0.5(f0-f1+f2); gf3 = f2.
    let half = SrcB::imm_f32(0.5);
    let neg_half = SrcB::imm_f32(-0.5);
    for s in 0..3 {
        let ctrl = if s == 0 {
            Ctrl::new().with_wait_mask(0b1).with_stall(4)
        } else {
            Ctrl::new().with_stall(4)
        };
        // t = f0 + f2 (into gf0 temporarily is wrong — gf0 = f0; use R7).
        e.opc(build::fadd(Reg(7), f(0, s), f(2, s)), ctrl);
        e.op(build::fmul(Reg(7), Reg(7), half)); // t = 0.5(f0+f2)
        e.op(Op::Ffma {
            d: gf(1, s),
            a: f(1, s),
            b: half,
            c: Reg(7),
            neg_b: false,
            neg_c: false,
        });
        e.op(Op::Ffma {
            d: gf(2, s),
            a: f(1, s),
            b: neg_half,
            c: Reg(7),
            neg_b: false,
            neg_c: false,
        });
        e.op(build::mov(gf(0, s), f(0, s)));
        e.op(build::mov(gf(3, s), f(2, s)));
    }

    // Rows: out[r][.] from gf[r][.] — 4 float ops per row.
    for r in 0..4 {
        e.opc(
            build::fadd(Reg(7), gf(r, 0), gf(r, 2)),
            Ctrl::new().with_stall(4),
        );
        e.op(build::fmul(Reg(7), Reg(7), half));
        e.op(Op::Ffma {
            d: out(r, 1),
            a: gf(r, 1),
            b: half,
            c: Reg(7),
            neg_b: false,
            neg_c: false,
        });
        e.op(Op::Ffma {
            d: out(r, 2),
            a: gf(r, 1),
            b: neg_half,
            c: Reg(7),
            neg_b: false,
            neg_c: false,
        });
        e.op(build::mov(out(r, 0), gf(r, 0)));
        e.op(build::mov(out(r, 3), gf(r, 2)));
    }

    // Store the 16 transformed elements at offsets e*K*4.
    for el in 0..16 {
        let (r, s) = (el / 4, el % 4);
        let off = (el as u32 * k_dim * 4) as i32;
        let ctrl = if el == 0 {
            Ctrl::new().with_stall(4)
        } else {
            Ctrl::new().with_stall(1)
        };
        e.opc(build::stg(MemWidth::B32, Reg(4), off, out(r, s)), ctrl);
    }
    e.opc(Op::Exit, Ctrl::new().with_stall(5));

    let _ = RZ;
    e.build("winograd_filter_transform", 0, 16)
}

/// Host-side helper: transformed-filter element count for `(C, K)`.
pub fn transformed_filter_len(c_dim: u32, k_dim: u32) -> usize {
    (c_dim * 16 * k_dim) as usize
}

/// Output-tile extent of the transform this kernel computes: `F(2×2,3×3)`
/// maps each 3×3 filter tile to a 4×4 transformed tile.
pub const TRANSFORM_TILE: u32 = 4;

/// Content address of a hoisted transformed filter: a pure function of the
/// transform tile extent, the `(C, K)` shape, and the exact bit patterns of
/// the CRSK filter data. The network runtime's transform cache keys on this,
/// so changing any filter byte — or switching to a different transform tile
/// — invalidates the cached `F̂` rather than silently reusing it.
pub fn transform_cache_key(c_dim: u32, k_dim: u32, tile: u32, filter: &[f32]) -> gpusim::Digest {
    assert_eq!(
        filter.len(),
        (c_dim * 9 * k_dim) as usize,
        "filter must be the CRSK array for (C, K)"
    );
    let mut d = gpusim::Digest::new();
    d.str("kernels/filter-transform-cache/v1");
    d.u32(tile).u32(c_dim).u32(k_dim);
    for &v in filter {
        d.u32(v.to_bits());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{Gpu, LaunchDims, ParamBuilder};
    use tensor::XorShiftRng;

    /// Host reference: G f Gᵀ for one 3×3 tile.
    fn host_gfgt(f: &[f32; 9]) -> [f32; 16] {
        let g: [[f32; 3]; 4] = [
            [1.0, 0.0, 0.0],
            [0.5, 0.5, 0.5],
            [0.5, -0.5, 0.5],
            [0.0, 0.0, 1.0],
        ];
        let mut gf = [[0.0f32; 3]; 4];
        for i in 0..4 {
            for j in 0..3 {
                for k in 0..3 {
                    gf[i][j] += g[i][k] * f[k * 3 + j];
                }
            }
        }
        let mut out = [0.0f32; 16];
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..3 {
                    out[i * 4 + j] += gf[i][k] * g[j][k];
                }
            }
        }
        out
    }

    #[test]
    fn transforms_match_host_reference() {
        let (c_dim, k_dim) = (4u32, 64u32);
        let m = emit_filter_transform(c_dim, k_dim);
        assert!(m.info.num_regs <= 64, "regs {}", m.info.num_regs);
        let mut rng = XorShiftRng::new(77);
        // CRSK layout: [(c,r,s,k)] = idx ((c*3+r)*3+s)*K + k.
        let n_in = (c_dim * 9 * k_dim) as usize;
        let filt: Vec<f32> = (0..n_in).map(|_| rng.gen_range(-1.0, 1.0)).collect();
        let mut gpu = Gpu::new(gpusim::DeviceSpec::v100(), 1 << 24);
        let fin = gpu.alloc_upload_f32(&filt);
        let fout = gpu.alloc(transformed_filter_len(c_dim, k_dim) as u64 * 4);
        let params = ParamBuilder::new().push_ptr(fin).push_ptr(fout).build();
        let blocks = c_dim * k_dim / 256;
        gpu.launch(&m, LaunchDims::linear(blocks, 256), &params)
            .unwrap();
        let got = gpu
            .mem
            .download_f32(fout, transformed_filter_len(c_dim, k_dim))
            .unwrap();
        for c in 0..c_dim as usize {
            for k in (0..k_dim as usize).step_by(17) {
                let mut tile = [0.0f32; 9];
                for e in 0..9 {
                    tile[e] = filt[(c * 9 + e) * k_dim as usize + k];
                }
                let want = host_gfgt(&tile);
                for e in 0..16 {
                    let g = got[(c * 16 + e) * k_dim as usize + k];
                    assert!(
                        (g - want[e]).abs() < 1e-5,
                        "c={c} k={k} e={e}: {g} vs {}",
                        want[e]
                    );
                }
            }
        }
    }

    #[test]
    fn timing_run_is_memory_bound() {
        // The FTF step is memory-bound per the paper's roofline (Fig. 2).
        let (c_dim, k_dim) = (256u32, 256u32);
        let m = emit_filter_transform(c_dim, k_dim);
        let mut gpu = Gpu::new(gpusim::DeviceSpec::v100(), 1 << 26);
        let fin = gpu.alloc((c_dim * 9 * k_dim) as u64 * 4);
        let fout = gpu.alloc(transformed_filter_len(c_dim, k_dim) as u64 * 4);
        let params = ParamBuilder::new().push_ptr(fin).push_ptr(fout).build();
        let blocks = c_dim * k_dim / 256;
        let t = gpusim::timing::time_kernel(
            &mut gpu,
            &m,
            LaunchDims::linear(blocks, 256),
            &params,
            gpusim::TimingOptions::default(),
        )
        .unwrap();
        // FP32 utilization should be low; traffic should be ≥ in+out bytes.
        assert!(t.sol_pct < 50.0, "sol {}", t.sol_pct);
        let min_bytes = ((c_dim * 9 + c_dim * 16) * k_dim) as u64 * 4;
        assert!(t.dram_bytes >= min_bytes, "{} < {min_bytes}", t.dram_bytes);
    }

    #[test]
    #[should_panic(expected = "multiple of 256")]
    fn rejects_ragged_shapes() {
        let _ = emit_filter_transform(3, 100);
    }

    #[test]
    fn cache_key_tracks_contents_shape_and_tile() {
        let (c_dim, k_dim) = (2u32, 8u32);
        let filt: Vec<f32> = (0..(c_dim * 9 * k_dim) as usize)
            .map(|i| i as f32 * 0.25)
            .collect();
        let base = transform_cache_key(c_dim, k_dim, TRANSFORM_TILE, &filt).hex();
        // Deterministic.
        assert_eq!(
            base,
            transform_cache_key(c_dim, k_dim, TRANSFORM_TILE, &filt).hex()
        );
        // Any filter bit moves the key — including sign-of-zero flips that
        // compare equal as floats.
        let mut flipped = filt.clone();
        flipped[0] = -0.0;
        assert_ne!(
            base,
            transform_cache_key(c_dim, k_dim, TRANSFORM_TILE, &flipped).hex()
        );
        // Tile extent moves the key.
        assert_ne!(
            base,
            transform_cache_key(c_dim, k_dim, TRANSFORM_TILE + 2, &filt).hex()
        );
        // Shape moves the key even over identical bytes (C/K swap).
        assert_ne!(
            base,
            transform_cache_key(k_dim, c_dim, TRANSFORM_TILE, &filt).hex()
        );
    }
}
