//! Tiled (batched) SGEMM kernel — the compute core of the GEMM-based
//! convolution baselines (cuDNN `GEMM` / `IMPLICIT_PRECOMP_GEMM`) and of the
//! non-fused Winograd pipeline's batched-matrix-multiply phase (§7.3).
//!
//! Computes `C[b] = Aᵀ[b] × B[b]` per batch `b`, where `A` is stored
//! transposed (`Kd × M`, row-major) and `B` is `Kd × N` — both therefore
//! load fully coalesced, the same trick the Winograd kernel's CRSK filter
//! layout uses. Tile: 64 (M) × 128 (N) output per 256-thread block, `Kd`
//! consumed in steps of 8 through shared memory, 4×8 accumulators per
//! thread with double-buffered fragments — a maxas-style SGEMM whose
//! shared-memory traffic per FFMA leaves the MIO pipe ~75% free.

use sass::ctrl::Ctrl;
use sass::isa::{build, CmpOp, Instruction, MemWidth, Op, PredGuard, SrcB};
use sass::reg::{Pred, Reg, RZ};
use sass::Module;

use crate::emit::Emitter;

/// Configuration: problem sizes are compile-time like all our kernels.
#[derive(Clone, Copy, Debug)]
pub struct GemmConfig {
    /// Rows of C (= columns of the transposed A input).
    pub m: u32,
    /// Columns of C.
    pub n: u32,
    /// Reduction depth.
    pub kd: u32,
    /// Number of independent GEMMs (grid.z); 1 for a plain GEMM.
    pub batches: u32,
    /// Extra integer instructions per global B load, modelling cuDNN's
    /// IMPLICIT_GEMM which recomputes im2col indices on the fly (0 for the
    /// precomputed-offset variant).
    pub extra_index_ops: u32,
}

impl GemmConfig {
    pub fn new(m: u32, n: u32, kd: u32) -> Self {
        GemmConfig {
            m,
            n,
            kd,
            batches: 1,
            extra_index_ops: 0,
        }
    }

    pub fn batched(mut self, b: u32) -> Self {
        self.batches = b;
        self
    }

    pub fn validate(&self) {
        assert_eq!(self.m % 64, 0, "M must be a multiple of 64");
        assert_eq!(self.n % 128, 0, "N must be a multiple of 128");
        assert_eq!(self.kd % 8, 0, "Kd must be a multiple of 8");
        assert!(self.batches >= 1);
    }

    /// FLOPs of the whole launch.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.kd as f64 * self.batches as f64
    }
}

/// The emitted GEMM kernel plus launch metadata.
pub struct GemmKernel {
    pub module: Module,
    pub config: GemmConfig,
    /// Main-loop instruction range for region timing.
    pub region: (u32, u32),
}

// Register map:
//   R0..31   accumulators (4 rows × 8 cols)
//   R32..55  fragments, double-buffered: per buffer A rows (4) + B cols (8)
//   R56..57  A staging (LDG.64), R60..63 B staging (LDG.128)
//   R64.. addresses and scratch
fn racc(i: u32, j: u32) -> Reg {
    Reg((i * 8 + j) as u8)
}
fn rfrag_a(buf: u32, i: u32) -> Reg {
    Reg((32 + buf * 12 + i) as u8)
}
fn rfrag_b(buf: u32, j: u32) -> Reg {
    Reg((32 + buf * 12 + 4 + j) as u8)
}
const PF_A: u8 = 56; // 2 regs (LDG.64)
const PF_B: u8 = 60; // 4 regs (LDG.128)
const R_APTR: u8 = 64;
const R_BPTR: u8 = 66;
const R_ASTS: u8 = 68;
const R_BSTS: u8 = 69;
const R_ALDS: u8 = 70;
const R_BLDS: u8 = 71;
const R_CTR: u8 = 72;
const R_T0: u8 = 73;
const R_T1: u8 = 74;

const P_MORE: Pred = Pred(6);
const P_LOOP: Pred = Pred(5);

/// Shared memory: As[8][64] then Bs[8][128] (6 KiB total).
const SMEM_B_BASE: u32 = 8 * 64 * 4;
const SMEM_TOTAL: u32 = SMEM_B_BASE + 8 * 128 * 4;

impl GemmKernel {
    /// Emit the kernel. Parameters: `A` (Kd×M, i.e. transposed), `B`
    /// (Kd×N), `C` (M×N), all row-major f32; grid
    /// `(N/128, M/64, batches)` × 256 threads.
    pub fn emit(cfg: GemmConfig) -> GemmKernel {
        cfg.validate();
        let mut e = Emitter::new();
        let (m, n, kd) = (cfg.m, cfg.n, cfg.kd);

        let rt = Reg(R_T0);
        let rs = Reg(R_T1);
        // Setup staging in accumulator registers (zeroed afterwards).
        let rtid = Reg(0);
        let r_bx = Reg(1); // n-tile
        let r_by = Reg(2); // m-tile
        let r_bz = Reg(3); // batch
        let r_row = Reg(4); // t/32
        let r_lane = Reg(5); // t%32
        e.op(build::s2r(rtid, sass::isa::SpecialReg::TidX));
        e.op(build::s2r(r_bx, sass::isa::SpecialReg::CtaidX));
        e.op(build::s2r(r_by, sass::isa::SpecialReg::CtaidY));
        e.opc(
            build::s2r(r_bz, sass::isa::SpecialReg::CtaidZ),
            Ctrl::new().with_stall(6),
        );
        e.op(build::and(r_lane, rtid, 31u32));
        e.op(build::shr(r_row, rtid, 5));

        // A ptr: a + 4·(bz·Kd·M + row·M + by·64 + 2·lane).
        e.load_param_ptr(Reg(R_APTR), 0);
        e.op(build::imad(rt, r_bz, kd * m, RZ));
        e.op(build::imad(rt, r_row, m, rt));
        e.op(build::shl(rs, r_lane, 1));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::imad(rs, r_by, 64u32, RZ));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::imad_wide(Reg(R_APTR), rt, 4u32, Reg(R_APTR)));
        // B ptr: b + 4·(bz·Kd·N + row·N + bx·128 + 4·lane).
        e.load_param_ptr(Reg(R_BPTR), 8);
        e.op(build::imad(rt, r_bz, kd * n, RZ));
        e.op(build::imad(rt, r_row, n, rt));
        e.op(build::shl(rs, r_lane, 2));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::imad(rs, r_bx, 128u32, RZ));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::imad_wide(Reg(R_BPTR), rt, 4u32, Reg(R_BPTR)));

        // STS addresses.
        e.op(build::shl(rs, r_lane, 1));
        e.op(build::imad(rt, r_row, 64u32, RZ));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::shl(Reg(R_ASTS), rt, 2));
        e.op(build::shl(rs, r_lane, 2));
        e.op(build::imad(rt, r_row, 128u32, RZ));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::shl(rt, rt, 2));
        e.op(build::iadd3(Reg(R_BSTS), rt, SMEM_B_BASE, RZ));

        // LDS bases. Warp (wr, wc) = (w%2, w/2); lane → r4 = l%8, c8 = l/8.
        // A rows = wr·32 + r4·4 ; B cols = wc·32 + c8·8.
        let r_wp = Reg(6);
        e.op(build::shr(r_wp, rtid, 5));
        e.op(build::and(rt, r_wp, 1u32));
        e.op(build::shl(rt, rt, 5));
        e.op(build::and(rs, r_lane, 7u32));
        e.op(build::shl(rs, rs, 2));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::shl(Reg(R_ALDS), rt, 2));
        e.op(build::shr(rt, r_wp, 1));
        e.op(build::shl(rt, rt, 5));
        e.op(build::shr(rs, r_lane, 3));
        e.op(build::shl(rs, rs, 3));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ));
        e.op(build::shl(rt, rt, 2));
        e.op(build::iadd3(Reg(R_BLDS), rt, SMEM_B_BASE, RZ));

        e.mov_imm(Reg(R_CTR), kd / 8);
        for i in 0..4u32 {
            for j in 0..8u32 {
                e.op(build::mov(racc(i, j), RZ));
            }
        }

        // Prologue: stage block 0.
        for inst in ldg_insts(&cfg, false) {
            e.opc(inst.op, inst.ctrl).guard = inst.guard;
        }

        let region_start = e.mark();
        let loop_top = e.label();
        e.bind(loop_top);
        e.op(build::isetp(P_MORE, CmpOp::Gt, Reg(R_CTR), 1u32));
        e.opc(Op::BarSync, Ctrl::new().with_stall(1));
        // STS staged slivers.
        let mut a_sts = Instruction::new(build::sts(MemWidth::B64, Reg(R_ASTS), 0, Reg(PF_A)));
        a_sts.ctrl = Ctrl::new()
            .with_stall(2)
            .with_read_bar(4)
            .with_wait_mask(0b1100);
        e.opc(a_sts.op, a_sts.ctrl);
        let mut b_sts = Instruction::new(build::sts(MemWidth::B128, Reg(R_BSTS), 0, Reg(PF_B)));
        b_sts.ctrl = Ctrl::new().with_stall(2).with_read_bar(4);
        e.opc(b_sts.op, b_sts.ctrl);
        // Advance pointers: 8 rows.
        e.op(build::iadd3(Reg(R_APTR), Reg(R_APTR), 8 * m * 4, RZ));
        e.op(build::iadd3(Reg(R_BPTR), Reg(R_BPTR), 8 * n * 4, RZ));
        e.opc(Op::BarSync, Ctrl::new().with_stall(1));

        // Inner: 8 sub-iterations, fragments double-buffered.
        for inst in lds_insts(0, 0) {
            e.opc(inst.op, inst.ctrl);
        }
        let mut prefetch: Vec<Instruction> = ldg_insts(&cfg, true);
        let mut pf = prefetch.drain(..);
        for i in 0..8u32 {
            let buf = i % 2;
            let mut lds = if i < 7 {
                lds_insts(i + 1, buf ^ 1)
            } else {
                Vec::new()
            };
            let mut lds = lds.drain(..);
            let mut count = 0u32;
            for a in 0..4u32 {
                for b in 0..8u32 {
                    let mut inst = Instruction::new(build::ffma(
                        racc(a, b),
                        rfrag_a(buf, a),
                        rfrag_b(buf, b),
                        racc(a, b),
                    ));
                    // The A-row operand repeats across the 8 columns.
                    inst.ctrl = inst.ctrl.reuse_slot(0);
                    if count == 0 {
                        inst.ctrl.wait_mask |= 0b11;
                    }
                    e.opc(inst.op, inst.ctrl);
                    count += 1;
                    if count.is_multiple_of(8) {
                        if let Some(l) = lds.next() {
                            e.opc(l.op, l.ctrl);
                        }
                    }
                    if count % 8 == 4 {
                        if let Some(p) = pf.next() {
                            e.opc(p.op, p.ctrl).guard = p.guard;
                        }
                    }
                }
            }
            for l in lds {
                e.opc(l.op, l.ctrl);
            }
        }
        for p in pf {
            e.opc(p.op, p.ctrl).guard = p.guard;
        }
        e.loop_dec(Reg(R_CTR), 1, P_LOOP, loop_top);
        let region_end = e.mark();

        // Epilogue: C[by·64 + a_row][bx·128 + b_col] from accumulators.
        // Staging uses the (now dead) fragment registers — the accumulators
        // must stay untouched until their STG.
        let r_cptr = Reg(R_APTR); // reuse
        let (rtid, r_bx, r_by, r_bz, r_wp, r_lane) =
            (Reg(32), Reg(33), Reg(34), Reg(35), Reg(36), Reg(37));
        e.op(build::s2r(rtid, sass::isa::SpecialReg::TidX));
        e.op(build::s2r(r_bx, sass::isa::SpecialReg::CtaidX));
        e.op(build::s2r(r_by, sass::isa::SpecialReg::CtaidY));
        e.opc(
            build::s2r(r_bz, sass::isa::SpecialReg::CtaidZ),
            Ctrl::new().with_stall(6),
        );
        e.op(build::shr(r_wp, rtid, 5));
        e.op(build::and(r_lane, rtid, 31u32));
        // a_off = (w&1)·32 + (l%8)·4 ; b_off = (w>>1)·32 + (l/8)·8.
        let r_aoff = Reg(38); // dead fragment register
        e.op(build::and(rt, r_wp, 1u32));
        e.op(build::shl(rt, rt, 5));
        e.op(build::and(rs, r_lane, 7u32));
        e.op(build::shl(rs, rs, 2));
        e.op(build::iadd3(r_aoff, rt, SrcB::Reg(rs), RZ)); // a_off
        e.op(build::shr(rt, r_wp, 1));
        e.op(build::shl(rt, rt, 5));
        e.op(build::shr(rs, r_lane, 3));
        e.op(build::shl(rs, rs, 3));
        e.op(build::iadd3(rt, rt, SrcB::Reg(rs), RZ)); // b_off in rt
                                                       // elem = (bz·M + by·64 + a_off)·N + bx·128 + b_off.
        e.op(build::imad(rs, r_bz, m, RZ));
        e.op(build::imad(rs, r_by, 64u32, rs));
        e.op(build::iadd3(rs, rs, SrcB::Reg(r_aoff), RZ));
        e.op(build::imad(rs, rs, n, RZ));
        e.op(build::iadd3(rs, rs, SrcB::Reg(rt), RZ));
        e.op(build::imad(rt, r_bx, 128u32, RZ));
        e.op(build::iadd3(rs, rs, SrcB::Reg(rt), RZ));
        e.load_param_ptr(r_cptr, 16);
        e.opc(
            build::imad_wide(r_cptr, rs, 4u32, r_cptr),
            Ctrl::new().with_stall(6),
        );
        for a in 0..4u32 {
            let off = (a * n * 4) as i32;
            e.opc(
                build::stg(MemWidth::B128, r_cptr, off, racc(a, 0)),
                Ctrl::new().with_stall(2),
            );
            e.opc(
                build::stg(MemWidth::B128, r_cptr, off + 16, racc(a, 4)),
                Ctrl::new().with_stall(2),
            );
        }
        e.opc(Op::Exit, Ctrl::new().with_stall(5));

        let (module, markers) = e.build_with_markers("sgemm_tn_64x128", SMEM_TOTAL, 24);
        GemmKernel {
            module,
            config: cfg,
            region: (markers[region_start], markers[region_end]),
        }
    }

    pub fn launch_dims(&self) -> gpusim::LaunchDims {
        let c = &self.config;
        gpusim::LaunchDims::new([c.n / 128, c.m / 64, c.batches], [256, 1, 1])
    }

    pub fn params(&self, a: u64, b: u64, c: u64) -> Vec<u8> {
        gpusim::ParamBuilder::new()
            .push_ptr(a)
            .push_ptr(b)
            .push_ptr(c)
            .build()
    }
}

/// Staging loads for one 8-row block: one LDG.64 of A (row t/32, columns
/// 2·(t%32)) and one LDG.128 of B (columns 4·(t%32)) per thread — 256
/// threads cover the 8×64 and 8×128 tiles exactly. `extra_index_ops`
/// IADD3s per B load model IMPLICIT_GEMM's index recomputation.
fn ldg_insts(cfg: &GemmConfig, guarded: bool) -> Vec<Instruction> {
    let mut v = Vec::new();
    let guard = if guarded {
        PredGuard::on(P_MORE)
    } else {
        PredGuard::always()
    };
    let mut a0 = Instruction::new(build::ldg(MemWidth::B64, Reg(PF_A), Reg(R_APTR), 0))
        .with_guard(guard)
        .with_ctrl(Ctrl::new().with_write_bar(2).with_stall(1));
    a0.ctrl.wait_mask |= 1 << 4; // WAR vs STS of the previous block
    v.push(a0);
    for _ in 0..cfg.extra_index_ops {
        v.push(Instruction::new(build::iadd3(
            Reg(R_T1),
            Reg(R_T1),
            1u32,
            RZ,
        )));
    }
    v.push(
        Instruction::new(build::ldg(MemWidth::B128, Reg(PF_B), Reg(R_BPTR), 0))
            .with_guard(guard)
            .with_ctrl(Ctrl::new().with_write_bar(3).with_stall(1)),
    );
    v
}

/// Fragment loads for sub-iteration `i` into buffer `buf`: one LDS.128 of
/// A rows and two of B columns.
fn lds_insts(i: u32, buf: u32) -> Vec<Instruction> {
    let a_off = (i * 64 * 4) as i32;
    let b_off = (i * 128 * 4) as i32;
    vec![
        Instruction::new(build::lds(
            MemWidth::B128,
            rfrag_a(buf, 0),
            Reg(R_ALDS),
            a_off,
        ))
        .with_ctrl(Ctrl::new().with_write_bar(0).with_stall(1)),
        Instruction::new(build::lds(
            MemWidth::B128,
            rfrag_b(buf, 0),
            Reg(R_BLDS),
            b_off,
        ))
        .with_ctrl(Ctrl::new().with_write_bar(1).with_stall(1)),
        Instruction::new(build::lds(
            MemWidth::B128,
            rfrag_b(buf, 4),
            Reg(R_BLDS),
            b_off + 16,
        ))
        .with_ctrl(Ctrl::new().with_write_bar(1).with_stall(1)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{DeviceSpec, Gpu};
    use tensor::XorShiftRng;

    fn host_gemm_tn(m: usize, n: usize, kd: usize, at: &[f32], b: &[f32]) -> Vec<f32> {
        // at is Kd×M; result M×N.
        let mut c = vec![0.0f32; m * n];
        for kk in 0..kd {
            for i in 0..m {
                let a = at[kk * m + i];
                for j in 0..n {
                    c[i * n + j] += a * b[kk * n + j];
                }
            }
        }
        c
    }

    fn run(cfg: GemmConfig, seed: u64) {
        let (m, n, kd, bt) = (
            cfg.m as usize,
            cfg.n as usize,
            cfg.kd as usize,
            cfg.batches as usize,
        );
        let mut rng = XorShiftRng::new(seed);
        let at: Vec<f32> = (0..bt * kd * m).map(|_| rng.gen_range(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..bt * kd * n).map(|_| rng.gen_range(-1.0, 1.0)).collect();
        let kern = GemmKernel::emit(cfg);
        assert!(
            kern.module.info.num_regs <= 80,
            "regs {}",
            kern.module.info.num_regs
        );
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 28);
        let da = gpu.alloc_upload_f32(&at);
        let db = gpu.alloc_upload_f32(&b);
        let dc = gpu.alloc((bt * m * n) as u64 * 4);
        gpu.launch_parallel(&kern.module, kern.launch_dims(), &kern.params(da, db, dc))
            .unwrap_or_else(|e| panic!("gemm failed: {e}"));
        let got = gpu.mem.download_f32(dc, bt * m * n).unwrap();
        for bi in 0..bt {
            let want = host_gemm_tn(
                m,
                n,
                kd,
                &at[bi * kd * m..(bi + 1) * kd * m],
                &b[bi * kd * n..(bi + 1) * kd * n],
            );
            let rep = tensor::compare(&want, &got[bi * m * n..(bi + 1) * m * n], 1e-3, 1e-3);
            assert_eq!(rep.num_bad, 0, "batch {bi}: {rep}");
        }
    }

    #[test]
    fn gemm_64x128x8() {
        run(GemmConfig::new(64, 128, 8), 1);
    }

    #[test]
    fn gemm_rectangular() {
        run(GemmConfig::new(128, 256, 32), 2);
    }

    #[test]
    fn gemm_batched() {
        run(GemmConfig::new(64, 128, 16).batched(3), 3);
    }

    #[test]
    fn gemm_deep_reduction() {
        run(GemmConfig::new(64, 128, 256), 4);
    }

    #[test]
    fn implicit_variant_emits_extra_ops() {
        let plain = GemmKernel::emit(GemmConfig::new(64, 128, 64));
        let mut cfg = GemmConfig::new(64, 128, 64);
        cfg.extra_index_ops = 4;
        let noisy = GemmKernel::emit(cfg);
        assert!(noisy.module.insts.len() > plain.module.insts.len());
        run(cfg, 5); // still correct
    }

    #[test]
    fn gemm_efficiency_near_peak() {
        // The GEMM baseline must run well (cuDNN's GEMM path is highly
        // optimized; Table 2's modest Winograd speedups depend on it).
        // 8 × 30 = 240 blocks = exactly one wave at occupancy 3 on V100.
        let cfg = GemmConfig::new(512, 3840, 512);
        let kern = GemmKernel::emit(cfg);
        let dev = DeviceSpec::v100();
        let mut gpu = Gpu::new(dev.clone(), 1 << 26);
        let da = gpu.alloc((cfg.kd * cfg.m) as u64 * 4);
        let db = gpu.alloc((cfg.kd * cfg.n) as u64 * 4);
        let dc = gpu.alloc((cfg.m * cfg.n) as u64 * 4);
        let t = gpusim::timing::time_kernel(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &kern.params(da, db, dc),
            gpusim::TimingOptions::default(),
        )
        .unwrap();
        let eff = t.tflops / (dev.peak_fp32_flops() / 1e12);
        assert!(eff > 0.55, "GEMM efficiency {eff}");
    }
}
