//! Host-side packing helpers for the §8.3 fp16 kernel path.
//!
//! The fp16 kernel reads f16 data packed two-batches-per-word: a CHWN f32
//! tensor with N batches becomes a CHW×(N/2) array of `half2` words where
//! word `i` holds batches `2i` (low half) and `2i+1` (high half) — which is
//! simply the f16 CHWN array viewed 32 bits at a time. The transformed
//! filter uses *duplicated* half2 (`(f, f)`): the two halves of every
//! register are two batches sharing one filter value.

use sass::half::{f16_to_f32, f32_to_f16, pack_half2};

/// Pack an f32 slice into half2 words (`data.len()` must be even): element
/// pairs `(2i, 2i+1)` share word `i`.
pub fn pack_f16_pairs(data: &[f32]) -> Vec<u32> {
    assert_eq!(
        data.len() % 2,
        0,
        "fp16 packing requires an even element count"
    );
    data.chunks_exact(2)
        .map(|p| pack_half2(p[0], p[1]))
        .collect()
}

/// Unpack half2 words back to f32.
pub fn unpack_f16_pairs(words: &[u32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(words.len() * 2);
    for &w in words {
        out.push(f16_to_f32(w as u16));
        out.push(f16_to_f32((w >> 16) as u16));
    }
    out
}

/// Duplicate each f32 value into both halves of a half2 word (the fp16
/// kernel's transformed-filter format).
pub fn pack_f16_duplicated(data: &[f32]) -> Vec<u32> {
    data.iter()
        .map(|&v| {
            let h = f32_to_f16(v) as u32;
            h | (h << 16)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_round_trip() {
        let v = vec![0.5f32, -1.25, 3.0, 0.0];
        assert_eq!(unpack_f16_pairs(&pack_f16_pairs(&v)), v);
    }

    #[test]
    fn duplicated_filter_format() {
        let w = pack_f16_duplicated(&[1.5]);
        assert_eq!(w[0] & 0xffff, w[0] >> 16);
        assert_eq!(sass::half::f16_to_f32(w[0] as u16), 1.5);
    }

    #[test]
    #[should_panic(expected = "even element count")]
    fn odd_length_rejected() {
        let _ = pack_f16_pairs(&[1.0]);
    }
}
