//! Property tests on the algorithm layer: for random shapes and data, every
//! convolution algorithm agrees with the direct reference; the Winograd
//! transforms satisfy their algebraic identities.
//!
//! Randomized with the workspace's deterministic `XorShiftRng` (the registry
//! is not reachable from the build environment, so `proptest` is off-limits);
//! shapes print on failure for reproduction.

use tensor::{allclose, LayoutKind, Tensor4, XorShiftRng};
use wino_core::transforms::{Mat, Variant};
use wino_core::winograd_host::conv2d_winograd;
use wino_core::{conv2d_direct, ConvProblem};

fn arb_problem(r: &mut XorShiftRng) -> ConvProblem {
    // Host-only shapes (no GPU-path alignment constraints).
    ConvProblem {
        n: 1 + r.gen_index(2),
        c: 1 + r.gen_index(5),
        h: 3 + r.gen_index(9),
        w: 3 + r.gen_index(9),
        k: 1 + r.gen_index(5),
        r: 3,
        s: 3,
        pad: 1,
    }
}

fn random_pair(p: &ConvProblem, seed: u64) -> (Tensor4, Tensor4) {
    (
        Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, seed),
        Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, seed + 1),
    )
}

#[test]
fn winograd_f2_matches_direct() {
    let mut rng = XorShiftRng::new(0xF2F2_0001);
    for case in 0..24 {
        let p = arb_problem(&mut rng);
        let seed = 1 + rng.next_u64() % 1000;
        let (input, filter) = random_pair(&p, seed);
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv2d_winograd(&p, &input, &filter, Variant::F2x2);
        assert!(
            allclose(want.as_slice(), got.as_slice(), 1e-3, 1e-3),
            "case {case}: {p:?} seed {seed}"
        );
    }
}

#[test]
fn winograd_f4_matches_direct() {
    let mut rng = XorShiftRng::new(0xF4F4_0002);
    for case in 0..24 {
        let p = arb_problem(&mut rng);
        let seed = 1 + rng.next_u64() % 1000;
        let (input, filter) = random_pair(&p, seed);
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv2d_winograd(&p, &input, &filter, Variant::F4x4);
        assert!(
            allclose(want.as_slice(), got.as_slice(), 5e-3, 5e-3),
            "case {case}: {p:?} seed {seed}"
        );
    }
}

#[test]
fn gemm_conv_matches_direct() {
    let mut rng = XorShiftRng::new(0x6E77_0003);
    for case in 0..24 {
        let p = arb_problem(&mut rng);
        let seed = 1 + rng.next_u64() % 1000;
        let (input, filter) = random_pair(&p, seed);
        let want = conv2d_direct(&p, &input, &filter);
        let got = wino_core::im2col::conv2d_gemm(&p, &input, &filter);
        assert!(
            allclose(want.as_slice(), got.as_slice(), 1e-3, 1e-3),
            "case {case}: {p:?} seed {seed}"
        );
    }
}

/// The defining Winograd identity on random single tiles:
/// `Aᵀ[(G f Gᵀ) ⊙ (Bᵀ d B)]A == direct 2-D correlation`, all variants.
#[test]
fn tile_identity_holds() {
    let mut seeds = XorShiftRng::new(0x71DE_0004);
    for case in 0..24 {
        let seed = 1 + seeds.next_u64() % 10_000;
        for v in [Variant::F2x2, Variant::F4x4, Variant::F6x6] {
            let tr = v.transform();
            let t = tr.t;
            let mut rng = XorShiftRng::new(seed);
            let d = Mat::new(t, t, (0..t * t).map(|_| rng.gen_range(-1.0, 1.0)).collect());
            let f = Mat::new(3, 3, (0..9).map(|_| rng.gen_range(-1.0, 1.0)).collect());
            let tf = tr.filter_tile(&f);
            let ti = tr.input_tile(&d);
            let mut prod = Mat::zeros(t, t);
            for i in 0..t * t {
                prod.data[i] = tf.data[i] * ti.data[i];
            }
            let out = tr.output_tile(&prod);
            for y in 0..tr.m {
                for x in 0..tr.m {
                    let mut want = 0.0f32;
                    for r in 0..3 {
                        for s in 0..3 {
                            want += d.at(y + r, x + s) * f.at(r, s);
                        }
                    }
                    let tol = 1e-2f32.max(want.abs() * 1e-2);
                    assert!(
                        (out.at(y, x) - want).abs() < tol,
                        "case {case} {v:?} seed {seed} ({y},{x}): {} vs {want}",
                        out.at(y, x)
                    );
                }
            }
        }
    }
}

/// FFT convolution agrees with direct for random pow-2-friendly shapes.
#[test]
fn fft_conv_matches_direct() {
    let mut rng = XorShiftRng::new(0xFF70_0005);
    for case in 0..24 {
        let hw = 4 + rng.gen_index(6);
        let c = 1 + rng.gen_index(3);
        let seed = 1 + rng.next_u64() % 1000;
        let p = ConvProblem {
            n: 1,
            c,
            h: hw,
            w: hw,
            k: 2,
            r: 3,
            s: 3,
            pad: 1,
        };
        let input = Tensor4::random(LayoutKind::Nchw, [1, c, hw, hw], -1.0, 1.0, seed);
        let filter = Tensor4::random(LayoutKind::Kcrs, [2, c, 3, 3], -1.0, 1.0, seed + 1);
        let want = conv2d_direct(&p, &input, &filter);
        let got = wino_core::fft::conv2d_fft(&p, &input, &filter);
        assert!(
            allclose(want.as_slice(), got.as_slice(), 1e-3, 1e-3),
            "case {case}: hw={hw} c={c} seed {seed}"
        );
    }
}

/// The GPU fused kernel agrees with the reference over randomized *aligned*
/// shapes (the kernel's documented constraints: C%8, N%32, K%bk).
#[test]
fn gpu_fused_kernel_matches_direct() {
    let mut rng = XorShiftRng::new(0x6F05_0006);
    for case in 0..6 {
        let c8 = 1 + rng.gen_index(2);
        let hw = 4 + rng.gen_index(5);
        let kb = 1 + rng.gen_index(2);
        let seed = 1 + rng.next_u64() % 100;
        let p = ConvProblem::resnet3x3(32, c8 * 8, hw, kb * 64);
        let (input, filter) = random_pair(&p, seed);
        let want = conv2d_direct(&p, &input, &filter);
        let conv = wino_core::Conv::new(p, gpusim::DeviceSpec::v100());
        let got = conv.run(wino_core::Algo::OursFused, &input, &filter);
        assert!(
            allclose(want.as_slice(), got.output.as_slice(), 1e-3, 1e-3),
            "case {case}: {p:?} seed {seed}"
        );
    }
}
