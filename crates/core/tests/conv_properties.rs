//! Property tests on the algorithm layer: for random shapes and data, every
//! convolution algorithm agrees with the direct reference; the Winograd
//! transforms satisfy their algebraic identities.

use proptest::prelude::*;
use tensor::{allclose, LayoutKind, Tensor4};
use wino_core::transforms::{Mat, Variant};
use wino_core::winograd_host::conv2d_winograd;
use wino_core::{conv2d_direct, ConvProblem};

fn arb_problem() -> impl Strategy<Value = ConvProblem> {
    // Host-only shapes (no GPU-path alignment constraints).
    (1usize..3, 1usize..6, 3usize..12, 3usize..12, 1usize..6).prop_map(|(n, c, h, w, k)| ConvProblem {
        n,
        c,
        h,
        w,
        k,
        r: 3,
        s: 3,
        pad: 1,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn winograd_f2_matches_direct(p in arb_problem(), seed in 1u64..1000) {
        let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, seed);
        let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, seed + 1);
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv2d_winograd(&p, &input, &filter, Variant::F2x2);
        prop_assert!(allclose(want.as_slice(), got.as_slice(), 1e-3, 1e-3));
    }

    #[test]
    fn winograd_f4_matches_direct(p in arb_problem(), seed in 1u64..1000) {
        let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, seed);
        let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, seed + 1);
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv2d_winograd(&p, &input, &filter, Variant::F4x4);
        prop_assert!(allclose(want.as_slice(), got.as_slice(), 5e-3, 5e-3));
    }

    #[test]
    fn gemm_conv_matches_direct(p in arb_problem(), seed in 1u64..1000) {
        let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, seed);
        let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, seed + 1);
        let want = conv2d_direct(&p, &input, &filter);
        let got = wino_core::im2col::conv2d_gemm(&p, &input, &filter);
        prop_assert!(allclose(want.as_slice(), got.as_slice(), 1e-3, 1e-3));
    }

    /// The defining Winograd identity on random single tiles:
    /// `Aᵀ[(G f Gᵀ) ⊙ (Bᵀ d B)]A == direct 2-D correlation`, all variants.
    #[test]
    fn tile_identity_holds(seed in 1u64..10_000) {
        for v in [Variant::F2x2, Variant::F4x4, Variant::F6x6] {
            let tr = v.transform();
            let t = tr.t;
            let mut rng = tensor::XorShiftRng::new(seed);
            let d = Mat::new(t, t, (0..t * t).map(|_| rng.gen_range(-1.0, 1.0)).collect());
            let f = Mat::new(3, 3, (0..9).map(|_| rng.gen_range(-1.0, 1.0)).collect());
            let tf = tr.filter_tile(&f);
            let ti = tr.input_tile(&d);
            let mut prod = Mat::zeros(t, t);
            for i in 0..t * t {
                prod.data[i] = tf.data[i] * ti.data[i];
            }
            let out = tr.output_tile(&prod);
            for y in 0..tr.m {
                for x in 0..tr.m {
                    let mut want = 0.0f32;
                    for r in 0..3 {
                        for s in 0..3 {
                            want += d.at(y + r, x + s) * f.at(r, s);
                        }
                    }
                    let tol = 1e-2f32.max(want.abs() * 1e-2);
                    prop_assert!(
                        (out.at(y, x) - want).abs() < tol,
                        "{v:?} seed {seed} ({y},{x}): {} vs {want}",
                        out.at(y, x)
                    );
                }
            }
        }
    }

    /// FFT convolution agrees with direct for random pow-2-friendly shapes.
    #[test]
    fn fft_conv_matches_direct(hw in 4usize..10, c in 1usize..4, seed in 1u64..1000) {
        let p = ConvProblem { n: 1, c, h: hw, w: hw, k: 2, r: 3, s: 3, pad: 1 };
        let input = Tensor4::random(LayoutKind::Nchw, [1, c, hw, hw], -1.0, 1.0, seed);
        let filter = Tensor4::random(LayoutKind::Kcrs, [2, c, 3, 3], -1.0, 1.0, seed + 1);
        let want = conv2d_direct(&p, &input, &filter);
        let got = wino_core::fft::conv2d_fft(&p, &input, &filter);
        prop_assert!(allclose(want.as_slice(), got.as_slice(), 1e-3, 1e-3));
    }
}

/// The GPU fused kernel agrees with the reference over randomized *aligned*
/// shapes (the kernel's documented constraints: C%8, N%32, K%bk).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn gpu_fused_kernel_matches_direct(
        c8 in 1usize..3,
        hw in 4usize..9,
        kb in 1usize..3,
        seed in 1u64..100,
    ) {
        let p = ConvProblem::resnet3x3(32, c8 * 8, hw, kb * 64);
        let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, seed);
        let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, seed + 1);
        let want = conv2d_direct(&p, &input, &filter);
        let conv = wino_core::Conv::new(p, gpusim::DeviceSpec::v100());
        let got = conv.run(wino_core::Algo::OursFused, &input, &filter);
        prop_assert!(allclose(want.as_slice(), got.output.as_slice(), 1e-3, 1e-3));
    }
}
