//! Differential tests for the whole-network graph runtime: a [`NetGraph`]
//! executed end to end — under any algorithm mix, with or without the
//! hoisted transform cache, with planner-chosen algorithms — must be
//! bit-exact against the same layers run individually through the
//! per-layer [`Conv::run`] API, and within float tolerance of the host
//! reference chain.

use gpusim::DeviceSpec;
use tensor::{allclose, max_abs_diff, Tensor4};
use wino_core::netgraph::{run_transition, NetNode, TransformCache};
use wino_core::{Algo, AlgoPolicy, Conv, DirectTimer, NetGraph};

/// Run the graph layer by layer through the public per-layer API — the
/// oracle the network runtime must match bit for bit.
fn run_per_layer(
    g: &NetGraph,
    device: &DeviceSpec,
    algos: &[Algo],
    input: &Tensor4,
    filters: &[Tensor4],
) -> Tensor4 {
    let mut cur = input.clone();
    let mut ci = 0;
    for node in &g.nodes {
        match node {
            NetNode::Conv(c) => {
                let conv = Conv::new(c.problem, device.clone());
                cur = conv.run(algos[ci], &cur, &filters[ci]).output;
                ci += 1;
            }
            NetNode::Transition(t) => cur = run_transition(t, &cur),
        }
    }
    cur
}

/// Every execution mode of `g` under `algos` agrees: cache-on ≡ cache-off ≡
/// per-layer, and all are close to the host reference.
fn check_modes(g: &NetGraph, algos: &[Algo], seed: u64) {
    let device = DeviceSpec::v100();
    let input = g.random_input(seed);
    let filters = g.random_filters(seed.wrapping_add(1));

    let per_layer = run_per_layer(g, &device, algos, &input, &filters);
    let no_cache = g.execute(&device, algos, &input, &filters, None);
    assert_eq!(
        per_layer.as_slice(),
        no_cache.as_slice(),
        "{}: graph execution diverged from per-layer runs",
        g.name
    );

    let mut cache = TransformCache::new();
    let cached = g.execute(&device, algos, &input, &filters, Some(&mut cache));
    assert_eq!(
        no_cache.as_slice(),
        cached.as_slice(),
        "{}: hoisted transform cache changed the bits",
        g.name
    );
    // A second request over the same weights replays every transform.
    let miss0 = cache.misses;
    let cached2 = g.execute(&device, algos, &input, &filters, Some(&mut cache));
    assert_eq!(cached.as_slice(), cached2.as_slice());
    assert_eq!(cache.misses, miss0, "warm cache must not recompute");

    let reference = g.execute_reference(&input, &filters);
    assert!(
        allclose(cached.as_slice(), reference.as_slice(), 1e-3, 1e-3),
        "{}: network output drifted from host reference (max abs diff {})",
        g.name,
        max_abs_diff(cached.as_slice(), reference.as_slice())
    );
}

#[test]
fn smoke_graph_all_fused() {
    let g = NetGraph::smoke(32);
    check_modes(&g, &vec![Algo::OursFused; g.num_convs()], 101);
}

#[test]
fn smoke_graph_mixed_fused_algos() {
    let g = NetGraph::smoke(32);
    check_modes(
        &g,
        &[Algo::OursFused, Algo::CudnnWinograd, Algo::OursFused],
        202,
    );
}

#[test]
fn pooled_graph_mixed_with_nonfused_and_gemm() {
    // A pooling transition into a 4×4 stage exercised by host and GPU
    // baselines alongside the fused kernel.
    let g = NetGraph::new("pool-mix", 32, 32, 8)
        .conv_named("A", 64)
        .transition(64, 4)
        .conv_named("B", 64)
        .conv_named("C", 64);
    check_modes(
        &g,
        &[
            Algo::OursFused,
            Algo::WinogradNonfused,
            Algo::ImplicitPrecompGemm,
        ],
        303,
    );
}

#[test]
fn planner_selected_mix_matches_per_layer() {
    // The algorithms the planner actually picks (Auto and Baseline) run
    // through the same differential gauntlet, and the plan's invariants
    // hold.
    let g = NetGraph::smoke(32);
    let device = DeviceSpec::v100();
    for policy in [AlgoPolicy::Auto, AlgoPolicy::Baseline] {
        let plan = g.plan(&device, policy, &DirectTimer);
        plan.validate().unwrap();
        let algos: Vec<Algo> = plan.choices.iter().map(|c| c.algo).collect();
        check_modes(&g, &algos, 404);
        if policy == AlgoPolicy::Baseline {
            assert!(
                algos.iter().all(|&a| a != Algo::OursFused),
                "baseline policy must not pick the paper's kernel"
            );
        }
    }
}

#[test]
fn cache_shared_across_batches_and_graphs() {
    // One cache serving two batch sizes of the same network: the filter
    // transform is batch-independent, so the second graph gets pure hits
    // and still matches its own uncached run bit for bit.
    let device = DeviceSpec::v100();
    let g32 = NetGraph::smoke(32);
    let g64 = NetGraph::smoke(64);
    let filters = g32.random_filters(7);
    let algos = vec![Algo::OursFused; g32.num_convs()];
    let mut cache = TransformCache::new();

    let in32 = g32.random_input(8);
    g32.execute(&device, &algos, &in32, &filters, Some(&mut cache));
    let misses_after_first = cache.misses;

    let in64 = g64.random_input(9);
    let warm = g64.execute(&device, &algos, &in64, &filters, Some(&mut cache));
    assert_eq!(
        cache.misses, misses_after_first,
        "same weights at a new batch size must hit the hoisted cache"
    );
    let cold = g64.execute(&device, &algos, &in64, &filters, None);
    assert_eq!(warm.as_slice(), cold.as_slice());
}
