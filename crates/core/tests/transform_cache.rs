//! Regression tests for the hoisted filter-transform path: the cached
//! `F̂ = G F Gᵀ` slab must be bit-identical to the transform the fused
//! kernel would compute on the fly, and the content key must move whenever
//! the filter bits, the filter shape, or the transform tile change.

use gpusim::DeviceSpec;
use kernels::filter_transform::{transform_cache_key, TRANSFORM_TILE};
use tensor::{LayoutKind, Tensor4};
use wino_core::netgraph::TransformCache;
use wino_core::{Algo, Conv, ConvProblem};

fn conv(n: usize, c: usize, hw: usize, k: usize) -> Conv {
    Conv::new(ConvProblem::resnet3x3(n, c, hw, k), DeviceSpec::v100())
}

#[test]
fn hoisted_transform_bit_identical_to_on_the_fly() {
    let conv = conv(32, 32, 8, 64);
    let p = conv.problem;
    let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, 1);
    let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 2);
    for algo in [Algo::OursFused, Algo::CudnnWinograd] {
        // On the fly: the public run() transforms and executes in one call.
        let direct = conv.run(algo, &input, &filter).output;
        // Hoisted: transform once, execute on the cached slab — twice, to
        // prove the replay is stable.
        let tf = conv.transform_filter(&filter);
        let hoisted = conv.run_fused_pretransformed(algo, &input, &tf);
        let replayed = conv.run_fused_pretransformed(algo, &input, &tf);
        assert_eq!(
            direct.as_slice(),
            hoisted.as_slice(),
            "{algo:?}: hoisted transform changed the output bits"
        );
        assert_eq!(hoisted.as_slice(), replayed.as_slice());
    }
    // The transform itself is deterministic.
    assert_eq!(
        conv.transform_filter(&filter),
        conv.transform_filter(&filter)
    );
}

#[test]
fn cache_returns_the_exact_transform_bytes() {
    let conv = conv(32, 32, 8, 64);
    let p = conv.problem;
    let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 3);
    let mut cache = TransformCache::new();
    let cached = cache.get_or_insert(&conv, &filter);
    assert_eq!(*cached, conv.transform_filter(&filter));
    assert_eq!((cache.hits, cache.misses), (0, 1));
    // Same filter again: a hit, same Rc contents.
    let again = cache.get_or_insert(&conv, &filter);
    assert_eq!((cache.hits, cache.misses), (1, 1));
    assert_eq!(*cached, *again);
    assert_eq!(cache.len(), 1);
}

#[test]
fn key_invalidates_on_filter_contents() {
    let conv = conv(32, 32, 8, 64);
    let p = conv.problem;
    let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 4);
    let mut perturbed = filter.clone();
    // One ULP-level change to one weight must produce a different key and a
    // fresh transform.
    let old = perturbed.get([0, 0, 0, 0]);
    perturbed.set([0, 0, 0, 0], f32::from_bits(old.to_bits() ^ 1));
    assert_ne!(
        TransformCache::key(&p, &filter),
        TransformCache::key(&p, &perturbed),
        "key must track exact filter bits"
    );
    let mut cache = TransformCache::new();
    cache.get_or_insert(&conv, &filter);
    cache.get_or_insert(&conv, &perturbed);
    assert_eq!(cache.misses, 2, "changed weights must not replay stale F̂");
    assert_eq!(cache.len(), 2);
}

#[test]
fn key_invalidates_on_shape_and_tile() {
    let c = 32u32;
    let k = 64u32;
    let filter = vec![0.5f32; (c * 9 * k) as usize];
    let base = transform_cache_key(c, k, TRANSFORM_TILE, &filter);
    // Transform tile change (e.g. a future F(4×4) fused variant) moves the
    // key even for identical bytes.
    let other_tile = transform_cache_key(c, k, TRANSFORM_TILE + 2, &filter);
    assert_ne!(base.hex(), other_tile.hex());
    // C/K swap with the same flat length moves the key.
    let swapped = transform_cache_key(k, c, TRANSFORM_TILE, &filter);
    assert_ne!(base.hex(), swapped.hex());
    // Deterministic across calls.
    assert_eq!(
        base.hex(),
        transform_cache_key(c, k, TRANSFORM_TILE, &filter).hex()
    );
}
