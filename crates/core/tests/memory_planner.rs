//! Property tests for the live-range memory planner: across hundreds of
//! random request sets, both policies must produce validating plans — no
//! two simultaneously live buffers overlap, every buffer fits its slot,
//! and the arena peak never exceeds the sum of all (aligned) buffers.

use tensor::XorShiftRng;
use wino_core::memplan::{plan_arena, sum_aligned_bytes, ArenaPolicy, BufferReq};
use wino_core::{AlgoPolicy, DirectTimer, NetGraph};

fn random_reqs(rng: &mut XorShiftRng) -> Vec<BufferReq> {
    let n_nodes = 1 + rng.gen_index(12);
    let n_bufs = 1 + rng.gen_index(24);
    (0..n_bufs)
        .map(|i| {
            let first = rng.gen_index(n_nodes);
            let last = first + rng.gen_index(n_nodes - first);
            // Mix zero-sized, tiny (sub-alignment), and multi-KB buffers.
            let bytes = match rng.gen_index(4) {
                0 => 0,
                1 => rng.gen_index(256) as u64,
                _ => (1 + rng.gen_index(64 * 1024)) as u64,
            };
            BufferReq {
                name: format!("buf{i}"),
                bytes,
                first_use: first,
                last_use: last,
            }
        })
        .collect()
}

#[test]
fn random_request_sets_always_validate() {
    let mut rng = XorShiftRng::new(0xC0FFEE);
    for case in 0..200 {
        let reqs = random_reqs(&mut rng);
        let bound = sum_aligned_bytes(&reqs);
        let reuse = plan_arena(&reqs, ArenaPolicy::Reuse);
        let bump = plan_arena(&reqs, ArenaPolicy::NoReuse);
        for plan in [&reuse, &bump] {
            plan.validate(&reqs)
                .unwrap_or_else(|e| panic!("case {case} ({:?}): {e}", plan.policy));
            assert!(
                plan.peak_bytes <= bound,
                "case {case} ({:?}): peak {} above sum-of-buffers {bound}",
                plan.policy,
                plan.peak_bytes
            );
        }
        assert_eq!(bump.peak_bytes, bound, "bump allocation is exactly the sum");
        assert!(
            reuse.peak_bytes <= bump.peak_bytes,
            "case {case}: reuse ({}) must never lose to bump ({})",
            reuse.peak_bytes,
            bump.peak_bytes
        );
    }
}

#[test]
fn planner_is_deterministic() {
    let mut rng = XorShiftRng::new(7);
    for _ in 0..20 {
        let reqs = random_reqs(&mut rng);
        for policy in [ArenaPolicy::Reuse, ArenaPolicy::NoReuse] {
            let a = plan_arena(&reqs, policy);
            let b = plan_arena(&reqs, policy);
            assert_eq!(a.slots, b.slots);
            assert_eq!(a.peak_bytes, b.peak_bytes);
        }
    }
}

#[test]
fn reuse_strictly_beats_no_reuse_on_a_chain() {
    // A pinned layer-chain pattern: each buffer is consumed by the next
    // node, so linear scan folds the chain into two live slots while bump
    // allocation pays for all of them.
    let reqs: Vec<BufferReq> = (0..8)
        .map(|i| BufferReq {
            name: format!("act{i}"),
            bytes: 4096,
            first_use: i,
            last_use: i + 1,
        })
        .collect();
    let reuse = plan_arena(&reqs, ArenaPolicy::Reuse);
    let bump = plan_arena(&reqs, ArenaPolicy::NoReuse);
    reuse.validate(&reqs).unwrap();
    bump.validate(&reqs).unwrap();
    assert!(
        reuse.peak_bytes < bump.peak_bytes,
        "reuse {} must strictly beat bump {}",
        reuse.peak_bytes,
        bump.peak_bytes
    );
    // Exactly: at most 3 chain links overlap pairwise at a node boundary,
    // but linear scan needs only the two live at once plus the newest.
    assert_eq!(bump.peak_bytes, 8 * 4096);
    assert!(reuse.peak_bytes <= 3 * 4096);
}

#[test]
fn network_arena_requests_validate_for_every_policy() {
    // The real producer: arena requests from planned networks (workspaces
    // hoisted and unhoisted) must validate under both policies.
    let device = gpusim::DeviceSpec::v100();
    let g = NetGraph::smoke(32);
    for policy in [AlgoPolicy::Auto, AlgoPolicy::Baseline] {
        let plan = g.plan(&device, policy, &DirectTimer);
        plan.validate().unwrap();
        for hoisted in [true, false] {
            let choices = &plan.choices;
            let reqs = g.arena_requests(choices, hoisted);
            for arena_policy in [ArenaPolicy::Reuse, ArenaPolicy::NoReuse] {
                plan_arena(&reqs, arena_policy).validate(&reqs).unwrap();
            }
        }
    }
}
