//! The public convolution API: every algorithm the paper evaluates, runnable
//! functionally (validated against the direct reference) and timeable on the
//! simulated V100 / RTX 2070.
//!
//! | [`Algo`] | paper name (§7.3) | execution | timing |
//! |---|---|---|---|
//! | `OursFused` | this paper | SASS on simulator | cycle model |
//! | `CudnnWinograd` | `WINOGRAD` (fused, cuDNN-like) | SASS on simulator | cycle model |
//! | `ImplicitPrecompGemm` | `IMPLICIT_PRECOMP_GEMM` | SASS SGEMM on simulator | cycle model |
//! | `ImplicitGemm` | `IMPLICIT_GEMM` | SASS SGEMM + index-recompute ops | cycle model |
//! | `Gemm` | `GEMM` | im2col + SASS SGEMM | cycle model + im2col traffic |
//! | `WinogradNonfused` | `WINOGRAD_NONFUSED` (F(4×4,3×3)) | host transforms + SASS batched GEMM | cycle model + transform traffic |
//! | `Fft` | `FFT` | host FFT convolution | analytic roofline model |
//! | `FftTiling` | `FFT_TILING` (32×32 tiles) | host tiled FFT | analytic roofline model |
//!
//! The analytic components (marked "traffic"/"roofline") cover the
//! memory-bound phases cuDNN runs as separate kernels; DESIGN.md §1
//! documents the substitution.

use gpusim::digest::module_digest;
use gpusim::{
    time_kernel_device, DeviceOptions, DeviceSpec, Digest, Gpu, KernelTiming, LaunchDims,
    ParamBuilder, TimingOptions,
};
use kernels::filter_transform::emit_filter_transform;
use kernels::gemm::{GemmConfig, GemmKernel};
use kernels::{FusedConfig, FusedKernel};
use tensor::{LayoutKind, Tensor4};

use crate::fft::{conv2d_fft, conv2d_fft_tiled, fft_size_full};
use crate::im2col::im2col;
use crate::reference::ConvProblem;
use crate::transforms::Variant;
use crate::winograd_host::NonFusedPipeline;

/// Kernel launch overhead charged per kernel in timing estimates (CUDA
/// event-measured launches cost a few microseconds; matters for Conv5-sized
/// layers).
pub const LAUNCH_OVERHEAD_S: f64 = 3.0e-6;

/// Achievable fraction of peak DRAM bandwidth for the analytically-timed
/// memory-bound phases (strided transform kernels typically sustain
/// 70–80% of peak).
pub const MEM_EFF: f64 = 0.75;

/// The algorithms of Figures 12–14.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    OursFused,
    CudnnWinograd,
    Gemm,
    ImplicitGemm,
    ImplicitPrecompGemm,
    WinogradNonfused,
    Fft,
    FftTiling,
}

impl Algo {
    pub const ALL: [Algo; 8] = [
        Algo::OursFused,
        Algo::CudnnWinograd,
        Algo::Gemm,
        Algo::ImplicitGemm,
        Algo::ImplicitPrecompGemm,
        Algo::WinogradNonfused,
        Algo::Fft,
        Algo::FftTiling,
    ];

    /// cuDNN-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::OursFused => "OURS",
            Algo::CudnnWinograd => "WINOGRAD",
            Algo::Gemm => "GEMM",
            Algo::ImplicitGemm => "IMPLICIT_GEMM",
            Algo::ImplicitPrecompGemm => "IMPLICIT_PRECOMP_GEMM",
            Algo::WinogradNonfused => "WINOGRAD_NONFUSED",
            Algo::Fft => "FFT",
            Algo::FftTiling => "FFT_TILING",
        }
    }
}

/// Timing result for one algorithm on one problem.
#[derive(Clone, Debug)]
pub struct AlgoTiming {
    pub algo: Algo,
    /// Total estimated time, seconds.
    pub time_s: f64,
    /// Effective throughput against *direct-convolution* FLOPs (the usual
    /// "conv TFLOPS" figure of merit).
    pub tflops_effective: f64,
    /// Cycle-model result of the dominant kernel, when one ran.
    pub kernel: Option<KernelTiming>,
    /// Phase breakdown: (label, seconds).
    pub phases: Vec<(String, f64)>,
}

/// Functional output of [`Conv::run`].
pub struct ConvOutput {
    /// NCHW output tensor.
    pub output: Tensor4,
}

/// A convolution bound to a device.
pub struct Conv {
    pub problem: ConvProblem,
    pub device: DeviceSpec,
}

impl Conv {
    pub fn new(problem: ConvProblem, device: DeviceSpec) -> Self {
        assert_eq!(
            (problem.r, problem.s, problem.pad),
            (3, 3, 1),
            "the GPU paths cover 3×3 pad-1 stride-1"
        );
        Conv { problem, device }
    }

    /// Workspace bytes the algorithm needs beyond in/out/filter (Fig. 14).
    pub fn workspace_bytes(&self, algo: Algo) -> u64 {
        let p = &self.problem;
        let (n, c, h, w, k) = (p.n as u64, p.c as u64, p.h as u64, p.w as u64, p.k as u64);
        match algo {
            // 16·K·C transformed filter (§7.3: "a small workspace to hold
            // 16KC transformed filter data").
            Algo::OursFused | Algo::CudnnWinograd => 16 * k * c * 4,
            // Column matrix (C·R·S) × (N·OH·OW).
            Algo::Gemm => c * 9 * n * h * w * 4,
            Algo::ImplicitGemm => 0,
            Algo::ImplicitPrecompGemm => c * 9 * 4, // offset table only
            Algo::WinogradNonfused => NonFusedPipeline::plan(p, Variant::F4x4).workspace_bytes(),
            Algo::Fft => {
                let s = fft_size_full(p) as u64;
                (n * c + k * c + n * k) * s * s * 8
            }
            Algo::FftTiling => {
                let s = 32u64;
                let step = s - 2;
                let tiles = h.div_ceil(step) * w.div_ceil(step);
                (n * c * tiles + k * c + n * k * tiles) * s * s * 8
            }
        }
    }

    /// Run the algorithm functionally. Input NCHW, filter KCRS; output NCHW.
    pub fn run(&self, algo: Algo, input: &Tensor4, filter: &Tensor4) -> ConvOutput {
        let p = &self.problem;
        assert_eq!(input.dims(), [p.n, p.c, p.h, p.w]);
        assert_eq!(filter.dims(), [p.k, p.c, 3, 3]);
        let output = match algo {
            Algo::OursFused | Algo::CudnnWinograd => self.run_fused(algo, input, filter),
            Algo::Gemm | Algo::ImplicitGemm | Algo::ImplicitPrecompGemm => {
                self.run_gemm_based(algo, input, filter)
            }
            Algo::WinogradNonfused => {
                NonFusedPipeline::plan(p, Variant::F4x4).run(p, input, filter)
            }
            Algo::Fft => conv2d_fft(p, input, filter),
            Algo::FftTiling => conv2d_fft_tiled(p, input, filter, 32),
        };
        ConvOutput { output }
    }

    /// Estimate time for the algorithm on the bound device (synthetic data).
    pub fn time(&self, algo: Algo) -> AlgoTiming {
        let p = &self.problem;
        let mut phases: Vec<(String, f64)> = Vec::new();
        let mut kernel: Option<KernelTiming> = None;
        match algo {
            Algo::OursFused | Algo::CudnnWinograd => {
                let (fxt, ft) = self.time_fused(algo);
                phases.push(("filter_transform".into(), fxt + LAUNCH_OVERHEAD_S));
                phases.push(("fused_winograd".into(), ft.time_s + LAUNCH_OVERHEAD_S));
                kernel = Some(ft);
            }
            Algo::ImplicitPrecompGemm | Algo::ImplicitGemm => {
                let t = self.time_gemm_kernel(algo);
                phases.push(("implicit_gemm".into(), t.time_s + LAUNCH_OVERHEAD_S));
                kernel = Some(t);
            }
            Algo::Gemm => {
                // Explicit im2col: a memory-bound expansion pass, then GEMM.
                let col_bytes = (p.c * 9 * p.n * p.h * p.w) as f64 * 4.0;
                let in_bytes = p.input_len() as f64 * 4.0;
                phases.push((
                    "im2col".into(),
                    (in_bytes + col_bytes) / (self.device.dram_bw * MEM_EFF) + LAUNCH_OVERHEAD_S,
                ));
                let t = self.time_gemm_kernel(algo);
                phases.push(("gemm".into(), t.time_s + LAUNCH_OVERHEAD_S));
                kernel = Some(t);
            }
            Algo::WinogradNonfused => {
                let plan = NonFusedPipeline::plan(p, Variant::F4x4);
                // Input transform: read input, write 2.25× expanded data.
                let bw = self.device.dram_bw * MEM_EFF;
                let itf_bytes = (p.input_len() + plan.transformed_input_len) as f64 * 4.0;
                phases.push(("input_transform".into(), itf_bytes / bw + LAUNCH_OVERHEAD_S));
                // Filter transform (usually amortized; charged anyway).
                let ftf_bytes = (p.filter_len() + plan.transformed_filter_len) as f64 * 4.0;
                phases.push((
                    "filter_transform".into(),
                    ftf_bytes / bw + LAUNCH_OVERHEAD_S,
                ));
                // 36-batched GEMM on the simulator.
                let t = self.time_nonfused_gemm();
                phases.push(("batched_gemm".into(), t.time_s + LAUNCH_OVERHEAD_S));
                kernel = Some(t);
                // Output transform: read 36·K·tiles, write output.
                let otf_bytes = (plan.transformed_output_len + p.output_len()) as f64 * 4.0;
                phases.push((
                    "output_transform".into(),
                    otf_bytes / (self.device.dram_bw * MEM_EFF) + LAUNCH_OVERHEAD_S,
                ));
            }
            Algo::Fft => {
                phases = self.fft_phases(fft_size_full(p), 1);
            }
            Algo::FftTiling => {
                let step = 32 - 2;
                let tiles = p.h.div_ceil(step) * p.w.div_ceil(step);
                phases = self.fft_phases(32, tiles);
            }
        }
        let time_s: f64 = phases.iter().map(|(_, t)| t).sum();
        AlgoTiming {
            algo,
            time_s,
            tflops_effective: p.direct_flops() / time_s / 1e12,
            kernel,
            phases,
        }
    }

    // ---- fused Winograd paths ------------------------------------------------

    fn fused_config(&self, algo: Algo) -> FusedConfig {
        let p = &self.problem;
        match algo {
            Algo::OursFused => {
                FusedConfig::ours(p.c as u32, p.h as u32, p.w as u32, p.n as u32, p.k as u32)
            }
            Algo::CudnnWinograd => {
                FusedConfig::cudnn_like(p.c as u32, p.h as u32, p.w as u32, p.n as u32, p.k as u32)
            }
            _ => unreachable!(),
        }
    }

    fn run_fused(&self, algo: Algo, input: &Tensor4, filter: &Tensor4) -> Tensor4 {
        let tf = self.transform_filter(filter);
        self.run_fused_pretransformed(algo, input, &tf)
    }

    /// Run the standalone filter-transform (FX) kernel on the simulated
    /// device: KCRS filter in, `C×4×4×K` transformed array (`F̂ = G F Gᵀ`)
    /// out. This is the data the fused kernels consume; a pure function of
    /// the filter bytes, so the network runtime hoists it behind
    /// `kernels::filter_transform::transform_cache_key` and replays the
    /// result across batches/requests bit-identically.
    pub fn transform_filter(&self, filter: &Tensor4) -> Vec<f32> {
        let p = &self.problem;
        assert_eq!(filter.dims(), [p.k, p.c, 3, 3]);
        let crsk = filter.to_layout(LayoutKind::Crsk);
        let mut gpu = self.gpu_for((crsk.len() + 16 * p.c * p.k) as u64 * 4 + (1 << 20));
        let d_filt = gpu.alloc_upload_f32(crsk.as_slice());
        let d_tf = gpu.alloc((p.c * 16 * p.k) as u64 * 4);
        let fx = emit_filter_transform(p.c as u32, p.k as u32);
        let fx_params = ParamBuilder::new().push_ptr(d_filt).push_ptr(d_tf).build();
        gpu.launch_parallel(
            &fx,
            LaunchDims::linear((p.c * p.k / 256) as u32, 256),
            &fx_params,
        )
        .expect("filter transform kernel");
        gpu.mem.download_f32(d_tf, p.c * 16 * p.k).unwrap()
    }

    /// Fused-path execution from an already-transformed filter (the hoisted
    /// transform-cache path). `tf` must be [`Conv::transform_filter`] output
    /// for this problem's filter; [`Conv::run`] is exactly the composition
    /// of the two, so executing through a transform cache is bit-identical
    /// to the on-the-fly path.
    pub fn run_fused_pretransformed(&self, algo: Algo, input: &Tensor4, tf: &[f32]) -> Tensor4 {
        let p = &self.problem;
        assert!(
            matches!(algo, Algo::OursFused | Algo::CudnnWinograd),
            "pretransformed execution covers the fused algorithms"
        );
        assert_eq!(input.dims(), [p.n, p.c, p.h, p.w]);
        assert_eq!(tf.len(), p.c * 16 * p.k, "transformed filter length");
        let cfg = self.fused_config(algo);
        // Ours reads CHWN (§4.2); the cuDNN-like kernel reads NCHW (§7).
        let chwn = if cfg.input_nchw {
            input.clone()
        } else {
            input.to_layout(LayoutKind::Chwn)
        };
        let mut gpu = self
            .gpu_for((chwn.len() + 16 * p.c * p.k + p.k * p.h * p.w * p.n) as u64 * 4 + (1 << 20));
        let d_in = gpu.alloc_upload_f32(chwn.as_slice());
        let d_tf = gpu.alloc_upload_f32(tf);
        let d_out = gpu.alloc((p.k * p.h * p.w * p.n) as u64 * 4);

        let kern = FusedKernel::emit(cfg);
        let params = kern.params(d_in, d_tf, d_out);
        gpu.launch_parallel(&kern.module, kern.launch_dims(), &params)
            .expect("fused winograd kernel");

        let raw = gpu.mem.download_f32(d_out, p.k * p.h * p.w * p.n).unwrap();
        if cfg.input_nchw {
            // The NCHW-path kernel writes NCHW directly (K = channel axis).
            Tensor4::from_vec(LayoutKind::Nchw, [p.n, p.k, p.h, p.w], raw)
        } else {
            // KHWN → NCHW.
            let mut out = Tensor4::zeros(LayoutKind::Nchw, [p.n, p.k, p.h, p.w]);
            for k in 0..p.k {
                for y in 0..p.h {
                    for x in 0..p.w {
                        for n in 0..p.n {
                            out.set([n, k, y, x], raw[((k * p.h + y) * p.w + x) * p.n + n]);
                        }
                    }
                }
            }
            out
        }
    }

    fn time_fused(&self, algo: Algo) -> (f64, KernelTiming) {
        self.time_fused_opts(algo, false, false)
    }

    /// Fused-kernel timing with the `simprof` per-line stall profile
    /// attached; the emitter's named regions (setup / prologue / main loop /
    /// output transform) are copied into the profile so reports can fold
    /// lines into kernel phases.
    pub fn time_fused_profiled(&self, algo: Algo) -> KernelTiming {
        self.time_fused_opts(algo, true, false).1
    }

    /// Cycle-model timing of the algorithm's dominant kernel with hardware
    /// counters attached (`t.counters` is `Some`; see `gpusim::counters`).
    /// `None` for the analytically-modeled FFT algorithms, which run no
    /// simulated kernel. The timing numbers are bit-identical to the
    /// uncounted run, so this shares its cache digest with [`Conv::time`]
    /// (see `gpusim::digest`).
    pub fn time_counted(&self, algo: Algo) -> Option<KernelTiming> {
        match algo {
            Algo::OursFused | Algo::CudnnWinograd => {
                Some(self.time_fused_opts(algo, false, true).1)
            }
            Algo::Gemm | Algo::ImplicitGemm | Algo::ImplicitPrecompGemm => {
                Some(self.time_gemm_kernel_opts(algo, true))
            }
            Algo::WinogradNonfused => Some(self.time_nonfused_gemm_opts(true)),
            Algo::Fft | Algo::FftTiling => None,
        }
    }

    fn time_fused_opts(&self, algo: Algo, profile: bool, counters: bool) -> (f64, KernelTiming) {
        let p = &self.problem;
        let cfg = self.fused_config(algo);
        let kern = FusedKernel::emit(cfg);
        let mut gpu = self.gpu_for(
            ((p.c * p.h * p.w * p.n + 16 * p.c * p.k + p.k * p.h * p.w * p.n) * 4) as u64
                + (1 << 20),
        );
        let d_in = gpu.alloc((p.c * p.h * p.w * p.n) as u64 * 4);
        let d_filt = gpu.alloc((p.c * 9 * p.k) as u64 * 4);
        let d_tf = gpu.alloc((p.c * 16 * p.k) as u64 * 4);
        let d_out = gpu.alloc((p.k * p.h * p.w * p.n) as u64 * 4);

        let fx = emit_filter_transform(p.c as u32, p.k as u32);
        let fx_params = ParamBuilder::new().push_ptr(d_filt).push_ptr(d_tf).build();
        let fxt = time_kernel_device(
            &mut gpu,
            &fx,
            LaunchDims::linear((p.c * p.k / 256) as u32, 256),
            &fx_params,
            DeviceOptions::default(),
        )
        .expect("filter transform timing");

        let params = kern.params(d_in, d_tf, d_out);
        let mut t = time_kernel_device(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &params,
            DeviceOptions {
                base: TimingOptions {
                    region: Some(kern.region),
                    profile,
                    counters,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("fused kernel timing");
        if let Some(prof) = t.profile.as_mut() {
            prof.regions = kern.regions.clone();
        }
        (fxt.time_s, t)
    }

    /// Fused-kernel timing with the full-device wave timeline attached:
    /// per-SM [`gpusim::WaveSpan`]s the `convbench --trace` export renders
    /// as one Chrome-trace lane per SM. Runs the device model in `exact`
    /// mode so every SM lane is individually simulated (the default mode
    /// would trace only one representative SM per dispatch class); the
    /// timing therefore matches `exact: true`, not the default fast path.
    pub fn time_fused_traced(&self, algo: Algo) -> (KernelTiming, gpusim::DeviceTrace) {
        let p = &self.problem;
        let cfg = self.fused_config(algo);
        let kern = FusedKernel::emit(cfg);
        let mut gpu = self.gpu_for(
            ((p.c * p.h * p.w * p.n + 16 * p.c * p.k + p.k * p.h * p.w * p.n) * 4) as u64
                + (1 << 20),
        );
        let d_in = gpu.alloc((p.c * p.h * p.w * p.n) as u64 * 4);
        let _d_filt = gpu.alloc((p.c * 9 * p.k) as u64 * 4);
        let d_tf = gpu.alloc((p.c * 16 * p.k) as u64 * 4);
        let d_out = gpu.alloc((p.k * p.h * p.w * p.n) as u64 * 4);
        let params = kern.params(d_in, d_tf, d_out);
        gpusim::time_kernel_device_traced(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &params,
            DeviceOptions {
                base: TimingOptions {
                    region: Some(kern.region),
                    ..Default::default()
                },
                exact: true,
                ..Default::default()
            },
        )
        .expect("fused kernel traced timing")
    }

    /// Cross-check of the two timing models on this problem's fused kernel:
    /// `(one_wave, device)`. The retained one-wave analytic path and the
    /// full-device simulation must agree on grids that are an exact multiple
    /// of one device wave; on partial-tail grids the difference is the
    /// one-wave model's overcharge (recorded by the `multiwave` experiment
    /// binary).
    pub fn time_fused_crosscheck(&self, algo: Algo) -> (KernelTiming, KernelTiming) {
        let p = &self.problem;
        let cfg = self.fused_config(algo);
        let kern = FusedKernel::emit(cfg);
        let base = TimingOptions {
            region: Some(kern.region),
            ..Default::default()
        };
        let alloc = |gpu: &mut Gpu| {
            let d_in = gpu.alloc((p.c * p.h * p.w * p.n) as u64 * 4);
            let d_tf = gpu.alloc((p.c * 16 * p.k) as u64 * 4);
            let d_out = gpu.alloc((p.k * p.h * p.w * p.n) as u64 * 4);
            kern.params(d_in, d_tf, d_out)
        };
        let cap = ((p.c * p.h * p.w * p.n + 16 * p.c * p.k + p.k * p.h * p.w * p.n) * 4) as u64
            + (1 << 20);
        let mut gpu = self.gpu_for(cap);
        let params = alloc(&mut gpu);
        let one_wave =
            gpusim::timing::time_kernel(&mut gpu, &kern.module, kern.launch_dims(), &params, base)
                .expect("one-wave fused timing");
        let mut gpu = self.gpu_for(cap);
        let params = alloc(&mut gpu);
        let device = time_kernel_device(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &params,
            DeviceOptions {
                base,
                ..Default::default()
            },
        )
        .expect("device fused timing");
        (one_wave, device)
    }

    /// Main-loop-only timing of a fused configuration (Figures 7–9, §7.2).
    pub fn time_fused_mainloop(&self, cfg: FusedConfig) -> (KernelTiming, f64) {
        self.time_fused_mainloop_opts(cfg, false)
    }

    /// [`Conv::time_fused_mainloop`] with hardware counters attached.
    pub fn time_fused_mainloop_counted(&self, cfg: FusedConfig) -> (KernelTiming, f64) {
        self.time_fused_mainloop_opts(cfg, true)
    }

    fn time_fused_mainloop_opts(
        &self,
        mut cfg: FusedConfig,
        counters: bool,
    ) -> (KernelTiming, f64) {
        let p = &self.problem;
        cfg.main_loop_only = true;
        let kern = FusedKernel::emit(cfg);
        let mut gpu = self.gpu_for(
            ((p.c * p.h * p.w * p.n + 16 * p.c * p.k + p.k * p.h * p.w * p.n) * 4) as u64
                + (1 << 20),
        );
        let d_in = gpu.alloc((p.c * p.h * p.w * p.n) as u64 * 4);
        let d_tf = gpu.alloc((p.c * 16 * p.k) as u64 * 4);
        let d_out = gpu.alloc((p.k * p.h * p.w * p.n) as u64 * 4);
        let params = kern.params(d_in, d_tf, d_out);
        let t = gpusim::timing::time_kernel(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &params,
            TimingOptions {
                region: Some(kern.region),
                counters,
                ..Default::default()
            },
        )
        .expect("main loop timing");
        let tflops = t.region_tflops(&self.device, cfg.mainloop_flops_per_block());
        (t, tflops)
    }

    /// The paper's default fused configuration for this problem.
    pub fn ours_config(&self) -> FusedConfig {
        self.fused_config(Algo::OursFused)
    }

    /// The cuDNN-like fused configuration for this problem.
    pub fn cudnn_config(&self) -> FusedConfig {
        self.fused_config(Algo::CudnnWinograd)
    }

    // ---- GEMM-based paths ------------------------------------------------------

    fn gemm_dims(&self) -> (u32, u32, u32) {
        let p = &self.problem;
        let m = p.k as u32;
        let ncols = (p.n * p.h * p.w) as u32;
        let n_pad = ncols.div_ceil(128) * 128;
        let kd = (p.c * 9) as u32;
        (m, n_pad, kd)
    }

    fn gemm_config(&self, algo: Algo) -> GemmConfig {
        let (m, n, kd) = self.gemm_dims();
        let mut cfg = GemmConfig::new(m, n, kd);
        if algo == Algo::ImplicitGemm {
            // Index recomputation per loaded B element (≈ the div/mod chain
            // cuDNN's non-precomputed variant executes).
            cfg.extra_index_ops = 6;
        }
        cfg
    }

    fn run_gemm_based(&self, algo: Algo, input: &Tensor4, filter: &Tensor4) -> Tensor4 {
        let p = &self.problem;
        let (m, n_pad, kd) = self.gemm_dims();
        let ncols = p.n * p.h * p.w;
        // A (transposed, Kd×M): filter as CRS×K.
        let crsk = filter.to_layout(LayoutKind::Crsk); // (C,R,S,K) == CRS×K
                                                       // B (Kd×N): im2col, padded to n_pad columns.
        let cols = im2col(p, input);
        let mut b = vec![0.0f32; (kd * n_pad) as usize];
        for row in 0..kd as usize {
            b[row * n_pad as usize..row * n_pad as usize + ncols]
                .copy_from_slice(&cols[row * ncols..(row + 1) * ncols]);
        }
        let kern = GemmKernel::emit(self.gemm_config(algo));
        let mut gpu = self.gpu_for(((kd * m + kd * n_pad + m * n_pad) as u64) * 4 + (1 << 20));
        let da = gpu.alloc_upload_f32(crsk.as_slice());
        let db = gpu.alloc_upload_f32(&b);
        let dc = gpu.alloc((m * n_pad) as u64 * 4);
        gpu.launch_parallel(&kern.module, kern.launch_dims(), &kern.params(da, db, dc))
            .expect("gemm kernel");
        let c = gpu.mem.download_f32(dc, (m * n_pad) as usize).unwrap();
        // C is K × (N·OH·OW) padded; repack to NCHW.
        let mut out = Tensor4::zeros(LayoutKind::Nchw, [p.n, p.k, p.h, p.w]);
        for k in 0..p.k {
            for n in 0..p.n {
                for y in 0..p.h {
                    for x in 0..p.w {
                        out.set(
                            [n, k, y, x],
                            c[k * n_pad as usize + (n * p.h + y) * p.w + x],
                        );
                    }
                }
            }
        }
        out
    }

    fn time_gemm_kernel(&self, algo: Algo) -> KernelTiming {
        self.time_gemm_kernel_opts(algo, false)
    }

    fn time_gemm_kernel_opts(&self, algo: Algo, counters: bool) -> KernelTiming {
        let (m, n_pad, kd) = self.gemm_dims();
        let kern = GemmKernel::emit(self.gemm_config(algo));
        let mut gpu = self.gpu_for(((kd * m + kd * n_pad + m * n_pad) as u64) * 4 + (1 << 20));
        let da = gpu.alloc((kd * m) as u64 * 4);
        let db = gpu.alloc((kd * n_pad) as u64 * 4);
        let dc = gpu.alloc((m * n_pad) as u64 * 4);
        time_kernel_device(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &kern.params(da, db, dc),
            DeviceOptions {
                base: TimingOptions {
                    counters,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("gemm timing")
    }

    fn time_nonfused_gemm(&self) -> KernelTiming {
        self.time_nonfused_gemm_opts(false)
    }

    fn time_nonfused_gemm_opts(&self, counters: bool) -> KernelTiming {
        let p = &self.problem;
        // 36 batches of [K×C] × [C×tiles] with F(4×4,3×3) tiling.
        let tiles = (p.out_h().div_ceil(4) * p.out_w().div_ceil(4) * p.n) as u32;
        let n_pad = tiles.div_ceil(128) * 128;
        let cfg = GemmConfig::new(p.k as u32, n_pad, p.c as u32).batched(36);
        let kern = GemmKernel::emit(cfg);
        let bytes = 36u64
            * ((p.k * p.c) as u64 + (p.c as u64 * n_pad as u64) + (p.k as u64 * n_pad as u64))
            * 4;
        let mut gpu = self.gpu_for(bytes + (1 << 20));
        let da = gpu.alloc(36 * (p.c * p.k) as u64 * 4);
        let db = gpu.alloc(36 * p.c as u64 * n_pad as u64 * 4);
        let dc = gpu.alloc(36 * p.k as u64 * n_pad as u64 * 4);
        time_kernel_device(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &kern.params(da, db, dc),
            DeviceOptions {
                base: TimingOptions {
                    counters,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("nonfused gemm timing")
    }

    // ---- FFT analytic model ------------------------------------------------------

    /// Roofline phases for FFT-based convolution with transform size `s` and
    /// `tiles` tiles per image (1 = full-image FFT).
    fn fft_phases(&self, s: usize, tiles: usize) -> Vec<(String, f64)> {
        let p = &self.problem;
        let dev = &self.device;
        let s2 = (s * s) as f64;
        let lg = (s as f64).log2();
        // One 2-D complex FFT: 2·S rows/cols × 5·S·log2 S ≈ 10·S²·log2 S.
        let fft2d_flops = 10.0 * s2 * lg;
        let cplx = 8.0; // bytes per complex f32
        let roof = |flops: f64, bytes: f64| {
            (flops / dev.peak_fp32_flops()).max(bytes / (dev.dram_bw * MEM_EFF))
        };

        let n_in = (p.n * p.c * tiles) as f64;
        let n_f = (p.k * p.c) as f64;
        let n_out = (p.n * p.k * tiles) as f64;
        let mut phases = Vec::new();
        phases.push((
            "fft_input".into(),
            roof(n_in * fft2d_flops, n_in * s2 * (4.0 + cplx)) + LAUNCH_OVERHEAD_S,
        ));
        phases.push((
            "fft_filter".into(),
            roof(n_f * fft2d_flops, n_f * (9.0 * 4.0 + s2 * cplx)) + LAUNCH_OVERHEAD_S,
        ));
        // Pointwise complex multiply-accumulate over channels — a batched
        // S²-deep CGEMM. With standard tiling each operand streams from DRAM
        // O(1) times; charge two passes (read + accumulate round trips).
        let macs = (p.n * p.k * p.c * tiles) as f64 * s2;
        let traffic = (n_in + n_f + n_out) * s2 * cplx * 2.0;
        phases.push((
            "cgemm_pointwise".into(),
            roof(macs * 8.0, traffic) + LAUNCH_OVERHEAD_S,
        ));
        phases.push((
            "ifft_output".into(),
            roof(n_out * fft2d_flops, n_out * s2 * (cplx + 4.0)) + LAUNCH_OVERHEAD_S,
        ));
        phases
    }

    fn gpu_for(&self, bytes: u64) -> Gpu {
        // Headroom for allocation alignment and rounding.
        let cap = (bytes + bytes / 2 + (1 << 24)) as usize;
        Gpu::new(self.device.clone(), cap.next_power_of_two())
    }

    // ---- content digests for the sweep cache -----------------------------------

    /// Everything every timing path depends on besides the kernels: device,
    /// problem shape, and the analytic-model constants.
    fn base_digest(&self) -> Digest {
        let p = &self.problem;
        let mut d = Digest::new();
        // Timing-model semantics version: kernel timings moved when the
        // full-device multi-wave model replaced one-wave extrapolation, so
        // every Conv-level cache entry must move with them.
        d.u32(gpusim::TIMING_MODEL_VERSION);
        self.device.digest_into(&mut d);
        for v in [p.n, p.c, p.h, p.w, p.k, p.r, p.s, p.pad] {
            d.u64(v as u64);
        }
        d.f64(LAUNCH_OVERHEAD_S).f64(MEM_EFF);
        d
    }

    /// Content address of [`Conv::time`] for `algo`: device + problem +
    /// model constants + the exact bytes and launch geometry of every kernel
    /// the path simulates. Emission is pure codegen (microseconds), so
    /// computing the digest is cheap relative to a simulation; a change to a
    /// kernel emitter changes the program bytes and hence the address, while
    /// unrelated kernels keep their cache entries.
    pub fn time_digest(&self, algo: Algo) -> Digest {
        let p = &self.problem;
        let mut d = self.base_digest();
        d.str(algo.name());
        match algo {
            Algo::OursFused | Algo::CudnnWinograd => {
                let fx = emit_filter_transform(p.c as u32, p.k as u32);
                module_digest(&fx, &mut d);
                LaunchDims::linear((p.c * p.k / 256) as u32, 256).digest_into(&mut d);
                let kern = FusedKernel::emit(self.fused_config(algo));
                module_digest(&kern.module, &mut d);
                kern.launch_dims().digest_into(&mut d);
                d.u32(kern.region.0).u32(kern.region.1);
            }
            Algo::Gemm | Algo::ImplicitGemm | Algo::ImplicitPrecompGemm => {
                let kern = GemmKernel::emit(self.gemm_config(algo));
                module_digest(&kern.module, &mut d);
                kern.launch_dims().digest_into(&mut d);
            }
            Algo::WinogradNonfused => {
                let tiles = (p.out_h().div_ceil(4) * p.out_w().div_ceil(4) * p.n) as u32;
                let n_pad = tiles.div_ceil(128) * 128;
                let cfg = GemmConfig::new(p.k as u32, n_pad, p.c as u32).batched(36);
                let kern = GemmKernel::emit(cfg);
                module_digest(&kern.module, &mut d);
                kern.launch_dims().digest_into(&mut d);
            }
            // Purely analytic: device + problem + constants say it all.
            Algo::Fft | Algo::FftTiling => {}
        }
        d
    }

    /// Content address of [`Conv::time_fused_mainloop`] for `cfg` (the
    /// Figures 7–9 sweeps): device + problem + constants + the emitted
    /// main-loop-only kernel's bytes, launch geometry, timed region, and the
    /// FLOP count the region TFLOPS figure divides by.
    pub fn mainloop_digest(&self, mut cfg: FusedConfig) -> Digest {
        cfg.main_loop_only = true;
        let kern = FusedKernel::emit(cfg);
        let mut d = self.base_digest();
        d.str("mainloop");
        module_digest(&kern.module, &mut d);
        kern.launch_dims().digest_into(&mut d);
        d.u32(kern.region.0).u32(kern.region.1);
        d.f64(cfg.mainloop_flops_per_block());
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv2d_direct;
    use tensor::allclose;

    fn small_problem() -> ConvProblem {
        ConvProblem::resnet3x3(32, 8, 8, 64)
    }

    fn data(p: &ConvProblem) -> (Tensor4, Tensor4) {
        (
            Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, 7),
            Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 8),
        )
    }

    #[test]
    fn ours_fused_matches_direct() {
        let p = small_problem();
        let (input, filter) = data(&p);
        let conv = Conv::new(p, DeviceSpec::v100());
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv.run(Algo::OursFused, &input, &filter);
        assert!(allclose(want.as_slice(), got.output.as_slice(), 1e-3, 1e-3));
    }

    #[test]
    fn cudnn_winograd_matches_direct() {
        let p = ConvProblem::resnet3x3(32, 64, 7, 64);
        let (input, filter) = data(&p);
        let conv = Conv::new(p, DeviceSpec::rtx2070());
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv.run(Algo::CudnnWinograd, &input, &filter);
        assert!(allclose(want.as_slice(), got.output.as_slice(), 1e-3, 1e-3));
    }

    #[test]
    fn gemm_algos_match_direct() {
        let p = small_problem();
        let (input, filter) = data(&p);
        let conv = Conv::new(p, DeviceSpec::v100());
        let want = conv2d_direct(&p, &input, &filter);
        for algo in [Algo::Gemm, Algo::ImplicitGemm, Algo::ImplicitPrecompGemm] {
            let got = conv.run(algo, &input, &filter);
            assert!(
                allclose(want.as_slice(), got.output.as_slice(), 1e-3, 1e-3),
                "{algo:?}"
            );
        }
    }

    #[test]
    fn host_algos_match_direct() {
        let p = ConvProblem::resnet3x3(2, 8, 8, 8);
        let (input, filter) = data(&p);
        let conv = Conv::new(p, DeviceSpec::v100());
        let want = conv2d_direct(&p, &input, &filter);
        for algo in [Algo::WinogradNonfused, Algo::Fft, Algo::FftTiling] {
            let got = conv.run(algo, &input, &filter);
            assert!(
                allclose(want.as_slice(), got.output.as_slice(), 1e-2, 1e-2),
                "{algo:?}"
            );
        }
    }

    #[test]
    fn workspace_ordering_matches_fig14() {
        // FFT variants need far more workspace than ours (Fig. 14).
        let p = ConvProblem::resnet3x3(32, 64, 56, 64);
        let conv = Conv::new(p, DeviceSpec::v100());
        let ours = conv.workspace_bytes(Algo::OursFused);
        assert_eq!(ours, 16 * 64 * 64 * 4); // 0.25 MB for Conv2 (§7.3)
        assert!(conv.workspace_bytes(Algo::Fft) > 100 * ours);
        assert_eq!(conv.workspace_bytes(Algo::ImplicitGemm), 0);
        assert!(conv.workspace_bytes(Algo::WinogradNonfused) > ours);
    }

    #[test]
    fn time_digests_separate_algos_and_problems() {
        let conv = Conv::new(ConvProblem::resnet3x3(32, 64, 14, 64), DeviceSpec::v100());
        let a = conv.time_digest(Algo::OursFused).hex();
        // Deterministic, and sensitive to algorithm, problem, and device.
        assert_eq!(a, conv.time_digest(Algo::OursFused).hex());
        assert_ne!(a, conv.time_digest(Algo::CudnnWinograd).hex());
        let bigger = Conv::new(ConvProblem::resnet3x3(64, 64, 14, 64), DeviceSpec::v100());
        assert_ne!(a, bigger.time_digest(Algo::OursFused).hex());
        let turing = Conv::new(
            ConvProblem::resnet3x3(32, 64, 14, 64),
            DeviceSpec::rtx2070(),
        );
        assert_ne!(a, turing.time_digest(Algo::OursFused).hex());
        // The main-loop sweep digest is its own namespace.
        assert_ne!(a, conv.mainloop_digest(conv.ours_config()).hex());
    }

    #[test]
    fn timing_runs_and_orders_sanely() {
        // Small-ish layer: ours must beat the cuDNN-like fused kernel and
        // the GEMM path in simulated time.
        let p = ConvProblem::resnet3x3(32, 64, 14, 64);
        let conv = Conv::new(p, DeviceSpec::rtx2070());
        let ours = conv.time(Algo::OursFused);
        let gemm = conv.time(Algo::ImplicitPrecompGemm);
        assert!(ours.time_s > 0.0 && gemm.time_s > 0.0);
        assert!(
            ours.time_s < gemm.time_s,
            "ours {} vs gemm {}",
            ours.time_s,
            gemm.time_s
        );
        assert!(!ours.phases.is_empty());
    }
}
