//! Golden reference: direct convolution on the host.
//!
//! Every other algorithm in the workspace — host Winograd, host GEMM/FFT
//! convolution, and all the SASS kernels running on the simulator — is
//! validated against this implementation.

use tensor::{LayoutKind, Tensor4};

/// A batched 2-D convolution problem (cross-correlation, CNN convention).
///
/// Stride is fixed at 1 — the paper's scope is the 3×3 stride-1 layers of
/// ResNet/VGG (§2.1) — but filter size and padding are general here so the
/// test suite can exercise edge cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvProblem {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input height/width.
    pub h: usize,
    pub w: usize,
    /// Output channels (number of filters).
    pub k: usize,
    /// Filter height/width.
    pub r: usize,
    pub s: usize,
    /// Zero padding on each border.
    pub pad: usize,
}

impl ConvProblem {
    /// The common ResNet-style case: 3×3, pad 1, same-size output.
    pub fn resnet3x3(n: usize, c: usize, hw: usize, k: usize) -> Self {
        ConvProblem {
            n,
            c,
            h: hw,
            w: hw,
            k,
            r: 3,
            s: 3,
            pad: 1,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.h + 2 * self.pad + 1 - self.r
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.w + 2 * self.pad + 1 - self.s
    }

    /// FLOPs of the direct algorithm (2 per MAC) — the figure-of-merit the
    /// paper's TFLOPS numbers are *not* based on (they count Winograd FLOPs);
    /// used by the roofline model.
    pub fn direct_flops(&self) -> f64 {
        2.0 * self.n as f64
            * self.c as f64
            * self.out_h() as f64
            * self.out_w() as f64
            * self.k as f64
            * self.r as f64
            * self.s as f64
    }

    /// Input element count.
    pub fn input_len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Filter element count.
    pub fn filter_len(&self) -> usize {
        self.k * self.c * self.r * self.s
    }

    /// Output element count.
    pub fn output_len(&self) -> usize {
        self.n * self.k * self.out_h() * self.out_w()
    }
}

/// Direct convolution: input NCHW, filter KCRS, output NCHW (paper Eq. 4).
pub fn conv2d_direct(p: &ConvProblem, input: &Tensor4, filter: &Tensor4) -> Tensor4 {
    assert_eq!(input.kind(), LayoutKind::Nchw, "input must be NCHW");
    assert_eq!(filter.kind(), LayoutKind::Kcrs, "filter must be KCRS");
    assert_eq!(input.dims(), [p.n, p.c, p.h, p.w]);
    assert_eq!(filter.dims(), [p.k, p.c, p.r, p.s]);
    let (oh, ow) = (p.out_h(), p.out_w());
    let mut out = Tensor4::zeros(LayoutKind::Nchw, [p.n, p.k, oh, ow]);
    for n in 0..p.n {
        for k in 0..p.k {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0f32;
                    for c in 0..p.c {
                        for r in 0..p.r {
                            let iy = y + r;
                            if iy < p.pad || iy >= p.h + p.pad {
                                continue;
                            }
                            for s in 0..p.s {
                                let ix = x + s;
                                if ix < p.pad || ix >= p.w + p.pad {
                                    continue;
                                }
                                acc += input.get([n, c, iy - p.pad, ix - p.pad])
                                    * filter.get([k, c, r, s]);
                            }
                        }
                    }
                    out.set([n, k, y, x], acc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter_passes_input_through() {
        // 3×3 filter with a single 1 at the center, pad 1 → identity.
        let p = ConvProblem::resnet3x3(1, 1, 4, 1);
        let input = Tensor4::random(LayoutKind::Nchw, [1, 1, 4, 4], -1.0, 1.0, 1);
        let mut filter = Tensor4::zeros(LayoutKind::Kcrs, [1, 1, 3, 3]);
        filter.set([0, 0, 1, 1], 1.0);
        let out = conv2d_direct(&p, &input, &filter);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn box_filter_sums_neighbourhood() {
        let p = ConvProblem::resnet3x3(1, 1, 3, 1);
        let input = Tensor4::from_fn(LayoutKind::Nchw, [1, 1, 3, 3], |_, _, h, w| {
            (h * 3 + w) as f32
        });
        let filter = Tensor4::from_fn(LayoutKind::Kcrs, [1, 1, 3, 3], |_, _, _, _| 1.0);
        let out = conv2d_direct(&p, &input, &filter);
        // Center output = sum of all 9 inputs = 36.
        assert_eq!(out.get([0, 0, 1, 1]), 36.0);
        // Corner (0,0) = inputs (0,0),(0,1),(1,0),(1,1) = 0+1+3+4 = 8.
        assert_eq!(out.get([0, 0, 0, 0]), 8.0);
    }

    #[test]
    fn channels_accumulate() {
        let p = ConvProblem {
            n: 1,
            c: 3,
            h: 2,
            w: 2,
            k: 1,
            r: 1,
            s: 1,
            pad: 0,
        };
        let input = Tensor4::from_fn(LayoutKind::Nchw, [1, 3, 2, 2], |_, c, _, _| c as f32 + 1.0);
        let filter = Tensor4::from_fn(LayoutKind::Kcrs, [1, 3, 1, 1], |_, _, _, _| 1.0);
        let out = conv2d_direct(&p, &input, &filter);
        assert_eq!(out.get([0, 0, 0, 0]), 6.0);
    }

    #[test]
    fn output_shape_math() {
        let p = ConvProblem::resnet3x3(2, 3, 56, 64);
        assert_eq!(p.out_h(), 56);
        assert_eq!(p.out_w(), 56);
        let p = ConvProblem {
            n: 1,
            c: 1,
            h: 7,
            w: 9,
            k: 1,
            r: 3,
            s: 3,
            pad: 0,
        };
        assert_eq!(p.out_h(), 5);
        assert_eq!(p.out_w(), 7);
    }

    #[test]
    fn direct_flops_formula() {
        let p = ConvProblem::resnet3x3(32, 64, 56, 64);
        let want = 2.0 * 32.0 * 64.0 * 56.0 * 56.0 * 64.0 * 9.0;
        assert_eq!(p.direct_flops(), want);
    }
}
