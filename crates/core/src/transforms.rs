//! Winograd minimal-filtering transform matrices.
//!
//! For `F(m×m, 3×3)` the 2-D algorithm computes, per tile (paper Eq. 1):
//!
//! ```text
//! O = Aᵀ [ (G F Gᵀ) ⊙ (Bᵀ I B) ] A
//! ```
//!
//! This module provides the `Bᵀ`, `G`, `Aᵀ` matrices for the three standard
//! variants — `F(2×2, 3×3)` (the paper's kernel, Eq. 2–3), `F(4×4, 3×3)`
//! (cuDNN's non-fused variant, §7.3/§8.1) and `F(6×6, 3×3)` (mentioned in
//! §8.1 as numerically problematic, which
//! [`crate::winograd_host::numerical_error`] quantifies) — plus small dense
//! matrix helpers used throughout the host-side reference implementations.

/// A tiny row-major dense matrix, sized at runtime.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Mat {
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Mat { rows, cols, data }
    }

    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self × other`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.at(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn t(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.at(i, j));
            }
        }
        out
    }
}

/// The transform set for one `F(m×m, r×r)` variant.
#[derive(Clone, Debug)]
pub struct WinogradTransform {
    /// Output tile size `m`.
    pub m: usize,
    /// Filter size `r`.
    pub r: usize,
    /// Input tile size `t = m + r - 1`.
    pub t: usize,
    /// Input transform `Bᵀ` (t×t).
    pub bt: Mat,
    /// Filter transform `G` (t×r).
    pub g: Mat,
    /// Output transform `Aᵀ` (m×t).
    pub at: Mat,
}

/// Which Winograd variant to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `F(2×2, 3×3)` — 16 EWMMs per tile, 2.25× multiplication reduction.
    F2x2,
    /// `F(4×4, 3×3)` — 36 EWMMs per tile, 4× multiplication reduction.
    F4x4,
    /// `F(6×6, 3×3)` — 64 EWMMs per tile, 5.06× reduction, poor conditioning.
    F6x6,
}

impl Variant {
    pub fn transform(self) -> WinogradTransform {
        match self {
            Variant::F2x2 => f2x2_3x3(),
            Variant::F4x4 => f4x4_3x3(),
            Variant::F6x6 => f6x6_3x3(),
        }
    }

    /// Output tile size m.
    pub fn m(self) -> usize {
        match self {
            Variant::F2x2 => 2,
            Variant::F4x4 => 4,
            Variant::F6x6 => 6,
        }
    }

    /// Multiplication reduction factor vs direct convolution:
    /// `(m·r)² / (m+r-1)²` per 1-D dimension squared.
    pub fn mult_reduction(self) -> f64 {
        let m = self.m() as f64;
        let r = 3.0f64;
        (m * r) * (m * r) / ((m + r - 1.0) * (m + r - 1.0))
    }
}

/// `F(2×2, 3×3)` — exactly the matrices in the paper's Eq. (2)–(3).
pub fn f2x2_3x3() -> WinogradTransform {
    let bt = Mat::new(
        4,
        4,
        vec![
            1.0, 0.0, -1.0, 0.0, //
            0.0, 1.0, 1.0, 0.0, //
            0.0, -1.0, 1.0, 0.0, //
            0.0, 1.0, 0.0, -1.0,
        ],
    );
    let g = Mat::new(
        4,
        3,
        vec![
            1.0, 0.0, 0.0, //
            0.5, 0.5, 0.5, //
            0.5, -0.5, 0.5, //
            0.0, 0.0, 1.0,
        ],
    );
    let at = Mat::new(
        2,
        4,
        vec![
            1.0, 1.0, 1.0, 0.0, //
            0.0, 1.0, -1.0, -1.0,
        ],
    );
    WinogradTransform {
        m: 2,
        r: 3,
        t: 4,
        bt,
        g,
        at,
    }
}

/// `F(4×4, 3×3)` with interpolation points `{0, ±1, ±2}` (Lavin & Gray).
pub fn f4x4_3x3() -> WinogradTransform {
    let bt = Mat::new(
        6,
        6,
        vec![
            4.0, 0.0, -5.0, 0.0, 1.0, 0.0, //
            0.0, -4.0, -4.0, 1.0, 1.0, 0.0, //
            0.0, 4.0, -4.0, -1.0, 1.0, 0.0, //
            0.0, -2.0, -1.0, 2.0, 1.0, 0.0, //
            0.0, 2.0, -1.0, -2.0, 1.0, 0.0, //
            0.0, 4.0, 0.0, -5.0, 0.0, 1.0,
        ],
    );
    let g = Mat::new(
        6,
        3,
        vec![
            0.25,
            0.0,
            0.0, //
            -1.0 / 6.0,
            -1.0 / 6.0,
            -1.0 / 6.0, //
            -1.0 / 6.0,
            1.0 / 6.0,
            -1.0 / 6.0, //
            1.0 / 24.0,
            1.0 / 12.0,
            1.0 / 6.0, //
            1.0 / 24.0,
            -1.0 / 12.0,
            1.0 / 6.0, //
            0.0,
            0.0,
            1.0,
        ],
    );
    let at = Mat::new(
        4,
        6,
        vec![
            1.0, 1.0, 1.0, 1.0, 1.0, 0.0, //
            0.0, 1.0, -1.0, 2.0, -2.0, 0.0, //
            0.0, 1.0, 1.0, 4.0, 4.0, 0.0, //
            0.0, 1.0, -1.0, 8.0, -8.0, 1.0,
        ],
    );
    WinogradTransform {
        m: 4,
        r: 3,
        t: 6,
        bt,
        g,
        at,
    }
}

/// `F(6×6, 3×3)` with points `{0, ±1, ±2, ±1/2}` (the NNPACK/cuDNN choice).
pub fn f6x6_3x3() -> WinogradTransform {
    #[rustfmt::skip]
    let bt = Mat::new(8, 8, vec![
        1.0,  0.0,    -21.0 / 4.0,  0.0,         21.0 / 4.0,  0.0,        -1.0, 0.0,
        0.0,  1.0,     1.0,        -17.0 / 4.0, -17.0 / 4.0,  1.0,         1.0, 0.0,
        0.0, -1.0,     1.0,         17.0 / 4.0, -17.0 / 4.0, -1.0,         1.0, 0.0,
        0.0,  0.5,     0.25,       -5.0 / 2.0,  -5.0 / 4.0,   2.0,         1.0, 0.0,
        0.0, -0.5,     0.25,        5.0 / 2.0,  -5.0 / 4.0,  -2.0,         1.0, 0.0,
        0.0,  2.0,     4.0,        -5.0 / 2.0,  -5.0,         0.5,         1.0, 0.0,
        0.0, -2.0,     4.0,         5.0 / 2.0,  -5.0,        -0.5,         1.0, 0.0,
        0.0, -1.0,     0.0,         21.0 / 4.0,  0.0,        -21.0 / 4.0,  0.0, 1.0,
    ]);
    #[rustfmt::skip]
    let g = Mat::new(8, 3, vec![
        1.0,          0.0,         0.0,
        -2.0 / 9.0,  -2.0 / 9.0,  -2.0 / 9.0,
        -2.0 / 9.0,   2.0 / 9.0,  -2.0 / 9.0,
        1.0 / 90.0,   1.0 / 45.0,  2.0 / 45.0,
        1.0 / 90.0,  -1.0 / 45.0,  2.0 / 45.0,
        32.0 / 45.0,  16.0 / 45.0, 8.0 / 45.0,
        32.0 / 45.0, -16.0 / 45.0, 8.0 / 45.0,
        0.0,          0.0,         1.0,
    ]);
    #[rustfmt::skip]
    let at = Mat::new(6, 8, vec![
        1.0, 1.0,  1.0, 1.0,  1.0, 1.0,   1.0,    0.0,
        0.0, 1.0, -1.0, 2.0, -2.0, 0.5,  -0.5,    0.0,
        0.0, 1.0,  1.0, 4.0,  4.0, 0.25,  0.25,   0.0,
        0.0, 1.0, -1.0, 8.0, -8.0, 0.125, -0.125, 0.0,
        0.0, 1.0,  1.0, 16.0, 16.0, 0.0625, 0.0625, 0.0,
        0.0, 1.0, -1.0, 32.0, -32.0, 0.03125, -0.03125, 1.0,
    ]);
    WinogradTransform {
        m: 6,
        r: 3,
        t: 8,
        bt,
        g,
        at,
    }
}

impl WinogradTransform {
    /// Transform one `r×r` filter tile: `G f Gᵀ` → `t×t`.
    pub fn filter_tile(&self, f: &Mat) -> Mat {
        assert_eq!((f.rows, f.cols), (self.r, self.r));
        self.g.matmul(f).matmul(&self.g.t())
    }

    /// Transform one `t×t` input tile: `Bᵀ i B` → `t×t`.
    pub fn input_tile(&self, i: &Mat) -> Mat {
        assert_eq!((i.rows, i.cols), (self.t, self.t));
        self.bt.matmul(i).matmul(&self.bt.t()) // B = (Bᵀ)ᵀ
    }

    /// Inverse-transform one `t×t` accumulator tile: `Aᵀ o A` → `m×m`.
    pub fn output_tile(&self, o: &Mat) -> Mat {
        assert_eq!((o.rows, o.cols), (self.t, self.t));
        self.at.matmul(o).matmul(&self.at.t())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct 1-D convolution (correlation) of a signal window with a filter.
    fn direct_1d(signal: &[f32], filter: &[f32], m: usize) -> Vec<f32> {
        (0..m)
            .map(|i| (0..filter.len()).map(|j| signal[i + j] * filter[j]).sum())
            .collect()
    }

    /// 1-D Winograd: `Aᵀ [(G f) ⊙ (Bᵀ d)]` must equal direct convolution.
    fn check_1d(v: Variant) {
        let tr = v.transform();
        let signal: Vec<f32> = (0..tr.t).map(|i| (i as f32 * 0.7 - 1.3).sin()).collect();
        let filter: Vec<f32> = vec![0.25, -0.5, 1.0];
        let d = Mat::new(tr.t, 1, signal.clone());
        let f = Mat::new(tr.r, 1, filter.clone());
        let gf = tr.g.matmul(&f);
        let btd = tr.bt.matmul(&d);
        let prod = Mat::new(
            tr.t,
            1,
            gf.data.iter().zip(&btd.data).map(|(a, b)| a * b).collect(),
        );
        let out = tr.at.matmul(&prod);
        let want = direct_1d(&signal, &filter, tr.m);
        for (i, &w) in want.iter().enumerate() {
            assert!(
                (out.data[i] - w).abs() < 1e-4,
                "{v:?} row {i}: {} vs {}",
                out.data[i],
                w
            );
        }
    }

    #[test]
    fn f2_matches_direct_1d() {
        check_1d(Variant::F2x2);
    }

    #[test]
    fn f4_matches_direct_1d() {
        check_1d(Variant::F4x4);
    }

    #[test]
    fn f6_matches_direct_1d() {
        check_1d(Variant::F6x6);
    }

    /// 2-D single-tile Winograd must match direct 2-D convolution.
    fn check_2d(v: Variant) {
        let tr = v.transform();
        let t = tr.t;
        let input = Mat::new(
            t,
            t,
            (0..t * t)
                .map(|i| ((i * 37 % 11) as f32 - 5.0) / 3.0)
                .collect(),
        );
        let filt = Mat::new(
            3,
            3,
            (0..9).map(|i| ((i * 53 % 7) as f32 - 3.0) / 4.0).collect(),
        );
        let tf = tr.filter_tile(&filt);
        let ti = tr.bt.matmul(&input).matmul(&tr.bt.t());
        let mut prod = Mat::zeros(t, t);
        for i in 0..t * t {
            prod.data[i] = tf.data[i] * ti.data[i];
        }
        let out = tr.output_tile(&prod);
        for y in 0..tr.m {
            for x in 0..tr.m {
                let mut want = 0.0f32;
                for r in 0..3 {
                    for s in 0..3 {
                        want += input.at(y + r, x + s) * filt.at(r, s);
                    }
                }
                assert!(
                    (out.at(y, x) - want).abs() < 1e-3,
                    "{v:?} ({y},{x}): {} vs {want}",
                    out.at(y, x)
                );
            }
        }
    }

    #[test]
    fn f2_matches_direct_2d() {
        check_2d(Variant::F2x2);
    }

    #[test]
    fn f4_matches_direct_2d() {
        check_2d(Variant::F4x4);
    }

    #[test]
    fn f6_matches_direct_2d() {
        check_2d(Variant::F6x6);
    }

    #[test]
    fn reduction_factors_match_paper() {
        // §1/§2.1: 2.25× for F(2×2,3×3); §7.3: 4× for F(4×4,3×3).
        assert!((Variant::F2x2.mult_reduction() - 2.25).abs() < 1e-9);
        assert!((Variant::F4x4.mult_reduction() - 4.0).abs() < 1e-9);
        assert!(Variant::F6x6.mult_reduction() > 5.0);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Mat::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
        assert_eq!(a.t().t(), a);
    }
}
