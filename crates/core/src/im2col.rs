//! GEMM-based convolution on the host: explicit `im2col` lowering plus an
//! SGEMM, the structure of cuDNN's `GEMM` algorithm; the `IMPLICIT_*`
//! variants share the math but skip the materialized column matrix (their
//! GPU cost difference is modelled in the `kernels`/`perfmodel` crates).

use crate::reference::ConvProblem;
use tensor::{LayoutKind, Tensor4};

/// Lower the input to the column matrix: shape `(C·R·S) × (N·OH·OW)`,
/// row-major. Zero padding is materialized.
pub fn im2col(p: &ConvProblem, input: &Tensor4) -> Vec<f32> {
    assert_eq!(input.kind(), LayoutKind::Nchw);
    let (oh, ow) = (p.out_h(), p.out_w());
    let cols = p.n * oh * ow;
    let rows = p.c * p.r * p.s;
    let mut out = vec![0.0f32; rows * cols];
    for c in 0..p.c {
        for r in 0..p.r {
            for s in 0..p.s {
                let row = (c * p.r + r) * p.s + s;
                for n in 0..p.n {
                    for y in 0..oh {
                        let iy = (y + r) as isize - p.pad as isize;
                        for x in 0..ow {
                            let ix = (x + s) as isize - p.pad as isize;
                            let col = (n * oh + y) * ow + x;
                            if iy >= 0 && (iy as usize) < p.h && ix >= 0 && (ix as usize) < p.w {
                                out[row * cols + col] = input.get([n, c, iy as usize, ix as usize]);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Plain row-major SGEMM: `C[m×n] = A[m×k] × B[k×n]`.
pub fn sgemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
}

/// GEMM-based convolution: `O[K × (N·OH·OW)] = F[K × CRS] × im2col(I)`.
pub fn conv2d_gemm(p: &ConvProblem, input: &Tensor4, filter: &Tensor4) -> Tensor4 {
    assert_eq!(filter.kind(), LayoutKind::Kcrs);
    let (oh, ow) = (p.out_h(), p.out_w());
    let cols = p.n * oh * ow;
    let crs = p.c * p.r * p.s;
    let b = im2col(p, input);
    let mut c = vec![0.0f32; p.k * cols];
    sgemm(p.k, cols, crs, filter.as_slice(), &b, &mut c);
    // Repack K × (N,OH,OW) into NCHW (K plays the channel role).
    let mut out = Tensor4::zeros(LayoutKind::Nchw, [p.n, p.k, oh, ow]);
    for k in 0..p.k {
        for n in 0..p.n {
            for y in 0..oh {
                for x in 0..ow {
                    out.set([n, k, y, x], c[k * cols + (n * oh + y) * ow + x]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv2d_direct;
    use tensor::allclose;

    #[test]
    fn gemm_conv_matches_direct() {
        for (n, c, hw, k) in [(1, 3, 5, 2), (2, 4, 8, 4), (1, 1, 7, 1)] {
            let p = ConvProblem::resnet3x3(n, c, hw, k);
            let input = Tensor4::random(LayoutKind::Nchw, [n, c, hw, hw], -1.0, 1.0, 21);
            let filter = Tensor4::random(LayoutKind::Kcrs, [k, c, 3, 3], -1.0, 1.0, 22);
            let want = conv2d_direct(&p, &input, &filter);
            let got = conv2d_gemm(&p, &input, &filter);
            assert!(
                allclose(want.as_slice(), got.as_slice(), 1e-4, 1e-4),
                "({n},{c},{hw},{k})"
            );
        }
    }

    #[test]
    fn gemm_conv_no_padding() {
        let p = ConvProblem {
            n: 1,
            c: 2,
            h: 6,
            w: 6,
            k: 3,
            r: 3,
            s: 3,
            pad: 0,
        };
        let input = Tensor4::random(LayoutKind::Nchw, [1, 2, 6, 6], -1.0, 1.0, 31);
        let filter = Tensor4::random(LayoutKind::Kcrs, [3, 2, 3, 3], -1.0, 1.0, 32);
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv2d_gemm(&p, &input, &filter);
        assert!(allclose(want.as_slice(), got.as_slice(), 1e-4, 1e-4));
    }

    #[test]
    fn im2col_shape_and_padding() {
        let p = ConvProblem::resnet3x3(1, 1, 3, 1);
        let input = Tensor4::from_fn(LayoutKind::Nchw, [1, 1, 3, 3], |_, _, h, w| {
            (h * 3 + w + 1) as f32
        });
        let cols = im2col(&p, &input);
        assert_eq!(cols.len(), 9 * 9);
        // Row (r=0,s=0) at output (0,0) reads input (-1,-1) → 0 (padding).
        assert_eq!(cols[0], 0.0);
        // Row (r=1,s=1) is the identity: column j = input element j.
        let center_row = 4;
        for j in 0..9 {
            assert_eq!(cols[center_row * 9 + j], (j + 1) as f32);
        }
    }

    #[test]
    fn sgemm_small_known_values() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        sgemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }
}
