//! The paper's workload: all 3×3 convolutional layers of ResNet (Table 1),
//! with the `ConvxNn` naming used throughout the evaluation.

use crate::reference::ConvProblem;

/// One ResNet layer shape from Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResnetLayer {
    /// Layer name: "Conv2" … "Conv5".
    pub name: &'static str,
    /// Output (and input) spatial size `H = W`.
    pub hw: usize,
    /// Channels `C` (= filters `K` for these layers).
    pub c: usize,
}

/// Table 1: all 3×3 convolutional layers in ResNet.
pub const RESNET_LAYERS: [ResnetLayer; 4] = [
    ResnetLayer {
        name: "Conv2",
        hw: 56,
        c: 64,
    },
    ResnetLayer {
        name: "Conv3",
        hw: 28,
        c: 128,
    },
    ResnetLayer {
        name: "Conv4",
        hw: 14,
        c: 256,
    },
    ResnetLayer {
        name: "Conv5",
        hw: 7,
        c: 512,
    },
];

/// Batch sizes used throughout the evaluation (Tables 2 & 6, Figs. 7–13).
pub const BATCH_SIZES: [usize; 4] = [32, 64, 96, 128];

impl ResnetLayer {
    /// The convolution problem at batch size `n`.
    pub fn problem(&self, n: usize) -> ConvProblem {
        ConvProblem::resnet3x3(n, self.c, self.hw, self.c)
    }

    /// The paper's `ConvxNn` label, e.g. `Conv2N32`.
    pub fn label(&self, n: usize) -> String {
        format!("{}N{}", self.name, n)
    }
}

/// Look a layer up by name ("Conv2" … "Conv5").
pub fn layer_by_name(name: &str) -> Option<ResnetLayer> {
    RESNET_LAYERS.iter().copied().find(|l| l.name == name)
}

/// The 16 `(layer, batch)` evaluation points of the paper, in figure order.
pub fn eval_grid() -> Vec<(ResnetLayer, usize)> {
    let mut v = Vec::new();
    for layer in RESNET_LAYERS {
        for n in BATCH_SIZES {
            v.push((layer, n));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        assert_eq!(RESNET_LAYERS[0].problem(32).h, 56);
        assert_eq!(RESNET_LAYERS[3].c, 512);
        let p = layer_by_name("Conv4").unwrap().problem(96);
        assert_eq!((p.n, p.c, p.h, p.k), (96, 256, 14, 256));
        assert!(layer_by_name("Conv9").is_none());
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(RESNET_LAYERS[0].label(32), "Conv2N32");
        assert_eq!(RESNET_LAYERS[3].label(128), "Conv5N128");
    }

    #[test]
    fn eval_grid_is_16_points() {
        let g = eval_grid();
        assert_eq!(g.len(), 16);
        assert_eq!(g[0].0.name, "Conv2");
        assert_eq!(g[0].1, 32);
        assert_eq!(g[15].0.name, "Conv5");
        assert_eq!(g[15].1, 128);
    }
}
