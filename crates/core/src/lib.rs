//! `wino-core` — the workspace's primary library: batched Winograd
//! convolution with the paper's optimized GPU kernel, plus every baseline
//! algorithm the paper compares against.
//!
//! The public entry point is [`conv::Conv`]: describe a problem
//! ([`ConvProblem`]), pick an [`conv::Algo`], run it functionally on the
//! simulated GPU (validated against [`reference::conv2d_direct`]) or time it
//! with the cycle-level model.
//!
//! Layering:
//!
//! * [`transforms`] — the `F(m×m, 3×3)` Winograd transform matrices;
//! * [`mod@reference`], [`winograd_host`], [`im2col`], [`fft`] — host (CPU)
//!   implementations of every algorithm, used as correctness oracles;
//! * [`conv`] — the GPU-facing API dispatching to the SASS kernels in the
//!   `kernels` crate and the simulator in `gpusim`;
//! * [`resnet`] — the paper's Table 1 workload definitions;
//! * [`memplan`] — live-range workspace planning over a shared arena;
//! * [`netgraph`] — the whole-network graph runtime: layer chains with
//!   per-layer algorithm selection, the memory planner, and the hoisted
//!   filter-transform cache.

pub mod conv;
pub mod fft;
pub mod im2col;
pub mod memplan;
pub mod netgraph;
pub mod reference;
pub mod resnet;
pub mod transforms;
pub mod winograd_host;

pub use conv::{Algo, AlgoTiming, Conv, ConvOutput};
pub use memplan::{plan_arena, ArenaPlan, ArenaPolicy, BufferReq};
pub use netgraph::{AlgoPolicy, DirectTimer, LayerTimer, NetGraph, NetPlan, TransformCache};
pub use reference::{conv2d_direct, ConvProblem};
pub use transforms::Variant;
pub use winograd_host::conv2d_winograd;
