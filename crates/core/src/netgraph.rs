//! `netgraph` — the executable whole-network graph runtime.
//!
//! Promotes the Table 1 layer table ([`crate::resnet`]) into a network: a
//! [`NetGraph`] is a chain of conv layers and inter-layer transitions with
//! realistic tensor shapes, runnable functionally (any algorithm mix, with
//! or without the hoisted filter-transform cache) and plannable end-to-end:
//!
//! * **Per-layer algorithm selection** — [`NetGraph::plan`] times every
//!   breakeven-pruned candidate ([`candidates`], pruning via
//!   `perfmodel::nonfused_viable`) through a [`LayerTimer`] and picks the
//!   fastest per layer; [`AlgoPolicy::Baseline`] excludes the paper's
//!   kernel, yielding the cuDNN-like library a network would otherwise use.
//! * **Memory planning** — every inter-layer activation and per-layer
//!   workspace becomes a [`BufferReq`] with a live range over the node
//!   timeline; [`crate::memplan::plan_arena`] packs them, making the fused
//!   kernel's no-workspace advantage a network-level peak-bytes number.
//! * **Hoisted filter transforms** — each layer's Winograd filter transform
//!   (`F̂ = G F Gᵀ`) is computed once and reused across batches/requests:
//!   functionally through [`TransformCache`] (bit-identical to the
//!   on-the-fly path, keyed by
//!   `kernels::filter_transform::transform_cache_key`), and in the plan as
//!   the cold-vs-steady time split plus the workspace the fused algorithms
//!   no longer need per execution.
//!
//! The `bench` crate's `resnet` binary runs the Conv2–Conv5 chain at each
//! batch size on both devices and writes `BENCH_resnet.json`; the `serve`
//! crate wraps a graph as a network-shaped request class.

use std::collections::HashMap;
use std::rc::Rc;

use gpusim::DeviceSpec;
use kernels::filter_transform::{transform_cache_key, TRANSFORM_TILE};
use tensor::{LayoutKind, Tensor4};

use crate::conv::{Algo, AlgoTiming, Conv, LAUNCH_OVERHEAD_S, MEM_EFF};
use crate::memplan::{plan_arena, ArenaPlan, ArenaPolicy, BufferReq};
use crate::reference::{conv2d_direct, ConvProblem};
use crate::resnet::RESNET_LAYERS;
use crate::transforms::Variant;
use crate::winograd_host::NonFusedPipeline;

/// 3×3 conv block multiplicities of ResNet-50 for Conv2–Conv5 (the weights
/// the serving mix already uses).
pub const RESNET50_REPS: [usize; 4] = [3, 4, 6, 3];

/// One convolution layer in the graph.
#[derive(Clone, Debug)]
pub struct ConvNode {
    pub name: String,
    pub problem: ConvProblem,
}

/// An inter-layer transition: channel remap plus optional 2×2 average
/// pooling (`hw_in == 2 * hw_out`), the stand-in for the 1×1/stride-2
/// shortcut convs between ResNet stages that are outside the paper's 3×3
/// scope. Functionally `out[n][co][y][x] = 0.5 · mean(window of channel
/// co % c_in)`; timed as one memory-bound pass over both tensors.
#[derive(Clone, Debug)]
pub struct TransitionNode {
    pub name: String,
    pub n: usize,
    pub c_in: usize,
    pub hw_in: usize,
    pub c_out: usize,
    pub hw_out: usize,
}

/// A node on the network timeline.
#[derive(Clone, Debug)]
pub enum NetNode {
    Conv(ConvNode),
    Transition(TransitionNode),
}

impl NetNode {
    pub fn name(&self) -> &str {
        match self {
            NetNode::Conv(c) => &c.name,
            NetNode::Transition(t) => &t.name,
        }
    }

    /// NCHW dims of this node's output tensor.
    pub fn out_dims(&self) -> [usize; 4] {
        match self {
            NetNode::Conv(c) => [c.problem.n, c.problem.k, c.problem.h, c.problem.w],
            NetNode::Transition(t) => [t.n, t.c_out, t.hw_out, t.hw_out],
        }
    }

    fn out_len(&self) -> usize {
        self.out_dims().iter().product()
    }
}

/// An executable network: a chain of conv and transition nodes at one batch
/// size. Built with the consuming [`NetGraph::conv`]/[`NetGraph::transition`]
/// chain or the [`NetGraph::resnet50`]/[`NetGraph::smoke`] constructors.
#[derive(Clone, Debug)]
pub struct NetGraph {
    pub name: String,
    pub batch: usize,
    pub nodes: Vec<NetNode>,
    cur_c: usize,
    cur_hw: usize,
}

impl NetGraph {
    /// Empty graph whose input tensor is NCHW `[batch, c0, hw0, hw0]`.
    pub fn new(name: &str, batch: usize, c0: usize, hw0: usize) -> Self {
        NetGraph {
            name: name.to_string(),
            batch,
            nodes: Vec::new(),
            cur_c: c0,
            cur_hw: hw0,
        }
    }

    /// Append a 3×3 pad-1 conv taking the current shape to `k` channels.
    pub fn conv(self, k: usize) -> Self {
        let name = format!("conv{}x{}@{}", self.cur_c, k, self.nodes.len());
        self.conv_named(&name, k)
    }

    /// [`NetGraph::conv`] with an explicit layer name.
    pub fn conv_named(mut self, name: &str, k: usize) -> Self {
        let problem = ConvProblem::resnet3x3(self.batch, self.cur_c, self.cur_hw, k);
        self.nodes.push(NetNode::Conv(ConvNode {
            name: name.to_string(),
            problem,
        }));
        self.cur_c = k;
        self
    }

    /// Append a transition to `c_out` channels at spatial size `hw_out`,
    /// which must equal the current size (channel remap only) or half it
    /// (2×2 average pooling).
    pub fn transition(mut self, c_out: usize, hw_out: usize) -> Self {
        assert!(
            hw_out == self.cur_hw || 2 * hw_out == self.cur_hw,
            "transition supports same-size or 2x pooled outputs \
             (got {} -> {hw_out})",
            self.cur_hw
        );
        let name = format!("trans{}x{}@{}", c_out, hw_out, self.nodes.len());
        self.nodes.push(NetNode::Transition(TransitionNode {
            name,
            n: self.batch,
            c_in: self.cur_c,
            hw_in: self.cur_hw,
            c_out,
            hw_out,
        }));
        self.cur_c = c_out;
        self.cur_hw = hw_out;
        self
    }

    /// The Table 1 Conv2–Conv5 chain with ResNet-50 block multiplicities
    /// (3/4/6/3 repeated 3×3 layers, pooling transitions between stages).
    pub fn resnet50(batch: usize) -> Self {
        let mut g = NetGraph::new(
            "resnet50-3x3",
            batch,
            RESNET_LAYERS[0].c,
            RESNET_LAYERS[0].hw,
        );
        for (li, layer) in RESNET_LAYERS.iter().enumerate() {
            if li > 0 {
                g = g.transition(layer.c, layer.hw);
            }
            for rep in 0..RESNET50_REPS[li] {
                g = g.conv_named(&format!("{}.{}", layer.name, rep + 1), layer.c);
            }
        }
        g
    }

    /// A scaled-down graph for smoke tests and CI: three fused-eligible
    /// convs around a channel-remap transition, two orders of magnitude
    /// less simulation work than one ResNet stage.
    pub fn smoke(batch: usize) -> Self {
        NetGraph::new("smoke", batch, 32, 8)
            .conv_named("SmokeA.1", 64)
            .conv_named("SmokeA.2", 64)
            .transition(32, 8)
            .conv_named("SmokeB.1", 64)
    }

    /// Channel count of the current (last) node's output — what the next
    /// appended layer will consume.
    pub fn out_channels(&self) -> usize {
        self.cur_c
    }

    /// Spatial size of the current (last) node's output.
    pub fn out_hw(&self) -> usize {
        self.cur_hw
    }

    /// NCHW dims of the network's input tensor.
    pub fn input_dims(&self) -> [usize; 4] {
        match self.nodes.first() {
            Some(NetNode::Conv(c)) => [c.problem.n, c.problem.c, c.problem.h, c.problem.w],
            Some(NetNode::Transition(t)) => [t.n, t.c_in, t.hw_in, t.hw_in],
            None => [self.batch, self.cur_c, self.cur_hw, self.cur_hw],
        }
    }

    /// Number of conv nodes (the length of per-layer algorithm/filter
    /// slices).
    pub fn num_convs(&self) -> usize {
        self.conv_nodes().count()
    }

    /// Conv nodes with their node-timeline indices, in execution order.
    pub fn conv_nodes(&self) -> impl Iterator<Item = (usize, &ConvNode)> {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            NetNode::Conv(c) => Some((i, c)),
            NetNode::Transition(_) => None,
        })
    }

    /// Direct-convolution FLOPs of the whole network (the figure of merit
    /// network TFLOPS divides by).
    pub fn direct_flops(&self) -> f64 {
        self.conv_nodes()
            .map(|(_, c)| c.problem.direct_flops())
            .sum()
    }

    /// Deterministic random KCRS filters, one per conv node.
    pub fn random_filters(&self, seed: u64) -> Vec<Tensor4> {
        self.conv_nodes()
            .enumerate()
            .map(|(i, (_, c))| {
                let p = &c.problem;
                Tensor4::random(
                    LayoutKind::Kcrs,
                    [p.k, p.c, 3, 3],
                    -1.0,
                    1.0,
                    seed.wrapping_add(i as u64),
                )
            })
            .collect()
    }

    /// Deterministic random NCHW network input.
    pub fn random_input(&self, seed: u64) -> Tensor4 {
        Tensor4::random(LayoutKind::Nchw, self.input_dims(), -1.0, 1.0, seed)
    }

    /// Execute the network functionally on the simulated device with one
    /// algorithm per conv node. With a [`TransformCache`], fused layers run
    /// through [`Conv::run_fused_pretransformed`] on the cached `F̂` —
    /// bit-identical to the per-layer [`Conv::run`] path, since `run` is
    /// exactly transform-then-execute.
    pub fn execute(
        &self,
        device: &DeviceSpec,
        algos: &[Algo],
        input: &Tensor4,
        filters: &[Tensor4],
        mut cache: Option<&mut TransformCache>,
    ) -> Tensor4 {
        assert_eq!(algos.len(), self.num_convs(), "one algo per conv node");
        assert_eq!(filters.len(), self.num_convs(), "one filter per conv node");
        assert_eq!(input.dims(), self.input_dims());
        let mut cur = input.clone();
        let mut ci = 0;
        for node in &self.nodes {
            match node {
                NetNode::Conv(c) => {
                    let conv = Conv::new(c.problem, device.clone());
                    let algo = algos[ci];
                    let fused = matches!(algo, Algo::OursFused | Algo::CudnnWinograd);
                    cur = match (fused, cache.as_mut()) {
                        (true, Some(tc)) => {
                            let tf = tc.get_or_insert(&conv, &filters[ci]);
                            conv.run_fused_pretransformed(algo, &cur, &tf)
                        }
                        _ => conv.run(algo, &cur, &filters[ci]).output,
                    };
                    ci += 1;
                }
                NetNode::Transition(t) => cur = run_transition(t, &cur),
            }
        }
        cur
    }

    /// Host-reference execution: [`conv2d_direct`] for every conv, the same
    /// transition arithmetic as [`NetGraph::execute`].
    pub fn execute_reference(&self, input: &Tensor4, filters: &[Tensor4]) -> Tensor4 {
        assert_eq!(filters.len(), self.num_convs());
        assert_eq!(input.dims(), self.input_dims());
        let mut cur = input.clone();
        let mut ci = 0;
        for node in &self.nodes {
            match node {
                NetNode::Conv(c) => {
                    cur = conv2d_direct(&c.problem, &cur, &filters[ci]);
                    ci += 1;
                }
                NetNode::Transition(t) => cur = run_transition(t, &cur),
            }
        }
        cur
    }

    /// Plan the network on `device` under `policy`: select per-layer
    /// algorithms, split transform vs kernel time, and pack the arena under
    /// every (policy × hoisting) combination.
    pub fn plan(&self, device: &DeviceSpec, policy: AlgoPolicy, timer: &dyn LayerTimer) -> NetPlan {
        let mut choices = Vec::new();
        let mut probe_s = 0.0;
        for (node, c) in self.conv_nodes() {
            let conv = Conv::new(c.problem, device.clone());
            let algos = policy.candidates(&c.problem, device);
            assert!(!algos.is_empty(), "{}: no candidate algorithms", c.name);
            let mut best: Option<AlgoTiming> = None;
            for &algo in &algos {
                let t = timer.time(&conv, algo);
                probe_s += t.time_s;
                if best.as_ref().is_none_or(|b| t.time_s < b.time_s) {
                    best = Some(t);
                }
            }
            let timing = best.expect("non-empty candidate set");
            let transform_s: f64 = timing
                .phases
                .iter()
                .filter(|(name, _)| name == "filter_transform")
                .map(|(_, t)| t)
                .sum();
            let workspace_bytes = conv.workspace_bytes(timing.algo);
            let (workspace_hoisted_bytes, hoisted_bytes) = match timing.algo {
                // The 16KC transformed filter moves from per-execution
                // workspace into the persistent cache.
                Algo::OursFused | Algo::CudnnWinograd => (0, workspace_bytes),
                // Only the F(4×4) transformed-filter slab hoists; the
                // input/output transform buffers stay per-execution.
                Algo::WinogradNonfused => {
                    let tf = NonFusedPipeline::plan(&c.problem, Variant::F4x4)
                        .transformed_filter_len as u64
                        * 4;
                    (workspace_bytes - tf, tf)
                }
                _ => (workspace_bytes, 0),
            };
            choices.push(LayerChoice {
                node,
                name: c.name.clone(),
                algo: timing.algo,
                time_s: timing.time_s,
                transform_s,
                kernel_s: timing.time_s - transform_s,
                workspace_bytes,
                workspace_hoisted_bytes,
                hoisted_bytes,
            });
        }
        let transitions_s: f64 = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                NetNode::Transition(t) => Some(transition_time_s(t, device)),
                NetNode::Conv(_) => None,
            })
            .sum();
        let transform_total_s: f64 = choices.iter().map(|c| c.transform_s).sum();
        let time_cold_s = choices.iter().map(|c| c.time_s).sum::<f64>() + transitions_s;
        let time_steady_s = choices.iter().map(|c| c.kernel_s).sum::<f64>() + transitions_s;
        let reqs_hoisted = self.arena_requests(&choices, true);
        let reqs_unhoisted = self.arena_requests(&choices, false);
        NetPlan {
            graph: self.name.clone(),
            device: device.name.to_string(),
            batch: self.batch,
            policy: policy.label(),
            transitions_s,
            probe_s,
            time_cold_s,
            time_steady_s,
            transform_total_s,
            hoisted_bytes: choices.iter().map(|c| c.hoisted_bytes).sum(),
            arena_reuse: ArenaCase::new(reqs_hoisted.clone(), ArenaPolicy::Reuse),
            arena_noreuse: ArenaCase::new(reqs_hoisted, ArenaPolicy::NoReuse),
            arena_reuse_unhoisted: ArenaCase::new(reqs_unhoisted, ArenaPolicy::Reuse),
            choices,
        }
    }

    /// The buffer requests one network execution makes: the input tensor,
    /// every node's output (live until its consumer finishes), and each
    /// conv's workspace (live only during its node). `hoisted` selects the
    /// transform-cache workspace accounting.
    pub fn arena_requests(&self, choices: &[LayerChoice], hoisted: bool) -> Vec<BufferReq> {
        assert_eq!(choices.len(), self.num_convs());
        let last = self.nodes.len().saturating_sub(1);
        let mut reqs = vec![BufferReq {
            name: "act:in".into(),
            bytes: self.input_dims().iter().product::<usize>() as u64 * 4,
            first_use: 0,
            last_use: 0,
        }];
        let mut ci = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            if let NetNode::Conv(c) = node {
                let choice = &choices[ci];
                assert_eq!(choice.node, i, "choices must match this graph");
                reqs.push(BufferReq {
                    name: format!("ws:{}", c.name),
                    bytes: if hoisted {
                        choice.workspace_hoisted_bytes
                    } else {
                        choice.workspace_bytes
                    },
                    first_use: i,
                    last_use: i,
                });
                ci += 1;
            }
            reqs.push(BufferReq {
                name: format!("act:{}", node.name()),
                bytes: node.out_len() as u64 * 4,
                first_use: i,
                last_use: (i + 1).min(last),
            });
        }
        reqs
    }
}

/// Execute one transition on the host: channel remap (`co % c_in`), 2×2
/// average pooling when the spatial size halves, everything scaled by 0.5
/// to keep activations from growing across stages.
pub fn run_transition(t: &TransitionNode, input: &Tensor4) -> Tensor4 {
    assert_eq!(input.dims(), [t.n, t.c_in, t.hw_in, t.hw_in]);
    let pool = t.hw_in == 2 * t.hw_out;
    assert!(pool || t.hw_in == t.hw_out);
    Tensor4::from_fn(
        LayoutKind::Nchw,
        [t.n, t.c_out, t.hw_out, t.hw_out],
        |n, co, y, x| {
            let ci = co % t.c_in;
            if pool {
                let s = input.get([n, ci, 2 * y, 2 * x])
                    + input.get([n, ci, 2 * y, 2 * x + 1])
                    + input.get([n, ci, 2 * y + 1, 2 * x])
                    + input.get([n, ci, 2 * y + 1, 2 * x + 1]);
                0.125 * s
            } else {
                0.5 * input.get([n, ci, y, x])
            }
        },
    )
}

/// Modeled transition time: one memory-bound pass reading the input and
/// writing the output at the achievable DRAM bandwidth.
pub fn transition_time_s(t: &TransitionNode, device: &DeviceSpec) -> f64 {
    let bytes =
        (t.n * t.c_in * t.hw_in * t.hw_in + t.n * t.c_out * t.hw_out * t.hw_out) as f64 * 4.0;
    bytes / (device.dram_bw * MEM_EFF) + LAUNCH_OVERHEAD_S
}

/// Candidate algorithms for one layer, mirroring the serve planner's
/// breakeven pruning: the fused kernels where the emitters' divisibility
/// constraints hold, implicit precomp GEMM always, and the nonfused F(4×4)
/// pipeline only above the device's break-even `K`.
pub fn candidates(p: &ConvProblem, device: &DeviceSpec) -> Vec<Algo> {
    let fx_ok = (p.c * p.k).is_multiple_of(256);
    let mut v = Vec::new();
    if fx_ok && p.c.is_multiple_of(8) && p.k.is_multiple_of(64) {
        v.push(Algo::OursFused);
    }
    if fx_ok {
        v.push(Algo::CudnnWinograd);
    }
    v.push(Algo::ImplicitPrecompGemm);
    if perfmodel::nonfused_viable(device, p.k as f64) {
        v.push(Algo::WinogradNonfused);
    }
    v
}

/// How the planner picks each layer's algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoPolicy {
    /// Fastest candidate per layer, paper's kernel included.
    Auto,
    /// Fastest candidate per layer *excluding* the paper's kernel — the
    /// cuDNN-like library baseline.
    Baseline,
    /// One algorithm for every layer.
    Fixed(Algo),
}

impl AlgoPolicy {
    /// The candidate set this policy evaluates for `p`.
    pub fn candidates(self, p: &ConvProblem, device: &DeviceSpec) -> Vec<Algo> {
        match self {
            AlgoPolicy::Auto => candidates(p, device),
            AlgoPolicy::Baseline => candidates(p, device)
                .into_iter()
                .filter(|&a| a != Algo::OursFused)
                .collect(),
            AlgoPolicy::Fixed(a) => vec![a],
        }
    }

    /// Stable label for reports.
    pub fn label(self) -> String {
        match self {
            AlgoPolicy::Auto => "auto".into(),
            AlgoPolicy::Baseline => "baseline".into(),
            AlgoPolicy::Fixed(a) => format!("fixed:{}", a.name()),
        }
    }
}

/// Timing oracle the planner probes candidates through. The default
/// [`DirectTimer`] simulates inline; `bench` injects a simcache-memoized
/// table so planning is cheap, warm, and byte-deterministic.
pub trait LayerTimer {
    fn time(&self, conv: &Conv, algo: Algo) -> AlgoTiming;
}

/// [`LayerTimer`] that runs [`Conv::time`] inline.
pub struct DirectTimer;

impl LayerTimer for DirectTimer {
    fn time(&self, conv: &Conv, algo: Algo) -> AlgoTiming {
        conv.time(algo)
    }
}

/// One layer's planned execution.
#[derive(Clone, Debug)]
pub struct LayerChoice {
    /// Node-timeline index in the graph.
    pub node: usize,
    pub name: String,
    pub algo: Algo,
    /// Full per-execution time including the filter transform, seconds.
    pub time_s: f64,
    /// Filter-transform share of `time_s` (what hoisting amortizes away).
    pub transform_s: f64,
    /// `time_s − transform_s`: the steady-state per-execution time.
    pub kernel_s: f64,
    /// Arena workspace with transforms computed per execution.
    pub workspace_bytes: u64,
    /// Arena workspace with transforms hoisted to the persistent cache.
    pub workspace_hoisted_bytes: u64,
    /// Persistent bytes the hoisted transform occupies for this layer.
    pub hoisted_bytes: u64,
}

/// One packed arena: the requests and the plan over them.
#[derive(Clone, Debug)]
pub struct ArenaCase {
    pub reqs: Vec<BufferReq>,
    pub plan: ArenaPlan,
}

impl ArenaCase {
    fn new(reqs: Vec<BufferReq>, policy: ArenaPolicy) -> Self {
        let plan = plan_arena(&reqs, policy);
        ArenaCase { reqs, plan }
    }

    /// Re-verify the arena invariants (see [`ArenaPlan::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        self.plan.validate(&self.reqs)
    }
}

/// The planned network: per-layer choices, end-to-end times under both
/// transform regimes, and the packed arenas.
#[derive(Clone, Debug)]
pub struct NetPlan {
    pub graph: String,
    pub device: String,
    pub batch: usize,
    /// [`AlgoPolicy::label`] of the policy that built this plan.
    pub policy: String,
    pub choices: Vec<LayerChoice>,
    /// Modeled time of all transition nodes, seconds.
    pub transitions_s: f64,
    /// Total candidate-probing time (every evaluated algorithm), seconds —
    /// the cost a serving planner charges for building this plan cold.
    pub probe_s: f64,
    /// End-to-end time with filter transforms recomputed per execution
    /// (cold cache / cuDNN-style per-call behaviour), seconds.
    pub time_cold_s: f64,
    /// End-to-end time with transforms served from the hoisted cache.
    pub time_steady_s: f64,
    /// One-time transform cost the cache amortizes, seconds.
    pub transform_total_s: f64,
    /// Persistent bytes the hoisted transforms occupy (outside the arena).
    pub hoisted_bytes: u64,
    /// Workspace arena, transforms hoisted, linear-scan reuse.
    pub arena_reuse: ArenaCase,
    /// Same requests, bump allocation (peak = sum) — the reuse baseline.
    pub arena_noreuse: ArenaCase,
    /// Linear-scan reuse with per-execution transform workspace — what the
    /// arena costs without the hoisting cache.
    pub arena_reuse_unhoisted: ArenaCase,
}

impl NetPlan {
    /// Network TFLOPS at steady state against direct-conv FLOPs.
    pub fn tflops_steady(&self, graph: &NetGraph) -> f64 {
        graph.direct_flops() / self.time_steady_s / 1e12
    }

    /// Re-verify every invariant the planner promises: arena validity,
    /// reuse ≤ no-reuse, hoisted ≤ unhoisted, per-layer sum-consistency
    /// with the end-to-end numbers, and cold = steady + transforms.
    pub fn validate(&self) -> Result<(), String> {
        self.arena_reuse.validate()?;
        self.arena_noreuse.validate()?;
        self.arena_reuse_unhoisted.validate()?;
        if self.arena_reuse.plan.peak_bytes > self.arena_noreuse.plan.peak_bytes {
            return Err("reuse arena peaks above bump allocation".into());
        }
        if self.arena_reuse.plan.peak_bytes > self.arena_reuse_unhoisted.plan.peak_bytes {
            return Err("hoisting transforms grew the arena".into());
        }
        let cold = self.choices.iter().map(|c| c.time_s).sum::<f64>() + self.transitions_s;
        let steady = self.choices.iter().map(|c| c.kernel_s).sum::<f64>() + self.transitions_s;
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-30);
        if !close(cold, self.time_cold_s) {
            return Err(format!(
                "per-layer sum {} disagrees with end-to-end cold {}",
                cold, self.time_cold_s
            ));
        }
        if !close(steady, self.time_steady_s) {
            return Err(format!(
                "per-layer kernel sum {} disagrees with end-to-end steady {}",
                steady, self.time_steady_s
            ));
        }
        if !close(
            self.time_steady_s + self.transform_total_s,
            self.time_cold_s,
        ) {
            return Err("steady + transforms != cold".into());
        }
        if self.time_steady_s > self.time_cold_s {
            return Err("hoisting transforms slowed the network".into());
        }
        Ok(())
    }
}

/// The hoisted filter-transform cache: content-addressed `F̂` slabs, shared
/// across layers, batches, and requests. Keys are
/// `kernels::filter_transform::transform_cache_key` over the exact CRSK
/// filter bits, so a changed filter (or transform tile) can never replay a
/// stale transform.
#[derive(Default)]
pub struct TransformCache {
    map: HashMap<String, Rc<Vec<f32>>>,
    pub hits: u64,
    pub misses: u64,
}

impl TransformCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// The content key for `problem`'s filter.
    pub fn key(problem: &ConvProblem, filter: &Tensor4) -> String {
        let crsk = filter.to_layout(LayoutKind::Crsk);
        transform_cache_key(
            problem.c as u32,
            problem.k as u32,
            TRANSFORM_TILE,
            crsk.as_slice(),
        )
        .hex()
    }

    /// The hoisted transform for `conv`'s filter, computing it on first use.
    pub fn get_or_insert(&mut self, conv: &Conv, filter: &Tensor4) -> Rc<Vec<f32>> {
        let key = Self::key(&conv.problem, filter);
        if let Some(tf) = self.map.get(&key) {
            self.hits += 1;
            return Rc::clone(tf);
        }
        self.misses += 1;
        let tf = Rc::new(conv.transform_filter(filter));
        self.map.insert(key, Rc::clone(&tf));
        tf
    }

    /// Number of distinct transforms held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_graph_shape() {
        let g = NetGraph::resnet50(32);
        assert_eq!(g.num_convs(), 16, "3+4+6+3 conv layers");
        assert_eq!(g.nodes.len(), 19, "16 convs + 3 transitions");
        assert_eq!(g.input_dims(), [32, 64, 56, 56]);
        // Last node is a Conv5 layer: 7×7 spatial, 512 channels.
        assert_eq!(g.nodes.last().unwrap().out_dims(), [32, 512, 7, 7]);
        // Every conv is fused-eligible and chain shapes are consistent.
        let mut prev_k = 64;
        for (_, c) in g.conv_nodes() {
            assert_eq!(c.problem.c % 8, 0);
            assert_eq!(c.problem.k % 64, 0);
            assert!(c.problem.c == prev_k || c.problem.c == prev_k * 2);
            prev_k = c.problem.k;
        }
    }

    #[test]
    fn transition_pools_and_remaps() {
        let t = TransitionNode {
            name: "t".into(),
            n: 1,
            c_in: 2,
            hw_in: 4,
            c_out: 4,
            hw_out: 2,
        };
        let input = Tensor4::from_fn(LayoutKind::Nchw, [1, 2, 4, 4], |_, c, y, x| {
            (c * 100 + y * 4 + x) as f32
        });
        let out = run_transition(&t, &input);
        assert_eq!(out.dims(), [1, 4, 2, 2]);
        // Channel 2 replicates channel 0; pooling averages the 2×2 window
        // and scales by 0.5.
        let want00 = 0.125 * (0.0 + 1.0 + 4.0 + 5.0);
        assert_eq!(out.get([0, 0, 0, 0]), want00);
        assert_eq!(out.get([0, 2, 0, 0]), want00);
        // Identity-size transition halves values.
        let t2 = TransitionNode {
            name: "t2".into(),
            n: 1,
            c_in: 2,
            hw_in: 4,
            c_out: 2,
            hw_out: 4,
        };
        let out2 = run_transition(&t2, &input);
        assert_eq!(out2.get([0, 1, 2, 3]), 0.5 * input.get([0, 1, 2, 3]));
    }

    #[test]
    fn candidate_pruning_follows_breakeven_and_divisibility() {
        let v100 = DeviceSpec::v100();
        // Conv2: K=64 below breakeven, fused eligible.
        let c2 = ConvProblem::resnet3x3(32, 64, 56, 64);
        let algos = candidates(&c2, &v100);
        assert!(algos.contains(&Algo::OursFused));
        assert!(!algos.contains(&Algo::WinogradNonfused));
        // Conv5: K=512 above breakeven.
        let c5 = ConvProblem::resnet3x3(32, 512, 7, 512);
        assert!(candidates(&c5, &v100).contains(&Algo::WinogradNonfused));
        // Ragged channels: no fused kernels, GEMM fallback remains.
        let ragged = ConvProblem::resnet3x3(2, 3, 8, 5);
        let algos = candidates(&ragged, &v100);
        assert!(!algos.contains(&Algo::OursFused));
        assert!(!algos.contains(&Algo::CudnnWinograd));
        assert!(algos.contains(&Algo::ImplicitPrecompGemm));
        // Baseline policy never picks the paper's kernel.
        assert!(!AlgoPolicy::Baseline
            .candidates(&c2, &v100)
            .contains(&Algo::OursFused));
    }

    #[test]
    fn smoke_plan_validates_and_hoisting_helps() {
        let g = NetGraph::smoke(32);
        let dev = DeviceSpec::v100();
        let plan = g.plan(&dev, AlgoPolicy::Auto, &DirectTimer);
        plan.validate().unwrap();
        assert_eq!(plan.choices.len(), 3);
        assert!(
            plan.transform_total_s > 0.0,
            "fused layers hoist transforms"
        );
        assert!(plan.time_steady_s < plan.time_cold_s);
        assert!(plan.probe_s > plan.time_cold_s - plan.transitions_s);
        assert!(plan.hoisted_bytes > 0);
        // The reuse arena must beat bump allocation on this 4-node chain.
        assert!(plan.arena_reuse.plan.peak_bytes < plan.arena_noreuse.plan.peak_bytes);
    }

    #[test]
    fn transform_cache_hits_on_repeated_layers() {
        let g = NetGraph::smoke(32);
        let dev = DeviceSpec::v100();
        let filters = g.random_filters(11);
        let input = g.random_input(12);
        let algos = vec![Algo::OursFused; g.num_convs()];
        let mut cache = TransformCache::new();
        let a = g.execute(&dev, &algos, &input, &filters, Some(&mut cache));
        assert_eq!(cache.misses, 3);
        assert_eq!(cache.hits, 0);
        // Second request over the same weights: all transforms replayed.
        let b = g.execute(&dev, &algos, &input, &filters, Some(&mut cache));
        assert_eq!(cache.misses, 3);
        assert_eq!(cache.hits, 3);
        assert_eq!(a.as_slice(), b.as_slice(), "replayed transforms bit-equal");
    }
}
