//! FFT-based convolution on the host — the reference for cuDNN's `FFT` and
//! `FFT_TILING` baselines (§7.3, Figures 12–14).
//!
//! Implements an iterative radix-2 complex FFT from scratch, a 2-D transform
//! built from row/column passes, and frequency-domain cross-correlation with
//! channel accumulation. Padded transform sizes and the tiled variant's
//! 32×32 tiling match the structure cuDNN uses, so their workspace formulas
//! (Fig. 14) and traffic models (`perfmodel`) line up with this code.

use crate::reference::ConvProblem;
use tensor::{LayoutKind, Tensor4};

/// One complex number, kept as a plain pair to stay dependency-free.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cpx {
    pub re: f32,
    pub im: f32,
}

impl std::ops::Mul for Cpx {
    type Output = Cpx;
    #[inline]
    fn mul(self, o: Cpx) -> Cpx {
        Cpx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Add for Cpx {
    type Output = Cpx;
    #[inline]
    fn add(self, o: Cpx) -> Cpx {
        Cpx::new(self.re + o.re, self.im + o.im)
    }
}

impl Cpx {
    pub fn new(re: f32, im: f32) -> Self {
        Cpx { re, im }
    }

    #[inline]
    pub fn conj(self) -> Cpx {
        Cpx::new(self.re, -self.im)
    }

    #[inline]
    fn sub_c(self, o: Cpx) -> Cpx {
        Cpx::new(self.re - o.re, self.im - o.im)
    }
}

/// In-place iterative radix-2 FFT. `data.len()` must be a power of two.
/// `inverse` applies the conjugate transform *without* the 1/N scale
/// (callers scale once at the end).
pub fn fft_inplace(data: &mut [Cpx], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        if (j as usize) > i {
            data.swap(i, j as usize);
        }
    }
    let sign = if inverse { 1.0f64 } else { -1.0f64 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Cpx::new(ang.cos() as f32, ang.sin() as f32);
        for start in (0..n).step_by(len) {
            let mut w = Cpx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u.sub_c(v);
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// 2-D FFT over a `size × size` row-major complex buffer.
pub fn fft2d(data: &mut [Cpx], size: usize, inverse: bool) {
    assert_eq!(data.len(), size * size);
    let mut col = vec![Cpx::default(); size];
    for row in data.chunks_exact_mut(size) {
        fft_inplace(row, inverse);
    }
    for c in 0..size {
        for r in 0..size {
            col[r] = data[r * size + c];
        }
        fft_inplace(&mut col, inverse);
        for r in 0..size {
            data[r * size + c] = col[r];
        }
    }
}

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Transform size cuDNN's full-image `FFT` algorithm needs: the padded image
/// (`H + 2·pad`) plus filter wrap-around, rounded up to a power of two.
pub fn fft_size_full(p: &ConvProblem) -> usize {
    next_pow2(p.h + 2 * p.pad + p.r - 1)
}

/// FFT-based convolution over full images. Input NCHW, filter KCRS.
pub fn conv2d_fft(p: &ConvProblem, input: &Tensor4, filter: &Tensor4) -> Tensor4 {
    conv2d_fft_tiled(p, input, filter, fft_size_full(p).max(p.r))
}

/// FFT convolution with `tile`-sized transforms (cuDNN `FFT_TILING` uses
/// 32×32 tiles). `tile` must be a power of two ≥ `r`; the usable output per
/// tile is `tile - r + 1` (overlap-save).
pub fn conv2d_fft_tiled(
    p: &ConvProblem,
    input: &Tensor4,
    filter: &Tensor4,
    tile: usize,
) -> Tensor4 {
    assert!(tile.is_power_of_two() && tile >= p.r);
    let (oh, ow) = (p.out_h(), p.out_w());
    let step = tile - p.r + 1; // valid outputs per tile
    let sz = tile * tile;
    let mut out = Tensor4::zeros(LayoutKind::Nchw, [p.n, p.k, oh, ow]);

    // Filter spectra: K×C, each tile×tile. The filter is conjugated in the
    // frequency domain, which realizes cross-correlation.
    let mut fspec = vec![Cpx::default(); p.k * p.c * sz];
    for k in 0..p.k {
        for c in 0..p.c {
            let buf = &mut fspec[(k * p.c + c) * sz..(k * p.c + c + 1) * sz];
            for r in 0..p.r {
                for s in 0..p.s {
                    buf[r * tile + s] = Cpx::new(filter.get([k, c, r, s]), 0.0);
                }
            }
            fft2d(buf, tile, false);
            for v in buf.iter_mut() {
                *v = v.conj();
            }
        }
    }

    let scale = 1.0 / (sz as f32);
    let mut ispec = vec![Cpx::default(); sz];
    let mut acc = vec![Cpx::default(); p.k * sz];
    for n in 0..p.n {
        for ty in (0..oh).step_by(step) {
            for tx in (0..ow).step_by(step) {
                acc.fill(Cpx::default());
                for c in 0..p.c {
                    // Load the input window for this tile (overlap-save).
                    for dy in 0..tile {
                        for dx in 0..tile {
                            let iy = (ty + dy) as isize - p.pad as isize;
                            let ix = (tx + dx) as isize - p.pad as isize;
                            let v =
                                if iy >= 0 && (iy as usize) < p.h && ix >= 0 && (ix as usize) < p.w
                                {
                                    input.get([n, c, iy as usize, ix as usize])
                                } else {
                                    0.0
                                };
                            ispec[dy * tile + dx] = Cpx::new(v, 0.0);
                        }
                    }
                    fft2d(&mut ispec, tile, false);
                    for k in 0..p.k {
                        let fs = &fspec[(k * p.c + c) * sz..(k * p.c + c + 1) * sz];
                        let a = &mut acc[k * sz..(k + 1) * sz];
                        for i in 0..sz {
                            a[i] = a[i] + ispec[i] * fs[i];
                        }
                    }
                }
                for k in 0..p.k {
                    let a = &mut acc[k * sz..(k + 1) * sz];
                    fft2d(a, tile, true);
                    for dy in 0..step.min(oh - ty) {
                        for dx in 0..step.min(ow - tx) {
                            out.set([n, k, ty + dy, tx + dx], a[dy * tile + dx].re * scale);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv2d_direct;
    use tensor::allclose;

    #[test]
    fn fft_round_trip() {
        let mut data: Vec<Cpx> = (0..16)
            .map(|i| Cpx::new((i as f32).sin(), (i as f32).cos()))
            .collect();
        let orig = data.clone();
        fft_inplace(&mut data, false);
        fft_inplace(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re / 16.0 - b.re).abs() < 1e-5);
            assert!((a.im / 16.0 - b.im).abs() < 1e-5);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Cpx::default(); 8];
        data[0] = Cpx::new(1.0, 0.0);
        fft_inplace(&mut data, false);
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-6 && v.im.abs() < 1e-6);
        }
    }

    #[test]
    fn fft2d_parseval_sanity() {
        let size = 8;
        let mut data: Vec<Cpx> = (0..size * size)
            .map(|i| Cpx::new((i as f32 * 0.31).sin(), 0.0))
            .collect();
        let energy_t: f32 = data.iter().map(|c| c.re * c.re + c.im * c.im).sum();
        fft2d(&mut data, size, false);
        let energy_f: f32 = data.iter().map(|c| c.re * c.re + c.im * c.im).sum();
        assert!((energy_f / (size * size) as f32 - energy_t).abs() / energy_t < 1e-4);
    }

    #[test]
    fn fft_conv_matches_direct() {
        for (n, c, hw, k) in [(1, 2, 6, 2), (2, 3, 8, 2), (1, 1, 7, 1)] {
            let p = ConvProblem::resnet3x3(n, c, hw, k);
            let input = Tensor4::random(LayoutKind::Nchw, [n, c, hw, hw], -1.0, 1.0, 41);
            let filter = Tensor4::random(LayoutKind::Kcrs, [k, c, 3, 3], -1.0, 1.0, 42);
            let want = conv2d_direct(&p, &input, &filter);
            let got = conv2d_fft(&p, &input, &filter);
            assert!(
                allclose(want.as_slice(), got.as_slice(), 1e-3, 1e-3),
                "({n},{c},{hw},{k}): {}",
                tensor::compare(want.as_slice(), got.as_slice(), 1e-3, 1e-3)
            );
        }
    }

    #[test]
    fn tiled_fft_matches_direct() {
        // 14×14 image with 8×8 tiles: exercises overlap-save across tiles.
        let p = ConvProblem::resnet3x3(1, 3, 14, 2);
        let input = Tensor4::random(LayoutKind::Nchw, [1, 3, 14, 14], -1.0, 1.0, 51);
        let filter = Tensor4::random(LayoutKind::Kcrs, [2, 3, 3, 3], -1.0, 1.0, 52);
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv2d_fft_tiled(&p, &input, &filter, 8);
        assert!(allclose(want.as_slice(), got.as_slice(), 1e-3, 1e-3));
    }

    #[test]
    fn full_fft_size_for_resnet_layers() {
        // Conv5 (7×7, pad 1) needs 16; Conv2 (56×56, pad 1) needs 64.
        assert_eq!(fft_size_full(&ConvProblem::resnet3x3(1, 1, 7, 1)), 16);
        assert_eq!(fft_size_full(&ConvProblem::resnet3x3(1, 1, 56, 1)), 64);
        assert_eq!(fft_size_full(&ConvProblem::resnet3x3(1, 1, 28, 1)), 32);
    }
}
