//! `memplan` — live-range workspace planning for the network runtime.
//!
//! A network execution needs one device buffer per inter-layer activation
//! plus each layer's algorithm workspace. Buffers have *live ranges* —
//! inclusive `[first_use, last_use]` intervals over the graph's node
//! timeline — and two buffers may share arena space iff their ranges do not
//! overlap. [`plan_arena`] assigns every buffer an offset in a single
//! workspace arena under one of two policies:
//!
//! * [`ArenaPolicy::Reuse`] — greedy linear scan in `first_use` order:
//!   expired buffers release their slots back to a coalescing free list,
//!   new buffers take the first hole that fits (first-fit) and grow the
//!   arena only when no hole does. This is the classic linear-scan register
//!   allocator transplanted to byte ranges, and it is what makes the fused
//!   kernel's tiny workspace a *network-level* number: algorithms with
//!   multi-hundred-MB transform workspaces (`WINOGRAD_NONFUSED`, `GEMM`,
//!   Fig. 14) force the arena peak up even though the buffers are
//!   short-lived, while the fused path rides inside the activation
//!   footprint.
//! * [`ArenaPolicy::NoReuse`] — bump allocation, every buffer its own
//!   slot; the peak is the sum of all aligned sizes. The baseline that
//!   makes reuse measurable.
//!
//! The planner is deterministic (stable sort, index tie-break) and checked:
//! [`ArenaPlan::validate`] re-verifies the no-overlap/fit/peak invariants
//! from scratch, and `core/tests/memory_planner.rs` property-tests them
//! over hundreds of random request sets.

/// Arena slot alignment, bytes. Matches the simulator allocator's
/// granularity so planned offsets are always launch-legal.
pub const ARENA_ALIGN: u64 = 256;

/// One buffer the network execution needs, with its live range over the
/// node timeline (inclusive on both ends).
#[derive(Clone, Debug)]
pub struct BufferReq {
    /// Diagnostic name (`"act:conv2_0"`, `"ws:conv3_1"`, ...).
    pub name: String,
    /// Requested size; zero-sized requests get a zero-width slot.
    pub bytes: u64,
    /// First node index that touches the buffer.
    pub first_use: usize,
    /// Last node index that touches the buffer (`>= first_use`).
    pub last_use: usize,
}

impl BufferReq {
    /// Whether the live ranges of `self` and `other` overlap in time.
    pub fn overlaps(&self, other: &BufferReq) -> bool {
        self.first_use <= other.last_use && other.first_use <= self.last_use
    }

    fn aligned(&self) -> u64 {
        self.bytes.div_ceil(ARENA_ALIGN) * ARENA_ALIGN
    }
}

/// Buffer-assignment policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArenaPolicy {
    /// Linear-scan reuse: expired buffers' space is recycled.
    Reuse,
    /// Bump allocation: every buffer its own slot (peak = sum).
    NoReuse,
}

impl ArenaPolicy {
    pub fn name(self) -> &'static str {
        match self {
            ArenaPolicy::Reuse => "reuse",
            ArenaPolicy::NoReuse => "noreuse",
        }
    }
}

/// One buffer's placement: `[offset, offset + bytes)` in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    pub offset: u64,
    /// Aligned slot extent (`>=` the request's `bytes`).
    pub bytes: u64,
}

/// The planner's output: one slot per request (same order) plus the arena
/// high-water mark.
#[derive(Clone, Debug)]
pub struct ArenaPlan {
    pub policy: ArenaPolicy,
    pub slots: Vec<Slot>,
    /// Arena bytes needed: the maximum `offset + bytes` over all slots.
    pub peak_bytes: u64,
}

impl ArenaPlan {
    /// Re-verify the planner's invariants from scratch:
    /// every slot fits its request, stays aligned and inside the peak, and
    /// no two *simultaneously live* buffers overlap in the arena.
    /// Returns a description of the first violation, if any.
    pub fn validate(&self, reqs: &[BufferReq]) -> Result<(), String> {
        if self.slots.len() != reqs.len() {
            return Err(format!(
                "{} slots for {} requests",
                self.slots.len(),
                reqs.len()
            ));
        }
        for (r, s) in reqs.iter().zip(&self.slots) {
            if r.first_use > r.last_use {
                return Err(format!("{}: inverted live range", r.name));
            }
            if s.bytes < r.bytes {
                return Err(format!(
                    "{}: slot {} < request {}",
                    r.name, s.bytes, r.bytes
                ));
            }
            if s.offset % ARENA_ALIGN != 0 {
                return Err(format!("{}: misaligned offset {}", r.name, s.offset));
            }
            if s.offset + s.bytes > self.peak_bytes {
                return Err(format!("{}: slot exceeds arena peak", r.name));
            }
        }
        for i in 0..reqs.len() {
            for j in i + 1..reqs.len() {
                if reqs[i].bytes == 0 || reqs[j].bytes == 0 {
                    continue;
                }
                if !reqs[i].overlaps(&reqs[j]) {
                    continue;
                }
                let (a, b) = (&self.slots[i], &self.slots[j]);
                if a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes {
                    return Err(format!(
                        "{} and {} are live together but share arena bytes \
                         ([{}, {}) vs [{}, {}))",
                        reqs[i].name,
                        reqs[j].name,
                        a.offset,
                        a.offset + a.bytes,
                        b.offset,
                        b.offset + b.bytes,
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Sum of aligned sizes — the no-reuse peak, and an upper bound on any
/// policy's peak.
pub fn sum_aligned_bytes(reqs: &[BufferReq]) -> u64 {
    reqs.iter().map(BufferReq::aligned).sum()
}

/// Plan the arena for `reqs` under `policy`. Deterministic: the reuse scan
/// orders buffers by `(first_use, input index)` and the free list is kept
/// sorted by offset.
pub fn plan_arena(reqs: &[BufferReq], policy: ArenaPolicy) -> ArenaPlan {
    match policy {
        ArenaPolicy::NoReuse => {
            let mut off = 0u64;
            let slots = reqs
                .iter()
                .map(|r| {
                    let s = Slot {
                        offset: off,
                        bytes: r.aligned(),
                    };
                    off += s.bytes;
                    s
                })
                .collect();
            ArenaPlan {
                policy,
                slots,
                peak_bytes: off,
            }
        }
        ArenaPolicy::Reuse => plan_reuse(reqs),
    }
}

fn plan_reuse(reqs: &[BufferReq]) -> ArenaPlan {
    let mut order: Vec<usize> = (0..reqs.len()).collect();
    order.sort_by_key(|&i| (reqs[i].first_use, i));

    let mut slots = vec![
        Slot {
            offset: 0,
            bytes: 0
        };
        reqs.len()
    ];
    // Free holes, sorted by offset, non-adjacent (coalesced on insert).
    let mut holes: Vec<Slot> = Vec::new();
    // Indices placed and not yet expired, with their slots.
    let mut active: Vec<usize> = Vec::new();
    let mut arena_end = 0u64;

    for &i in &order {
        let req = &reqs[i];
        // Expire buffers whose live range ended before this one starts.
        let mut a = 0;
        while a < active.len() {
            let j = active[a];
            if reqs[j].last_use < req.first_use {
                active.swap_remove(a);
                if slots[j].bytes > 0 {
                    free_hole(&mut holes, slots[j]);
                }
            } else {
                a += 1;
            }
        }
        let size = req.aligned();
        if size == 0 {
            continue; // zero-width slot at offset 0, never validated against
        }
        // First-fit over the free list, else grow the arena.
        let slot = match holes.iter().position(|h| h.bytes >= size) {
            Some(h) => {
                let hole = holes[h];
                if hole.bytes == size {
                    holes.remove(h);
                } else {
                    holes[h] = Slot {
                        offset: hole.offset + size,
                        bytes: hole.bytes - size,
                    };
                }
                Slot {
                    offset: hole.offset,
                    bytes: size,
                }
            }
            None => {
                let s = Slot {
                    offset: arena_end,
                    bytes: size,
                };
                arena_end += size;
                s
            }
        };
        slots[i] = slot;
        active.push(i);
    }

    ArenaPlan {
        policy: ArenaPolicy::Reuse,
        slots,
        peak_bytes: arena_end,
    }
}

/// Insert a released slot into the sorted free list, coalescing with
/// adjacent holes.
fn free_hole(holes: &mut Vec<Slot>, slot: Slot) {
    let pos = holes.partition_point(|h| h.offset < slot.offset);
    holes.insert(pos, slot);
    // Coalesce with the successor, then the predecessor.
    if pos + 1 < holes.len() && holes[pos].offset + holes[pos].bytes == holes[pos + 1].offset {
        holes[pos].bytes += holes[pos + 1].bytes;
        holes.remove(pos + 1);
    }
    if pos > 0 && holes[pos - 1].offset + holes[pos - 1].bytes == holes[pos].offset {
        holes[pos - 1].bytes += holes[pos].bytes;
        holes.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(name: &str, bytes: u64, first: usize, last: usize) -> BufferReq {
        BufferReq {
            name: name.into(),
            bytes,
            first_use: first,
            last_use: last,
        }
    }

    #[test]
    fn disjoint_lifetimes_share_space() {
        let reqs = vec![req("a", 1000, 0, 1), req("b", 1000, 2, 3)];
        let plan = plan_arena(&reqs, ArenaPolicy::Reuse);
        plan.validate(&reqs).unwrap();
        assert_eq!(plan.slots[0].offset, plan.slots[1].offset, "b reuses a");
        assert_eq!(plan.peak_bytes, 1024);
        let bump = plan_arena(&reqs, ArenaPolicy::NoReuse);
        bump.validate(&reqs).unwrap();
        assert_eq!(bump.peak_bytes, 2048);
    }

    #[test]
    fn live_overlap_forces_separate_slots() {
        let reqs = vec![req("a", 512, 0, 2), req("b", 512, 1, 3)];
        let plan = plan_arena(&reqs, ArenaPolicy::Reuse);
        plan.validate(&reqs).unwrap();
        assert_ne!(plan.slots[0].offset, plan.slots[1].offset);
        assert_eq!(plan.peak_bytes, 1024);
    }

    #[test]
    fn holes_coalesce_for_large_successors() {
        // Two adjacent 512B buffers die; a 1024B buffer must fit in their
        // coalesced hole without growing the arena.
        let reqs = vec![
            req("a", 512, 0, 0),
            req("b", 512, 0, 0),
            req("c", 1024, 1, 1),
        ];
        let plan = plan_arena(&reqs, ArenaPolicy::Reuse);
        plan.validate(&reqs).unwrap();
        assert_eq!(plan.peak_bytes, 1024);
        assert_eq!(plan.slots[2].offset, 0);
    }

    #[test]
    fn zero_sized_requests_are_free() {
        let reqs = vec![req("a", 0, 0, 5), req("b", 300, 0, 5)];
        for policy in [ArenaPolicy::Reuse, ArenaPolicy::NoReuse] {
            let plan = plan_arena(&reqs, policy);
            plan.validate(&reqs).unwrap();
            assert_eq!(plan.peak_bytes, 512, "{policy:?}");
        }
    }

    #[test]
    fn validate_catches_forged_overlap() {
        let reqs = vec![req("a", 512, 0, 2), req("b", 512, 1, 3)];
        let mut plan = plan_arena(&reqs, ArenaPolicy::Reuse);
        plan.slots[1] = plan.slots[0];
        assert!(plan.validate(&reqs).unwrap_err().contains("share arena"));
    }
}
