//! Host (CPU) Winograd convolution — the algorithmic reference for the SASS
//! kernels, generic over the `F(m×m, 3×3)` variant.
//!
//! Both execution styles of the paper are implemented:
//!
//! * [`conv2d_winograd`] — *fused* semantics: per tile, transform → EWMM
//!   accumulation over channels → inverse transform, nothing spilled (§3.1);
//! * [`NonFusedPipeline`] — the cuDNN `WINOGRAD_NONFUSED` structure (§7.3):
//!   explicit transformed-input / transformed-filter / transformed-output
//!   arrays in "global memory" with a batched GEMM between them, so its
//!   workspace and memory traffic can be measured (§8.1's model).

use crate::reference::ConvProblem;
use crate::transforms::{Mat, Variant};
use tensor::{LayoutKind, Tensor4};

/// Fused Winograd convolution. Input NCHW, filter KCRS, output NCHW.
pub fn conv2d_winograd(p: &ConvProblem, input: &Tensor4, filter: &Tensor4, v: Variant) -> Tensor4 {
    assert_eq!((p.r, p.s), (3, 3), "Winograd path supports 3×3 filters");
    let tr = v.transform();
    let (m, t) = (tr.m, tr.t);
    let (oh, ow) = (p.out_h(), p.out_w());
    let tiles_h = oh.div_ceil(m);
    let tiles_w = ow.div_ceil(m);
    let mut out = Tensor4::zeros(LayoutKind::Nchw, [p.n, p.k, oh, ow]);

    // Pre-transform all filters: K×C tiles of t×t.
    let mut tf = vec![0.0f32; p.k * p.c * t * t];
    let mut ftile = Mat::zeros(3, 3);
    for k in 0..p.k {
        for c in 0..p.c {
            for r in 0..3 {
                for s in 0..3 {
                    ftile.set(r, s, filter.get([k, c, r, s]));
                }
            }
            let f = tr.filter_tile(&ftile);
            tf[(k * p.c + c) * t * t..(k * p.c + c + 1) * t * t].copy_from_slice(&f.data);
        }
    }

    let mut itile = Mat::zeros(t, t);
    for n in 0..p.n {
        for th in 0..tiles_h {
            for twi in 0..tiles_w {
                // Transform the input tile once per channel, accumulate per k.
                let mut acc = vec![0.0f32; p.k * t * t];
                for c in 0..p.c {
                    for dy in 0..t {
                        for dx in 0..t {
                            let iy = (th * m + dy) as isize - p.pad as isize;
                            let ix = (twi * m + dx) as isize - p.pad as isize;
                            let v =
                                if iy >= 0 && (iy as usize) < p.h && ix >= 0 && (ix as usize) < p.w
                                {
                                    input.get([n, c, iy as usize, ix as usize])
                                } else {
                                    0.0
                                };
                            itile.set(dy, dx, v);
                        }
                    }
                    let ti = tr.input_tile(&itile);
                    for k in 0..p.k {
                        let f = &tf[(k * p.c + c) * t * t..(k * p.c + c + 1) * t * t];
                        let a = &mut acc[k * t * t..(k + 1) * t * t];
                        for e in 0..t * t {
                            a[e] += ti.data[e] * f[e];
                        }
                    }
                }
                for k in 0..p.k {
                    let o =
                        tr.output_tile(&Mat::new(t, t, acc[k * t * t..(k + 1) * t * t].to_vec()));
                    for dy in 0..m {
                        for dx in 0..m {
                            let oy = th * m + dy;
                            let ox = twi * m + dx;
                            if oy < oh && ox < ow {
                                out.set([n, k, oy, ox], o.at(dy, dx));
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Non-fused Winograd (cuDNN `WINOGRAD_NONFUSED` structure): materializes the
/// transformed arrays, exposing the workspace size and memory traffic the
/// paper models in §8.1.
pub struct NonFusedPipeline {
    pub variant: Variant,
    /// Transformed input elements (`t² × C × tiles`).
    pub transformed_input_len: usize,
    /// Transformed filter elements (`t² × C × K`).
    pub transformed_filter_len: usize,
    /// Pre-transform output elements (`t² × K × tiles`).
    pub transformed_output_len: usize,
}

impl NonFusedPipeline {
    pub fn plan(p: &ConvProblem, v: Variant) -> Self {
        let tr = v.transform();
        let tiles = p.out_h().div_ceil(tr.m) * p.out_w().div_ceil(tr.m) * p.n;
        NonFusedPipeline {
            variant: v,
            transformed_input_len: tr.t * tr.t * p.c * tiles,
            transformed_filter_len: tr.t * tr.t * p.c * p.k,
            transformed_output_len: tr.t * tr.t * p.k * tiles,
        }
    }

    /// Workspace bytes (float32) for the intermediate arrays.
    pub fn workspace_bytes(&self) -> u64 {
        4 * (self.transformed_input_len + self.transformed_filter_len + self.transformed_output_len)
            as u64
    }

    /// Run the three phases on the host. Returns the output and, as a check
    /// on the phase decomposition, performs the EWMM phase as `t²` batched
    /// GEMMs exactly like the GPU pipeline would.
    pub fn run(&self, p: &ConvProblem, input: &Tensor4, filter: &Tensor4) -> Tensor4 {
        let tr = self.variant.transform();
        let (m, t) = (tr.m, tr.t);
        let (oh, ow) = (p.out_h(), p.out_w());
        let tiles_h = oh.div_ceil(m);
        let tiles_w = ow.div_ceil(m);
        let tiles = tiles_h * tiles_w * p.n;

        // Phase 1a: filter transform → U[e][k][c].
        let mut u = vec![0.0f32; t * t * p.k * p.c];
        let mut ftile = Mat::zeros(3, 3);
        for k in 0..p.k {
            for c in 0..p.c {
                for r in 0..3 {
                    for s in 0..3 {
                        ftile.set(r, s, filter.get([k, c, r, s]));
                    }
                }
                let f = tr.filter_tile(&ftile);
                for e in 0..t * t {
                    u[(e * p.k + k) * p.c + c] = f.data[e];
                }
            }
        }

        // Phase 1b: input transform → V[e][c][tile].
        let mut vbuf = vec![0.0f32; t * t * p.c * tiles];
        let mut itile = Mat::zeros(t, t);
        for n in 0..p.n {
            for th in 0..tiles_h {
                for twi in 0..tiles_w {
                    let tile = (n * tiles_h + th) * tiles_w + twi;
                    for c in 0..p.c {
                        for dy in 0..t {
                            for dx in 0..t {
                                let iy = (th * m + dy) as isize - p.pad as isize;
                                let ix = (twi * m + dx) as isize - p.pad as isize;
                                let v = if iy >= 0
                                    && (iy as usize) < p.h
                                    && ix >= 0
                                    && (ix as usize) < p.w
                                {
                                    input.get([n, c, iy as usize, ix as usize])
                                } else {
                                    0.0
                                };
                                itile.set(dy, dx, v);
                            }
                        }
                        let ti = tr.input_tile(&itile);
                        for e in 0..t * t {
                            vbuf[(e * p.c + c) * tiles + tile] = ti.data[e];
                        }
                    }
                }
            }
        }

        // Phase 2: t² batched GEMMs — M[e] = U[e] (K×C) × V[e] (C×tiles).
        let mut mbuf = vec![0.0f32; t * t * p.k * tiles];
        for e in 0..t * t {
            let ue = &u[e * p.k * p.c..(e + 1) * p.k * p.c];
            let ve = &vbuf[e * p.c * tiles..(e + 1) * p.c * tiles];
            let me = &mut mbuf[e * p.k * tiles..(e + 1) * p.k * tiles];
            for k in 0..p.k {
                for c in 0..p.c {
                    let a = ue[k * p.c + c];
                    if a == 0.0 {
                        continue;
                    }
                    let vrow = &ve[c * tiles..(c + 1) * tiles];
                    let mrow = &mut me[k * tiles..(k + 1) * tiles];
                    for ti2 in 0..tiles {
                        mrow[ti2] += a * vrow[ti2];
                    }
                }
            }
        }

        // Phase 3: output transform.
        let mut out = Tensor4::zeros(LayoutKind::Nchw, [p.n, p.k, oh, ow]);
        for n in 0..p.n {
            for th in 0..tiles_h {
                for twi in 0..tiles_w {
                    let tile = (n * tiles_h + th) * tiles_w + twi;
                    for k in 0..p.k {
                        let mut acc = Mat::zeros(t, t);
                        for e in 0..t * t {
                            acc.data[e] = mbuf[(e * p.k + k) * tiles + tile];
                        }
                        let o = tr.output_tile(&acc);
                        for dy in 0..m {
                            for dx in 0..m {
                                let oy = th * m + dy;
                                let ox = twi * m + dx;
                                if oy < oh && ox < ow {
                                    out.set([n, k, oy, ox], o.at(dy, dx));
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Normalized error of a Winograd variant vs direct convolution on random
/// data: `max|direct - wino| / max|direct|`. Quantifies the §8.1 remark that
/// larger variants "may bring numerical issue".
pub fn numerical_error(v: Variant, seed: u64) -> f32 {
    let p = ConvProblem::resnet3x3(1, 8, 16, 8);
    let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, seed);
    let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, seed + 1);
    let direct = crate::reference::conv2d_direct(&p, &input, &filter);
    let wino = conv2d_winograd(&p, &input, &filter, v);
    let scale = direct
        .as_slice()
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()))
        .max(f32::EPSILON);
    tensor::max_abs_diff(direct.as_slice(), wino.as_slice()) / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv2d_direct;
    use tensor::allclose;

    fn check_variant(v: Variant, p: ConvProblem, tol: f32) {
        let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, 7);
        let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 8);
        let want = conv2d_direct(&p, &input, &filter);
        let got = conv2d_winograd(&p, &input, &filter, v);
        assert!(
            allclose(want.as_slice(), got.as_slice(), tol, tol),
            "{v:?} {p:?}: {}",
            tensor::compare(want.as_slice(), got.as_slice(), tol, tol),
        );
    }

    #[test]
    fn f2_matches_direct() {
        check_variant(Variant::F2x2, ConvProblem::resnet3x3(2, 4, 8, 4), 1e-4);
    }

    #[test]
    fn f4_matches_direct() {
        check_variant(Variant::F4x4, ConvProblem::resnet3x3(1, 4, 12, 4), 1e-3);
    }

    #[test]
    fn f6_matches_direct() {
        check_variant(Variant::F6x6, ConvProblem::resnet3x3(1, 4, 12, 4), 1e-2);
    }

    #[test]
    fn odd_sizes_need_tile_masking() {
        // Conv5 shape: 7×7 with 2×2 tiles → ragged edge (§7.3 observation 2).
        check_variant(Variant::F2x2, ConvProblem::resnet3x3(1, 4, 7, 4), 1e-4);
        check_variant(Variant::F4x4, ConvProblem::resnet3x3(1, 4, 7, 4), 1e-3);
        check_variant(Variant::F2x2, ConvProblem::resnet3x3(1, 3, 5, 2), 1e-4);
    }

    #[test]
    fn nonfused_matches_fused() {
        let p = ConvProblem::resnet3x3(2, 4, 8, 4);
        let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, 3);
        let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 4);
        let fused = conv2d_winograd(&p, &input, &filter, Variant::F4x4);
        let nf = NonFusedPipeline::plan(&p, Variant::F4x4);
        let out = nf.run(&p, &input, &filter);
        assert!(allclose(fused.as_slice(), out.as_slice(), 1e-3, 1e-3));
    }

    #[test]
    fn nonfused_workspace_grows_with_tile_expansion() {
        // §8.1: F(4×4) transformed input is (6/4)² = 2.25× the input size.
        let p = ConvProblem::resnet3x3(32, 128, 28, 128);
        let nf = NonFusedPipeline::plan(&p, Variant::F4x4);
        let input_elems = p.input_len();
        let ratio = nf.transformed_input_len as f64 / input_elems as f64;
        assert!((ratio - 2.25).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn numerical_error_grows_with_tile_size() {
        let e2 = numerical_error(Variant::F2x2, 11);
        let e4 = numerical_error(Variant::F4x4, 11);
        let e6 = numerical_error(Variant::F6x6, 11);
        assert!(e2 < e4 && e4 < e6, "errors: {e2} {e4} {e6}");
        assert!(e2 < 1e-5, "e2 {e2}");
        // §8.1: F(6×6,3×3) "may bring numerical issue".
        assert!(e6 > 10.0 * e2);
    }
}
