//! `traffic` — the open-loop synthetic request generator.
//!
//! The serving engine is exercised open-loop: requests arrive on a schedule
//! the server cannot push back on (the millions-of-users regime the ROADMAP
//! names), so queueing delay under bursts is *measured*, not hidden by
//! client back-pressure.
//!
//! Arrivals follow a two-state **Markov-modulated Poisson process** (MMPP-2):
//! the stream alternates between a *normal* and a *burst* state, each with
//! exponentially distributed dwell time, and within a state inter-arrival
//! gaps are exponential at that state's rate. The burst-state rate is
//! [`TrafficConfig::burst_factor`] times the normal rate, and the two rates
//! are normalized so the long-run mean equals [`TrafficConfig::rate_rps`]
//! regardless of burstiness — raising `burst_factor` redistributes the same
//! offered load into heavier clumps rather than adding load.
//!
//! Each request asks for one inference of one image through one ResNet
//! 3×3 layer ([`ShapeClass`]); the class is drawn from a weighted mix
//! (default: Table 1's Conv2–Conv5 weighted by their ResNet-50 block
//! multiplicities 3/4/6/3).
//!
//! **Invariants.** Generation is a pure function of the config: it uses only
//! the workspace's deterministic [`XorShiftRng`] and integer-nanosecond
//! arithmetic for timestamps, so the same seed yields the same byte stream
//! of requests on every host and under every `--jobs` setting. Arrivals are
//! returned sorted (they are generated in time order) and ids are dense
//! `0..len`.

use tensor::XorShiftRng;

/// One convolution shape class requests can ask for: a ResNet 3×3 layer
/// (`H = W = hw`, `C = K` for Table 1 layers, but `k` is independent here)
/// plus its weight in the traffic mix.
#[derive(Clone, Debug)]
pub struct ShapeClass {
    /// Display name, e.g. `"Conv2"`.
    pub name: String,
    /// Input/output spatial size (`H = W`).
    pub hw: u32,
    /// Input channels `C` (must satisfy the fused kernel's `C % 8 == 0`).
    pub c: u32,
    /// Output channels `K` (must satisfy `K % 64 == 0` for the `bk = 64`
    /// fused kernel).
    pub k: u32,
    /// Relative weight in the traffic mix (need not be normalized).
    pub weight: f64,
}

impl ShapeClass {
    /// The paper's Table 1 layers weighted by their ResNet-50 block
    /// multiplicities (3/4/6/3) — the default serving mix.
    pub fn resnet_mix() -> Vec<ShapeClass> {
        let weights = [3.0, 4.0, 6.0, 3.0];
        wino_core::resnet::RESNET_LAYERS
            .iter()
            .zip(weights)
            .map(|(l, weight)| ShapeClass {
                name: l.name.to_string(),
                hw: l.hw as u32,
                c: l.c as u32,
                k: l.c as u32,
                weight,
            })
            .collect()
    }

    /// A scaled-down two-class mix for smoke tests: same code paths
    /// (distinct shapes, both fused-eligible), two orders of magnitude less
    /// simulation work per probe.
    pub fn smoke_mix() -> Vec<ShapeClass> {
        vec![
            ShapeClass {
                name: "SmokeA".into(),
                hw: 8,
                c: 32,
                k: 64,
                weight: 2.0,
            },
            ShapeClass {
                name: "SmokeB".into(),
                hw: 8,
                c: 64,
                k: 64,
                weight: 1.0,
            },
        ]
    }

    /// The [`wino_core::ConvProblem`] this class poses at batch size `n`.
    pub fn problem(&self, n: u32) -> wino_core::ConvProblem {
        wino_core::ConvProblem::resnet3x3(
            n as usize,
            self.c as usize,
            self.hw as usize,
            self.k as usize,
        )
    }
}

/// Open-loop traffic parameters. All times are integer nanoseconds of
/// *simulated* time.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// RNG seed; the whole arrival stream is a pure function of this.
    pub seed: u64,
    /// Arrival window length: requests arrive in `[0, duration_ns)`.
    pub duration_ns: u64,
    /// Long-run mean request rate, requests per (simulated) second.
    pub rate_rps: f64,
    /// Burst-state rate multiplier (≥ 1.0; 1.0 disables bursts).
    pub burst_factor: f64,
    /// Long-run fraction of time spent in the burst state, in `(0, 1)`.
    pub burst_fraction: f64,
    /// Mean dwell time of one burst, nanoseconds.
    pub mean_burst_ns: u64,
}

impl TrafficConfig {
    /// Expected long-run arrival rate of each class, requests/second:
    /// `rate_rps` split by mix weight. This is the assumption the planner
    /// bakes into each plan ([`crate::Plan::assumed_rps`]) and the baseline
    /// the telemetry drift tracker compares observations against.
    pub fn expected_class_rps(&self, classes: &[ShapeClass]) -> Vec<f64> {
        let total: f64 = classes.iter().map(|c| c.weight).sum();
        classes
            .iter()
            .map(|c| {
                if total > 0.0 {
                    self.rate_rps * c.weight / total
                } else {
                    0.0
                }
            })
            .collect()
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 2020,
            duration_ns: 1_000_000_000,
            rate_rps: 20_000.0,
            burst_factor: 4.0,
            burst_fraction: 0.1,
            mean_burst_ns: 2_000_000,
        }
    }
}

/// One inference request: one image through one [`ShapeClass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Dense id in arrival order, `0..stream.len()`.
    pub id: u64,
    /// Index into the class list the stream was generated against.
    pub class: usize,
    /// Arrival timestamp, nanoseconds of simulated time.
    pub arrival_ns: u64,
}

/// Uniform f64 in `(0, 1]` — never 0, so `ln` is always finite.
fn uniform_01(rng: &mut XorShiftRng) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential sample with the given mean, in nanoseconds (≥ 1).
fn exp_ns(rng: &mut XorShiftRng, mean_ns: f64) -> u64 {
    let t = -uniform_01(rng).ln() * mean_ns;
    (t as u64).max(1)
}

/// Generate the arrival stream for `classes` under `cfg`. Sorted by
/// `arrival_ns` (ties keep generation order); deterministic in `cfg.seed`.
pub fn generate(cfg: &TrafficConfig, classes: &[ShapeClass]) -> Vec<Request> {
    assert!(
        !classes.is_empty(),
        "traffic needs at least one shape class"
    );
    assert!(cfg.rate_rps > 0.0, "rate must be positive");
    assert!(cfg.burst_factor >= 1.0, "burst factor must be >= 1");
    assert!(
        cfg.burst_fraction > 0.0 && cfg.burst_fraction < 1.0,
        "burst fraction must be in (0, 1)"
    );
    let mut rng = XorShiftRng::new(cfg.seed);

    // Normalize the two state rates so the long-run mean is `rate_rps`:
    // mean = (1 - f)·r_normal + f·burst_factor·r_normal.
    let f = cfg.burst_fraction;
    let r_normal = cfg.rate_rps / (1.0 - f + f * cfg.burst_factor);
    let r_burst = r_normal * cfg.burst_factor;
    let mean_normal_ns = cfg.mean_burst_ns as f64 * (1.0 - f) / f;
    let mean_burst_ns = cfg.mean_burst_ns as f64;

    let cum: Vec<f64> = classes
        .iter()
        .scan(0.0, |acc, c| {
            assert!(c.weight > 0.0, "class weights must be positive");
            *acc += c.weight;
            Some(*acc)
        })
        .collect();
    let total_w = *cum.last().unwrap();

    let mut out = Vec::new();
    let mut now: u64 = 0;
    let mut in_burst = false;
    // End of the current MMPP state's dwell time.
    let mut state_end = exp_ns(&mut rng, mean_normal_ns);
    while now < cfg.duration_ns {
        let rate = if in_burst { r_burst } else { r_normal };
        let gap = exp_ns(&mut rng, 1e9 / rate);
        let mut next = now.saturating_add(gap);
        // Cross state boundaries before admitting the arrival: the gap is
        // re-drawn at the new state's rate from the boundary (memorylessness
        // makes the re-draw exact, not an approximation).
        while next > state_end {
            now = state_end;
            in_burst = !in_burst;
            let mean = if in_burst {
                mean_burst_ns
            } else {
                mean_normal_ns
            };
            state_end = state_end.saturating_add(exp_ns(&mut rng, mean));
            let rate = if in_burst { r_burst } else { r_normal };
            next = now.saturating_add(exp_ns(&mut rng, 1e9 / rate));
        }
        now = next;
        if now >= cfg.duration_ns {
            break;
        }
        let u = uniform_01(&mut rng) * total_w;
        let class = cum.partition_point(|&c| c < u).min(classes.len() - 1);
        out.push(Request {
            id: out.len() as u64,
            class,
            arrival_ns: now,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<ShapeClass> {
        ShapeClass::resnet_mix()
    }

    #[test]
    fn deterministic_and_sorted() {
        let cfg = TrafficConfig::default();
        let a = generate(&cfg, &classes());
        let b = generate(&cfg, &classes());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(a.iter().enumerate().all(|(i, r)| r.id == i as u64));
        let other = generate(
            &TrafficConfig {
                seed: 7,
                ..cfg.clone()
            },
            &classes(),
        );
        assert_ne!(a, other);
    }

    #[test]
    fn mean_rate_is_close_regardless_of_burstiness() {
        for burst in [1.0, 4.0, 16.0] {
            let cfg = TrafficConfig {
                duration_ns: 4_000_000_000,
                rate_rps: 10_000.0,
                burst_factor: burst,
                ..Default::default()
            };
            let n = generate(&cfg, &classes()).len() as f64;
            let want = cfg.rate_rps * cfg.duration_ns as f64 / 1e9;
            assert!(
                (n - want).abs() / want < 0.10,
                "burst={burst}: {n} arrivals, wanted ≈{want}"
            );
        }
    }

    #[test]
    fn burstiness_raises_dispersion() {
        // Index of dispersion of counts in fixed bins: Poisson ≈ 1, MMPP > 1.
        let iod = |burst: f64| {
            let cfg = TrafficConfig {
                duration_ns: 4_000_000_000,
                rate_rps: 20_000.0,
                burst_factor: burst,
                ..Default::default()
            };
            let reqs = generate(&cfg, &classes());
            let bin_ns = 1_000_000u64;
            let bins = (cfg.duration_ns / bin_ns) as usize;
            let mut counts = vec![0f64; bins];
            for r in &reqs {
                counts[(r.arrival_ns / bin_ns) as usize % bins] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / bins as f64;
            let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / bins as f64;
            var / mean
        };
        let calm = iod(1.0);
        let bursty = iod(8.0);
        assert!(calm < 2.0, "Poisson dispersion ≈ 1, got {calm}");
        assert!(bursty > 2.0 * calm, "bursty {bursty} vs calm {calm}");
    }

    #[test]
    fn expected_class_rps_splits_by_weight() {
        let cfg = TrafficConfig::default();
        let rps = cfg.expected_class_rps(&classes());
        assert_eq!(rps.len(), 4);
        assert!((rps.iter().sum::<f64>() - cfg.rate_rps).abs() < 1e-9);
        // Conv4 (weight 6) sees twice Conv2's (weight 3) share.
        assert!((rps[2] / rps[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mix_follows_weights() {
        let cfg = TrafficConfig {
            duration_ns: 2_000_000_000,
            ..Default::default()
        };
        let reqs = generate(&cfg, &classes());
        let mut counts = [0usize; 4];
        for r in &reqs {
            counts[r.class] += 1;
        }
        // Conv4 (weight 6) must dominate Conv2/Conv5 (weight 3).
        assert!(counts[2] > counts[0] && counts[2] > counts[3]);
        let frac = counts[2] as f64 / reqs.len() as f64;
        assert!((frac - 6.0 / 16.0).abs() < 0.05, "Conv4 fraction {frac}");
    }
}
