//! `queue` — SLO-aware admission and batching.
//!
//! Requests for the same [`ShapeClass`](crate::ShapeClass) are held in a
//! per-class FIFO and released as one **launch group**: a batch padded up to
//! the smallest supported batch size (the fused kernel wants `N % 32 == 0`
//! and the plan's variants are probed at exactly those sizes). Batching
//! trades queueing delay for throughput; the policy bounds that trade with
//! the latency SLO.
//!
//! **Dispatch policy.** A class is *due* at time `t` when it has pending
//! requests and either
//!
//! 1. the batch is full (`pending ≥ max_batch`), or
//! 2. waiting any longer would risk the SLO: `t ≥ latest_safe_start`, where
//!    `latest_safe_start = oldest.arrival + slo − worst_service` and
//!    `worst_service` is the plan's worst-case service time over all batch
//!    variants.
//!
//! **Invariant** (the property `serve/tests/queue_slo.rs` checks): if a
//! device is free at `latest_safe_start` and the plan is ready, every
//! request in the group completes by `arrival + slo` — the margin is
//! worst-case, so no admissible request waits past its SLO when capacity
//! exists. When `slo < worst_service` the deadline saturates to the arrival
//! instant: the queue dispatches as early as possible and the miss is the
//! engine's to count, not the queue's to hide.
//!
//! All arithmetic is integer nanoseconds; ties are broken FIFO, so the
//! queue is deterministic.

use std::collections::VecDeque;

use crate::traffic::Request;

/// Smallest supported batch size that fits `count` requests, else the
/// largest (`batch_sizes` ascending).
pub fn batch_n(batch_sizes: &[u32], count: usize) -> u32 {
    *batch_sizes
        .iter()
        .find(|&&n| n as usize >= count)
        .unwrap_or_else(|| batch_sizes.last().expect("batch sizes non-empty"))
}

/// FIFO of pending requests for one shape class.
#[derive(Default)]
pub struct ClassQueue {
    pending: VecDeque<Request>,
}

impl ClassQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, req: Request) {
        debug_assert!(
            self.pending
                .back()
                .is_none_or(|b| b.arrival_ns <= req.arrival_ns),
            "arrivals must be pushed in time order"
        );
        self.pending.push_back(req);
    }

    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Arrival time of the oldest pending request.
    pub fn oldest_arrival(&self) -> Option<u64> {
        self.pending.front().map(|r| r.arrival_ns)
    }

    /// How long the oldest pending request has been waiting at `now`
    /// (`0` on an empty queue) — the starvation signal the telemetry
    /// gauges report per class.
    pub fn oldest_wait_ns(&self, now: u64) -> u64 {
        self.oldest_arrival().map_or(0, |a| now.saturating_sub(a))
    }

    /// Latest dispatch instant that still meets the SLO for the oldest
    /// request, assuming worst-case service. Saturates at the arrival
    /// instant when the SLO is tighter than the service time.
    pub fn latest_safe_start(&self, slo_ns: u64, worst_service_ns: u64) -> Option<u64> {
        self.oldest_arrival()
            .map(|a| a + slo_ns.saturating_sub(worst_service_ns))
    }

    /// Is the class due for dispatch at `now`? (Plan readiness and device
    /// availability are the engine's concern.)
    pub fn due(&self, now: u64, slo_ns: u64, worst_service_ns: u64, max_batch: u32) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        self.pending.len() >= max_batch as usize
            || now >= self.latest_safe_start(slo_ns, worst_service_ns).unwrap()
    }

    /// Remove and return up to `max` oldest requests as one launch group.
    pub fn take_batch(&mut self, max: u32) -> Vec<Request> {
        let take = self.pending.len().min(max as usize);
        self.pending.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_ns: u64) -> Request {
        Request {
            id,
            class: 0,
            arrival_ns,
        }
    }

    #[test]
    fn batch_padding() {
        let sizes = [32, 64, 96, 128];
        assert_eq!(batch_n(&sizes, 1), 32);
        assert_eq!(batch_n(&sizes, 32), 32);
        assert_eq!(batch_n(&sizes, 33), 64);
        assert_eq!(batch_n(&sizes, 97), 128);
        assert_eq!(batch_n(&sizes, 1000), 128);
    }

    #[test]
    fn due_on_full_batch_or_deadline() {
        let mut q = ClassQueue::new();
        q.push(req(0, 1_000));
        let (slo, worst) = (10_000, 4_000);
        // Deadline is arrival + slo - worst = 7_000.
        assert!(!q.due(6_999, slo, worst, 4));
        assert!(q.due(7_000, slo, worst, 4));
        // Full batch dispatches immediately regardless of deadline.
        for i in 1..4 {
            q.push(req(i, 1_000 + i));
        }
        assert!(q.due(1_004, slo, worst, 4));
    }

    #[test]
    fn tight_slo_saturates_to_arrival() {
        let mut q = ClassQueue::new();
        q.push(req(0, 5_000));
        // worst service exceeds the SLO: due the instant it arrives.
        assert_eq!(q.latest_safe_start(1_000, 9_000), Some(5_000));
        assert!(q.due(5_000, 1_000, 9_000, 64));
    }

    #[test]
    fn take_batch_is_fifo_and_partial() {
        let mut q = ClassQueue::new();
        for i in 0..5 {
            q.push(req(i, i * 10));
        }
        let b = q.take_batch(3);
        assert_eq!(b.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(q.len(), 2);
        let b = q.take_batch(64);
        assert_eq!(b.iter().map(|r| r.id).collect::<Vec<_>>(), [3, 4]);
        assert!(q.is_empty());
    }
}
