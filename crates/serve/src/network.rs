//! `network` — network-shaped request classes: a request is a whole
//! network, not a layer.
//!
//! A [`NetworkClass`] describes a chain of conv stages (each a
//! [`ShapeClass`] repeated some number of times, with inter-stage
//! transitions inferred from shape mismatches) and lowers to the core
//! runtime's `wino_core::NetGraph` at any batch size. The planner side
//! ([`Planner::build_network`]) plans the graph per supported batch —
//! per-layer algorithm selection with the filter transforms hoisted into
//! the persistent cache — and packages the result as an ordinary
//! [`Plan`], so the serving engine ingests network classes through the
//! same `classes`/`plans` arrays it uses for layer classes:
//!
//! * `service_ns` of each variant is the network's *steady-state* time
//!   (transforms hoisted — they are computed once per weight set, not per
//!   request);
//! * the one-time transform cost plus candidate probing is charged to
//!   [`Plan::build_cost_ns`], i.e. to the cold path, exactly like a layer
//!   plan's probe runs;
//! * the variant's `algo` field is a compact per-layer selection label
//!   (single token, so the plan text format round-trips).

use gpusim::Digest;
use perfmodel::break_even_k;
use wino_core::{Algo, AlgoPolicy, DirectTimer, NetGraph};

use crate::plan::{to_ns, Plan, PlanCache, PlanVariant, Planner, PLAN_FORMAT_VERSION, PROBE_RUNS};
use crate::traffic::ShapeClass;

/// A network-shaped request class: conv stages with repetition counts,
/// plus the class's weight in the traffic mix.
#[derive(Clone, Debug)]
pub struct NetworkClass {
    /// Display name, e.g. `"ResNet50"`.
    pub name: String,
    /// Conv stages in execution order: `(shape, repetitions)`. Transitions
    /// are inserted automatically where consecutive stages disagree on
    /// channels or spatial size.
    pub stages: Vec<(ShapeClass, u32)>,
    /// Relative weight in the traffic mix.
    pub weight: f64,
}

impl NetworkClass {
    /// The Table 1 chain with ResNet-50 block multiplicities — the
    /// network-shaped counterpart of `ShapeClass::resnet_mix`.
    pub fn resnet50(weight: f64) -> Self {
        let reps = [3u32, 4, 6, 3];
        NetworkClass {
            name: "ResNet50".into(),
            stages: ShapeClass::resnet_mix().into_iter().zip(reps).collect(),
            weight,
        }
    }

    /// A scaled-down network over the smoke shapes, cheap enough for unit
    /// tests and CI probes.
    pub fn smoke(weight: f64) -> Self {
        let mix = ShapeClass::smoke_mix();
        NetworkClass {
            name: "SmokeNet".into(),
            stages: vec![(mix[0].clone(), 2), (mix[1].clone(), 1)],
            weight,
        }
    }

    /// Total conv layers across all stages.
    pub fn num_layers(&self) -> usize {
        self.stages.iter().map(|(_, reps)| *reps as usize).sum()
    }

    /// Lower to the executable core-runtime graph at batch size `n`.
    pub fn to_netgraph(&self, n: u32) -> NetGraph {
        let first = &self.stages.first().expect("network has stages").0;
        let mut g = NetGraph::new(&self.name, n as usize, first.c as usize, first.hw as usize);
        for (class, reps) in &self.stages {
            if g.out_channels() != class.c as usize || g.out_hw() != class.hw as usize {
                g = g.transition(class.c as usize, class.hw as usize);
            }
            for rep in 0..*reps {
                g = g.conv_named(&format!("{}.{}", class.name, rep + 1), class.k as usize);
            }
        }
        g
    }

    /// The class entry the engine ingests: the engine treats classes as
    /// opaque named weights, so a network class presents its own name and
    /// weight (the shape fields carry the first stage, for display only).
    pub fn as_shape_class(&self) -> ShapeClass {
        let first = &self.stages.first().expect("network has stages").0;
        ShapeClass {
            name: self.name.clone(),
            hw: first.hw,
            c: first.c,
            k: first.k,
            weight: self.weight,
        }
    }
}

/// Compact single-token label of a network plan's per-layer selection:
/// consecutive layers on the same algorithm collapse to `NAMExCOUNT`,
/// joined with `+` (the plan text format splits fields on spaces).
fn selection_label(algos: &[Algo]) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < algos.len() {
        let mut j = i;
        while j < algos.len() && algos[j] == algos[i] {
            j += 1;
        }
        parts.push(format!("{}x{}", algos[i].name(), j - i));
        i = j;
    }
    format!("NET[{}]", parts.join("+"))
}

impl Planner {
    /// The arrival rate this planner assumes for `net`, requests/second.
    pub fn assumed_network_rps(&self, net: &NetworkClass) -> f64 {
        match self.mix {
            Some((rate, total)) if total > 0.0 => rate * net.weight / total,
            _ => 0.0,
        }
    }

    /// Content address of the network plan this planner would build:
    /// format + timing-model versions, device, the full stage list, batch
    /// set, and the mix assumption.
    pub fn network_plan_key(&self, net: &NetworkClass) -> String {
        let mut d = Digest::new();
        d.str("serve/netplan/v1");
        d.u32(PLAN_FORMAT_VERSION).u32(gpusim::TIMING_MODEL_VERSION);
        self.device.digest_into(&mut d);
        d.str(&net.name);
        for (class, reps) in &net.stages {
            d.str(&class.name);
            for v in [class.hw, class.c, class.k, *reps] {
                d.u32(v);
            }
        }
        for &n in &self.batch_sizes {
            d.u32(n);
        }
        d.u64(self.assumed_network_rps(net).to_bits());
        d.hex()
    }

    /// Build the plan for a network class: plan the graph at every
    /// supported batch size (per-layer selection, transforms hoisted) and
    /// package it as an engine-ingestible [`Plan`]. Probing every
    /// candidate plus the one-time filter transforms is the plan's build
    /// cost; steady-state network time is the service time.
    pub fn build_network(&self, net: &NetworkClass) -> Plan {
        let mut variants = Vec::new();
        let mut build_cost_ns: u64 = 0;
        for &n in &self.batch_sizes {
            let g = net.to_netgraph(n);
            let plan = g.plan(&self.device, AlgoPolicy::Auto, &DirectTimer);
            plan.validate().expect("network plan invariants");
            build_cost_ns += PROBE_RUNS * to_ns(plan.probe_s) + to_ns(plan.transform_total_s);
            let algos: Vec<Algo> = plan.choices.iter().map(|c| c.algo).collect();
            variants.push(PlanVariant {
                n,
                algo: selection_label(&algos),
                service_ns: to_ns(plan.time_steady_s),
                tflops: plan.tflops_steady(&g),
            });
        }
        Plan {
            version: PLAN_FORMAT_VERSION,
            device: self.device.name.to_string(),
            class: net.name.clone(),
            bound: "network".into(),
            break_even_k: break_even_k(&self.device),
            variants,
            build_cost_ns,
            assumed_rps: self.assumed_network_rps(net),
            tuned: None,
        }
    }

    /// Cache-through acquisition of a network plan; the bool is `true` on
    /// a hit. Mirrors [`Planner::acquire`] for layer classes.
    pub fn acquire_network(&self, cache: &mut PlanCache, net: &NetworkClass) -> (Plan, bool) {
        let key = self.network_plan_key(net);
        if let Some(p) = cache.get(&key) {
            return (p, true);
        }
        let plan = self.build_network(net);
        cache.put(&key, &plan);
        (plan, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, EngineConfig};
    use crate::plan::MemStorage;
    use crate::traffic::{generate, TrafficConfig};
    use gpusim::DeviceSpec;

    fn planner() -> Planner {
        Planner::new(DeviceSpec::v100(), vec![32, 64])
    }

    #[test]
    fn smoke_network_lowers_to_the_core_graph() {
        let net = NetworkClass::smoke(1.0);
        assert_eq!(net.num_layers(), 3);
        let g = net.to_netgraph(32);
        assert_eq!(g.num_convs(), 3);
        assert_eq!(g.input_dims(), [32, 32, 8, 8]);
        // SmokeA.2 leaves 64 channels, which SmokeB consumes directly —
        // no transition node between them.
        assert_eq!(g.nodes.len(), 3);
        let sc = net.as_shape_class();
        assert_eq!(sc.name, "SmokeNet");
        assert_eq!((sc.hw, sc.c, sc.k), (8, 32, 64));
    }

    #[test]
    fn resnet50_network_matches_table1_chain() {
        let net = NetworkClass::resnet50(1.0);
        assert_eq!(net.num_layers(), 16);
        let g = net.to_netgraph(32);
        assert_eq!(g.num_convs(), 16);
        assert_eq!(g.nodes.len(), 19, "three inter-stage transitions");
        assert_eq!(g.input_dims(), [32, 64, 56, 56]);
    }

    #[test]
    fn build_network_packages_a_valid_plan() {
        let p = planner();
        let net = NetworkClass::smoke(1.0);
        let plan = p.build_network(&net);
        assert_eq!(plan.class, "SmokeNet");
        assert_eq!(plan.variants.len(), 2);
        assert!(plan.variants.windows(2).all(|w| w[0].n < w[1].n));
        for v in &plan.variants {
            assert!(v.service_ns > 0);
            assert!(v.algo.starts_with("NET["), "selection label: {}", v.algo);
            assert!(!v.algo.contains(' '), "label must be one token");
        }
        assert!(plan.build_cost_ns > 0, "probing + transforms are charged");
        // The text format round-trips the network label exactly.
        let rt = Plan::from_text(&plan.to_text()).unwrap();
        assert_eq!(rt, plan);
    }

    #[test]
    fn acquire_network_is_cache_through() {
        let p = planner();
        let net = NetworkClass::smoke(1.0);
        let mem = MemStorage::new();
        let mut cache = PlanCache::new(&mem, "V100", 0);
        let (cold, hit) = p.acquire_network(&mut cache, &net);
        assert!(!hit);
        let (warm, hit) = p.acquire_network(&mut cache, &net);
        assert!(hit);
        assert_eq!(cold, warm, "replayed plan is identical");
        // A different stage list is a different address.
        let mut other = net.clone();
        other.stages[0].1 += 1;
        assert_ne!(p.network_plan_key(&net), p.network_plan_key(&other));
    }

    #[test]
    fn engine_serves_network_requests() {
        // A mixed fleet: one layer class and one network class, through
        // the unchanged engine.
        let p = planner();
        let layer = ShapeClass::smoke_mix().remove(0);
        let net = NetworkClass::smoke(1.0);
        let classes = vec![layer.clone(), net.as_shape_class()];
        let plans = vec![p.build(&layer), p.build_network(&net)];
        let requests = generate(
            &TrafficConfig {
                duration_ns: 20_000_000,
                rate_rps: 2_000.0,
                ..Default::default()
            },
            &classes,
        );
        assert!(!requests.is_empty());
        let stats = run(&EngineConfig::default(), &classes, &plans, &requests);
        assert_eq!(stats.completed, stats.requests);
        let net_stats = &stats.classes[1];
        assert_eq!(net_stats.name, "SmokeNet");
        assert!(net_stats.requests > 0, "network class saw traffic");
    }
}
