//! `engine` — the discrete-event serving simulation.
//!
//! One [`run`] call plays a pre-generated arrival stream against a pool of
//! identical simulated devices and returns latency/throughput statistics.
//! Time is integer nanoseconds of *simulated* time throughout: service
//! times come from the plans (multi-wave `gpusim::device_sim` timings),
//! plan-acquisition cost is *modeled* ([`Plan::build_cost_ns`] cold,
//! [`PLAN_LOOKUP_NS`] warm), and nothing reads
//! the host clock — which is what makes a serve run a pure function of
//! `(seed, config)` and lets the determinism test demand byte-identical
//! JSON across `--jobs 1/2/8`.
//!
//! **Event loop.** A [`gpusim::TimeQueue`] (deterministic `(time, key,
//! FIFO)` min-queue — the same structure the SM simulator schedules with)
//! carries four event kinds: request arrival, plan becoming ready, a
//! request's SLO deadline margin expiring, and a device finishing a launch
//! group. All events at one instant are applied before any dispatch
//! decision, so co-timed events cannot reorder outcomes. After each
//! instant the engine greedily matches *due* classes (see
//! [`crate::queue`]) to free devices — most urgent deadline first, class
//! index as the tie-break, lowest free device index — until either runs
//! out.
//!
//! **Plan lifecycle.** The first arrival of a class starts plan
//! acquisition; the class cannot dispatch until `first_arrival +
//! acquisition_cost`. Cold runs charge the plan's modeled build cost
//! (probe runs + tuning evaluations); warm runs charge only the cache
//! lookup. `time_to_first_dispatch` per class measures exactly this gap
//! (plus any queueing), which is how the report shows a warm plan cache
//! paying off.

use gpusim::TimeQueue;

use crate::plan::{Plan, PLAN_LOOKUP_NS};
use crate::queue::{batch_n, ClassQueue};
use crate::telemetry::{GaugeSnapshot, LatencyHistogram, MissCause, Telemetry};
use crate::traffic::{Request, ShapeClass};

/// Engine knobs (traffic is generated separately and passed in).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Latency SLO per request, nanoseconds.
    pub slo_ns: u64,
    /// Identical devices in the pool.
    pub pool: usize,
    /// Warm run: charge [`PLAN_LOOKUP_NS`] instead of the plan's build cost.
    pub warm: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            slo_ns: 50_000_000,
            pool: 2,
            warm: false,
        }
    }
}

/// One dispatched launch group (recorded for the batch-fill statistics).
#[derive(Clone, Copy, Debug)]
pub struct BatchRecord {
    pub class: usize,
    /// Requests actually in the group.
    pub count: u32,
    /// Batch size launched (padded up to a supported size).
    pub batch_n: u32,
    pub start_ns: u64,
    pub completion_ns: u64,
    pub device: usize,
}

/// Per-class outcome.
#[derive(Clone, Debug)]
pub struct ClassStats {
    pub name: String,
    pub requests: u64,
    /// First batch start minus first arrival: plan acquisition + queueing.
    pub time_to_first_dispatch_ns: u64,
    /// Plan-acquisition charge applied (build cost cold, lookup warm).
    pub plan_charge_ns: u64,
}

/// Whole-run outcome.
#[derive(Clone, Debug)]
pub struct RunStats {
    pub requests: u64,
    pub completed: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    /// p99.9 latency, nearest-rank over the exact latency list.
    pub p999_ns: u64,
    pub mean_ns: u64,
    pub max_ns: u64,
    /// Last completion instant.
    pub makespan_ns: u64,
    /// Completed requests per simulated second, per device in the pool.
    pub throughput_rps_per_device: f64,
    pub slo_misses: u64,
    pub batches: u64,
    /// Mean of `count / batch_n` over launch groups (padding waste).
    pub mean_fill: f64,
    /// Log-bucketed exact-count latency distribution (every completed
    /// request recorded; cross-checks the nearest-rank percentiles).
    pub histogram: LatencyHistogram,
    pub classes: Vec<ClassStats>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    PlanReady(usize),
    Deadline(usize),
    DeviceFree(usize),
}

/// Event-key ordering at equal timestamps: free devices and ready plans
/// first, then arrivals, then deadline pokes. (Outcome-neutral because
/// dispatch runs only after the instant drains; kept stable for
/// reproducible traces.)
fn key(e: &Event) -> u32 {
    match e {
        Event::DeviceFree(_) => 0,
        Event::PlanReady(_) => 1,
        Event::Arrival(_) => 2,
        Event::Deadline(_) => 3,
    }
}

/// Nearest-rank percentile of a sorted slice; `None` on an empty slice so
/// callers decide how "no data" reads (the report uses 0).
fn percentile(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Play `requests` (sorted by arrival) against `plans` (parallel to
/// `classes`) on a pool of devices. Deterministic. Equivalent to
/// [`run_recorded`] with a disabled recorder.
pub fn run(
    cfg: &EngineConfig,
    classes: &[ShapeClass],
    plans: &[Plan],
    requests: &[Request],
) -> RunStats {
    run_recorded(cfg, classes, plans, requests, &mut Telemetry::off())
}

/// [`run`] with a flight recorder attached. When `tel` is disabled every
/// hook is a no-op and the result is identical to [`run`] — the off path
/// costs nothing and changes nothing (the telemetry determinism tests pin
/// this). When enabled, `tel` comes back holding the full event stream,
/// per-request spans, gauge series, and burn-rate windows.
pub fn run_recorded(
    cfg: &EngineConfig,
    classes: &[ShapeClass],
    plans: &[Plan],
    requests: &[Request],
    tel: &mut Telemetry,
) -> RunStats {
    assert_eq!(classes.len(), plans.len());
    assert!(cfg.pool >= 1, "need at least one device");
    tel.begin(
        classes.iter().map(|c| c.name.clone()).collect(),
        plans.iter().map(|p| p.assumed_rps).collect(),
    );
    let batch_sizes: Vec<Vec<u32>> = plans
        .iter()
        .map(|p| p.variants.iter().map(|v| v.n).collect())
        .collect();

    let mut events: TimeQueue<u32, Event> = TimeQueue::new();
    for (i, r) in requests.iter().enumerate() {
        events.push(r.arrival_ns, key(&Event::Arrival(i)), Event::Arrival(i));
    }

    let mut queues: Vec<ClassQueue> = classes.iter().map(|_| ClassQueue::new()).collect();
    // Plan readiness: None until the first arrival starts acquisition.
    let mut plan_ready: Vec<Option<u64>> = vec![None; classes.len()];
    let mut plan_charge: Vec<u64> = vec![0; classes.len()];
    let mut first_arrival: Vec<Option<u64>> = vec![None; classes.len()];
    let mut first_dispatch: Vec<Option<u64>> = vec![None; classes.len()];
    let mut class_requests: Vec<u64> = vec![0; classes.len()];
    let mut device_free: Vec<u64> = vec![0; cfg.pool];

    let mut latencies: Vec<u64> = Vec::with_capacity(requests.len());
    let mut slo_misses: u64 = 0;
    let mut makespan: u64 = 0;
    let mut records: Vec<BatchRecord> = Vec::new();

    let mut completed: u64 = 0;
    while let Some((now, _, ev)) = events.pop() {
        // Gauge samples due strictly before this instant's events apply:
        // between event instants the engine state is constant, so one
        // snapshot serves every tick in `(prev_instant, now]`. A device
        // whose completion lands exactly at `now` still counts as busy —
        // the sample reads the state that held *up to* the instant.
        tel.sample_until(now, || GaugeSnapshot {
            depths: queues.iter().map(|q| q.len() as u32).collect(),
            oldest_wait_ns: queues.iter().map(|q| q.oldest_wait_ns(now)).collect(),
            busy_devices: device_free.iter().filter(|&&t| t > 0 && t >= now).count() as u32,
            // One launch group per busy device in this engine.
            inflight_batches: device_free.iter().filter(|&&t| t > 0 && t >= now).count() as u32,
            plans_ready: plan_ready
                .iter()
                .filter(|r| r.is_some_and(|t| t < now))
                .count() as u32,
            plans_building: plan_ready
                .iter()
                .filter(|r| r.is_some_and(|t| t >= now))
                .count() as u32,
        });
        let mut apply = |ev: Event,
                         events: &mut TimeQueue<u32, Event>,
                         queues: &mut [ClassQueue],
                         device_free: &mut [u64],
                         tel: &mut Telemetry| {
            match ev {
                Event::Arrival(i) => {
                    let r = requests[i];
                    let c = r.class;
                    class_requests[c] += 1;
                    queues[c].push(r);
                    tel.on_arrival(now, r.id, c, queues[c].len() as u32);
                    if first_arrival[c].is_none() {
                        first_arrival[c] = Some(now);
                        // Start plan acquisition; the class is undispatchable
                        // until it lands.
                        let charge = if cfg.warm {
                            PLAN_LOOKUP_NS
                        } else {
                            plans[c].build_cost_ns
                        };
                        plan_charge[c] = charge;
                        let ready = now + charge;
                        plan_ready[c] = Some(ready);
                        events.push(ready, key(&Event::PlanReady(c)), Event::PlanReady(c));
                        tel.on_plan_fetch(now, c, ready, charge, cfg.warm);
                    }
                    // Deadline poke for this request's SLO margin.
                    let deadline =
                        r.arrival_ns + cfg.slo_ns.saturating_sub(plans[c].worst_service_ns());
                    events.push(deadline, key(&Event::Deadline(c)), Event::Deadline(c));
                }
                // Pure wake-ups: state already carries everything; the
                // dispatch scan below reacts.
                Event::PlanReady(c) => tel.on_plan_ready(now, c),
                Event::Deadline(_) => {}
                Event::DeviceFree(d) => {
                    debug_assert!(device_free[d] <= now);
                }
            }
        };
        apply(ev, &mut events, &mut queues, &mut device_free, tel);
        // Drain every event at this instant before deciding anything.
        while events.peek_time() == Some(now) {
            let (_, _, ev) = events.pop().unwrap();
            apply(ev, &mut events, &mut queues, &mut device_free, tel);
        }

        // Greedy dispatch: most urgent due class to the lowest free device.
        while let Some(dev) = device_free.iter().position(|&t| t <= now) {
            let due = (0..classes.len())
                .filter(|&c| {
                    plan_ready[c].is_some_and(|t| t <= now)
                        && queues[c].due(
                            now,
                            cfg.slo_ns,
                            plans[c].worst_service_ns(),
                            plans[c].max_batch(),
                        )
                })
                .min_by_key(|&c| {
                    (
                        queues[c]
                            .latest_safe_start(cfg.slo_ns, plans[c].worst_service_ns())
                            .unwrap(),
                        c,
                    )
                });
            let Some(c) = due else { break };
            let group = queues[c].take_batch(plans[c].max_batch());
            let n = batch_n(&batch_sizes[c], group.len());
            let service = plans[c].variant_for(n as usize).service_ns;
            let completion = now + service;
            device_free[dev] = completion;
            events.push(
                completion,
                key(&Event::DeviceFree(dev)),
                Event::DeviceFree(dev),
            );
            first_dispatch[c].get_or_insert(now);
            let batch_id = tel.on_dispatch(now, c, dev, group.len() as u32, n, service);
            let worst = plans[c].worst_service_ns();
            for r in &group {
                let lat = completion - r.arrival_ns;
                latencies.push(lat);
                let miss = lat > cfg.slo_ns;
                if miss {
                    slo_misses += 1;
                }
                if tel.enabled() {
                    // Attribute the miss against this request's latest safe
                    // start (the queue's dispatch deadline): plan not ready
                    // by then → plan build; dispatched after it → queueing;
                    // dispatched in time and still late → service alone
                    // exceeds the SLO margin.
                    let cause = if !miss {
                        MissCause::None
                    } else {
                        let lss = r.arrival_ns + cfg.slo_ns.saturating_sub(worst);
                        if plan_ready[c].unwrap() > lss {
                            MissCause::PlanBuild
                        } else if now > lss {
                            MissCause::Queueing
                        } else {
                            MissCause::Service
                        }
                    };
                    tel.on_complete(
                        r.id,
                        c,
                        batch_id,
                        r.arrival_ns,
                        now,
                        completion,
                        miss,
                        cause,
                    );
                }
            }
            completed += group.len() as u64;
            makespan = makespan.max(completion);
            records.push(BatchRecord {
                class: c,
                count: group.len() as u32,
                batch_n: n,
                start_ns: now,
                completion_ns: completion,
                device: dev,
            });
        }
    }
    assert_eq!(
        completed,
        requests.len() as u64,
        "every request must be served"
    );
    tel.finish(
        makespan,
        GaugeSnapshot {
            depths: queues.iter().map(|q| q.len() as u32).collect(),
            oldest_wait_ns: queues.iter().map(|q| q.oldest_wait_ns(makespan)).collect(),
            busy_devices: 0,
            inflight_batches: 0,
            plans_ready: plan_ready.iter().filter(|r| r.is_some()).count() as u32,
            plans_building: 0,
        },
    );

    let mut histogram = LatencyHistogram::new();
    for &l in &latencies {
        histogram.record(l);
    }
    latencies.sort_unstable();
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        (latencies.iter().map(|&l| l as u128).sum::<u128>() / latencies.len() as u128) as u64
    };
    let mean_fill = if records.is_empty() {
        0.0
    } else {
        records
            .iter()
            .map(|b| f64::from(b.count) / f64::from(b.batch_n))
            .sum::<f64>()
            / records.len() as f64
    };
    let throughput = if makespan == 0 {
        0.0
    } else {
        completed as f64 / (makespan as f64 / 1e9) / cfg.pool as f64
    };
    RunStats {
        requests: requests.len() as u64,
        completed,
        p50_ns: percentile(&latencies, 50.0).unwrap_or(0),
        p99_ns: percentile(&latencies, 99.0).unwrap_or(0),
        p999_ns: percentile(&latencies, 99.9).unwrap_or(0),
        mean_ns,
        max_ns: latencies.last().copied().unwrap_or(0),
        makespan_ns: makespan,
        throughput_rps_per_device: throughput,
        slo_misses,
        batches: records.len() as u64,
        mean_fill,
        histogram,
        classes: classes
            .iter()
            .enumerate()
            .map(|(c, cl)| ClassStats {
                name: cl.name.clone(),
                requests: class_requests[c],
                time_to_first_dispatch_ns: match (first_dispatch[c], first_arrival[c]) {
                    (Some(d), Some(a)) => d - a,
                    _ => 0,
                },
                plan_charge_ns: plan_charge[c],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanVariant, PLAN_FORMAT_VERSION};

    fn class(name: &str) -> ShapeClass {
        ShapeClass {
            name: name.into(),
            hw: 8,
            c: 32,
            k: 64,
            weight: 1.0,
        }
    }

    fn plan(name: &str, service: &[(u32, u64)], build_cost_ns: u64) -> Plan {
        Plan {
            version: PLAN_FORMAT_VERSION,
            device: "test".into(),
            class: name.into(),
            bound: "compute".into(),
            break_even_k: 128.0,
            variants: service
                .iter()
                .map(|&(n, service_ns)| PlanVariant {
                    n,
                    algo: "OURS".into(),
                    service_ns,
                    tflops: 1.0,
                })
                .collect(),
            build_cost_ns,
            assumed_rps: 0.0,
            tuned: None,
        }
    }

    fn reqs(arrivals: &[(usize, u64)]) -> Vec<Request> {
        arrivals
            .iter()
            .enumerate()
            .map(|(id, &(class, arrival_ns))| Request {
                id: id as u64,
                class,
                arrival_ns,
            })
            .collect()
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let classes = vec![class("A")];
        let plans = vec![plan("A", &[(2, 100)], 0)];
        let requests = reqs(&[(0, 10), (0, 20)]);
        let cfg = EngineConfig {
            slo_ns: 1_000_000,
            pool: 1,
            warm: false,
        };
        let s = run(&cfg, &classes, &plans, &requests);
        assert_eq!(s.completed, 2);
        assert_eq!(s.batches, 1);
        // Batch filled at t=20, served in 100ns: oldest waited 10ns queued.
        assert_eq!(s.max_ns, 110);
        assert_eq!(s.slo_misses, 0);
        assert!((s.mean_fill - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lone_request_waits_until_deadline_margin() {
        let classes = vec![class("A")];
        let plans = vec![plan("A", &[(32, 1_000)], 0)];
        let requests = reqs(&[(0, 0)]);
        let cfg = EngineConfig {
            slo_ns: 10_000,
            pool: 1,
            warm: false,
        };
        let s = run(&cfg, &classes, &plans, &requests);
        // Dispatch at slo - worst = 9_000, completion exactly at the SLO.
        assert_eq!(s.max_ns, 10_000);
        assert_eq!(s.slo_misses, 0);
        assert_eq!(s.classes[0].time_to_first_dispatch_ns, 9_000);
    }

    #[test]
    fn warm_beats_cold_time_to_first_dispatch() {
        let classes = vec![class("A")];
        let plans = vec![plan("A", &[(1, 100)], 5_000_000)];
        let requests = reqs(&[(0, 0)]);
        let cold = run(
            &EngineConfig {
                slo_ns: 1_000,
                pool: 1,
                warm: false,
            },
            &classes,
            &plans,
            &requests,
        );
        let warm = run(
            &EngineConfig {
                slo_ns: 1_000,
                pool: 1,
                warm: true,
            },
            &classes,
            &plans,
            &requests,
        );
        assert_eq!(cold.classes[0].time_to_first_dispatch_ns, 5_000_000);
        assert_eq!(warm.classes[0].time_to_first_dispatch_ns, PLAN_LOOKUP_NS);
        assert!(warm.p99_ns < cold.p99_ns);
    }

    #[test]
    fn urgency_order_under_contention() {
        // Two classes, one device. B arrives later but with a much larger
        // worst service, so its safe-start deadline is *earlier*; it must
        // win the free device.
        let classes = vec![class("A"), class("B")];
        let plans = vec![plan("A", &[(1, 100)], 0), plan("B", &[(1, 8_000)], 0)];
        let requests = reqs(&[(0, 0), (1, 10)]);
        let cfg = EngineConfig {
            slo_ns: 10_000,
            pool: 1,
            warm: false,
        };
        let s = run(&cfg, &classes, &plans, &requests);
        assert_eq!(s.slo_misses, 0, "urgency order must protect B's SLO");
        assert_eq!(s.completed, 2);
    }

    #[test]
    fn overload_counts_misses_but_serves_everything() {
        let classes = vec![class("A")];
        let plans = vec![plan("A", &[(1, 10_000)], 0)];
        // 10 lone requests, each 10µs of service, all arriving at once, one
        // device, 20µs SLO: the tail must miss.
        let requests = reqs(&(0..10).map(|_| (0usize, 0u64)).collect::<Vec<_>>());
        let cfg = EngineConfig {
            slo_ns: 20_000,
            pool: 1,
            warm: false,
        };
        let s = run(&cfg, &classes, &plans, &requests);
        assert_eq!(s.completed, 10);
        assert!(s.slo_misses > 0);
        assert_eq!(s.max_ns, 100_000);
    }

    #[test]
    fn pool_scales_throughput() {
        let classes = vec![class("A")];
        let plans = vec![plan("A", &[(1, 10_000)], 0)];
        let requests = reqs(&(0..8).map(|_| (0usize, 0u64)).collect::<Vec<_>>());
        let one = run(
            &EngineConfig {
                slo_ns: 1_000_000,
                pool: 1,
                warm: false,
            },
            &classes,
            &plans,
            &requests,
        );
        let four = run(
            &EngineConfig {
                slo_ns: 1_000_000,
                pool: 4,
                warm: false,
            },
            &classes,
            &plans,
            &requests,
        );
        assert!(four.makespan_ns < one.makespan_ns);
        assert_eq!(four.makespan_ns, 20_000); // 8 groups over 4 devices
    }
}
