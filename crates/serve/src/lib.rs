//! # serve — batched-inference serving on simulated GPUs
//!
//! The paper's fused Winograd kernel exists to serve inference traffic;
//! this crate is the serving layer that turns the workspace's offline
//! capabilities — multi-wave device timing (`gpusim::device_sim`),
//! algorithm selection and bottleneck analysis (`perfmodel`), and the SASS
//! schedule autotuner (`sass::tune`) — into an online "conv as a service"
//! loop:
//!
//! ```text
//!  traffic ──▶ admission/batching queue ──▶ plan lookup ──▶ device pool
//!  (MMPP-2      (per-class FIFO, SLO-        (PlanCache:      (discrete-event
//!   arrivals)    bounded launch groups)       probe+tune       simulation,
//!                                             once, persist)   ns timeline)
//! ```
//!
//! - [`traffic`] generates the open-loop request stream: ResNet layer
//!   shapes, Poisson arrivals with Markov-modulated bursts.
//! - [`queue`] holds per-class FIFOs and decides *when* a launch group goes
//!   out (full batch, or the SLO margin says now).
//! - [`plan`] decides *how*: per-shape algorithm choice, batch-size
//!   variants, tuned schedules — built once, persisted in an LRU
//!   [`PlanCache`], replayed on warm starts.
//! - [`network`] lifts requests from one layer to one *network*: a
//!   [`NetworkClass`] lowers to the core `NetGraph` runtime and is planned
//!   whole — per-layer selection, hoisted filter transforms — then served
//!   through the same engine as any layer class.
//! - [`engine`] plays the stream against a device pool and reports
//!   p50/p99/p99.9 latency, an exact latency histogram, throughput, SLO
//!   misses, and time-to-first-dispatch.
//! - [`telemetry`] is the optional flight recorder
//!   ([`engine::run_recorded`]): per-request lifecycle spans, periodic
//!   gauges, SLO burn-rate windows with miss attribution, and mix-drift
//!   events — off by default and bit-identical when off.
//!
//! Everything is deterministic: simulated time is integer nanoseconds, the
//! only randomness is the seeded `tensor::XorShiftRng`, and no host clock
//! or thread schedule leaks into results. The `bench` crate's `serve`
//! binary drives this crate end-to-end and writes `BENCH_serve.json`; see
//! `docs/SERVING.md` for the operational story.

pub mod engine;
pub mod network;
pub mod plan;
pub mod queue;
pub mod schedstore;
pub mod telemetry;
pub mod traffic;

pub use engine::{run, run_recorded, EngineConfig, RunStats};
pub use network::NetworkClass;
pub use plan::{MemStorage, Plan, PlanCache, PlanStorage, Planner, PLAN_FORMAT_VERSION};
pub use schedstore::{ScheduleStore, StoredSchedule, SCHED_FORMAT_VERSION};
pub use telemetry::{
    BurnWindow, JsonlSink, LatencyHistogram, MemSink, MissCause, Telemetry, TelemetryEvent,
    TelemetryOptions, TelemetrySink,
};
pub use traffic::{generate, Request, ShapeClass, TrafficConfig};
