//! `schedstore` — persistent store of v2-tuned fused schedules.
//!
//! The two-tier autotuner (`bench`'s `tune` binary) is the expensive way to
//! find a schedule: Tier 2 searches the emitter-parameter grid and Tier 1
//! runs island-model annealing on each survivor. Its winners are worth
//! keeping — a serve-time [`crate::plan::Planner`] should *replay* them,
//! not re-search. This module is the handoff point: the tuner
//! [`ScheduleStore::save`]s one [`StoredSchedule`] per
//! `(device, FusedConfig)` into any [`PlanStorage`] backend, and plan
//! building [`ScheduleStore::load`]s it back, digest-verified.
//!
//! **Keying.** [`ScheduleStore::key`] content-addresses an entry by the
//! timing-model version, the device, and the *complete* `FusedConfig`
//! (including the Tier-2 knobs `bk`, `filter_ldg`, `pipeline_depth`), so a
//! schedule tuned for one emitted module can never be replayed against a
//! different one. Plans fold [`ScheduleStore::fingerprint`] — a digest of
//! the stored entries a build would consult — into their own plan key, so
//! publishing a new tuned schedule automatically invalidates every cached
//! plan that should now pick it up.
//!
//! Entries use the same exact line-based text convention as
//! `plan`: integers in decimal, the cubin as hex, round-trip byte-exact.

use gpusim::digest::module_digest;
use gpusim::{DeviceSpec, Digest};
use kernels::FusedConfig;
use sass::Module;

use crate::plan::PlanStorage;

/// Bumped whenever the entry text format changes.
pub const SCHED_FORMAT_VERSION: u32 = 1;

/// One persisted autotuner result: the tuned module plus the provenance a
/// replayer needs to verify and report it.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredSchedule {
    /// Winning Tier-2 emitter point, `EmitterParams::label` form
    /// (e.g. `bk64-bn32-bc8-w64-p2`).
    pub params: String,
    /// `module_digest` of the tuned module; checked on every load.
    pub schedule_digest: String,
    /// The assembled tuned module (`Module::to_cubin`).
    pub cubin: Vec<u8>,
    /// Device-model cycles of the hand schedule at this shape.
    pub hand_cycles: u64,
    /// Device-model cycles of the tuned schedule.
    pub tuned_cycles: u64,
    /// Objective evaluations the search spent end to end.
    pub evals: u64,
}

impl StoredSchedule {
    /// Serialize to the line-based text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("sched v{SCHED_FORMAT_VERSION}\n"));
        s.push_str(&format!("params {}\n", self.params));
        s.push_str(&format!("digest {}\n", self.schedule_digest));
        s.push_str(&format!("hand_cycles {}\n", self.hand_cycles));
        s.push_str(&format!("tuned_cycles {}\n", self.tuned_cycles));
        s.push_str(&format!("evals {}\n", self.evals));
        s.push_str("cubin ");
        for b in &self.cubin {
            s.push_str(&format!("{b:02x}"));
        }
        s.push('\n');
        s
    }

    /// Parse [`StoredSchedule::to_text`] output; `None` on any malformation
    /// or version mismatch (callers treat that as a store miss).
    pub fn from_text(text: &str) -> Option<StoredSchedule> {
        let mut lines = text.lines();
        let version: u32 = lines.next()?.strip_prefix("sched v")?.parse().ok()?;
        if version != SCHED_FORMAT_VERSION {
            return None;
        }
        let mut sched = StoredSchedule {
            params: String::new(),
            schedule_digest: String::new(),
            cubin: Vec::new(),
            hand_cycles: 0,
            tuned_cycles: 0,
            evals: 0,
        };
        for line in lines {
            let (key, rest) = line.split_once(' ')?;
            match key {
                "params" => sched.params = rest.to_string(),
                "digest" => sched.schedule_digest = rest.to_string(),
                "hand_cycles" => sched.hand_cycles = rest.parse().ok()?,
                "tuned_cycles" => sched.tuned_cycles = rest.parse().ok()?,
                "evals" => sched.evals = rest.parse().ok()?,
                "cubin" => {
                    if rest.len() % 2 != 0 {
                        return None;
                    }
                    sched.cubin = (0..rest.len() / 2)
                        .map(|i| u8::from_str_radix(&rest[2 * i..2 * i + 2], 16).ok())
                        .collect::<Option<Vec<u8>>>()?;
                }
                _ => return None,
            }
        }
        if sched.schedule_digest.is_empty() || sched.cubin.is_empty() {
            return None;
        }
        Some(sched)
    }

    /// Decode the cubin and check it against the recorded digest.
    pub fn module(&self) -> Option<Module> {
        let m = Module::from_cubin(&self.cubin).ok()?;
        let mut d = Digest::new();
        module_digest(&m, &mut d);
        (d.hex() == self.schedule_digest).then_some(m)
    }
}

/// Digest-keyed view of tuned schedules over any [`PlanStorage`].
pub struct ScheduleStore<'a> {
    storage: &'a dyn PlanStorage,
}

impl<'a> ScheduleStore<'a> {
    pub fn new(storage: &'a dyn PlanStorage) -> Self {
        ScheduleStore { storage }
    }

    /// Content address of the schedule for `cfg` on `device`.
    ///
    /// The full config is digested through its `Debug` form so *every*
    /// emitter knob participates — adding a knob to `FusedConfig` moves all
    /// addresses, which is exactly the staleness behavior we want.
    pub fn key(device: &DeviceSpec, cfg: &FusedConfig) -> String {
        let mut d = Digest::new();
        d.str("tune/sched/v2").u32(gpusim::TIMING_MODEL_VERSION);
        device.digest_into(&mut d);
        d.str(&format!("{cfg:?}"));
        d.hex()
    }

    /// Load and verify the entry for `(device, cfg)`. A present-but-corrupt
    /// entry (bad text, digest mismatch) is dropped and reported as absent.
    pub fn load(&self, device: &DeviceSpec, cfg: &FusedConfig) -> Option<StoredSchedule> {
        let key = Self::key(device, cfg);
        let sched = self
            .storage
            .load(&key)
            .as_deref()
            .and_then(StoredSchedule::from_text);
        match sched {
            Some(s) if s.module().is_some() => Some(s),
            Some(_) => {
                self.storage.remove(&key);
                None
            }
            None => None,
        }
    }

    /// Persist `sched` as the tuned schedule for `(device, cfg)`.
    pub fn save(&self, device: &DeviceSpec, cfg: &FusedConfig, sched: &StoredSchedule) {
        self.storage
            .store(&Self::key(device, cfg), &sched.to_text());
    }

    /// Fingerprint of the store contents a plan build over `cfgs` would
    /// consult: the digest of each entry's text (or `none`), in order.
    /// Folding this into a plan key makes cached plans rebuild whenever a
    /// relevant tuned schedule appears, changes, or disappears.
    pub fn fingerprint(&self, device: &DeviceSpec, cfgs: &[FusedConfig]) -> String {
        let mut d = Digest::new();
        d.str("tune/sched-fp/v1");
        for cfg in cfgs {
            match self.storage.load(&Self::key(device, cfg)) {
                Some(text) => d.str(&text),
                None => d.str("none"),
            };
        }
        d.hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::MemStorage;
    use kernels::FusedKernel;

    fn entry() -> (FusedConfig, StoredSchedule) {
        let cfg = FusedConfig::ours(32, 8, 8, 32, 64);
        let kern = FusedKernel::emit(cfg);
        let digest = {
            let mut d = Digest::new();
            module_digest(&kern.module, &mut d);
            d.hex()
        };
        let sched = StoredSchedule {
            params: "bk64-bn32-bc8-w64-p2".into(),
            schedule_digest: digest,
            cubin: kern.module.to_cubin(),
            hand_cycles: 31018,
            tuned_cycles: 30269,
            evals: 400,
        };
        (cfg, sched)
    }

    #[test]
    fn text_round_trip_and_verify() {
        let (_, sched) = entry();
        let t = sched.to_text();
        let rt = StoredSchedule::from_text(&t).unwrap();
        assert_eq!(rt, sched);
        assert_eq!(rt.to_text(), t);
        assert!(rt.module().is_some());
        let mut bad = sched.clone();
        bad.schedule_digest = format!("{:032x}", 0);
        assert!(bad.module().is_none());
    }

    #[test]
    fn store_load_and_corruption() {
        let mem = MemStorage::new();
        let dev = gpusim::DeviceSpec::v100();
        let (cfg, sched) = entry();
        let store = ScheduleStore::new(&mem);
        assert!(store.load(&dev, &cfg).is_none());
        store.save(&dev, &cfg, &sched);
        assert_eq!(store.load(&dev, &cfg).unwrap(), sched);
        // A different config is a different address.
        let mut other = cfg;
        other.pipeline_depth = 1;
        assert!(store.load(&dev, &other).is_none());
        // Tampered digest: entry is dropped on load.
        let mut bad = sched.clone();
        bad.schedule_digest = format!("{:032x}", 0);
        mem.store(&ScheduleStore::key(&dev, &cfg), &bad.to_text());
        assert!(store.load(&dev, &cfg).is_none());
        assert!(mem.load(&ScheduleStore::key(&dev, &cfg)).is_none());
    }

    #[test]
    fn fingerprint_tracks_store_contents() {
        let mem = MemStorage::new();
        let dev = gpusim::DeviceSpec::v100();
        let (cfg, sched) = entry();
        let store = ScheduleStore::new(&mem);
        let empty = store.fingerprint(&dev, &[cfg]);
        store.save(&dev, &cfg, &sched);
        let full = store.fingerprint(&dev, &[cfg]);
        assert_ne!(empty, full);
        // Deterministic for fixed contents.
        assert_eq!(store.fingerprint(&dev, &[cfg]), full);
    }
}
