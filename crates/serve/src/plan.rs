//! `plan` — per-shape execution plans and the persistent plan cache.
//!
//! A **plan** is everything the server needs to execute one
//! [`ShapeClass`] on one device without thinking again:
//! the chosen algorithm and simulated service time for every supported
//! batch size, the bottleneck classification of the winning kernel, and —
//! when the schedule autotuner improved on the hand schedule — the tuned
//! fused-kernel **cubin** plus its schedule digest so a later process can
//! replay the `sass::tune` result instead of re-searching ("tune once,
//! serve forever").
//!
//! Plans are built by [`Planner::build`] (expensive: one multi-wave
//! simulation per probed algorithm per batch size, plus optional annealing)
//! and cached through [`PlanCache`], which layers LRU bookkeeping and
//! eviction on any [`PlanStorage`] backend. The `bench` serve binary backs
//! it with `simcache`'s content-addressed store; tests use [`MemStorage`].
//!
//! **Keying.** [`Planner::plan_key`] content-addresses a plan by everything
//! that determines its bytes: plan format version, timing-model version,
//! device, class shape, batch set, and tune budget/seed. Any model or
//! emitter change moves the address, so stale plans are never replayed —
//! they simply stop being found and age out of the LRU index.
//!
//! **Invariants.**
//! - [`Plan::to_text`]/[`Plan::from_text`] round-trip exactly (floats are
//!   stored as bit patterns), so a cached plan re-serializes byte-identically.
//! - A loaded plan with a tuned schedule is verified: the cubin must decode
//!   and its module digest must equal the recorded schedule digest, else the
//!   entry is dropped and rebuilt ([`PlanCache::get`] returns `None`).
//! - All service times are integer nanoseconds of simulated time; nothing in
//!   a plan depends on the host, `--jobs`, or wall-clock.

use std::cell::RefCell;
use std::collections::HashMap;

use gpusim::digest::module_digest;
use gpusim::{
    time_kernel_device, BatchTimer, DeviceOptions, DeviceSpec, Digest, Gpu, TimingOptions,
};
use kernels::{EmitterParams, FusedConfig, FusedKernel};
use perfmodel::{break_even_k, nonfused_viable, BottleneckReport};
use sass::island::{run_islands, IslandConfig, Priors, SeedKind};
use sass::tune::TuneRegion;
use sass::Module;
use wino_core::{Algo, Conv};

use crate::schedstore::ScheduleStore;
use crate::traffic::ShapeClass;

/// Bumped whenever the plan text format or its semantics change; part of
/// the plan key, so old entries are never misread.
///
/// v2 added [`Plan::assumed_rps`] — the per-class arrival rate the traffic
/// model assumed at plan-build time, which the telemetry drift tracker
/// compares against the observed rate.
///
/// v3 added [`TunedSchedule::params`] and [`TunedSchedule::source`]: the
/// winning Tier-2 emitter point and whether the schedule was replayed from
/// the v2 autotuner's store (`store`) or found by in-process annealing
/// (`anneal`).
pub const PLAN_FORMAT_VERSION: u32 = 3;

/// On-device runs charged per probed algorithm when modeling cold plan
/// construction (cuDNN-style "find" runs each candidate a few times).
pub const PROBE_RUNS: u64 = 3;

/// Modeled cost of loading a plan from a warm cache (host lookup + cubin
/// upload), nanoseconds of simulated time.
pub const PLAN_LOOKUP_NS: u64 = 200_000;

/// The execution choice for one batch size.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanVariant {
    /// Batch size `N` this variant serves.
    pub n: u32,
    /// Winning algorithm (cuDNN-style name, `Algo::name`).
    pub algo: String,
    /// Simulated end-to-end service time of one launch group, nanoseconds.
    pub service_ns: u64,
    /// Effective TFLOP/s of the winner at this batch.
    pub tflops: f64,
}

/// A schedule-autotuner result worth persisting: the tuned fused-kernel
/// module as an assembled cubin, plus enough metadata to verify and report
/// the replay.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedSchedule {
    /// Batch size the schedule was tuned at (the control codes are specific
    /// to that emitted module).
    pub n: u32,
    /// `module_digest` of the tuned module; checked on every cache load.
    pub schedule_digest: String,
    /// The assembled tuned module (`Module::to_cubin`).
    pub cubin: Vec<u8>,
    /// One-wave cycles of the hand schedule (annealing start point).
    pub hand_cycles: u64,
    /// One-wave cycles of the best schedule found.
    pub tuned_cycles: u64,
    /// Objective evaluations spent (drives the modeled tuning cost).
    pub evals: u64,
    /// Winning Tier-2 emitter point (`EmitterParams::label` form).
    pub params: String,
    /// Provenance: `store` (replayed from the v2 autotuner's schedule
    /// store) or `anneal` (found by this planner's in-process search).
    pub source: String,
}

/// Everything needed to serve one shape class on one device.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    pub version: u32,
    /// Device name (`DeviceSpec::name`).
    pub device: String,
    /// Shape-class name the plan serves.
    pub class: String,
    /// Bottleneck classification of the winning kernel at the largest batch.
    pub bound: String,
    /// The device's fused-vs-nonfused breakeven `K` (see
    /// `perfmodel::break_even_k`); recorded so the probe-set pruning is
    /// auditable.
    pub break_even_k: f64,
    /// Per-batch-size choices, ascending in `n`.
    pub variants: Vec<PlanVariant>,
    /// Modeled on-device cost of building this plan cold (probe runs +
    /// tuning evaluations), nanoseconds of simulated time.
    pub build_cost_ns: u64,
    /// Arrival rate (requests/second) the traffic model assumed for this
    /// class when the plan was built; `0.0` means unknown and disables the
    /// telemetry drift tracker for the class.
    pub assumed_rps: f64,
    /// Present when the autotuner beat the hand schedule.
    pub tuned: Option<TunedSchedule>,
}

impl Plan {
    /// Variant used for a group of `count` requests: the smallest supported
    /// batch that fits, else the largest.
    pub fn variant_for(&self, count: usize) -> &PlanVariant {
        self.variants
            .iter()
            .find(|v| v.n as usize >= count)
            .unwrap_or_else(|| self.variants.last().expect("plan has variants"))
    }

    /// Largest supported batch size.
    pub fn max_batch(&self) -> u32 {
        self.variants.last().expect("plan has variants").n
    }

    /// Worst-case service time over all variants — the queue's safety margin
    /// when deciding the latest dispatch instant that still meets the SLO.
    pub fn worst_service_ns(&self) -> u64 {
        self.variants
            .iter()
            .map(|v| v.service_ns)
            .max()
            .expect("plan has variants")
    }

    /// Serialize to the line-based text format. Exact: floats are written as
    /// IEEE-754 bit patterns, the cubin as hex.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("plan v{}\n", self.version));
        s.push_str(&format!("device {}\n", self.device));
        s.push_str(&format!("class {}\n", self.class));
        s.push_str(&format!("bound {}\n", self.bound));
        s.push_str(&format!(
            "break_even_k_bits {:016x}\n",
            self.break_even_k.to_bits()
        ));
        s.push_str(&format!("build_cost_ns {}\n", self.build_cost_ns));
        s.push_str(&format!(
            "assumed_rps_bits {:016x}\n",
            self.assumed_rps.to_bits()
        ));
        for v in &self.variants {
            s.push_str(&format!(
                "variant {} {} {} {:016x}\n",
                v.n,
                v.algo,
                v.service_ns,
                v.tflops.to_bits()
            ));
        }
        if let Some(t) = &self.tuned {
            s.push_str(&format!(
                "tuned {} {} {} {} {} {} {}\n",
                t.n, t.schedule_digest, t.hand_cycles, t.tuned_cycles, t.evals, t.params, t.source
            ));
            s.push_str("cubin ");
            for b in &t.cubin {
                s.push_str(&format!("{b:02x}"));
            }
            s.push('\n');
        }
        s
    }

    /// Parse [`Plan::to_text`] output. Returns `None` on any malformation or
    /// version mismatch — callers treat that as a cache miss.
    pub fn from_text(text: &str) -> Option<Plan> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let version: u32 = header.strip_prefix("plan v")?.parse().ok()?;
        if version != PLAN_FORMAT_VERSION {
            return None;
        }
        let mut plan = Plan {
            version,
            device: String::new(),
            class: String::new(),
            bound: String::new(),
            break_even_k: 0.0,
            variants: Vec::new(),
            build_cost_ns: 0,
            assumed_rps: 0.0,
            tuned: None,
        };
        let mut pending_tuned: Option<TunedSchedule> = None;
        for line in lines {
            let (key, rest) = line.split_once(' ')?;
            match key {
                "device" => plan.device = rest.to_string(),
                "class" => plan.class = rest.to_string(),
                "bound" => plan.bound = rest.to_string(),
                "break_even_k_bits" => {
                    plan.break_even_k = f64::from_bits(u64::from_str_radix(rest, 16).ok()?)
                }
                "build_cost_ns" => plan.build_cost_ns = rest.parse().ok()?,
                "assumed_rps_bits" => {
                    plan.assumed_rps = f64::from_bits(u64::from_str_radix(rest, 16).ok()?)
                }
                "variant" => {
                    let mut it = rest.split(' ');
                    plan.variants.push(PlanVariant {
                        n: it.next()?.parse().ok()?,
                        algo: it.next()?.to_string(),
                        service_ns: it.next()?.parse().ok()?,
                        tflops: f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?),
                    });
                }
                "tuned" => {
                    let mut it = rest.split(' ');
                    pending_tuned = Some(TunedSchedule {
                        n: it.next()?.parse().ok()?,
                        schedule_digest: it.next()?.to_string(),
                        cubin: Vec::new(),
                        hand_cycles: it.next()?.parse().ok()?,
                        tuned_cycles: it.next()?.parse().ok()?,
                        evals: it.next()?.parse().ok()?,
                        params: it.next()?.to_string(),
                        source: it.next()?.to_string(),
                    });
                }
                "cubin" => {
                    let t = pending_tuned.as_mut()?;
                    if rest.len() % 2 != 0 {
                        return None;
                    }
                    t.cubin = (0..rest.len() / 2)
                        .map(|i| u8::from_str_radix(&rest[2 * i..2 * i + 2], 16).ok())
                        .collect::<Option<Vec<u8>>>()?;
                }
                _ => return None,
            }
        }
        plan.tuned = pending_tuned;
        if plan.variants.is_empty() {
            return None;
        }
        Some(plan)
    }

    /// Warm-start verification: a plan without a tuned schedule is trivially
    /// valid; one with a schedule must carry a cubin that decodes back to a
    /// module whose digest matches `schedule_digest`.
    pub fn verify(&self) -> bool {
        match &self.tuned {
            None => true,
            Some(t) => match Module::from_cubin(&t.cubin) {
                Ok(m) => {
                    let mut d = Digest::new();
                    module_digest(&m, &mut d);
                    d.hex() == t.schedule_digest
                }
                Err(_) => false,
            },
        }
    }
}

// ---- storage ----------------------------------------------------------------

/// Minimal persistence interface the plan cache needs. Keys are lowercase
/// hex strings (content addresses); values are plan/index text.
///
/// `bench`'s serve binary adapts `simcache::Store` to this trait; the crate
/// itself ships only [`MemStorage`] so it stays dependency-free.
pub trait PlanStorage {
    fn load(&self, key: &str) -> Option<String>;
    fn store(&self, key: &str, value: &str);
    fn remove(&self, key: &str);
}

/// In-memory [`PlanStorage`] for tests and ephemeral runs.
#[derive(Default)]
pub struct MemStorage {
    map: RefCell<HashMap<String, String>>,
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.borrow().is_empty()
    }
}

impl PlanStorage for MemStorage {
    fn load(&self, key: &str) -> Option<String> {
        self.map.borrow().get(key).cloned()
    }

    fn store(&self, key: &str, value: &str) {
        self.map
            .borrow_mut()
            .insert(key.to_string(), value.to_string());
    }

    fn remove(&self, key: &str) {
        self.map.borrow_mut().remove(key);
    }
}

/// Counters the serve report surfaces per device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans served from storage (verified).
    pub hits: u64,
    /// Plans absent, malformed, version-skewed, or failing verification.
    pub misses: u64,
    /// Plans written.
    pub stores: u64,
    /// Plans evicted to respect the capacity cap.
    pub evictions: u64,
}

/// LRU plan cache for one device, layered on a [`PlanStorage`].
///
/// The recency index is itself persisted (under a reserved per-device key),
/// so eviction order survives process restarts. Index updates are written
/// through on every access; the index lists keys oldest-first.
pub struct PlanCache<'a> {
    storage: &'a dyn PlanStorage,
    index_key: String,
    /// Maximum plans retained; `0` means unlimited.
    cap: usize,
    index: Vec<String>,
    pub stats: CacheStats,
}

impl<'a> PlanCache<'a> {
    /// Open the cache for `device`, loading any persisted index.
    pub fn new(storage: &'a dyn PlanStorage, device: &str, cap: usize) -> Self {
        let index_key = {
            let mut d = Digest::new();
            d.str("serve/plan-index/v1").str(device);
            d.hex()
        };
        let index = storage
            .load(&index_key)
            .map(|t| t.lines().map(str::to_string).collect())
            .unwrap_or_default();
        PlanCache {
            storage,
            index_key,
            cap,
            index,
            stats: CacheStats::default(),
        }
    }

    fn write_index(&self) {
        self.storage.store(&self.index_key, &self.index.join("\n"));
    }

    fn touch(&mut self, key: &str) {
        self.index.retain(|k| k != key);
        self.index.push(key.to_string());
    }

    /// Plan keys currently tracked, oldest-first.
    pub fn keys(&self) -> &[String] {
        &self.index
    }

    /// The backing storage — shared with the tuned-schedule store, so
    /// `acquire` can consult schedules published by the offline autotuner
    /// through the same backend the plans live in.
    pub fn storage(&self) -> &'a dyn PlanStorage {
        self.storage
    }

    /// Look up and verify a plan. Any failure (absent, unparsable, wrong
    /// version, digest mismatch) counts as a miss and drops the stale entry.
    pub fn get(&mut self, key: &str) -> Option<Plan> {
        match self.storage.load(key).as_deref().and_then(Plan::from_text) {
            Some(p) if p.verify() => {
                self.stats.hits += 1;
                self.touch(key);
                self.write_index();
                Some(p)
            }
            _ => {
                self.stats.misses += 1;
                self.storage.remove(key);
                self.index.retain(|k| k != key);
                self.write_index();
                None
            }
        }
    }

    /// Insert a plan, evicting least-recently-used entries past the cap.
    pub fn put(&mut self, key: &str, plan: &Plan) {
        self.storage.store(key, &plan.to_text());
        self.stats.stores += 1;
        self.touch(key);
        while self.cap > 0 && self.index.len() > self.cap {
            let victim = self.index.remove(0);
            self.storage.remove(&victim);
            self.stats.evictions += 1;
        }
        self.write_index();
    }
}

// ---- planning ---------------------------------------------------------------

/// Builds plans for one device: probes candidate algorithms through the
/// multi-wave device model, prunes with the breakeven analysis, classifies
/// the winner's bottleneck, and (optionally) anneals the fused schedule.
pub struct Planner {
    pub device: DeviceSpec,
    /// Supported batch sizes, ascending (launch groups are padded up to one
    /// of these).
    pub batch_sizes: Vec<u32>,
    /// Annealing steps for the fused schedule; `0` disables tuning.
    pub tune_budget: u64,
    /// Tuner RNG seed.
    pub tune_seed: u64,
    /// Traffic-mix assumption `(rate_rps, total_weight)` baked into each
    /// built plan as [`Plan::assumed_rps`] (`rate × class.weight / total`);
    /// `None` leaves plans with no assumption (drift tracking disabled).
    pub mix: Option<(f64, f64)>,
}

impl Planner {
    pub fn new(device: DeviceSpec, batch_sizes: Vec<u32>) -> Self {
        assert!(!batch_sizes.is_empty());
        assert!(batch_sizes.windows(2).all(|w| w[0] < w[1]));
        Planner {
            device,
            batch_sizes,
            tune_budget: 0,
            tune_seed: 2020,
            mix: None,
        }
    }

    /// The arrival rate this planner assumes for `class`, requests/second.
    pub fn assumed_rps(&self, class: &ShapeClass) -> f64 {
        match self.mix {
            Some((rate, total)) if total > 0.0 => rate * class.weight / total,
            _ => 0.0,
        }
    }

    /// Content address of the plan this planner would build for `class`
    /// with no tuned-schedule store in play.
    pub fn plan_key(&self, class: &ShapeClass) -> String {
        self.plan_key_with(class, None)
    }

    /// Content address of the plan this planner would build for `class`,
    /// folding in the fingerprint of every stored tuned schedule the build
    /// would consult — so publishing a new schedule rebuilds cached plans.
    pub fn plan_key_with(&self, class: &ShapeClass, sched: Option<&ScheduleStore>) -> String {
        let mut d = Digest::new();
        d.str("serve/plan/v2");
        d.u32(PLAN_FORMAT_VERSION).u32(gpusim::TIMING_MODEL_VERSION);
        self.device.digest_into(&mut d);
        d.str(&class.name);
        for v in [class.hw, class.c, class.k] {
            d.u32(v);
        }
        for &n in &self.batch_sizes {
            d.u32(n);
        }
        d.u64(self.tune_budget).u64(self.tune_seed);
        // The mix assumption is part of the plan's content (it lands in
        // `assumed_rps`), so it must move the address too.
        d.u64(self.assumed_rps(class).to_bits());
        match sched {
            Some(s) => d.str(&s.fingerprint(&self.device, &self.fused_cfgs(class))),
            None => d.str("sched:none"),
        };
        d.hex()
    }

    /// The fused configs a build would consult in the schedule store: one
    /// per supported batch size, ascending.
    fn fused_cfgs(&self, class: &ShapeClass) -> Vec<FusedConfig> {
        self.batch_sizes
            .iter()
            .map(|&n| FusedConfig::ours(class.c, class.hw, class.hw, n, class.k))
            .collect()
    }

    /// Candidate algorithms for `class`: the fused kernels plus implicit
    /// GEMM, with the nonfused F(4×4) pipeline admitted only above the
    /// device's breakeven `K` (below it, fused F(2×2) provably wins — see
    /// `perfmodel::break_even_k` — so probing it would waste PROBE_RUNS).
    pub fn candidates(&self, class: &ShapeClass) -> Vec<Algo> {
        let fused_ok = class.c.is_multiple_of(8) && class.k.is_multiple_of(64);
        let mut algos = Vec::new();
        if fused_ok {
            algos.push(Algo::OursFused);
        }
        algos.push(Algo::CudnnWinograd);
        algos.push(Algo::ImplicitPrecompGemm);
        if nonfused_viable(&self.device, f64::from(class.k)) {
            algos.push(Algo::WinogradNonfused);
        }
        algos
    }

    /// Build the plan for `class` without a tuned-schedule store (any
    /// tuning happens in-process).
    pub fn build(&self, class: &ShapeClass) -> Plan {
        self.build_with(class, None)
    }

    /// Build the plan for `class`. Deterministic; cost is dominated by one
    /// multi-wave simulation per (batch size × candidate) plus
    /// `tune_budget` one-wave simulations when tuning is on. When a
    /// schedule store is supplied, stored v2-tuner winners are replayed
    /// (digest-verified, re-timed) before any in-process search runs.
    pub fn build_with(&self, class: &ShapeClass, sched: Option<&ScheduleStore>) -> Plan {
        let algos = self.candidates(class);
        let mut variants = Vec::new();
        let mut probe_ns: u64 = 0;
        let mut top_timing: Option<wino_core::AlgoTiming> = None;
        for &n in &self.batch_sizes {
            let conv = Conv::new(class.problem(n), self.device.clone());
            let mut best: Option<wino_core::AlgoTiming> = None;
            for &algo in &algos {
                let t = conv.time(algo);
                probe_ns += PROBE_RUNS * to_ns(t.time_s);
                if best.as_ref().is_none_or(|b| t.time_s < b.time_s) {
                    best = Some(t);
                }
            }
            let best = best.expect("at least one candidate");
            variants.push(PlanVariant {
                n,
                algo: best.algo.name().to_string(),
                service_ns: to_ns(best.time_s),
                tflops: best.tflops_effective,
            });
            top_timing = Some(best);
        }
        let top = top_timing.expect("at least one batch size");
        let bound = top
            .kernel
            .as_ref()
            .map_or("unknown", |k| BottleneckReport::classify(k).bound.name())
            .to_string();

        let mut plan = Plan {
            version: PLAN_FORMAT_VERSION,
            device: self.device.name.to_string(),
            class: class.name.clone(),
            bound,
            break_even_k: break_even_k(&self.device),
            variants,
            build_cost_ns: probe_ns,
            assumed_rps: self.assumed_rps(class),
            tuned: None,
        };
        if top.algo == Algo::OursFused {
            let replayed = sched
                .map(|s| self.replay_stored(class, s, &mut plan))
                .unwrap_or(false);
            if !replayed && self.tune_budget > 0 {
                self.tune_fused(class, &top, &mut plan);
            }
        }
        plan
    }

    /// Consult the tuned-schedule store for every supported batch size,
    /// largest first; the first verified entry that still beats the hand
    /// schedule under the multi-wave device model is adopted into the plan.
    /// Returns `true` if a schedule was adopted.
    fn replay_stored(&self, class: &ShapeClass, sched: &ScheduleStore, plan: &mut Plan) -> bool {
        for &n in self.batch_sizes.iter().rev() {
            let cfg = FusedConfig::ours(class.c, class.hw, class.hw, n, class.k);
            let Some(entry) = sched.load(&self.device, &cfg) else {
                continue;
            };
            let tuned = entry.module().expect("load() verified the module");
            let hand = FusedKernel::emit(cfg);
            let capacity = 1usize << 30;
            let dims = hand.launch_dims();
            let alloc_bytes = fused_alloc_bytes(&cfg);
            let opts = TimingOptions {
                region: Some(hand.region),
                ..Default::default()
            };
            let dopts = DeviceOptions {
                base: opts,
                ..Default::default()
            };
            let time_module = |m: &Module| {
                let mut gpu = Gpu::new(self.device.clone(), capacity);
                let a = gpu.alloc(alloc_bytes[0]);
                let b = gpu.alloc(alloc_bytes[1]);
                let o = gpu.alloc(alloc_bytes[2]);
                let params = hand.params(a, b, o);
                time_kernel_device(&mut gpu, m, dims, &params, dopts).ok()
            };
            let (Some(hand_t), Some(tuned_t)) = (time_module(&hand.module), time_module(&tuned))
            else {
                continue;
            };
            // Two verification runs are the modeled replay cost.
            plan.build_cost_ns += to_ns(hand_t.time_s) + to_ns(tuned_t.time_s);
            if tuned_t.time_s >= hand_t.time_s {
                continue; // store entry no longer wins under this model
            }
            let saved = to_ns(hand_t.time_s) - to_ns(tuned_t.time_s);
            if let Some(v) = plan
                .variants
                .iter_mut()
                .find(|v| v.n == n && v.algo == Algo::OursFused.name())
            {
                v.service_ns -= saved.min(v.service_ns);
            }
            plan.tuned = Some(TunedSchedule {
                n,
                schedule_digest: entry.schedule_digest.clone(),
                cubin: entry.cubin.clone(),
                hand_cycles: entry.hand_cycles,
                tuned_cycles: entry.tuned_cycles,
                evals: entry.evals,
                params: entry.params.clone(),
                source: "store".into(),
            });
            return true;
        }
        false
    }

    /// Anneal the fused schedule at the largest batch, starting from the
    /// hand schedule — a small two-island search (hand + greedy-tightened
    /// hand) splitting `tune_budget` anneal steps; adopt the result only if
    /// the device-level re-timing actually improves on the hand kernel.
    fn tune_fused(&self, class: &ShapeClass, top: &wino_core::AlgoTiming, plan: &mut Plan) {
        let n = *self.batch_sizes.last().unwrap();
        let cfg = FusedConfig::ours(class.c, class.hw, class.hw, n, class.k);
        let hand = FusedKernel::emit(cfg);
        let alloc_bytes = fused_alloc_bytes(&cfg);
        let capacity = 1usize << 30;
        let dims = hand.launch_dims();
        let params = {
            let mut gpu = Gpu::new(self.device.clone(), capacity);
            let a = gpu.alloc(alloc_bytes[0]);
            let b = gpu.alloc(alloc_bytes[1]);
            let o = gpu.alloc(alloc_bytes[2]);
            hand.params(a, b, o)
        };
        let opts = TimingOptions {
            region: Some(hand.region),
            ..Default::default()
        };

        let timer = BatchTimer::new(&hand.module);
        let base = hand.module.clone();
        let dev = self.device.clone();
        let params_ref = &params;
        let make_objective = |_: usize| {
            let mut batch = timer.clone();
            let base = base.clone();
            let dev = dev.clone();
            move |insts: &[sass::Instruction], perm: &[u32]| {
                let cand = Module::new(
                    &base.info.name,
                    base.info.smem_bytes,
                    base.info.param_bytes,
                    insts.to_vec(),
                );
                let mut gpu = Gpu::new(dev.clone(), capacity);
                for &b in &alloc_bytes {
                    gpu.alloc(b);
                }
                batch
                    .time(&mut gpu, &cand, perm, dims, params_ref, opts)
                    .ok()
                    .map(|t| t.wave_cycles)
            }
        };

        let regions: Vec<TuneRegion> = hand
            .regions
            .iter()
            .map(|r| TuneRegion {
                name: r.name.clone(),
                start: r.start,
                end: r.end,
            })
            .collect();
        let mut icfg = IslandConfig::new(2, 2, (self.tune_budget / 4).max(1), self.tune_seed);
        icfg.seeds = vec![SeedKind::Hand, SeedKind::HandGreedy];
        icfg.jobs = 1;
        let outcome = run_islands(
            &hand.module.insts,
            &regions,
            &Priors::default(),
            &icfg,
            make_objective,
        );
        let hand_cycles = outcome.per_island[0].start_cost;
        // Modeled tuning cost: every objective evaluation is one on-device
        // run of roughly a hand-schedule wave.
        let wave_ns = outcome.best_cost.max(hand_cycles) as f64 / self.device.clock_hz * 1e9;
        plan.build_cost_ns += outcome.stats.evals * (wave_ns as u64);
        if outcome.best_cost >= hand_cycles {
            return; // annealing found nothing better; keep the hand schedule
        }

        let best = Module::new(
            &base.info.name,
            base.info.smem_bytes,
            base.info.param_bytes,
            outcome.best_insts.clone(),
        );
        // Re-time the tuned module through the full device model and fold
        // the kernel-phase delta into the largest-batch variant.
        let mut gpu = Gpu::new(self.device.clone(), capacity);
        for &b in &alloc_bytes {
            gpu.alloc(b);
        }
        let dopts = DeviceOptions {
            base: opts,
            ..Default::default()
        };
        let Ok(tuned_t) = time_kernel_device(&mut gpu, &best, dims, &params, dopts) else {
            return;
        };
        let hand_kernel = top.kernel.as_ref().expect("fused timing has a kernel");
        if tuned_t.time_s >= hand_kernel.time_s {
            return; // one-wave win didn't survive the multi-wave model
        }
        let v = plan.variants.last_mut().unwrap();
        let saved = to_ns(hand_kernel.time_s) - to_ns(tuned_t.time_s);
        v.service_ns -= saved.min(v.service_ns);
        let schedule_digest = {
            let mut d = Digest::new();
            module_digest(&best, &mut d);
            d.hex()
        };
        plan.tuned = Some(TunedSchedule {
            n,
            schedule_digest,
            cubin: best.to_cubin(),
            hand_cycles,
            tuned_cycles: outcome.best_cost,
            evals: outcome.stats.evals,
            params: EmitterParams::hand().label(),
            source: "anneal".into(),
        });
    }

    /// Cache-through acquisition: hit returns the stored plan, miss builds
    /// and stores. The bool is `true` on a hit. The schedule store shares
    /// the cache's storage, so v2-tuner winners published through the same
    /// backend are picked up (and move the plan key, forcing a rebuild).
    pub fn acquire(&self, cache: &mut PlanCache, class: &ShapeClass) -> (Plan, bool) {
        let sched = ScheduleStore::new(cache.storage());
        let key = self.plan_key_with(class, Some(&sched));
        if let Some(p) = cache.get(&key) {
            return (p, true);
        }
        let plan = self.build_with(class, Some(&sched));
        cache.put(&key, &plan);
        (plan, false)
    }
}

/// Device-buffer sizes (input, transformed filter, output) for one fused
/// problem shape, bytes.
fn fused_alloc_bytes(cfg: &FusedConfig) -> [u64; 3] {
    let (c64, h64, w64, n64, k64) = (
        u64::from(cfg.c),
        u64::from(cfg.h),
        u64::from(cfg.w),
        u64::from(cfg.n),
        u64::from(cfg.k),
    );
    [
        c64 * h64 * w64 * n64 * 4,
        c64 * 16 * k64 * 4,
        k64 * h64 * w64 * n64 * 4,
    ]
}

/// Seconds → integer nanoseconds (round to nearest, min 1).
pub fn to_ns(s: f64) -> u64 {
    ((s * 1e9).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedstore::StoredSchedule;

    fn plan_fixture() -> Plan {
        Plan {
            version: PLAN_FORMAT_VERSION,
            device: "V100".into(),
            class: "Conv4".into(),
            bound: "compute".into(),
            break_even_k: 129.4375,
            variants: vec![
                PlanVariant {
                    n: 32,
                    algo: "OURS".into(),
                    service_ns: 123_456,
                    tflops: 7.25,
                },
                PlanVariant {
                    n: 64,
                    algo: "OURS".into(),
                    service_ns: 222_222,
                    tflops: 8.5,
                },
            ],
            build_cost_ns: 9_999_999,
            assumed_rps: 1562.5,
            tuned: None,
        }
    }

    #[test]
    fn text_round_trip() {
        let p = plan_fixture();
        let t = p.to_text();
        assert_eq!(Plan::from_text(&t).unwrap(), p);
        // Exact: re-serializing the parse is byte-identical.
        assert_eq!(Plan::from_text(&t).unwrap().to_text(), t);
    }

    #[test]
    fn version_skew_is_a_miss() {
        let t = plan_fixture().to_text().replace(
            &format!("plan v{PLAN_FORMAT_VERSION}"),
            &format!("plan v{}", PLAN_FORMAT_VERSION + 1),
        );
        assert!(Plan::from_text(&t).is_none());
    }

    #[test]
    fn variant_lookup() {
        let p = plan_fixture();
        assert_eq!(p.variant_for(1).n, 32);
        assert_eq!(p.variant_for(32).n, 32);
        assert_eq!(p.variant_for(33).n, 64);
        assert_eq!(p.variant_for(500).n, 64);
        assert_eq!(p.worst_service_ns(), 222_222);
    }

    #[test]
    fn lru_eviction_and_persistence() {
        let mem = MemStorage::new();
        let p = plan_fixture();
        {
            let mut cache = PlanCache::new(&mem, "V100", 2);
            cache.put("aa", &p);
            cache.put("bb", &p);
            cache.put("cc", &p); // evicts aa
            assert_eq!(cache.stats.evictions, 1);
            assert!(cache.get("aa").is_none());
            assert!(cache.get("bb").is_some());
            cache.put("dd", &p); // LRU is now cc (bb was touched)
            assert!(cache.get("cc").is_none());
            assert!(cache.get("bb").is_some());
        }
        // A fresh cache over the same storage sees the persisted index.
        let mut cache = PlanCache::new(&mem, "V100", 2);
        assert_eq!(cache.keys().len(), 2);
        assert!(cache.get("bb").is_some());
        assert!(cache.get("dd").is_some());
    }

    #[test]
    fn corrupt_entry_is_dropped() {
        let mem = MemStorage::new();
        let mut cache = PlanCache::new(&mem, "V100", 0);
        cache.put("ee", &plan_fixture());
        mem.store("ee", "plan v1\ngarbage");
        assert!(cache.get("ee").is_none());
        assert_eq!(cache.stats.misses, 1);
        assert!(mem.load("ee").is_none(), "stale entry removed");
        assert!(cache.keys().is_empty());
    }

    #[test]
    fn tuned_cubin_round_trip_and_verify() {
        let cfg = FusedConfig::ours(32, 8, 8, 32, 64);
        let kern = FusedKernel::emit(cfg);
        let digest = {
            let mut d = Digest::new();
            module_digest(&kern.module, &mut d);
            d.hex()
        };
        let mut p = plan_fixture();
        p.tuned = Some(TunedSchedule {
            n: 32,
            schedule_digest: digest,
            cubin: kern.module.to_cubin(),
            hand_cycles: 100,
            tuned_cycles: 90,
            evals: 10,
            params: "bk64-bn32-bc8-w64-p2".into(),
            source: "store".into(),
        });
        assert!(p.verify());
        let rt = Plan::from_text(&p.to_text()).unwrap();
        assert_eq!(rt, p);
        assert!(rt.verify());
        // Digest tampering fails verification.
        let mut bad = p.clone();
        bad.tuned.as_mut().unwrap().schedule_digest = format!("{:032x}", 0);
        assert!(!bad.verify());
    }

    /// A fused-legal class cheap enough to simulate in a unit test. (The
    /// probe would pick WINOGRAD_NONFUSED for it, which is exactly why the
    /// replay tests below drive `replay_stored` directly.)
    fn proxy_class() -> ShapeClass {
        ShapeClass {
            name: "SmokeA".into(),
            hw: 8,
            c: 32,
            k: 64,
            weight: 1.0,
        }
    }

    fn ours_plan(planner: &Planner, class: &ShapeClass) -> Plan {
        Plan {
            version: PLAN_FORMAT_VERSION,
            device: planner.device.name.to_string(),
            class: class.name.clone(),
            bound: "smem".into(),
            break_even_k: break_even_k(&planner.device),
            variants: vec![PlanVariant {
                n: 32,
                algo: Algo::OursFused.name().into(),
                service_ns: 20_000,
                tflops: 10.0,
            }],
            build_cost_ns: 0,
            assumed_rps: 0.0,
            tuned: None,
        }
    }

    /// Publishing a schedule must move the plan address, so stale cached
    /// plans rebuild — and an empty store is itself a distinct address from
    /// "no store consulted".
    #[test]
    fn plan_key_tracks_schedule_store() {
        let class = proxy_class();
        let planner = Planner::new(DeviceSpec::v100(), vec![32]);
        let mem = MemStorage::new();
        let key_none = planner.plan_key(&class);
        let key_empty = planner.plan_key_with(&class, Some(&ScheduleStore::new(&mem)));
        assert_ne!(key_none, key_empty);

        let kern = FusedKernel::emit(FusedConfig::ours(class.c, class.hw, class.hw, 32, class.k));
        ScheduleStore::new(&mem).save(
            &planner.device,
            &kern.config,
            &StoredSchedule {
                params: "bk64-bn32-bc8-w64-p2".into(),
                schedule_digest: {
                    let mut d = Digest::new();
                    module_digest(&kern.module, &mut d);
                    d.hex()
                },
                cubin: kern.module.to_cubin(),
                hand_cycles: 100,
                tuned_cycles: 90,
                evals: 10,
            },
        );
        let key_stored = planner.plan_key_with(&class, Some(&ScheduleStore::new(&mem)));
        assert_ne!(
            key_empty, key_stored,
            "publishing a schedule must move the plan key"
        );
    }

    /// The tuned-schedule handoff end to end: `replay_stored` ignores an
    /// empty store, re-times a stored schedule and rejects one that no
    /// longer beats the hand schedule (here: the hand schedule itself with
    /// forged cycle counts), and adopts a genuine winner — which a tiny
    /// island run from the greedy-tightened hand seed manufactures.
    #[test]
    fn replay_adopts_only_verified_winning_schedules() {
        let class = proxy_class();
        let planner = Planner::new(DeviceSpec::v100(), vec![32]);
        let mem = MemStorage::new();
        let sched = ScheduleStore::new(&mem);
        let cfg = FusedConfig::ours(class.c, class.hw, class.hw, 32, class.k);
        let hand = FusedKernel::emit(cfg);
        let digest_of = |m: &Module| {
            let mut d = Digest::new();
            module_digest(m, &mut d);
            d.hex()
        };

        let mut plan = ours_plan(&planner, &class);
        assert!(
            !planner.replay_stored(&class, &sched, &mut plan),
            "empty store adopted"
        );

        // The hand schedule itself, stored with forged "better" cycles:
        // the re-time ties the hand baseline, so the gate must reject it.
        sched.save(
            &planner.device,
            &cfg,
            &StoredSchedule {
                params: EmitterParams::hand().label(),
                schedule_digest: digest_of(&hand.module),
                cubin: hand.module.to_cubin(),
                hand_cycles: 100,
                tuned_cycles: 1,
                evals: 1,
            },
        );
        assert!(
            !planner.replay_stored(&class, &sched, &mut plan),
            "non-improving schedule adopted"
        );
        assert!(plan.tuned.is_none());

        // Manufacture a genuine winner: two islands seeded from the hand
        // schedule (one greedy-tightened) against the real simulator.
        let regions: Vec<TuneRegion> = hand
            .regions
            .iter()
            .map(|r| TuneRegion {
                name: r.name.clone(),
                start: r.start,
                end: r.end,
            })
            .collect();
        let opts = TimingOptions {
            region: Some(hand.region),
            ..Default::default()
        };
        let alloc = fused_alloc_bytes(&cfg);
        let params = {
            let mut gpu = Gpu::new(planner.device.clone(), 1 << 22);
            let a = gpu.alloc(alloc[0]);
            let b = gpu.alloc(alloc[1]);
            let o = gpu.alloc(alloc[2]);
            hand.params(a, b, o)
        };
        let timer = BatchTimer::new(&hand.module);
        let mut icfg = IslandConfig::new(2, 2, 1, 2020);
        icfg.seeds = vec![SeedKind::Hand, SeedKind::HandGreedy];
        let outcome = run_islands(
            &hand.module.insts,
            &regions,
            &Priors::default(),
            &icfg,
            |_| {
                let mut timer = timer.clone();
                let params = params.clone();
                let dev = planner.device.clone();
                let base = hand.module.clone();
                let dims = hand.launch_dims();
                move |insts: &[sass::Instruction], perm: &[u32]| {
                    let cand = Module::new(
                        &base.info.name,
                        base.info.smem_bytes,
                        base.info.param_bytes,
                        insts.to_vec(),
                    );
                    let mut gpu = Gpu::new(dev.clone(), 1 << 22);
                    for &b in &alloc {
                        gpu.alloc(b);
                    }
                    Some(
                        timer
                            .time(&mut gpu, &cand, perm, dims, &params, opts)
                            .unwrap()
                            .wave_cycles,
                    )
                }
            },
        );
        assert!(
            outcome.best_cost < outcome.per_island[0].start_cost,
            "greedy-tightened island failed to beat the hand schedule"
        );
        let best = Module::new(
            &hand.module.info.name,
            hand.module.info.smem_bytes,
            hand.module.info.param_bytes,
            outcome.best_insts.clone(),
        );
        sched.save(
            &planner.device,
            &cfg,
            &StoredSchedule {
                params: EmitterParams::hand().label(),
                schedule_digest: digest_of(&best),
                cubin: best.to_cubin(),
                hand_cycles: outcome.per_island[0].start_cost,
                tuned_cycles: outcome.best_cost,
                evals: outcome.stats.evals,
            },
        );

        assert!(
            planner.replay_stored(&class, &sched, &mut plan),
            "winning schedule not adopted"
        );
        assert!(plan.verify());
        let tuned = plan.tuned.expect("adopted schedule recorded");
        assert_eq!(tuned.source, "store");
        assert_eq!(tuned.n, 32);
        assert_eq!(tuned.schedule_digest, digest_of(&best));
        assert!(
            tuned.tuned_cycles < tuned.hand_cycles,
            "recorded device-model cycles must show the win"
        );
        assert!(
            plan.build_cost_ns > 0,
            "replay must charge its re-time cost"
        );
    }
}
