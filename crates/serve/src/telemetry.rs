//! `telemetry` — the serving-layer flight recorder.
//!
//! [`engine::run_recorded`](crate::engine::run_recorded) threads a
//! [`Telemetry`] recorder through the discrete-event loop and emits one
//! [`TelemetryEvent`] per lifecycle edge of every request — arrival,
//! enqueue, batch formation, dispatch, completion — on the engine's
//! integer-nanosecond timeline, plus three derived series:
//!
//! * **gauges** sampled at a configurable tick
//!   ([`TelemetryOptions::tick_ns`]): per-class queue depth, busy devices,
//!   in-flight batches, and plan states (ready / build-in-progress);
//! * **drift events** from an observed-vs-probed mix tracker: a per-class
//!   arrival-rate EWMA compared against the rate assumption baked into each
//!   [`Plan`](crate::plan::Plan) (`Plan::assumed_rps`, recorded at
//!   plan-build time from the MMPP-2 traffic config) — the hook a future
//!   online re-planner consumes;
//! * a post-hoc **SLO burn-rate series** ([`Telemetry::burn_series`]):
//!   fixed windows over completion time with every miss attributed to
//!   queueing, service, or plan-build.
//!
//! The same module owns [`LatencyHistogram`] — the log-bucketed exact-count
//! histogram `RunStats` reports next to its nearest-rank percentiles.
//!
//! # Determinism contract (the simprof pattern, one layer up)
//!
//! * [`TelemetryOptions::off`] is the default; every recorder hook
//!   early-returns, so the off path is bit-identical to a run without the
//!   recorder ([`crate::engine::run`] is literally `run_recorded` with an
//!   off recorder) and `BENCH_serve.json` does not change.
//! * Recording never enters a cache digest: plan keys, sweep keys and the
//!   device model are all computed before the recorder sees anything.
//! * The engine is single-threaded per run and `--jobs` only shards whole
//!   per-device pipelines, so the event stream is a pure function of
//!   `(seed, config)`. Export orders events by `(timestamp, sequence)` —
//!   completions are recorded at dispatch time with their future completion
//!   timestamp, and the sort merges them back into timeline order — which
//!   makes the JSON-lines log and the Chrome pool trace byte-identical
//!   under any `--jobs` value (pinned by `bench/tests/serve_telemetry.rs`).
//!
//! # Sinks
//!
//! [`TelemetrySink`] is the export interface: [`Telemetry::drain_into`]
//! replays the sorted stream into any sink. The crate ships
//! [`JsonlSink`] (one JSON object per line, parseable by `bench::json` and
//! replayed by `bench --bin servemon`) and [`MemSink`] (typed events, for
//! tests and in-process consumers). The `bench` serve binary adds the
//! Chrome trace-event export of the device-pool timeline on top of
//! [`MemSink`].

use std::fmt::Write as _;

/// Recorder configuration. [`TelemetryOptions::off`] (the default) disables
/// every hook; [`TelemetryOptions::on`] enables recording with the
/// documented default knobs.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryOptions {
    /// Master switch; `false` makes every hook a no-op.
    pub enabled: bool,
    /// Gauge sampling period, nanoseconds of simulated time.
    pub tick_ns: u64,
    /// Burn-rate window length, nanoseconds of simulated time.
    pub burn_window_ns: u64,
    /// EWMA smoothing factor applied to the per-tick arrival rate of each
    /// class, in `(0, 1]`; larger reacts faster.
    pub drift_alpha: f64,
    /// Drift trips when `ewma / assumed` leaves `[1/band, band]`
    /// (and re-arms when it returns). Must be `> 1`.
    pub drift_band: f64,
    /// Gauge ticks to wait before the drift detector may fire (EWMA
    /// warm-up).
    pub drift_warmup_ticks: u64,
}

impl TelemetryOptions {
    /// Recording disabled; all hooks are no-ops. The default.
    pub fn off() -> Self {
        TelemetryOptions {
            enabled: false,
            ..Self::on()
        }
    }

    /// Recording enabled with default knobs: 1 ms gauge tick, 100 ms burn
    /// windows, EWMA α = 0.25, drift band 2×, 8-tick warm-up.
    pub fn on() -> Self {
        TelemetryOptions {
            enabled: true,
            tick_ns: 1_000_000,
            burn_window_ns: 100_000_000,
            drift_alpha: 0.25,
            drift_band: 2.0,
            drift_warmup_ticks: 8,
        }
    }
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        Self::off()
    }
}

/// Why a completed request missed its SLO. Attribution is decided against
/// `latest_safe_start = arrival + slo − worst_service` (the queue's
/// dispatch deadline):
///
/// * [`MissCause::PlanBuild`] — the class's plan became ready only after
///   the request's latest safe start; no dispatch order could have saved it.
/// * [`MissCause::Queueing`] — the plan was ready in time but the dispatch
///   happened after the latest safe start (device contention).
/// * [`MissCause::Service`] — dispatched by the deadline and still late:
///   the service time alone exceeds the SLO margin (only possible when
///   `slo < worst_service`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissCause {
    /// The request met its SLO.
    None,
    Queueing,
    Service,
    PlanBuild,
}

impl MissCause {
    pub fn name(self) -> &'static str {
        match self {
            MissCause::None => "none",
            MissCause::Queueing => "queueing",
            MissCause::Service => "service",
            MissCause::PlanBuild => "plan_build",
        }
    }
}

/// One flight-recorder event. `t` is simulated nanoseconds; `class` indexes
/// the class list the run was started with (names travel in the JSON
/// export). Every event also carries an implicit record sequence number
/// (its position in [`Telemetry::events`]) used as the sort tie-break.
#[derive(Clone, Debug, PartialEq)]
pub enum TelemetryEvent {
    /// A request entered the system.
    Arrival { t: u64, id: u64, class: usize },
    /// The request was appended to its class FIFO; `depth` is the queue
    /// length after the push.
    Enqueue {
        t: u64,
        id: u64,
        class: usize,
        depth: u32,
    },
    /// First arrival of a class started plan acquisition (build cost cold,
    /// cache lookup warm); the class cannot dispatch before `ready_ns`.
    PlanFetch {
        t: u64,
        class: usize,
        ready_ns: u64,
        charge_ns: u64,
        warm: bool,
    },
    /// Plan acquisition finished; the class became dispatchable.
    PlanReady { t: u64, class: usize },
    /// A launch group was formed from the class FIFO (`count` requests,
    /// padded up to `batch_n`).
    BatchFormed {
        t: u64,
        batch: u64,
        class: usize,
        count: u32,
        batch_n: u32,
    },
    /// The group started on a device (same instant as its formation — the
    /// engine only forms groups it can place).
    Dispatch {
        t: u64,
        batch: u64,
        class: usize,
        device: usize,
        count: u32,
        batch_n: u32,
        service_ns: u64,
    },
    /// A request finished (`t` is the completion instant; recorded at
    /// dispatch time and merged back by the timestamp sort).
    Complete {
        t: u64,
        id: u64,
        class: usize,
        batch: u64,
        latency_ns: u64,
        /// Arrival-to-dispatch wait.
        wait_ns: u64,
        miss: bool,
        cause: MissCause,
    },
    /// Periodic gauge sample (state as of just *before* any events at `t`).
    Gauge {
        t: u64,
        /// Per-class queue depths.
        depths: Vec<u32>,
        /// Per-class wait of the oldest pending request at `t` (`0` when
        /// the queue is empty) — the starvation signal.
        oldest_wait_ns: Vec<u64>,
        /// Sum of `depths`.
        queued: u32,
        /// Devices with a launch group in flight.
        busy_devices: u32,
        /// Launch groups in flight (one per busy device in this engine).
        inflight_batches: u32,
        plans_ready: u32,
        plans_building: u32,
    },
    /// The observed arrival-rate EWMA of a class left (or re-entered) the
    /// drift band around its plan's probe-time assumption.
    Drift {
        t: u64,
        class: usize,
        observed_rps: f64,
        assumed_rps: f64,
        /// `observed / assumed`.
        ratio: f64,
        /// `true` when leaving the band, `false` on return.
        drifted: bool,
    },
}

impl TelemetryEvent {
    /// Event timestamp (simulated ns) — the export sort key.
    pub fn t(&self) -> u64 {
        match *self {
            TelemetryEvent::Arrival { t, .. }
            | TelemetryEvent::Enqueue { t, .. }
            | TelemetryEvent::PlanFetch { t, .. }
            | TelemetryEvent::PlanReady { t, .. }
            | TelemetryEvent::BatchFormed { t, .. }
            | TelemetryEvent::Dispatch { t, .. }
            | TelemetryEvent::Complete { t, .. }
            | TelemetryEvent::Gauge { t, .. }
            | TelemetryEvent::Drift { t, .. } => t,
        }
    }

    /// Stable kind tag used in the JSON-lines export.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::Arrival { .. } => "arrival",
            TelemetryEvent::Enqueue { .. } => "enqueue",
            TelemetryEvent::PlanFetch { .. } => "plan_fetch",
            TelemetryEvent::PlanReady { .. } => "plan_ready",
            TelemetryEvent::BatchFormed { .. } => "batch_formed",
            TelemetryEvent::Dispatch { .. } => "dispatch",
            TelemetryEvent::Complete { .. } => "complete",
            TelemetryEvent::Gauge { .. } => "gauge",
            TelemetryEvent::Drift { .. } => "drift",
        }
    }
}

/// The reconciled lifecycle of one request: every span edge the recorder
/// saw, in order `arrival = enqueue ≤ dispatch ≤ complete`.
/// `telemetry_invariants.rs` checks these reconcile exactly with
/// [`RunStats`](crate::engine::RunStats).
#[derive(Clone, Copy, Debug)]
pub struct RequestSpan {
    pub id: u64,
    pub class: usize,
    pub arrival_ns: u64,
    pub enqueue_ns: u64,
    pub dispatch_ns: u64,
    pub complete_ns: u64,
    pub batch: u64,
    pub miss: bool,
    pub cause: MissCause,
}

/// One window of the SLO burn-rate series (fixed
/// [`TelemetryOptions::burn_window_ns`] windows over completion time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BurnWindow {
    pub start_ns: u64,
    pub completed: u64,
    pub missed: u64,
    /// Miss attribution within the window; the three sum to `missed`.
    pub queueing: u64,
    pub service: u64,
    pub plan_build: u64,
}

impl BurnWindow {
    /// SRE-style burn rate against an availability objective in `(0, 1)`:
    /// observed miss fraction over the window divided by the error budget
    /// `1 − objective`. `1.0` burns the budget exactly; `> 1` is
    /// unsustainable.
    pub fn burn_rate(&self, objective: f64) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let miss_frac = self.missed as f64 / self.completed as f64;
        miss_frac / (1.0 - objective)
    }
}

// ---- histogram --------------------------------------------------------------

/// Sub-buckets per power-of-two octave (3 mantissa bits → ≤ 12.5% relative
/// bucket width); values below `2^5` get exact unit buckets.
const HIST_SUB_BITS: u32 = 3;
const HIST_SUB: u32 = 1 << HIST_SUB_BITS;
const HIST_LINEAR: u64 = 32; // values 0..31 are exact
const HIST_BUCKETS: usize = HIST_LINEAR as usize + ((63 - 5 + 1) * HIST_SUB as usize);

/// Log-bucketed latency histogram with **exact counts**: every recorded
/// value lands in exactly one bucket, totals are never sampled or scaled.
/// Values `< 32` get unit-width buckets; above that, buckets subdivide each
/// power-of-two octave into 8, so a bucket's upper bound is at most 12.5%
/// above its lower bound. [`LatencyHistogram::percentile`] therefore
/// over-reports a nearest-rank percentile by at most one bucket width —
/// `RunStats` keeps the exact nearest-rank values and reports the histogram
/// alongside for distribution shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
        }
    }

    fn index(v: u64) -> usize {
        if v < HIST_LINEAR {
            return v as usize;
        }
        let e = 63 - v.leading_zeros(); // ≥ 5
        let m = ((v >> (e - HIST_SUB_BITS)) & u64::from(HIST_SUB - 1)) as u32;
        (HIST_LINEAR as u32 + (e - 5) * HIST_SUB + m) as usize
    }

    /// Inclusive upper bound of bucket `idx`.
    pub fn bucket_le(idx: usize) -> u64 {
        if (idx as u64) < HIST_LINEAR {
            return idx as u64;
        }
        let rel = idx as u32 - HIST_LINEAR as u32;
        let e = 5 + rel / HIST_SUB;
        let m = u128::from(rel % HIST_SUB);
        // u128: the top bucket's bound is 2^64 − 1 and would overflow u64
        // arithmetic mid-expression.
        let le = (1u128 << e) + ((m + 1) << (e - HIST_SUB_BITS)) - 1;
        le.min(u128::from(u64::MAX)) as u64
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_le(i), c))
    }

    /// Upper bound of the bucket containing the nearest-rank percentile
    /// (`0` on an empty histogram). Over-reports the exact nearest-rank
    /// value by at most one bucket width (≤ 12.5%).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_le(i);
            }
        }
        Self::bucket_le(HIST_BUCKETS - 1)
    }
}

// ---- sinks ------------------------------------------------------------------

/// Export interface: [`Telemetry::drain_into`] replays the recorded stream
/// — sorted by `(timestamp, sequence)` — into one of these.
pub trait TelemetrySink {
    /// One event, in export order. `seq` is the record sequence number (the
    /// deterministic tie-break the export sort used).
    fn record(&mut self, seq: u64, ev: &TelemetryEvent);
}

/// Collects typed events in export order; the in-process sink tests and the
/// Chrome-trace exporter consume.
#[derive(Default)]
pub struct MemSink {
    pub events: Vec<(u64, TelemetryEvent)>,
}

impl TelemetrySink for MemSink {
    fn record(&mut self, seq: u64, ev: &TelemetryEvent) {
        self.events.push((seq, ev.clone()));
    }
}

/// Renders each event as one JSON object per line. `ctx` pairs (e.g.
/// `device`/`phase`) are prepended to every line so logs from several runs
/// can share one file; class indices are resolved to names. The output is
/// plain-ASCII, deterministic, and parseable by `bench::json`.
pub struct JsonlSink {
    pub out: String,
    ctx: String,
    class_names: Vec<String>,
}

impl JsonlSink {
    pub fn new(ctx: &[(&str, &str)], class_names: &[String]) -> Self {
        let mut c = String::new();
        for (k, v) in ctx {
            push_key(&mut c, k);
            push_str(&mut c, v);
            c.push(',');
        }
        JsonlSink {
            out: String::new(),
            ctx: c,
            class_names: class_names.to_vec(),
        }
    }
}

fn push_str(s: &mut String, v: &str) {
    s.push('"');
    for ch in v.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

fn push_key(s: &mut String, k: &str) {
    push_str(s, k);
    s.push(':');
}

/// Same float convention as `bench::json`: integral values print as
/// integers, everything else as the shortest round-tripping form.
fn push_f64(s: &mut String, n: f64) {
    if !n.is_finite() {
        s.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(s, "{}", n as i64);
    } else {
        let _ = write!(s, "{n:?}");
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&mut self, seq: u64, ev: &TelemetryEvent) {
        let class_name = |c: usize| self.class_names.get(c).map_or("?", |s| s.as_str());
        let s = &mut self.out;
        s.push('{');
        s.push_str(&self.ctx);
        push_key(s, "seq");
        let _ = write!(s, "{seq},");
        push_key(s, "t");
        let _ = write!(s, "{},", ev.t());
        push_key(s, "kind");
        push_str(s, ev.kind());
        match *ev {
            TelemetryEvent::Arrival { id, class, .. } => {
                let _ = write!(s, ",\"id\":{id},\"class\":");
                push_str(s, class_name(class));
            }
            TelemetryEvent::Enqueue {
                id, class, depth, ..
            } => {
                let _ = write!(s, ",\"id\":{id},\"class\":");
                push_str(s, class_name(class));
                let _ = write!(s, ",\"depth\":{depth}");
            }
            TelemetryEvent::PlanFetch {
                class,
                ready_ns,
                charge_ns,
                warm,
                ..
            } => {
                s.push_str(",\"class\":");
                push_str(s, class_name(class));
                let _ = write!(
                    s,
                    ",\"ready_ns\":{ready_ns},\"charge_ns\":{charge_ns},\"warm\":{warm}"
                );
            }
            TelemetryEvent::PlanReady { class, .. } => {
                s.push_str(",\"class\":");
                push_str(s, class_name(class));
            }
            TelemetryEvent::BatchFormed {
                batch,
                class,
                count,
                batch_n,
                ..
            } => {
                let _ = write!(s, ",\"batch\":{batch},\"class\":");
                push_str(s, class_name(class));
                let _ = write!(s, ",\"count\":{count},\"batch_n\":{batch_n}");
            }
            TelemetryEvent::Dispatch {
                batch,
                class,
                device,
                count,
                batch_n,
                service_ns,
                ..
            } => {
                let _ = write!(s, ",\"batch\":{batch},\"class\":");
                push_str(s, class_name(class));
                let _ = write!(
                    s,
                    ",\"device\":{device},\"count\":{count},\"batch_n\":{batch_n},\"service_ns\":{service_ns}"
                );
            }
            TelemetryEvent::Complete {
                id,
                class,
                batch,
                latency_ns,
                wait_ns,
                miss,
                cause,
                ..
            } => {
                let _ = write!(s, ",\"id\":{id},\"class\":");
                push_str(s, class_name(class));
                let _ = write!(
                    s,
                    ",\"batch\":{batch},\"latency_ns\":{latency_ns},\"wait_ns\":{wait_ns},\"miss\":{miss},\"cause\":"
                );
                push_str(s, cause.name());
            }
            TelemetryEvent::Gauge {
                ref depths,
                ref oldest_wait_ns,
                queued,
                busy_devices,
                inflight_batches,
                plans_ready,
                plans_building,
                ..
            } => {
                s.push_str(",\"depths\":[");
                for (i, d) in depths.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{d}");
                }
                s.push_str("],\"oldest_wait_ns\":[");
                for (i, w) in oldest_wait_ns.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{w}");
                }
                let _ = write!(
                    s,
                    "],\"queued\":{queued},\"busy_devices\":{busy_devices},\"inflight_batches\":{inflight_batches},\"plans_ready\":{plans_ready},\"plans_building\":{plans_building}"
                );
            }
            TelemetryEvent::Drift {
                class,
                observed_rps,
                assumed_rps,
                ratio,
                drifted,
                ..
            } => {
                s.push_str(",\"class\":");
                push_str(s, class_name(class));
                s.push_str(",\"observed_rps\":");
                push_f64(s, observed_rps);
                s.push_str(",\"assumed_rps\":");
                push_f64(s, assumed_rps);
                s.push_str(",\"ratio\":");
                push_f64(s, ratio);
                let _ = write!(s, ",\"drifted\":{drifted}");
            }
        }
        s.push_str("}\n");
    }
}

// ---- recorder ---------------------------------------------------------------

/// Per-class drift-tracker state.
#[derive(Clone, Debug, Default)]
struct DriftState {
    /// Arrivals in the current gauge-tick window.
    window: u64,
    /// EWMA of the per-tick arrival rate, requests/second.
    ewma: f64,
    /// Currently outside the drift band?
    out: bool,
}

/// The flight recorder. Construct with [`Telemetry::new`] (or
/// [`Telemetry::off`]), pass to
/// [`engine::run_recorded`](crate::engine::run_recorded), then read
/// [`Telemetry::events`], [`Telemetry::spans`], [`Telemetry::burn_series`]
/// or export through [`Telemetry::drain_into`]. A recorder is single-use:
/// the engine asserts it is fresh.
pub struct Telemetry {
    pub opts: TelemetryOptions,
    events: Vec<TelemetryEvent>,
    spans: Vec<RequestSpan>,
    class_names: Vec<String>,
    assumed_rps: Vec<f64>,
    drift: Vec<DriftState>,
    next_tick: u64,
    ticks: u64,
    batches: u64,
    burn: Vec<BurnWindow>,
    began: bool,
    finished: bool,
}

impl Telemetry {
    pub fn new(opts: TelemetryOptions) -> Self {
        if opts.enabled {
            assert!(opts.tick_ns > 0, "tick_ns must be positive");
            assert!(opts.burn_window_ns > 0, "burn_window_ns must be positive");
            assert!(
                opts.drift_alpha > 0.0 && opts.drift_alpha <= 1.0,
                "drift_alpha must be in (0, 1]"
            );
            assert!(opts.drift_band > 1.0, "drift_band must be > 1");
        }
        Telemetry {
            opts,
            events: Vec::new(),
            spans: Vec::new(),
            class_names: Vec::new(),
            assumed_rps: Vec::new(),
            drift: Vec::new(),
            next_tick: 0,
            ticks: 0,
            batches: 0,
            burn: Vec::new(),
            began: false,
            finished: false,
        }
    }

    /// A disabled recorder (every hook is a no-op).
    pub fn off() -> Self {
        Self::new(TelemetryOptions::off())
    }

    pub fn enabled(&self) -> bool {
        self.opts.enabled
    }

    /// Recorded events in *record* order (completions sit at their dispatch
    /// position); use [`Telemetry::drain_into`] for timeline order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Per-request lifecycle spans, indexed by request id.
    pub fn spans(&self) -> &[RequestSpan] {
        &self.spans
    }

    /// The SLO burn-rate series (available after the run).
    pub fn burn_series(&self) -> &[BurnWindow] {
        &self.burn
    }

    /// Launch groups recorded.
    pub fn batch_count(&self) -> u64 {
        self.batches
    }

    /// Class names captured when the engine started the recorder (for
    /// export).
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Replay the stream into `sink`, sorted by `(timestamp, sequence)`.
    /// The sequence is the record index, so the order is a pure function of
    /// the run — byte-identical exports under any `--jobs`.
    pub fn drain_into(&self, sink: &mut dyn TelemetrySink) {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| (self.events[i].t(), i));
        for i in order {
            sink.record(i as u64, &self.events[i]);
        }
    }

    /// Render the full stream as JSON lines with `ctx` fields prepended to
    /// every line.
    pub fn to_jsonl(&self, ctx: &[(&str, &str)]) -> String {
        let mut sink = JsonlSink::new(ctx, &self.class_names);
        self.drain_into(&mut sink);
        sink.out
    }

    // -- engine hooks (all no-ops when disabled) --

    /// Called once at the top of `run_recorded`.
    pub(crate) fn begin(&mut self, class_names: Vec<String>, assumed_rps: Vec<f64>) {
        if !self.opts.enabled {
            return;
        }
        assert!(!self.began, "a Telemetry recorder is single-use");
        self.began = true;
        assert_eq!(class_names.len(), assumed_rps.len());
        self.drift = vec![DriftState::default(); class_names.len()];
        self.class_names = class_names;
        self.assumed_rps = assumed_rps;
        self.next_tick = self.opts.tick_ns;
    }

    pub(crate) fn on_arrival(&mut self, t: u64, id: u64, class: usize, depth_after: u32) {
        if !self.opts.enabled {
            return;
        }
        self.events.push(TelemetryEvent::Arrival { t, id, class });
        self.events.push(TelemetryEvent::Enqueue {
            t,
            id,
            class,
            depth: depth_after,
        });
        let idx = id as usize;
        if self.spans.len() <= idx {
            self.spans.resize(
                idx + 1,
                RequestSpan {
                    id: 0,
                    class: 0,
                    arrival_ns: 0,
                    enqueue_ns: 0,
                    dispatch_ns: 0,
                    complete_ns: 0,
                    batch: 0,
                    miss: false,
                    cause: MissCause::None,
                },
            );
        }
        self.spans[idx] = RequestSpan {
            id,
            class,
            arrival_ns: t,
            enqueue_ns: t,
            dispatch_ns: 0,
            complete_ns: 0,
            batch: 0,
            miss: false,
            cause: MissCause::None,
        };
        self.drift[class].window += 1;
    }

    pub(crate) fn on_plan_fetch(
        &mut self,
        t: u64,
        class: usize,
        ready_ns: u64,
        charge_ns: u64,
        warm: bool,
    ) {
        if !self.opts.enabled {
            return;
        }
        self.events.push(TelemetryEvent::PlanFetch {
            t,
            class,
            ready_ns,
            charge_ns,
            warm,
        });
    }

    pub(crate) fn on_plan_ready(&mut self, t: u64, class: usize) {
        if !self.opts.enabled {
            return;
        }
        self.events.push(TelemetryEvent::PlanReady { t, class });
    }

    /// Returns the batch id for the request-level completions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_dispatch(
        &mut self,
        t: u64,
        class: usize,
        device: usize,
        count: u32,
        batch_n: u32,
        service_ns: u64,
    ) -> u64 {
        if !self.opts.enabled {
            return 0;
        }
        let batch = self.batches;
        self.batches += 1;
        self.events.push(TelemetryEvent::BatchFormed {
            t,
            batch,
            class,
            count,
            batch_n,
        });
        self.events.push(TelemetryEvent::Dispatch {
            t,
            batch,
            class,
            device,
            count,
            batch_n,
            service_ns,
        });
        batch
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_complete(
        &mut self,
        id: u64,
        class: usize,
        batch: u64,
        arrival_ns: u64,
        dispatch_ns: u64,
        complete_ns: u64,
        miss: bool,
        cause: MissCause,
    ) {
        if !self.opts.enabled {
            return;
        }
        self.events.push(TelemetryEvent::Complete {
            t: complete_ns,
            id,
            class,
            batch,
            latency_ns: complete_ns - arrival_ns,
            wait_ns: dispatch_ns - arrival_ns,
            miss,
            cause,
        });
        let sp = &mut self.spans[id as usize];
        sp.dispatch_ns = dispatch_ns;
        sp.complete_ns = complete_ns;
        sp.batch = batch;
        sp.miss = miss;
        sp.cause = cause;
    }

    /// Emit gauge samples (and advance the drift tracker) for every tick
    /// instant `≤ now` not yet sampled. Called at the top of each event
    /// instant, before its events are applied, so a sample reflects the
    /// state that held since the previous instant — between instants the
    /// engine state is constant, so one snapshot serves all due ticks.
    pub(crate) fn sample_until<F: Fn() -> GaugeSnapshot>(&mut self, now: u64, snapshot: F) {
        if !self.opts.enabled || self.next_tick > now {
            return;
        }
        let snap = snapshot();
        while self.next_tick <= now {
            let t = self.next_tick;
            self.events.push(TelemetryEvent::Gauge {
                t,
                depths: snap.depths.clone(),
                // The snapshot measured waits at `now`; rebase each to this
                // tick (the queue content is constant over `(prev, now]`,
                // only the clock moved).
                oldest_wait_ns: snap
                    .oldest_wait_ns
                    .iter()
                    .map(|w| w.saturating_sub(now - t))
                    .collect(),
                queued: snap.depths.iter().sum(),
                busy_devices: snap.busy_devices,
                inflight_batches: snap.inflight_batches,
                plans_ready: snap.plans_ready,
                plans_building: snap.plans_building,
            });
            self.tick_drift(t);
            self.next_tick += self.opts.tick_ns;
        }
    }

    /// One drift-tracker step at tick instant `t`: fold the window's
    /// arrival count into the rate EWMA and compare against the plan's
    /// assumption.
    fn tick_drift(&mut self, t: u64) {
        self.ticks += 1;
        let tick_s = self.opts.tick_ns as f64 / 1e9;
        let alpha = self.opts.drift_alpha;
        for c in 0..self.drift.len() {
            let st = &mut self.drift[c];
            let rate = st.window as f64 / tick_s;
            st.window = 0;
            st.ewma = if self.ticks == 1 {
                rate
            } else {
                alpha * rate + (1.0 - alpha) * st.ewma
            };
            let assumed = self.assumed_rps[c];
            if assumed <= 0.0 || self.ticks < self.opts.drift_warmup_ticks {
                continue;
            }
            let ratio = st.ewma / assumed;
            let out = ratio > self.opts.drift_band || ratio < 1.0 / self.opts.drift_band;
            if out != st.out {
                st.out = out;
                self.events.push(TelemetryEvent::Drift {
                    t,
                    class: c,
                    observed_rps: st.ewma,
                    assumed_rps: assumed,
                    ratio,
                    drifted: out,
                });
            }
        }
    }

    /// Called once after the event loop: emits a final gauge sample at the
    /// makespan (if the tick grid did not already land there) and computes
    /// the burn-rate series from the completed spans.
    pub(crate) fn finish(&mut self, makespan: u64, snapshot: GaugeSnapshot) {
        if !self.opts.enabled {
            return;
        }
        assert!(!self.finished, "finish called twice");
        self.finished = true;
        self.sample_until(makespan, || snapshot.clone());
        if self.next_tick - self.opts.tick_ns < makespan {
            // The last tick fell short of the makespan: close the series
            // with an end-of-run sample so consumers see the drained state.
            self.events.push(TelemetryEvent::Gauge {
                t: makespan,
                depths: snapshot.depths.clone(),
                oldest_wait_ns: snapshot.oldest_wait_ns.clone(),
                queued: snapshot.depths.iter().sum(),
                busy_devices: snapshot.busy_devices,
                inflight_batches: snapshot.inflight_batches,
                plans_ready: snapshot.plans_ready,
                plans_building: snapshot.plans_building,
            });
        }
        let w = self.opts.burn_window_ns;
        let windows = (makespan / w + 1) as usize;
        self.burn = (0..windows)
            .map(|i| BurnWindow {
                start_ns: i as u64 * w,
                ..BurnWindow::default()
            })
            .collect();
        for sp in &self.spans {
            let b = &mut self.burn[(sp.complete_ns / w) as usize];
            b.completed += 1;
            if sp.miss {
                b.missed += 1;
                match sp.cause {
                    MissCause::Queueing => b.queueing += 1,
                    MissCause::Service => b.service += 1,
                    MissCause::PlanBuild => b.plan_build += 1,
                    MissCause::None => unreachable!("missed spans carry a cause"),
                }
            }
        }
    }
}

/// Engine state captured by a gauge sample. Waits are measured at the
/// snapshot instant; the recorder rebases them to each due tick (waiting
/// time grows with the clock even while queue contents are frozen).
#[derive(Clone, Debug)]
pub struct GaugeSnapshot {
    pub depths: Vec<u32>,
    pub oldest_wait_ns: Vec<u64>,
    pub busy_devices: u32,
    pub inflight_batches: u32,
    pub plans_ready: u32,
    pub plans_building: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_exact_and_ordered() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.total(), 9);
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 9);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        // Exact unit buckets below 32.
        assert_eq!(LatencyHistogram::index(31), 31);
        assert_eq!(LatencyHistogram::bucket_le(31), 31);
        // Every value is ≤ its bucket's upper bound and > the previous one.
        for v in [32u64, 33, 100, 1_000, 123_456, u64::MAX] {
            let idx = LatencyHistogram::index(v);
            assert!(v <= LatencyHistogram::bucket_le(idx));
            if idx > 0 {
                assert!(v > LatencyHistogram::bucket_le(idx - 1));
            }
        }
    }

    #[test]
    fn histogram_percentile_brackets_nearest_rank() {
        let mut h = LatencyHistogram::new();
        let vals: Vec<u64> = (1..=1000u64).map(|i| i * 37).collect();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for p in [50.0, 99.0, 99.9] {
            let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let hist = h.percentile(p);
            assert!(hist >= exact, "p{p}: hist {hist} < exact {exact}");
            assert!(
                hist <= exact + exact / 8 + 1,
                "p{p}: hist {hist} too far above exact {exact}"
            );
        }
        assert_eq!(LatencyHistogram::new().percentile(50.0), 0);
    }

    #[test]
    fn burn_rate_scales_with_objective() {
        let w = BurnWindow {
            start_ns: 0,
            completed: 1000,
            missed: 10,
            queueing: 10,
            service: 0,
            plan_build: 0,
        };
        // 1% misses against a 99% objective burn the budget exactly.
        assert!((w.burn_rate(0.99) - 1.0).abs() < 1e-12);
        assert!((w.burn_rate(0.999) - 10.0).abs() < 1e-9);
        assert_eq!(BurnWindow::default().burn_rate(0.999), 0.0);
    }

    #[test]
    fn off_recorder_records_nothing() {
        let mut tel = Telemetry::off();
        tel.begin(vec!["A".into()], vec![0.0]);
        tel.on_arrival(5, 0, 0, 1);
        tel.sample_until(100, || GaugeSnapshot {
            depths: vec![1],
            oldest_wait_ns: vec![95],
            busy_devices: 0,
            inflight_batches: 0,
            plans_ready: 0,
            plans_building: 0,
        });
        tel.finish(
            100,
            GaugeSnapshot {
                depths: vec![0],
                oldest_wait_ns: vec![0],
                busy_devices: 0,
                inflight_batches: 0,
                plans_ready: 1,
                plans_building: 0,
            },
        );
        assert!(tel.events().is_empty());
        assert!(tel.spans().is_empty());
        assert!(tel.burn_series().is_empty());
    }

    #[test]
    fn jsonl_lines_are_objects_and_sorted() {
        let mut tel = Telemetry::new(TelemetryOptions::on());
        tel.begin(vec!["A".into()], vec![0.0]);
        tel.on_arrival(10, 0, 0, 1);
        let b = tel.on_dispatch(20, 0, 0, 1, 32, 100);
        tel.on_complete(0, 0, b, 10, 20, 120, false, MissCause::None);
        tel.on_arrival(50, 1, 0, 1);
        tel.finish(
            120,
            GaugeSnapshot {
                depths: vec![0],
                oldest_wait_ns: vec![0],
                busy_devices: 0,
                inflight_batches: 0,
                plans_ready: 1,
                plans_building: 0,
            },
        );
        let text = tel.to_jsonl(&[("device", "V100"), ("phase", "cold")]);
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        let mut last_t = 0u64;
        for l in &lines {
            assert!(l.starts_with("{\"device\":\"V100\",\"phase\":\"cold\","));
            assert!(l.ends_with('}'));
            let t: u64 = l
                .split("\"t\":")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(t >= last_t, "events must be time-sorted");
            last_t = t;
        }
        // The completion (t=120) sorts after the second arrival (t=50) even
        // though it was recorded first.
        let kinds: Vec<&str> = lines
            .iter()
            .map(|l| {
                l.split("\"kind\":\"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
            })
            .collect();
        let pos = |k: &str| kinds.iter().position(|&x| x == k).unwrap();
        assert!(pos("complete") > kinds.iter().rposition(|&x| x == "arrival").unwrap());
        assert_eq!(tel.batch_count(), 1);
    }

    #[test]
    fn drift_detector_fires_and_rearms() {
        let mut opts = TelemetryOptions::on();
        opts.tick_ns = 1_000_000; // 1 ms
        opts.drift_alpha = 1.0; // no smoothing: window rate is the signal
        opts.drift_warmup_ticks = 2;
        let mut tel = Telemetry::new(opts);
        // Assumed 1000 rps; send 10 arrivals/ms (10_000 rps) for six
        // windows, then drop to one arrival/ms (the assumed rate). Sampling
        // is interleaved as the engine would: each tick sees the arrivals
        // recorded since the previous tick.
        tel.begin(vec!["A".into()], vec![1000.0]);
        let mut id = 0u64;
        for ms in 0..12u64 {
            let n = if ms < 6 { 10 } else { 1 };
            for i in 0..n {
                tel.on_arrival(ms * 1_000_000 + i, id, 0, 1);
                id += 1;
            }
            tel.sample_until((ms + 1) * 1_000_000, || GaugeSnapshot {
                depths: vec![0],
                oldest_wait_ns: vec![0],
                busy_devices: 0,
                inflight_batches: 0,
                plans_ready: 1,
                plans_building: 0,
            });
        }
        let drifts: Vec<&TelemetryEvent> = tel
            .events()
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Drift { .. }))
            .collect();
        assert_eq!(drifts.len(), 2, "one trip out, one return");
        match drifts[0] {
            TelemetryEvent::Drift { drifted, ratio, .. } => {
                assert!(*drifted);
                assert!(*ratio > 2.0);
            }
            _ => unreachable!(),
        }
        match drifts[1] {
            TelemetryEvent::Drift { drifted, .. } => assert!(!drifted),
            _ => unreachable!(),
        }
    }
}
