//! Property tests for the serving flight recorder (ISSUE 8):
//!
//! * **spans reconcile** — every completed request has a complete lifecycle
//!   span with ordered edges (`arrival = enqueue ≤ dispatch ≤ complete`),
//!   and span/miss/batch/histogram counts match [`RunStats`] exactly;
//! * **export order** — [`Telemetry::drain_into`] replays events sorted by
//!   `(timestamp, sequence)`, so completions recorded at dispatch time land
//!   at their completion instant;
//! * **gauges** — sampled on a strict tick grid covering the whole run,
//!   with `queued` always the sum of the per-class depths;
//! * **off path** — a disabled recorder records nothing and the engine's
//!   stats are identical to the plain [`run`] path (the simprof contract:
//!   observability off is bit-identical);
//! * **burn windows** — partition completions, and each window's cause
//!   split sums to its miss count.

use serve::engine::{run, run_recorded, EngineConfig};
use serve::plan::{Plan, PlanVariant, PLAN_FORMAT_VERSION};
use serve::telemetry::{MemSink, Telemetry, TelemetryEvent, TelemetryOptions};
use serve::traffic::{Request, ShapeClass};
use serve::LatencyHistogram;
use tensor::XorShiftRng;

fn class(i: usize) -> ShapeClass {
    ShapeClass {
        name: format!("C{i}"),
        hw: 8,
        c: 32,
        k: 64,
        weight: 1.0,
    }
}

fn random_plan(rng: &mut XorShiftRng, name: &str) -> Plan {
    let nvars = 1 + rng.gen_index(3);
    let mut n = 0;
    let variants = (0..nvars)
        .map(|_| {
            n += 1 + rng.gen_index(64) as u32;
            PlanVariant {
                n,
                algo: "OURS".into(),
                service_ns: 1 + rng.next_u64() % 50_000,
                tflops: 1.0,
            }
        })
        .collect();
    Plan {
        version: PLAN_FORMAT_VERSION,
        device: "prop".into(),
        class: name.into(),
        bound: "compute".into(),
        break_even_k: 128.0,
        variants,
        build_cost_ns: rng.next_u64() % 200_000,
        assumed_rps: 1000.0,
        tuned: None,
    }
}

/// A random scenario: classes, plans, a bursty request stream and an
/// engine config that forces both hits and misses.
fn scenario(rng: &mut XorShiftRng) -> (Vec<ShapeClass>, Vec<Plan>, Vec<Request>, EngineConfig) {
    let nclasses = 1 + rng.gen_index(3);
    let classes: Vec<ShapeClass> = (0..nclasses).map(class).collect();
    let plans: Vec<Plan> = classes.iter().map(|c| random_plan(rng, &c.name)).collect();
    let nreqs = 1 + rng.gen_index(300);
    let mut t = 0u64;
    let requests: Vec<Request> = (0..nreqs as u64)
        .map(|id| {
            t += rng.next_u64() % 2_000;
            Request {
                id,
                class: rng.gen_index(nclasses),
                arrival_ns: t,
            }
        })
        .collect();
    let cfg = EngineConfig {
        // Tight-ish SLO so some trials miss (all three causes show up
        // across the trial set: plan build cost, contention, service).
        slo_ns: 20_000 + rng.next_u64() % 80_000,
        pool: 1 + rng.gen_index(4),
        warm: rng.gen_index(2) == 0,
    };
    (classes, plans, requests, cfg)
}

fn opts() -> TelemetryOptions {
    TelemetryOptions {
        tick_ns: 10_000, // fine grid so short random runs still tick
        burn_window_ns: 50_000,
        ..TelemetryOptions::on()
    }
}

#[test]
fn spans_complete_ordered_and_reconcile_with_stats() {
    let mut rng = XorShiftRng::new(0x7e1e_0001);
    for trial in 0..100 {
        let (classes, plans, requests, cfg) = scenario(&mut rng);
        let mut tel = Telemetry::new(opts());
        let stats = run_recorded(&cfg, &classes, &plans, &requests, &mut tel);

        assert_eq!(
            tel.spans().len() as u64,
            stats.completed,
            "trial {trial}: one span per completion"
        );
        let mut hist = LatencyHistogram::new();
        let mut misses = 0u64;
        for sp in tel.spans() {
            assert_eq!(sp.arrival_ns, sp.enqueue_ns, "trial {trial}");
            assert!(sp.enqueue_ns <= sp.dispatch_ns, "trial {trial}");
            assert!(sp.dispatch_ns <= sp.complete_ns, "trial {trial}");
            let r = &requests[sp.id as usize];
            assert_eq!(sp.arrival_ns, r.arrival_ns, "trial {trial}");
            assert_eq!(sp.class, r.class, "trial {trial}");
            hist.record(sp.complete_ns - sp.arrival_ns);
            misses += u64::from(sp.miss);
            assert_eq!(
                sp.miss,
                sp.complete_ns - sp.arrival_ns > cfg.slo_ns,
                "trial {trial}: miss flag matches the latency"
            );
            assert_eq!(
                sp.miss,
                sp.cause != serve::MissCause::None,
                "trial {trial}: exactly the misses get a cause"
            );
        }
        assert_eq!(misses, stats.slo_misses, "trial {trial}");
        assert_eq!(hist, stats.histogram, "trial {trial}");
        assert_eq!(tel.batch_count(), stats.batches, "trial {trial}");

        // Burn windows partition completions; cause splits sum to misses.
        let completed: u64 = tel.burn_series().iter().map(|w| w.completed).sum();
        assert_eq!(completed, stats.completed, "trial {trial}");
        for w in tel.burn_series() {
            assert_eq!(
                w.queueing + w.service + w.plan_build,
                w.missed,
                "trial {trial}: window at {} ns",
                w.start_ns
            );
            assert!(w.missed <= w.completed, "trial {trial}");
        }
    }
}

#[test]
fn export_is_time_sorted_with_sequence_tiebreak() {
    let mut rng = XorShiftRng::new(0x7e1e_0002);
    for trial in 0..50 {
        let (classes, plans, requests, cfg) = scenario(&mut rng);
        let mut tel = Telemetry::new(opts());
        run_recorded(&cfg, &classes, &plans, &requests, &mut tel);
        let mut sink = MemSink::default();
        tel.drain_into(&mut sink);
        assert_eq!(sink.events.len(), tel.events().len());
        for pair in sink.events.windows(2) {
            let (s0, e0) = (&pair[0].0, &pair[0].1);
            let (s1, e1) = (&pair[1].0, &pair[1].1);
            assert!(
                e0.t() < e1.t() || (e0.t() == e1.t() && s0 < s1),
                "trial {trial}: export order violated at t={} seq={s0}",
                e0.t()
            );
        }
    }
}

#[test]
fn gauges_tick_monotonically_and_reconcile() {
    let mut rng = XorShiftRng::new(0x7e1e_0003);
    for trial in 0..50 {
        let (classes, plans, requests, cfg) = scenario(&mut rng);
        let mut tel = Telemetry::new(opts());
        let stats = run_recorded(&cfg, &classes, &plans, &requests, &mut tel);
        let gauges: Vec<&TelemetryEvent> = tel
            .events()
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Gauge { .. }))
            .collect();
        assert!(!gauges.is_empty(), "trial {trial}: runs must tick");
        let mut prev = None;
        let mut prev_ready = 0u32;
        for g in &gauges {
            let TelemetryEvent::Gauge {
                t,
                depths,
                queued,
                busy_devices,
                inflight_batches,
                plans_ready,
                plans_building,
                ..
            } = g
            else {
                unreachable!()
            };
            if let Some(p) = prev {
                assert!(*t > p, "trial {trial}: gauge timestamps strictly increase");
            }
            prev = Some(*t);
            assert_eq!(depths.len(), classes.len(), "trial {trial}");
            assert_eq!(
                *queued,
                depths.iter().sum::<u32>(),
                "trial {trial}: queued = sum of depths"
            );
            assert_eq!(
                busy_devices, inflight_batches,
                "trial {trial}: one in-flight group per busy device"
            );
            assert!(*busy_devices as usize <= cfg.pool, "trial {trial}");
            // Plan state exists only once a class has seen its first
            // arrival, and readiness is monotone (ready plans stay ready).
            assert!(
                (*plans_ready + *plans_building) as usize <= classes.len(),
                "trial {trial}"
            );
            assert!(
                *plans_ready >= prev_ready,
                "trial {trial}: plan readiness never regresses"
            );
            prev_ready = *plans_ready;
        }
        assert!(
            prev.unwrap() >= stats.makespan_ns,
            "trial {trial}: gauge grid covers the whole run"
        );
    }
}

#[test]
fn off_path_is_identical_and_records_nothing() {
    let mut rng = XorShiftRng::new(0x7e1e_0004);
    for _ in 0..50 {
        let (classes, plans, requests, cfg) = scenario(&mut rng);
        let plain = run(&cfg, &classes, &plans, &requests);
        let mut off = Telemetry::off();
        let recorded = run_recorded(&cfg, &classes, &plans, &requests, &mut off);
        assert_eq!(format!("{plain:?}"), format!("{recorded:?}"));
        assert!(off.events().is_empty());
        assert!(off.spans().is_empty());
        assert!(off.burn_series().is_empty());

        // And the recorded stream itself is deterministic: same inputs,
        // same JSONL bytes.
        let mut a = Telemetry::new(opts());
        let mut b = Telemetry::new(opts());
        run_recorded(&cfg, &classes, &plans, &requests, &mut a);
        run_recorded(&cfg, &classes, &plans, &requests, &mut b);
        assert_eq!(a.to_jsonl(&[("x", "y")]), b.to_jsonl(&[("x", "y")]));
    }
}
