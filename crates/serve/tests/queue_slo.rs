//! Property test for the batching queue's SLO guarantee: when capacity
//! exists (a free device at every safe-start instant, plan ready on
//! arrival) and the SLO is at least the worst-case service time, **no
//! request ever completes past its SLO** — the queue's `latest_safe_start`
//! margin is worst-case by construction, so batching can only add delay it
//! has already budgeted for.

use serve::engine::{run, EngineConfig};
use serve::plan::{Plan, PlanVariant, PLAN_FORMAT_VERSION};
use serve::traffic::{Request, ShapeClass};
use tensor::XorShiftRng;

fn class(i: usize) -> ShapeClass {
    ShapeClass {
        name: format!("C{i}"),
        hw: 8,
        c: 32,
        k: 64,
        weight: 1.0,
    }
}

fn random_plan(rng: &mut XorShiftRng, name: &str) -> Plan {
    // 1-3 batch variants with ascending n and arbitrary service times.
    let nvars = 1 + rng.gen_index(3);
    let mut n = 0;
    let variants = (0..nvars)
        .map(|_| {
            n += 1 + rng.gen_index(64) as u32;
            PlanVariant {
                n,
                algo: "OURS".into(),
                service_ns: 1 + rng.next_u64() % 50_000,
                tflops: 1.0,
            }
        })
        .collect();
    Plan {
        version: PLAN_FORMAT_VERSION,
        device: "prop".into(),
        class: name.into(),
        bound: "compute".into(),
        break_even_k: 128.0,
        variants,
        // Zero: plans are ready the instant the first request arrives.
        build_cost_ns: 0,
        assumed_rps: 0.0,
        tuned: None,
    }
}

#[test]
fn no_request_misses_slo_when_capacity_exists() {
    let mut rng = XorShiftRng::new(0x0051_0510);
    for trial in 0..200 {
        let nclasses = 1 + rng.gen_index(3);
        let classes: Vec<ShapeClass> = (0..nclasses).map(class).collect();
        let plans: Vec<Plan> = classes
            .iter()
            .map(|c| random_plan(&mut rng, &c.name))
            .collect();
        let worst = plans.iter().map(|p| p.worst_service_ns()).max().unwrap();
        // The guarantee needs slo >= worst-case service (otherwise a lone
        // request can't possibly finish in time and the miss is real).
        let slo_ns = worst + rng.next_u64() % 100_000;

        // Bursty random arrivals, in time order.
        let nreqs = 1 + rng.gen_index(300);
        let mut t = 0u64;
        let requests: Vec<Request> = (0..nreqs as u64)
            .map(|id| {
                t += rng.next_u64() % 2_000;
                Request {
                    id,
                    class: rng.gen_index(nclasses),
                    arrival_ns: t,
                }
            })
            .collect();

        // "Capacity exists": more devices than requests can ever need.
        let cfg = EngineConfig {
            slo_ns,
            pool: nreqs.max(1),
            warm: false,
        };
        let stats = run(&cfg, &classes, &plans, &requests);
        assert_eq!(stats.completed, nreqs as u64, "trial {trial}: must drain");
        assert_eq!(
            stats.slo_misses, 0,
            "trial {trial}: slo {slo_ns} worst {worst} max latency {}",
            stats.max_ns
        );
        assert!(
            stats.max_ns <= slo_ns,
            "trial {trial}: max latency {} exceeds SLO {slo_ns}",
            stats.max_ns
        );
    }
}

#[test]
fn misses_appear_only_when_slo_is_unattainable() {
    // Sanity inverse: a lone request with service > SLO must miss — the
    // queue dispatches at the saturated deadline (the arrival instant) and
    // the engine reports the miss instead of hiding it.
    let classes = vec![class(0)];
    let mut plan = random_plan(&mut XorShiftRng::new(7), "C0");
    plan.variants = vec![PlanVariant {
        n: 32,
        algo: "OURS".into(),
        service_ns: 10_000,
        tflops: 1.0,
    }];
    let requests = vec![Request {
        id: 0,
        class: 0,
        arrival_ns: 0,
    }];
    let cfg = EngineConfig {
        slo_ns: 5_000,
        pool: 4,
        warm: false,
    };
    let stats = run(&cfg, &classes, std::slice::from_ref(&plan), &requests);
    assert_eq!(stats.slo_misses, 1);
    assert_eq!(stats.max_ns, 10_000, "dispatched immediately, not delayed");
}
