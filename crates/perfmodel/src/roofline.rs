//! The Figure 2 roofline model.
//!
//! Attainable TFLOPS at a given arithmetic intensity is
//! `min(peak, intensity × bandwidth)`. The paper plots the Winograd steps
//! (ITF, FTF, OTF — all memory-bound) and the batched-GEMM step at cache
//! block sizes `bk = 32` and `bk = 64` against the V100's DRAM and L2 roofs.

use gpusim::DeviceSpec;

/// A labelled point on the roofline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflinePoint {
    pub name: &'static str,
    /// Arithmetic intensity, FLOPs per DRAM byte.
    pub intensity: f64,
}

/// Arithmetic intensity of the input transform (ITF): 32 FADDs transform a
/// 4×4 tile; traffic = 16 floats in + 16 out = 128 B → 0.25 ops/byte.
pub const ITF_INTENSITY: f64 = 32.0 / 128.0;

/// Filter transform (FTF): 28 float ops per tile; 9 floats in, 16 out.
pub const FTF_INTENSITY: f64 = 28.0 / ((9.0 + 16.0) * 4.0);

/// Output transform (OTF): 24 FADDs; 16 floats in, 4 out.
pub const OTF_INTENSITY: f64 = 24.0 / ((16.0 + 4.0) * 4.0);

/// Batched-GEMM (EWMM) step intensity at cache block size `bk` (§3.3).
///
/// Per main-loop iteration a block loads `16·bc·(bk + bn)` floats and
/// computes `16·bk·bn·bc` MACs (2 FLOPs each). With `bn = 32, bc = 8`:
/// `bk = 32` → 8 ops/byte, `bk = 64` → 10.67 ops/byte — the paper's "+33%".
pub fn gemm_intensity(bk: f64) -> f64 {
    let bn = 32.0;
    let bc = 8.0;
    let flops = 16.0 * bk * bn * bc * 2.0;
    let bytes = 16.0 * bc * (bk + bn) * 4.0;
    flops / bytes
}

/// Direct convolution (3×3) intensity at `bk = 64`: `2·9·bk·bn` MACs per
/// `(bk + bn·9ish)` tile traffic — approximated the way Fig. 2 labels it,
/// i.e. 2.25× the Winograd GEMM intensity.
pub fn direct_conv_intensity(bk: f64) -> f64 {
    2.25 * gemm_intensity(bk)
}

/// The labelled steps of Figure 2.
pub const WINOGRAD_STEPS: [RooflinePoint; 3] = [
    RooflinePoint {
        name: "ITF",
        intensity: ITF_INTENSITY,
    },
    RooflinePoint {
        name: "FTF",
        intensity: FTF_INTENSITY,
    },
    RooflinePoint {
        name: "OTF",
        intensity: OTF_INTENSITY,
    },
];

/// Attainable TFLOPS on `dev` at `intensity` ops/byte against a roof with
/// bandwidth `bw` bytes/s.
pub fn attainable_tflops_vs(dev: &DeviceSpec, intensity: f64, bw: f64) -> f64 {
    (dev.peak_fp32_flops() / 1e12).min(intensity * bw / 1e12)
}

/// Attainable TFLOPS against the DRAM roof.
pub fn attainable_tflops(dev: &DeviceSpec, intensity: f64) -> f64 {
    attainable_tflops_vs(dev, intensity, dev.dram_bw)
}

/// Effective L2 bandwidth used for the Fig. 2 L2 roof (the paper draws
/// 2.5 TB/s for V100).
pub fn l2_bandwidth(dev: &DeviceSpec) -> f64 {
    match dev.name {
        "V100" => 2.5e12,
        _ => 1.8e12,
    }
}

/// Ridge intensity: ops/byte at which the kernel turns compute-bound.
pub fn ridge_intensity(dev: &DeviceSpec) -> f64 {
    dev.peak_fp32_flops() / dev.dram_bw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_intensity_matches_paper() {
        // §3.3: bk=32 → 8 ops/byte; bk=64 → 10.67 ops/byte (+33%).
        assert!((gemm_intensity(32.0) - 8.0).abs() < 1e-9);
        assert!((gemm_intensity(64.0) - 32.0 / 3.0).abs() < 1e-9);
        let gain = gemm_intensity(64.0) / gemm_intensity(32.0) - 1.0;
        assert!((gain - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn transforms_are_memory_bound_on_v100() {
        let v100 = DeviceSpec::v100();
        let ridge = ridge_intensity(&v100);
        for step in WINOGRAD_STEPS {
            assert!(
                step.intensity < ridge,
                "{} at {} ops/byte should sit under the ridge {}",
                step.name,
                step.intensity,
                ridge
            );
            // All three transforms attain well under 10% of peak from DRAM.
            let t = attainable_tflops(&v100, step.intensity);
            assert!(
                t < 0.1 * v100.peak_fp32_flops() / 1e12,
                "{}: {t}",
                step.name
            );
        }
    }

    #[test]
    fn gemm_step_needs_l2_residency() {
        // Fig. 2: even the batched GEMM needs "a certain level of L2 hit
        // rate" — from DRAM alone it cannot reach peak, from L2 it can.
        let v100 = DeviceSpec::v100();
        let i64 = gemm_intensity(64.0);
        assert!(attainable_tflops(&v100, i64) < v100.peak_fp32_flops() / 1e12);
        assert!(
            attainable_tflops_vs(&v100, i64, l2_bandwidth(&v100)) >= v100.peak_fp32_flops() / 1e12
        );
    }

    #[test]
    fn roofline_is_monotone_and_capped() {
        let dev = DeviceSpec::rtx2070();
        let a = attainable_tflops(&dev, 1.0);
        let b = attainable_tflops(&dev, 10.0);
        let c = attainable_tflops(&dev, 1e6);
        assert!(a < b);
        assert!((c - dev.peak_fp32_flops() / 1e12).abs() < 1e-9);
    }
}
