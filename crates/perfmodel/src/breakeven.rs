//! The §8.1 model: fused `F(2×2,3×3)` vs non-fused `F(4×4,3×3)`.
//!
//! Fused F(2×2): assume data loading hides behind compute;
//! `t = 2·N·C·H·W·K·R·S / (2.25 · FLOPS)`.
//!
//! Non-fused F(4×4): the GEMM runs at a 4× multiplication reduction but the
//! transformed input (2.25× the original) must round-trip DRAM;
//! `t = 2·N·C·H·W·K·R·S / (4 · FLOPS) + N·C·H·W·(1+2.25)·2·4 B / BW`.
//!
//! Setting the two equal at fixed `C = K` yields the break-even K —
//! ≈ 129 on V100 and ≈ 127 on RTX 2070 per the paper, which matches the
//! Fig. 12/13 observation that the non-fused version only wins on Conv5
//! (K = 512) and loses on Conv2/3 (K ≤ 128, near the crossover).

use gpusim::DeviceSpec;

/// Per-image MACs of a 3×3 convolution over an `h×w` map with `c`→`k`
/// channels at batch `n` (2 FLOPs per MAC).
fn conv_flops(n: f64, c: f64, h: f64, w: f64, k: f64) -> f64 {
    2.0 * n * c * h * w * k * 9.0
}

/// Predicted fused `F(2×2,3×3)` time (seconds).
pub fn fused_f2_time(dev: &DeviceSpec, n: f64, c: f64, h: f64, w: f64, k: f64) -> f64 {
    conv_flops(n, c, h, w, k) / (2.25 * dev.peak_fp32_flops())
}

/// Predicted non-fused `F(4×4,3×3)` time (seconds).
pub fn nonfused_f4_time(dev: &DeviceSpec, n: f64, c: f64, h: f64, w: f64, k: f64) -> f64 {
    let compute = conv_flops(n, c, h, w, k) / (4.0 * dev.peak_fp32_flops());
    let traffic = n * c * h * w * (1.0 + 2.25) * 2.0 * 4.0 / dev.dram_bw;
    compute + traffic
}

/// Whether the non-fused `F(4×4)` pipeline is worth probing at output
/// channel count `k` on `dev`: below the break-even `K` the fused `F(2×2)`
/// kernel provably wins under the §8.1 model, so candidate-set builders
/// (the serve planner, the network-graph selector) prune it instead of
/// spending probe runs on a guaranteed loser.
pub fn nonfused_viable(dev: &DeviceSpec, k: f64) -> bool {
    k >= break_even_k(dev)
}

/// The K (= C) at which the two strategies tie, for any layer shape — the
/// §8.1 analysis (the spatial extent cancels out of the model).
pub fn break_even_k(dev: &DeviceSpec) -> f64 {
    // fused = nonfused:
    //   F/(2.25 P) = F/(4 P) + T  with F = α·K² (C = K) and T = β·K:
    //   α K² (1/2.25 − 1/4)/P = β K  →  K = β P / (α (1/2.25 − 1/4)).
    let alpha = 2.0 * 9.0; // per (n·h·w) unit, per K²
    let beta = (1.0 + 2.25) * 2.0 * 4.0 / dev.dram_bw; // per (n·h·w) unit, per K
    beta * dev.peak_fp32_flops() / (alpha * (1.0 / 2.25 - 1.0 / 4.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_matches_paper_values() {
        // §8.1: "the break-even point for V100 is K = 129 … and the
        // break-even point for RTX2070 is K = 127".
        let v = break_even_k(&DeviceSpec::v100());
        let t = break_even_k(&DeviceSpec::rtx2070());
        assert!((v - 129.0).abs() < 5.0, "V100 break-even {v}");
        assert!((t - 127.0).abs() < 5.0, "RTX2070 break-even {t}");
    }

    #[test]
    fn viability_follows_break_even() {
        for dev in [DeviceSpec::v100(), DeviceSpec::rtx2070()] {
            let be = break_even_k(&dev);
            assert!(!nonfused_viable(&dev, be - 1.0));
            assert!(nonfused_viable(&dev, be + 1.0));
            // Table 1: Conv2 prunes the nonfused pipeline, Conv4/5 keep it.
            assert!(!nonfused_viable(&dev, 64.0));
            assert!(nonfused_viable(&dev, 256.0));
            assert!(nonfused_viable(&dev, 512.0));
        }
        // Conv3 (K=128) straddles the two devices' break-evens: pruned on
        // V100 (≈129), admitted on RTX 2070 (≈127).
        assert!(!nonfused_viable(&DeviceSpec::v100(), 128.0));
        assert!(nonfused_viable(&DeviceSpec::rtx2070(), 128.0));
    }

    #[test]
    fn fused_wins_below_nonfused_above() {
        let dev = DeviceSpec::v100();
        let k_be = break_even_k(&dev);
        let small = k_be * 0.5;
        let large = k_be * 2.0;
        assert!(
            fused_f2_time(&dev, 32.0, small, 28.0, 28.0, small)
                < nonfused_f4_time(&dev, 32.0, small, 28.0, 28.0, small)
        );
        assert!(
            fused_f2_time(&dev, 32.0, large, 28.0, 28.0, large)
                > nonfused_f4_time(&dev, 32.0, large, 28.0, 28.0, large)
        );
    }

    #[test]
    fn conv5_prefers_nonfused_conv2_prefers_fused() {
        // Matches Fig. 12/13: Conv5 (K=512) favours WINOGRAD_NONFUSED;
        // Conv2 (K=64) favours the fused kernel.
        let dev = DeviceSpec::rtx2070();
        assert!(
            nonfused_f4_time(&dev, 32.0, 512.0, 7.0, 7.0, 512.0)
                < fused_f2_time(&dev, 32.0, 512.0, 7.0, 7.0, 512.0)
        );
        assert!(
            fused_f2_time(&dev, 32.0, 64.0, 56.0, 56.0, 64.0)
                < nonfused_f4_time(&dev, 32.0, 64.0, 56.0, 56.0, 64.0)
        );
    }
}
