//! `bottleneck` — roofline-driven bottleneck classification.
//!
//! Takes a simulated [`KernelTiming`] (and its hardware counters when
//! [`gpusim::TimingOptions::counters`] was on) and labels the run
//! compute-bound, DRAM-bound, shared-memory-bound or latency-bound, with
//! the headroom left against the binding ceiling. This is the judgment call
//! a performance engineer makes from an Nsight "speed of light" section,
//! made mechanical:
//!
//! * **compute pressure** — FP32-pipe busy cycles over issue capacity
//!   (counter-exact when available, else `sol_total_pct`);
//! * **DRAM pressure** — the pure-bandwidth lower bound `dram_time_s` over
//!   achieved `time_s` (§3.2's wall);
//! * **smem pressure** — MIO-pipe busy cycles over the wave (bank conflicts
//!   raise it; only available with counters, else approximated from
//!   `smem_conflict_cycles`);
//!
//! The largest pressure ≥ [`BOUND_THRESHOLD`] names the bound; when no pipe
//! or wall dominates, the run is **latency-bound** — cycles go to waiting,
//! the §7.1 occupancy story. Analytic (non-simulated) phases are classified
//! straight from the roofline: intensity under the ridge is DRAM-bound,
//! over it compute-bound.

use gpusim::{DeviceSpec, HwCounters, KernelTiming};

use crate::roofline::ridge_intensity;

/// Pressure level above which a resource is called *the* bottleneck.
pub const BOUND_THRESHOLD: f64 = 0.60;

/// What binds a kernel's runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// FP32 pipe near saturation: more FLOPs need a better algorithm.
    Compute,
    /// DRAM-bandwidth wall: more speed needs less traffic (§3.2).
    Dram,
    /// MIO/shared-memory pipe saturated (bank conflicts included).
    Smem,
    /// No resource saturated: cycles go to latency — occupancy, stalls,
    /// dependency chains (§7.1).
    Latency,
}

impl Bound {
    pub fn name(self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Dram => "dram",
            Bound::Smem => "smem",
            Bound::Latency => "latency",
        }
    }
}

/// A classified run: the bound plus every pressure that was weighed.
#[derive(Clone, Copy, Debug)]
pub struct BottleneckReport {
    pub bound: Bound,
    /// FP32-pipe busy fraction of issue capacity, 0..=1.
    pub compute_pressure: f64,
    /// DRAM lower bound over achieved time, 0..=1.
    pub dram_pressure: f64,
    /// MIO-pipe busy fraction of the wave, 0..=1.
    pub smem_pressure: f64,
    /// Headroom to the binding ceiling in percent: how much faster the run
    /// could get before the *current* bottleneck pins it.
    pub headroom_pct: f64,
}

impl BottleneckReport {
    fn from_pressures(compute: f64, dram: f64, smem: f64) -> Self {
        let compute = compute.clamp(0.0, 1.0);
        let dram = dram.clamp(0.0, 1.0);
        let smem = smem.clamp(0.0, 1.0);
        let (bound, top) = [
            (Bound::Compute, compute),
            (Bound::Dram, dram),
            (Bound::Smem, smem),
        ]
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
        if top >= BOUND_THRESHOLD {
            BottleneckReport {
                bound,
                compute_pressure: compute,
                dram_pressure: dram,
                smem_pressure: smem,
                headroom_pct: 100.0 * (1.0 - top),
            }
        } else {
            // Nothing saturated: latency-bound. Headroom is measured to the
            // *closest* ceiling — removing latency runs into it first.
            BottleneckReport {
                bound: Bound::Latency,
                compute_pressure: compute,
                dram_pressure: dram,
                smem_pressure: smem,
                headroom_pct: 100.0 * (1.0 - top),
            }
        }
    }

    /// Classify a simulated kernel run. Uses the counter-exact pipe
    /// pressures when `t.counters` is present; otherwise falls back to the
    /// always-collected aggregates (`sol_total_pct`, `smem_conflict_cycles`).
    pub fn classify(t: &KernelTiming) -> Self {
        let slot_capacity = |c: &HwCounters| c.slot_capacity().max(1) as f64;
        let compute = match &t.counters {
            Some(c) => c.fp_pipe_busy_cycles as f64 / slot_capacity(c),
            None => t.sol_total_pct / 100.0,
        };
        let dram = if t.time_s > 0.0 {
            t.dram_time_s / t.time_s
        } else {
            0.0
        };
        let smem = match &t.counters {
            Some(c) => {
                (c.smem_mio_cycles + c.global_mio_cycles) as f64 / c.wave_cycles.max(1) as f64
            }
            // Without counters only the conflict overage is known — a lower
            // bound on MIO occupancy, still enough to flag pathologies.
            None => t.smem_conflict_cycles as f64 / t.wave_cycles.max(1) as f64,
        };
        Self::from_pressures(compute, dram, smem)
    }

    /// Classify an analytic (roofline) phase at `intensity` ops/byte: under
    /// the ridge the DRAM wall binds and compute pressure is what the roof
    /// lets through; above it the pipe binds and the wall recedes.
    pub fn classify_analytic(dev: &DeviceSpec, intensity: f64) -> Self {
        let ridge = ridge_intensity(dev);
        if intensity <= 0.0 {
            return Self::from_pressures(0.0, 1.0, 0.0);
        }
        if intensity < ridge {
            Self::from_pressures(intensity / ridge, 1.0, 0.0)
        } else {
            Self::from_pressures(1.0, ridge / intensity, 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressures_pick_the_dominant_bound() {
        let r = BottleneckReport::from_pressures(0.95, 0.3, 0.1);
        assert_eq!(r.bound, Bound::Compute);
        assert!((r.headroom_pct - 5.0).abs() < 1e-9);
        let r = BottleneckReport::from_pressures(0.2, 0.9, 0.1);
        assert_eq!(r.bound, Bound::Dram);
        let r = BottleneckReport::from_pressures(0.2, 0.3, 0.7);
        assert_eq!(r.bound, Bound::Smem);
        let r = BottleneckReport::from_pressures(0.4, 0.3, 0.2);
        assert_eq!(r.bound, Bound::Latency);
        assert!((r.headroom_pct - 60.0).abs() < 1e-9);
    }

    #[test]
    fn analytic_classification_follows_the_ridge() {
        let v100 = DeviceSpec::v100();
        let ridge = ridge_intensity(&v100);
        // The memory-bound transforms sit far under the ridge.
        let r = BottleneckReport::classify_analytic(&v100, 0.25);
        assert_eq!(r.bound, Bound::Dram);
        assert!(r.compute_pressure < 0.05);
        // Far above the ridge, the pipe binds and the wall is distant.
        let r = BottleneckReport::classify_analytic(&v100, 100.0 * ridge);
        assert_eq!(r.bound, Bound::Compute);
        assert!(r.dram_pressure < 0.05);
        // At the ridge both walls touch.
        let r = BottleneckReport::classify_analytic(&v100, ridge);
        assert!(r.compute_pressure > 0.99 && r.dram_pressure > 0.99);
    }

    #[test]
    fn bound_names_are_stable() {
        // These strings are report-schema surface (metricsdiff baselines).
        assert_eq!(Bound::Compute.name(), "compute");
        assert_eq!(Bound::Dram.name(), "dram");
        assert_eq!(Bound::Smem.name(), "smem");
        assert_eq!(Bound::Latency.name(), "latency");
    }
}
