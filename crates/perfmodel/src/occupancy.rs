//! Table 7: kernel parameters and the occupancy consequences (§7.1).

use gpusim::DeviceSpec;

/// The Table 7 parameter set of one fused Winograd kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelParams {
    pub name: &'static str,
    pub bk: u32,
    pub bn: u32,
    pub bc: u32,
    pub threads_per_block: u32,
    pub smem_per_block: u32,
    pub regs_per_thread: u32,
}

impl KernelParams {
    pub fn regs_per_block(&self) -> u32 {
        self.regs_per_thread * self.threads_per_block
    }

    /// Resident blocks per SM on `dev`.
    pub fn blocks_per_sm(&self, dev: &DeviceSpec) -> u32 {
        dev.blocks_per_sm(
            self.threads_per_block,
            self.regs_per_thread,
            self.smem_per_block,
        )
    }
}

/// Our kernel's parameters (Table 7, left column).
pub const OURS: KernelParams = KernelParams {
    name: "Ours",
    bk: 64,
    bn: 32,
    bc: 8,
    threads_per_block: 256,
    smem_per_block: 48 * 1024,
    regs_per_thread: 253,
};

/// cuDNN 7.6.1's fused Winograd parameters (Table 7, right column).
pub const CUDNN: KernelParams = KernelParams {
    name: "cuDNN",
    bk: 32,
    bn: 32,
    bc: 8,
    threads_per_block: 256,
    smem_per_block: 48 * 1024,
    regs_per_thread: 126,
};

/// Both kernels of Table 7.
pub fn kernel_table() -> [KernelParams; 2] {
    [OURS, CUDNN]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_register_totals() {
        assert_eq!(OURS.regs_per_block(), 64768);
        assert_eq!(CUDNN.regs_per_block(), 32256);
    }

    #[test]
    fn section71_occupancy_asymmetry() {
        // §7.1: "Each SM can hold 2 thread blocks [of cuDNN's kernel] on
        // V100 but only 1 on RTX2070" — ours is register-bound to 1
        // everywhere.
        let v100 = DeviceSpec::v100();
        let t2070 = DeviceSpec::rtx2070();
        assert_eq!(CUDNN.blocks_per_sm(&v100), 2);
        assert_eq!(CUDNN.blocks_per_sm(&t2070), 1);
        assert_eq!(OURS.blocks_per_sm(&v100), 1);
        assert_eq!(OURS.blocks_per_sm(&t2070), 1);
    }
}
