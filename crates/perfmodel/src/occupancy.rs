//! Table 7: kernel parameters and the occupancy consequences (§7.1).

use gpusim::DeviceSpec;

/// The Table 7 parameter set of one fused Winograd kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelParams {
    pub name: &'static str,
    pub bk: u32,
    pub bn: u32,
    pub bc: u32,
    pub threads_per_block: u32,
    pub smem_per_block: u32,
    pub regs_per_thread: u32,
}

impl KernelParams {
    pub fn regs_per_block(&self) -> u32 {
        self.regs_per_thread * self.threads_per_block
    }

    /// Resident blocks per SM on `dev`.
    pub fn blocks_per_sm(&self, dev: &DeviceSpec) -> u32 {
        dev.blocks_per_sm(
            self.threads_per_block,
            self.regs_per_thread,
            self.smem_per_block,
        )
    }
}

/// Our kernel's parameters (Table 7, left column).
pub const OURS: KernelParams = KernelParams {
    name: "Ours",
    bk: 64,
    bn: 32,
    bc: 8,
    threads_per_block: 256,
    smem_per_block: 48 * 1024,
    regs_per_thread: 253,
};

/// cuDNN 7.6.1's fused Winograd parameters (Table 7, right column).
pub const CUDNN: KernelParams = KernelParams {
    name: "cuDNN",
    bk: 32,
    bn: 32,
    bc: 8,
    threads_per_block: 256,
    smem_per_block: 48 * 1024,
    regs_per_thread: 126,
};

/// Both kernels of Table 7.
pub fn kernel_table() -> [KernelParams; 2] {
    [OURS, CUDNN]
}

/// How a grid of `total_blocks` lands on a device: the analytic wave count
/// with the partial-tail edge cases handled the way the full-device
/// simulator ([`gpusim::device_sim`]) resolves them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchShape {
    /// Full-or-partial device waves: `ceil(total / (blocks_per_sm × SMs))`,
    /// 0 for an empty grid.
    pub waves: u64,
    /// SMs that receive at least one block: `min(total, SMs)`.
    pub busy_sms: u32,
    /// Residency actually reachable: the occupancy limit capped at
    /// `ceil(total / SMs)` — a grid smaller than one SM's residency never
    /// fills it.
    pub blocks_per_sm: u32,
}

impl LaunchShape {
    /// Shape of `total_blocks` blocks at `occupancy` resident blocks/SM on
    /// `dev`. `occupancy == 0` (a kernel that does not fit) yields the empty
    /// shape.
    pub fn of(dev: &DeviceSpec, occupancy: u32, total_blocks: u64) -> Self {
        let sms = dev.num_sms as u64;
        if occupancy == 0 || total_blocks == 0 {
            return LaunchShape {
                waves: 0,
                busy_sms: 0,
                blocks_per_sm: 0,
            };
        }
        let resident = (occupancy as u64).min(total_blocks.div_ceil(sms)).max(1);
        LaunchShape {
            waves: total_blocks.div_ceil(resident * sms),
            busy_sms: total_blocks.min(sms) as u32,
            blocks_per_sm: resident as u32,
        }
    }

    /// True when the last wave is not a full device wave — the grids the
    /// one-wave analytic model overcharges and the device simulator times
    /// exactly.
    pub fn has_partial_tail(&self, dev: &DeviceSpec, total_blocks: u64) -> bool {
        self.waves > 0
            && !total_blocks.is_multiple_of(self.blocks_per_sm as u64 * dev.num_sms as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_register_totals() {
        assert_eq!(OURS.regs_per_block(), 64768);
        assert_eq!(CUDNN.regs_per_block(), 32256);
    }

    #[test]
    fn launch_shape_edges() {
        let v100 = DeviceSpec::v100(); // 80 SMs

        // Empty grid: no waves, nothing busy.
        let empty = LaunchShape::of(&v100, 2, 0);
        assert_eq!(empty.waves, 0);
        assert_eq!(empty.busy_sms, 0);

        // Grid smaller than one SM's residency: residency is capped, the
        // grid still costs exactly one wave on 3 SMs (not a full-device
        // wave's worth of resident blocks).
        let tiny = LaunchShape::of(&v100, 4, 3);
        assert_eq!(tiny.blocks_per_sm, 1);
        assert_eq!(tiny.waves, 1);
        assert_eq!(tiny.busy_sms, 3);

        // Exact multiple: two clean waves, every SM busy.
        let full = LaunchShape::of(&v100, 2, 320);
        assert_eq!(full.waves, 2);
        assert_eq!(full.busy_sms, 80);
        assert_eq!(full.blocks_per_sm, 2);
        assert!(!full.has_partial_tail(&v100, 320));

        // Partial tail: 330 blocks rounds up to a third wave.
        let partial = LaunchShape::of(&v100, 2, 330);
        assert_eq!(partial.waves, 3);
        assert!(partial.has_partial_tail(&v100, 330));

        // A kernel that does not fit at all.
        let none = LaunchShape::of(&v100, 0, 128);
        assert_eq!(none.waves, 0);
        assert_eq!(none.busy_sms, 0);
    }

    #[test]
    fn section71_occupancy_asymmetry() {
        // §7.1: "Each SM can hold 2 thread blocks [of cuDNN's kernel] on
        // V100 but only 1 on RTX2070" — ours is register-bound to 1
        // everywhere.
        let v100 = DeviceSpec::v100();
        let t2070 = DeviceSpec::rtx2070();
        assert_eq!(CUDNN.blocks_per_sm(&v100), 2);
        assert_eq!(CUDNN.blocks_per_sm(&t2070), 1);
        assert_eq!(OURS.blocks_per_sm(&v100), 1);
        assert_eq!(OURS.blocks_per_sm(&t2070), 1);
    }
}
