//! `perfmodel` — analytical performance models from the paper.
//!
//! * [`roofline`] — the Figure 2 roofline: arithmetic intensity of each
//!   Winograd step against the DRAM and L2 roofs, and the §3.3 observation
//!   that growing `bk` from 32 to 64 raises the batched-GEMM intensity from
//!   8 to 10.67 ops/byte (+33%);
//! * [`breakeven`] — the §8.1 fused-F(2×2) vs non-fused-F(4×4) break-even
//!   model, predicting the crossover at K ≈ 129 (V100) / 127 (RTX 2070);
//! * [`occupancy`] — Table 7: kernel parameters and resident blocks per SM,
//!   the mechanism behind §7.1's V100-vs-RTX2070 speedup difference;
//! * [`bottleneck`] — roofline-driven classification of a simulated run as
//!   compute-/DRAM-/smem-/latency-bound, with headroom to the ceiling;
//! * [`tunehint`] — translation of a bottleneck class into move-family
//!   weights for the `sass::tune` schedule autotuner.

pub mod bottleneck;
pub mod breakeven;
pub mod occupancy;
pub mod roofline;
pub mod tunehint;

pub use bottleneck::{BottleneckReport, Bound, BOUND_THRESHOLD};
pub use breakeven::{break_even_k, fused_f2_time, nonfused_f4_time, nonfused_viable};
pub use occupancy::{kernel_table, KernelParams, LaunchShape};
pub use roofline::{attainable_tflops, RooflinePoint, WINOGRAD_STEPS};
pub use tunehint::{move_weights, region_move_weights};
