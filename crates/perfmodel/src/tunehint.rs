//! Bottleneck-driven move prioritization for the schedule autotuner.
//!
//! The tuner's simulated-annealing proposals are weighted by move family
//! ([`sass::tune::MoveWeights`]); this module derives those weights from a
//! [`BottleneckReport`] so the search spends its evaluation budget where
//! the classified bound says cycles actually go:
//!
//! * **latency-bound** (§7.1's common case for these kernels): the clock is
//!   dominated by stall counts and dependency chains — favor stall
//!   tightening and reordering, with yield tweaks close behind;
//! * **compute-bound**: the FP32 pipe is near saturation, so the only
//!   schedule-level wins left are register-bank conflicts (reuse flags,
//!   §5.2.2) and issue-order smoothing;
//! * **smem-bound**: the MIO queue is the wall — reorder to spread LDS/STS
//!   issue and restructure scoreboard waits; stalls barely matter;
//! * **DRAM-bound**: schedule changes can only overlap latency better —
//!   barrier restructuring and reordering, stalls least.
//!
//! Weights are relative within a proposal draw; absolute scale is
//! irrelevant.

use crate::bottleneck::{BottleneckReport, Bound};
use sass::tune::MoveWeights;

/// Map a classified bottleneck to move-family weights for the tuner.
pub fn move_weights(report: &BottleneckReport) -> MoveWeights {
    match report.bound {
        Bound::Latency => MoveWeights {
            stall: 4.0,
            reorder: 2.0,
            yld: 1.5,
            barrier: 1.0,
            reuse: 0.5,
        },
        Bound::Compute => MoveWeights {
            reuse: 3.0,
            reorder: 2.0,
            stall: 1.0,
            yld: 1.0,
            barrier: 0.5,
        },
        Bound::Smem => MoveWeights {
            reorder: 3.0,
            barrier: 2.0,
            yld: 1.0,
            stall: 0.5,
            reuse: 0.5,
        },
        Bound::Dram => MoveWeights {
            barrier: 2.0,
            reorder: 2.0,
            yld: 1.0,
            reuse: 0.5,
            stall: 0.5,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bound: Bound) -> BottleneckReport {
        BottleneckReport {
            bound,
            compute_pressure: 0.5,
            dram_pressure: 0.5,
            smem_pressure: 0.5,
            headroom_pct: 50.0,
        }
    }

    #[test]
    fn weights_track_the_bound() {
        let lat = move_weights(&report(Bound::Latency));
        assert!(lat.stall > lat.reuse && lat.stall > lat.barrier);
        let cmp = move_weights(&report(Bound::Compute));
        assert!(cmp.reuse > cmp.stall);
        let smem = move_weights(&report(Bound::Smem));
        assert!(smem.reorder > smem.stall);
        let dram = move_weights(&report(Bound::Dram));
        assert!(dram.barrier > dram.stall);
        // Every family stays proposable under every bound.
        for w in [lat, cmp, smem, dram] {
            assert!(w.stall > 0.0 && w.reuse > 0.0 && w.yld > 0.0);
            assert!(w.barrier > 0.0 && w.reorder > 0.0);
        }
    }
}
