//! Bottleneck-driven move prioritization for the schedule autotuner.
//!
//! The tuner's simulated-annealing proposals are weighted by move family
//! ([`sass::tune::MoveWeights`]); this module derives those weights from a
//! [`BottleneckReport`] so the search spends its evaluation budget where
//! the classified bound says cycles actually go:
//!
//! * **latency-bound** (§7.1's common case for these kernels): the clock is
//!   dominated by stall counts and dependency chains — favor stall
//!   tightening and reordering, with yield tweaks close behind;
//! * **compute-bound**: the FP32 pipe is near saturation, so the only
//!   schedule-level wins left are register-bank conflicts (reuse flags,
//!   §5.2.2) and issue-order smoothing;
//! * **smem-bound**: the MIO queue is the wall — reorder to spread LDS/STS
//!   issue and restructure scoreboard waits; stalls barely matter;
//! * **DRAM-bound**: schedule changes can only overlap latency better —
//!   barrier restructuring and reordering, stalls least.
//!
//! Weights are relative within a proposal draw; absolute scale is
//! irrelevant.

use crate::bottleneck::{BottleneckReport, Bound};
use sass::tune::MoveWeights;

/// Map a classified bottleneck to move-family weights for the tuner.
pub fn move_weights(report: &BottleneckReport) -> MoveWeights {
    match report.bound {
        Bound::Latency => MoveWeights {
            stall: 4.0,
            reorder: 2.0,
            yld: 1.5,
            barrier: 1.0,
            reuse: 0.5,
        },
        Bound::Compute => MoveWeights {
            reuse: 3.0,
            reorder: 2.0,
            stall: 1.0,
            yld: 1.0,
            barrier: 0.5,
        },
        Bound::Smem => MoveWeights {
            reorder: 3.0,
            barrier: 2.0,
            yld: 1.0,
            stall: 0.5,
            reuse: 0.5,
        },
        Bound::Dram => MoveWeights {
            barrier: 2.0,
            reorder: 2.0,
            yld: 1.0,
            reuse: 0.5,
            stall: 0.5,
        },
    }
}

/// Per-region move-family priors from the profiled issue/stall split.
///
/// [`move_weights`] hands every region the same bound-level table, which is
/// blind to *where* the cycles go: a latency-bound kernel whose main loop is
/// all stall but whose prologue is issue-saturated should not propose stall
/// tightening uniformly. This blends the table with each region's profiled
/// stall share `s = stall / (issue + stall)` (regions matched by name;
/// unprofiled regions fall back to `s = 0.5`, which leaves the table weight
/// exactly unchanged):
///
/// * stall-family weight scales by `0.25 + 1.5·s` — a fully stalled region
///   proposes stall work ~7× more often than a fully issue-bound one;
/// * reorder scales by `0.5 + s` — dependence-legal swaps pay off where
///   stalls hide latency;
/// * reuse scales by `1.5 − s` — bank-conflict wins live where issue slots
///   dominate;
/// * yield and barrier keep the table weight (their payoff is about warp
///   interleaving structure, which the issue/stall split does not see).
///
/// Every multiplier is positive, so a family proposable under
/// [`move_weights`] stays proposable in every region.
pub fn region_move_weights(
    report: &BottleneckReport,
    region_totals: &[(String, u64, u64)],
    region_names: &[String],
) -> Vec<MoveWeights> {
    let base = move_weights(report);
    region_names
        .iter()
        .map(|name| {
            let s = region_totals
                .iter()
                .find(|(n, _, _)| n == name)
                .and_then(|&(_, issue, stall)| {
                    let tot = issue + stall;
                    (tot > 0).then(|| stall as f64 / tot as f64)
                })
                .unwrap_or(0.5);
            MoveWeights {
                stall: base.stall * (0.25 + 1.5 * s),
                reorder: base.reorder * (0.5 + s),
                reuse: base.reuse * (1.5 - s),
                yld: base.yld,
                barrier: base.barrier,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bound: Bound) -> BottleneckReport {
        BottleneckReport {
            bound,
            compute_pressure: 0.5,
            dram_pressure: 0.5,
            smem_pressure: 0.5,
            headroom_pct: 50.0,
        }
    }

    #[test]
    fn weights_track_the_bound() {
        let lat = move_weights(&report(Bound::Latency));
        assert!(lat.stall > lat.reuse && lat.stall > lat.barrier);
        let cmp = move_weights(&report(Bound::Compute));
        assert!(cmp.reuse > cmp.stall);
        let smem = move_weights(&report(Bound::Smem));
        assert!(smem.reorder > smem.stall);
        let dram = move_weights(&report(Bound::Dram));
        assert!(dram.barrier > dram.stall);
        // Every family stays proposable under every bound.
        for w in [lat, cmp, smem, dram] {
            assert!(w.stall > 0.0 && w.reuse > 0.0 && w.yld > 0.0);
            assert!(w.barrier > 0.0 && w.reorder > 0.0);
        }
    }

    #[test]
    fn region_weights_track_stall_shares() {
        let rep = report(Bound::Latency);
        let names: Vec<String> = ["stalled", "issued", "unprofiled"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let totals = vec![
            ("stalled".to_string(), 10u64, 90u64),
            ("issued".to_string(), 90u64, 10u64),
        ];
        let ws = region_move_weights(&rep, &totals, &names);
        assert_eq!(ws.len(), 3);
        let (hot, cold, unk) = (&ws[0], &ws[1], &ws[2]);
        // A stall-heavy region proposes stall/reorder moves more and reuse
        // moves less than an issue-heavy one.
        assert!(hot.stall > cold.stall, "{} vs {}", hot.stall, cold.stall);
        assert!(hot.reorder > cold.reorder);
        assert!(hot.reuse < cold.reuse);
        // Unprofiled regions fall back to the flat bound-level table.
        let base = move_weights(&rep);
        assert!((unk.stall - base.stall).abs() < 1e-12);
        assert!((unk.reuse - base.reuse).abs() < 1e-12);
        assert!((unk.reorder - base.reorder).abs() < 1e-12);
        // Every family stays proposable in every region.
        for w in &ws {
            assert!(w.stall > 0.0 && w.reuse > 0.0 && w.yld > 0.0);
            assert!(w.barrier > 0.0 && w.reorder > 0.0);
        }
    }
}
