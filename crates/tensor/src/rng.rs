//! A tiny deterministic PRNG.
//!
//! The workspace needs reproducible synthetic tensors in crates that should
//! not pull in `rand` (notably `tensor` itself, which sits at the bottom of
//! the dependency graph). xorshift64* is more than good enough for filling
//! test tensors.

/// xorshift64* generator. Deterministic across platforms.
#[derive(Clone, Debug)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Seed must be nonzero; a zero seed is mapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShiftRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next u32.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f32 in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa-ish bits of the high word.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform usize in `[0, n)`. `n` must be nonzero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShiftRng::new(42);
        let mut b = XorShiftRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = XorShiftRng::new(7);
        for _ in 0..10_000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShiftRng::new(0);
        // Must not be stuck at zero.
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = XorShiftRng::new(3);
        for _ in 0..1000 {
            let v = r.gen_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
