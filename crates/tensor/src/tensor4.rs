//! Owned 4-D `f32` tensor with a named layout.

use crate::{Layout, LayoutKind, XorShiftRng};

/// A dense, contiguous 4-D single-precision tensor.
///
/// Indexing is always done with the axis tuple in the layout's storage order;
/// [`Tensor4::to_layout`] converts between layouts that share the same axis
/// set (e.g. `CHWN` ↔ `NCHW`).
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor4 {
    layout: Layout,
    data: Vec<f32>,
}

impl Tensor4 {
    /// All-zero tensor with dims in storage order.
    pub fn zeros(kind: LayoutKind, dims: [usize; 4]) -> Self {
        let layout = Layout::new(kind, dims);
        Tensor4 {
            data: vec![0.0; layout.len()],
            layout,
        }
    }

    /// Tensor filled by `f(i0, i1, i2, i3)` over storage-order indices.
    pub fn from_fn(
        kind: LayoutKind,
        dims: [usize; 4],
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut t = Tensor4::zeros(kind, dims);
        for i0 in 0..dims[0] {
            for i1 in 0..dims[1] {
                for i2 in 0..dims[2] {
                    for i3 in 0..dims[3] {
                        let off = t.layout.offset([i0, i1, i2, i3]);
                        t.data[off] = f(i0, i1, i2, i3);
                    }
                }
            }
        }
        t
    }

    /// Tensor of uniform random values in `[lo, hi)`, deterministic in `seed`.
    pub fn random(kind: LayoutKind, dims: [usize; 4], lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = XorShiftRng::new(seed);
        let layout = Layout::new(kind, dims);
        let data = (0..layout.len()).map(|_| rng.gen_range(lo, hi)).collect();
        Tensor4 { layout, data }
    }

    /// Wrap an existing buffer. Panics if the length does not match the dims.
    pub fn from_vec(kind: LayoutKind, dims: [usize; 4], data: Vec<f32>) -> Self {
        let layout = Layout::new(kind, dims);
        assert_eq!(
            data.len(),
            layout.len(),
            "buffer length does not match dims"
        );
        Tensor4 { layout, data }
    }

    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    pub fn kind(&self) -> LayoutKind {
        self.layout.kind()
    }

    pub fn dims(&self) -> [usize; 4] {
        self.layout.dims()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `idx` in storage order.
    #[inline]
    pub fn get(&self, idx: [usize; 4]) -> f32 {
        self.data[self.layout.offset(idx)]
    }

    /// Set element at `idx` in storage order.
    #[inline]
    pub fn set(&mut self, idx: [usize; 4], v: f32) {
        let off = self.layout.offset(idx);
        self.data[off] = v;
    }

    /// Convert to another layout over the same axis set.
    ///
    /// Panics if the two layouts do not name the same four axes.
    pub fn to_layout(&self, kind: LayoutKind) -> Tensor4 {
        if kind == self.kind() {
            return self.clone();
        }
        let src_axes = self.kind().axes();
        let dst_axes = kind.axes();
        // perm[d] = position in src of dst axis d.
        let perm: Vec<usize> = dst_axes
            .iter()
            .map(|&a| {
                src_axes.iter().position(|&s| s == a).unwrap_or_else(|| {
                    panic!("layouts {} and {} have different axes", self.kind(), kind)
                })
            })
            .collect();
        let src_dims = self.dims();
        let dst_dims = [
            src_dims[perm[0]],
            src_dims[perm[1]],
            src_dims[perm[2]],
            src_dims[perm[3]],
        ];
        let mut out = Tensor4::zeros(kind, dst_dims);
        let mut src_idx = [0usize; 4];
        for d0 in 0..dst_dims[0] {
            for d1 in 0..dst_dims[1] {
                for d2 in 0..dst_dims[2] {
                    for d3 in 0..dst_dims[3] {
                        let dst = [d0, d1, d2, d3];
                        for (a, &p) in perm.iter().enumerate() {
                            src_idx[p] = dst[a];
                        }
                        let off = out.layout.offset(dst);
                        out.data[off] = self.get(src_idx);
                    }
                }
            }
        }
        out
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get_agree() {
        let t = Tensor4::from_fn(LayoutKind::Nchw, [2, 3, 4, 5], |a, b, c, d| {
            (a * 1000 + b * 100 + c * 10 + d) as f32
        });
        assert_eq!(t.get([1, 2, 3, 4]), 1234.0);
        assert_eq!(t.get([0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn layout_roundtrip_preserves_elements() {
        let t = Tensor4::random(LayoutKind::Nchw, [2, 3, 4, 5], -1.0, 1.0, 99);
        let u = t.to_layout(LayoutKind::Chwn);
        assert_eq!(u.dims(), [3, 4, 5, 2]);
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        assert_eq!(t.get([n, c, h, w]), u.get([c, h, w, n]));
                    }
                }
            }
        }
        let back = u.to_layout(LayoutKind::Nchw);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "different axes")]
    fn layout_conversion_rejects_mismatched_axes() {
        let t = Tensor4::zeros(LayoutKind::Crsk, [1, 3, 3, 1]);
        let _ = t.to_layout(LayoutKind::Nchw);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor4::random(LayoutKind::Chwn, [2, 2, 2, 2], 0.0, 1.0, 5);
        let b = Tensor4::random(LayoutKind::Chwn, [2, 2, 2, 2], 0.0, 1.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_len() {
        let _ = Tensor4::from_vec(LayoutKind::Chwn, [2, 2, 2, 2], vec![0.0; 15]);
    }

    #[test]
    fn set_then_get() {
        let mut t = Tensor4::zeros(LayoutKind::Khwn, [2, 2, 2, 2]);
        t.set([1, 0, 1, 0], 7.5);
        assert_eq!(t.get([1, 0, 1, 0]), 7.5);
        assert_eq!(t.as_slice().iter().filter(|&&v| v != 0.0).count(), 1);
    }
}
