//! Approximate floating-point comparison helpers.
//!
//! Winograd convolution reorders the reduction and trades multiplies for
//! adds, so its output differs from a direct convolution by normal
//! floating-point noise. These helpers quantify that difference with both
//! absolute and relative metrics and render a readable report on failure.

/// Result of comparing two buffers element-wise.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Largest absolute difference.
    pub max_abs: f32,
    /// Largest relative difference `|a-b| / max(|a|,|b|,eps)`.
    pub max_rel: f32,
    /// Index of the worst element (by combined criterion).
    pub worst_index: usize,
    /// Values at the worst element.
    pub worst_pair: (f32, f32),
    /// Number of elements exceeding the tolerance.
    pub num_bad: usize,
    /// Total number of elements compared.
    pub len: usize,
}

impl std::fmt::Display for CompareReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max_abs={:.3e} max_rel={:.3e} bad={}/{} worst@{}: {} vs {}",
            self.max_abs,
            self.max_rel,
            self.num_bad,
            self.len,
            self.worst_index,
            self.worst_pair.0,
            self.worst_pair.1
        )
    }
}

/// Compare two equal-length buffers with a mixed absolute/relative tolerance.
///
/// An element pair passes if `|a-b| <= atol + rtol * max(|a|, |b|)`.
pub fn compare(a: &[f32], b: &[f32], atol: f32, rtol: f32) -> CompareReport {
    assert_eq!(a.len(), b.len(), "buffers must have equal length");
    let mut rep = CompareReport {
        max_abs: 0.0,
        max_rel: 0.0,
        worst_index: 0,
        worst_pair: (0.0, 0.0),
        num_bad: 0,
        len: a.len(),
    };
    let mut worst_score = -1.0f32;
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        let abs = (x - y).abs();
        let scale = x.abs().max(y.abs()).max(f32::EPSILON);
        let rel = abs / scale;
        if abs > rep.max_abs {
            rep.max_abs = abs;
        }
        if rel > rep.max_rel {
            rep.max_rel = rel;
        }
        let tol = atol + rtol * x.abs().max(y.abs());
        let score = abs - tol;
        if score > 0.0 || x.is_nan() != y.is_nan() {
            rep.num_bad += 1;
        }
        if score > worst_score {
            worst_score = score;
            rep.worst_index = i;
            rep.worst_pair = (x, y);
        }
    }
    rep
}

/// True if every element pair satisfies `|a-b| <= atol + rtol*max(|a|,|b|)`.
pub fn allclose(a: &[f32], b: &[f32], atol: f32, rtol: f32) -> bool {
    compare(a, b, atol, rtol).num_bad == 0
}

/// Largest absolute difference between two buffers.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    compare(a, b, 0.0, 0.0).max_abs
}

/// Largest relative difference between two buffers.
pub fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    compare(a, b, 0.0, 0.0).max_rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_buffers_are_close() {
        let a = [1.0, -2.0, 3.5, 0.0];
        assert!(allclose(&a, &a, 0.0, 0.0));
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn detects_out_of_tolerance() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.1, 3.0];
        assert!(!allclose(&a, &b, 1e-3, 1e-3));
        assert!(allclose(&a, &b, 0.2, 0.0));
        let rep = compare(&a, &b, 1e-3, 1e-3);
        assert_eq!(rep.num_bad, 1);
        assert_eq!(rep.worst_index, 1);
    }

    #[test]
    fn relative_tolerance_scales() {
        let a = [1000.0];
        let b = [1000.5];
        assert!(allclose(&a, &b, 0.0, 1e-3));
        assert!(!allclose(&a, &b, 0.0, 1e-6));
    }

    #[test]
    fn nan_mismatch_is_bad() {
        let a = [f32::NAN];
        let b = [0.0];
        assert!(!allclose(&a, &b, 1e30, 1e30));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = allclose(&[1.0], &[1.0, 2.0], 0.0, 0.0);
    }

    #[test]
    fn report_displays() {
        let rep = compare(&[1.0, 2.0], &[1.0, 3.0], 0.0, 0.0);
        let s = rep.to_string();
        assert!(s.contains("bad=1/2"), "{s}");
    }
}
