//! Tensor layouts used across the workspace.
//!
//! A 4-D tensor is always logically indexed by the axis tuple written in its
//! layout name. For example a `Chwn` tensor of dims `[C, H, W, N]` stores
//! element `(c, h, w, n)` at linear offset `((c*H + h)*W + w)*N + n`.

/// The named memory layouts the kernels understand.
///
/// * `Chwn` — the input layout used by our kernel (§4.2 of the paper): batch
///   innermost, so a warp loading 32 consecutive `n` is fully coalesced.
/// * `Nchw` — cuDNN's default layout, used by the baseline algorithms.
/// * `Khwn` — the output layout of our kernel.
/// * `Crsk` — filter layout `(C, R, S, K)`; with `k` innermost, the filter
///   transform kernel's loads/stores are coalesced.
/// * `Kcrs` — cuDNN's filter layout `(K, C, R, S)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    Chwn,
    Nchw,
    Khwn,
    Crsk,
    Kcrs,
}

impl LayoutKind {
    /// Axis names in storage (outermost-first) order.
    pub fn axes(self) -> [char; 4] {
        match self {
            LayoutKind::Chwn => ['C', 'H', 'W', 'N'],
            LayoutKind::Nchw => ['N', 'C', 'H', 'W'],
            LayoutKind::Khwn => ['K', 'H', 'W', 'N'],
            LayoutKind::Crsk => ['C', 'R', 'S', 'K'],
            LayoutKind::Kcrs => ['K', 'C', 'R', 'S'],
        }
    }
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let a = self.axes();
        write!(f, "{}{}{}{}", a[0], a[1], a[2], a[3])
    }
}

/// A concrete layout: a kind plus dims, with precomputed row-major strides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    kind: LayoutKind,
    dims: [usize; 4],
    strides: [usize; 4],
}

impl Layout {
    /// Create a contiguous row-major layout with dims given in storage order.
    pub fn new(kind: LayoutKind, dims: [usize; 4]) -> Self {
        let strides = [dims[1] * dims[2] * dims[3], dims[2] * dims[3], dims[3], 1];
        Layout {
            kind,
            dims,
            strides,
        }
    }

    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// Dims in storage order (matching `kind().axes()`).
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Row-major strides in storage order, in elements.
    pub fn strides(&self) -> [usize; 4] {
        self.strides
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear offset of index tuple `idx` (in storage order).
    #[inline]
    pub fn offset(&self, idx: [usize; 4]) -> usize {
        debug_assert!(
            idx.iter().zip(self.dims.iter()).all(|(i, d)| i < d),
            "index {:?} out of bounds for dims {:?}",
            idx,
            self.dims
        );
        idx[0] * self.strides[0] + idx[1] * self.strides[1] + idx[2] * self.strides[2] + idx[3]
    }

    /// Dim of the axis with the given name, if present in this layout.
    pub fn dim_of(&self, axis: char) -> Option<usize> {
        self.kind
            .axes()
            .iter()
            .position(|&a| a == axis)
            .map(|i| self.dims[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let l = Layout::new(LayoutKind::Chwn, [2, 3, 4, 5]);
        assert_eq!(l.strides(), [60, 20, 5, 1]);
        assert_eq!(l.len(), 120);
        assert_eq!(l.offset([1, 2, 3, 4]), 60 + 40 + 15 + 4);
    }

    #[test]
    fn dim_of_finds_axes() {
        let l = Layout::new(LayoutKind::Nchw, [8, 16, 32, 64]);
        assert_eq!(l.dim_of('N'), Some(8));
        assert_eq!(l.dim_of('C'), Some(16));
        assert_eq!(l.dim_of('H'), Some(32));
        assert_eq!(l.dim_of('W'), Some(64));
        assert_eq!(l.dim_of('K'), None);
    }

    #[test]
    fn display_matches_axes() {
        assert_eq!(LayoutKind::Crsk.to_string(), "CRSK");
        assert_eq!(LayoutKind::Chwn.to_string(), "CHWN");
    }

    #[test]
    fn offset_first_and_last() {
        let l = Layout::new(LayoutKind::Khwn, [4, 4, 4, 4]);
        assert_eq!(l.offset([0, 0, 0, 0]), 0);
        assert_eq!(l.offset([3, 3, 3, 3]), l.len() - 1);
    }
}
