//! Minimal dense tensor library for the Winograd-convolution workspace.
//!
//! The paper's kernels work on single-precision 4-D tensors in a handful of
//! fixed layouts (`CHWN` for inputs, `CRSK` for filters, `KHWN` for outputs,
//! plus `NCHW` used by the cuDNN-style baselines). This crate provides exactly
//! that: an owned `f32` buffer with a named layout, strided indexing, fills,
//! layout conversion, and approximate comparison utilities used by the test
//! suites across the workspace.

mod compare;
mod layout;
mod rng;
mod tensor4;

pub use compare::{allclose, compare, max_abs_diff, max_rel_diff, CompareReport};
pub use layout::{Layout, LayoutKind};
pub use rng::XorShiftRng;
pub use tensor4::Tensor4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_smoke() {
        let t = Tensor4::zeros(LayoutKind::Chwn, [2, 3, 4, 5]);
        assert_eq!(t.len(), 2 * 3 * 4 * 5);
    }
}
