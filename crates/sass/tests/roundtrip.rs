//! Property tests: encode/decode and assemble/disassemble round-trips over
//! randomly generated instructions.

use proptest::prelude::*;
use sass::isa::{Addr, CmpOp, Instruction, MemSpace, MemWidth, Op, PredGuard, PredSrc, SpecialReg, SrcB};
use sass::{assemble, decode, disassemble, encode, Ctrl, Module, Pred, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![(0u8..=254).prop_map(Reg), Just(sass::RZ)]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    (0u8..=7).prop_map(|i| if i == 7 { sass::PT } else { Pred(i) })
}

fn arb_pred_src() -> impl Strategy<Value = PredSrc> {
    (arb_pred(), any::<bool>()).prop_map(|(pred, neg)| PredSrc { pred, neg })
}

fn arb_srcb() -> impl Strategy<Value = SrcB> {
    prop_oneof![
        arb_reg().prop_map(SrcB::Reg),
        any::<u32>().prop_map(SrcB::Imm),
        (0u16..0x400).prop_map(SrcB::Const),
    ]
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::B32), Just(MemWidth::B64), Just(MemWidth::B128)]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn arb_addr() -> impl Strategy<Value = Addr> {
    (arb_reg(), -(1i32 << 23)..(1i32 << 23)).prop_map(|(base, offset)| Addr { base, offset })
}

fn arb_space() -> impl Strategy<Value = MemSpace> {
    prop_oneof![Just(MemSpace::Global), Just(MemSpace::Shared)]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_srcb(), arb_reg(), any::<bool>(), any::<bool>())
            .prop_map(|(d, a, b, c, neg_b, neg_c)| Op::Ffma { d, a, b, c, neg_b, neg_c }),
        (arb_reg(), arb_reg(), any::<bool>(), arb_srcb(), any::<bool>())
            .prop_map(|(d, a, neg_a, b, neg_b)| Op::Fadd { d, a, neg_a, b, neg_b }),
        (arb_reg(), arb_reg(), arb_srcb(), any::<bool>())
            .prop_map(|(d, a, b, neg_b)| Op::Fmul { d, a, b, neg_b }),
        (arb_reg(), arb_reg(), arb_srcb(), arb_reg()).prop_map(|(d, a, b, c)| Op::Hfma2 { d, a, b, c }),
        (arb_reg(), arb_reg(), any::<bool>(), arb_srcb(), any::<bool>())
            .prop_map(|(d, a, neg_a, b, neg_b)| Op::Hadd2 { d, a, neg_a, b, neg_b }),
        (arb_reg(), arb_reg(), arb_srcb()).prop_map(|(d, a, b)| Op::Hmul2 { d, a, b }),
        (arb_pred(), arb_cmp(), arb_reg(), arb_srcb(), arb_pred_src())
            .prop_map(|(p, cmp, a, b, combine)| Op::Fsetp { p, cmp, a, b, combine }),
        (
            arb_reg(),
            arb_reg(),
            any::<bool>(),
            arb_srcb(),
            any::<bool>(),
            arb_reg(),
            any::<bool>()
        )
            .prop_map(|(d, a, neg_a, b, neg_b, c, neg_c)| Op::Iadd3 { d, a, neg_a, b, neg_b, c, neg_c }),
        (arb_reg(), arb_reg(), arb_srcb(), arb_reg()).prop_map(|(d, a, b, c)| Op::Imad { d, a, b, c }),
        (arb_reg(), arb_reg(), arb_srcb(), arb_reg()).prop_map(|(d, a, b, c)| Op::ImadHi { d, a, b, c }),
        (arb_reg(), arb_reg(), arb_srcb(), arb_reg()).prop_map(|(d, a, b, c)| Op::ImadWide { d, a, b, c }),
        (arb_reg(), arb_reg(), arb_srcb(), 0u8..32).prop_map(|(d, a, b, shift)| Op::Lea { d, a, b, shift }),
        (arb_reg(), arb_reg(), arb_srcb(), arb_reg(), any::<u8>())
            .prop_map(|(d, a, b, c, lut)| Op::Lop3 { d, a, b, c, lut }),
        (arb_reg(), arb_reg(), arb_srcb(), arb_reg(), any::<bool>(), any::<bool>())
            .prop_map(|(d, lo, shift, hi, right, u32_mode)| Op::Shf { d, lo, shift, hi, right, u32_mode }),
        (arb_reg(), arb_srcb()).prop_map(|(d, b)| Op::Mov { d, b }),
        (arb_reg(), arb_reg(), arb_srcb(), arb_pred_src()).prop_map(|(d, a, b, p)| Op::Sel { d, a, b, p }),
        (arb_pred(), arb_cmp(), any::<bool>(), arb_reg(), arb_srcb(), arb_pred_src())
            .prop_map(|(p, cmp, u32, a, b, combine)| Op::Isetp { p, cmp, u32, a, b, combine }),
        (arb_reg(), arb_reg(), any::<u32>()).prop_map(|(d, a, mask)| Op::P2r { d, a, mask }),
        (arb_reg(), any::<u32>()).prop_map(|(a, mask)| Op::R2p { a, mask }),
        (arb_reg(), prop::sample::select(&SpecialReg::ALL[..])).prop_map(|(d, sr)| Op::S2r { d, sr }),
        (arb_space(), arb_width(), arb_reg(), arb_addr())
            .prop_map(|(space, width, d, addr)| Op::Ld { space, width, d, addr }),
        (arb_space(), arb_width(), arb_addr(), arb_reg())
            .prop_map(|(space, width, addr, src)| Op::St { space, width, addr, src }),
        Just(Op::BarSync),
        (0u32..10_000).prop_map(|target| Op::Bra { target }),
        Just(Op::Exit),
        Just(Op::Nop),
    ]
}

fn arb_ctrl() -> impl Strategy<Value = Ctrl> {
    (
        0u8..16,
        any::<bool>(),
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
        0u8..64,
        0u8..16,
    )
        .prop_map(|(stall, yield_flag, write_bar, read_bar, wait_mask, reuse)| Ctrl {
            stall,
            yield_flag,
            write_bar,
            read_bar,
            wait_mask,
            reuse,
        })
}

fn arb_guard() -> impl Strategy<Value = PredGuard> {
    (arb_pred(), any::<bool>()).prop_map(|(pred, neg)| PredGuard { pred, neg })
}

fn arb_inst() -> impl Strategy<Value = Instruction> {
    (arb_guard(), arb_op(), arb_ctrl()).prop_map(|(guard, op, ctrl)| Instruction { guard, op, ctrl })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trip(inst in arb_inst()) {
        let w = encode(&inst);
        let back = decode(w).expect("decode must succeed on encoder output");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn cubin_round_trip(insts in prop::collection::vec(arb_inst(), 0..64), smem in 0u32..65536) {
        let m = Module::new("prop", smem, 64, insts);
        let back = Module::from_cubin(&m.to_cubin()).expect("container round-trip");
        prop_assert_eq!(back, m);
    }
}

/// Instructions whose textual form is unambiguous enough to survive an
/// assemble→disassemble→assemble loop (reuse flags on non-register operands
/// are dropped by design, and `.reuse` is only printed for ALU shapes).
fn arb_textual_inst() -> impl Strategy<Value = Instruction> {
    (arb_guard(), arb_op(), 0u8..16, any::<bool>()).prop_map(|(guard, op, stall, y)| Instruction {
        guard,
        op,
        ctrl: Ctrl::new().with_stall(stall).then_yield(y),
    })
}

trait CtrlExt {
    fn then_yield(self, y: bool) -> Ctrl;
}
impl CtrlExt for Ctrl {
    fn then_yield(mut self, y: bool) -> Ctrl {
        self.yield_flag = y;
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn disasm_asm_round_trip(insts in prop::collection::vec(arb_textual_inst(), 1..32)) {
        // Clamp branch targets into range so labels resolve.
        let n = insts.len() as u32;
        let insts: Vec<Instruction> = insts
            .into_iter()
            .map(|mut i| {
                if let Op::Bra { target } = i.op {
                    i.op = Op::Bra { target: target % n };
                }
                i
            })
            .collect();
        let text = disassemble(&insts);
        let m = assemble(&text).unwrap_or_else(|e| panic!("assemble failed: {e}\n{text}"));
        prop_assert_eq!(m.insts, insts, "\n{}", text);
    }
}
