//! Property tests: encode/decode and assemble/disassemble round-trips over
//! randomly generated instructions.
//!
//! Generation uses the workspace's deterministic `XorShiftRng` instead of
//! `proptest` (the registry is unreachable from the build environment); a
//! failing case prints the instruction's `Debug` form, which is enough to
//! reproduce it as a one-off unit test.

use sass::isa::{
    Addr, CmpOp, Instruction, MemSpace, MemWidth, Op, PredGuard, PredSrc, SpecialReg, SrcB,
};
use sass::{assemble, decode, disassemble, encode, Ctrl, Module, Pred, Reg};
use tensor::XorShiftRng;

fn arb_bool(r: &mut XorShiftRng) -> bool {
    r.next_u64() & 1 == 1
}

fn arb_reg(r: &mut XorShiftRng) -> Reg {
    if r.next_u64().is_multiple_of(8) {
        sass::RZ
    } else {
        Reg((r.next_u32() % 255) as u8)
    }
}

fn arb_pred(r: &mut XorShiftRng) -> Pred {
    let i = (r.next_u32() % 8) as u8;
    if i == 7 {
        sass::PT
    } else {
        Pred(i)
    }
}

fn arb_pred_src(r: &mut XorShiftRng) -> PredSrc {
    PredSrc {
        pred: arb_pred(r),
        neg: arb_bool(r),
    }
}

fn arb_srcb(r: &mut XorShiftRng) -> SrcB {
    match r.next_u64() % 3 {
        0 => SrcB::Reg(arb_reg(r)),
        1 => SrcB::Imm(r.next_u32()),
        _ => SrcB::Const((r.next_u32() % 0x400) as u16),
    }
}

fn arb_width(r: &mut XorShiftRng) -> MemWidth {
    match r.next_u64() % 3 {
        0 => MemWidth::B32,
        1 => MemWidth::B64,
        _ => MemWidth::B128,
    }
}

fn arb_cmp(r: &mut XorShiftRng) -> CmpOp {
    match r.next_u64() % 6 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        _ => CmpOp::Ne,
    }
}

fn arb_addr(r: &mut XorShiftRng) -> Addr {
    let span = 1i64 << 24; // offsets in [-2^23, 2^23)
    let offset = (r.next_u64() % span as u64) as i64 - (1 << 23);
    Addr {
        base: arb_reg(r),
        offset: offset as i32,
    }
}

fn arb_space(r: &mut XorShiftRng) -> MemSpace {
    if arb_bool(r) {
        MemSpace::Global
    } else {
        MemSpace::Shared
    }
}

fn arb_op(r: &mut XorShiftRng) -> Op {
    match r.next_u64() % 26 {
        0 => Op::Ffma {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            c: arb_reg(r),
            neg_b: arb_bool(r),
            neg_c: arb_bool(r),
        },
        1 => Op::Fadd {
            d: arb_reg(r),
            a: arb_reg(r),
            neg_a: arb_bool(r),
            b: arb_srcb(r),
            neg_b: arb_bool(r),
        },
        2 => Op::Fmul {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            neg_b: arb_bool(r),
        },
        3 => Op::Hfma2 {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            c: arb_reg(r),
        },
        4 => Op::Hadd2 {
            d: arb_reg(r),
            a: arb_reg(r),
            neg_a: arb_bool(r),
            b: arb_srcb(r),
            neg_b: arb_bool(r),
        },
        5 => Op::Hmul2 {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
        },
        6 => Op::Fsetp {
            p: arb_pred(r),
            cmp: arb_cmp(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            combine: arb_pred_src(r),
        },
        7 => Op::Iadd3 {
            d: arb_reg(r),
            a: arb_reg(r),
            neg_a: arb_bool(r),
            b: arb_srcb(r),
            neg_b: arb_bool(r),
            c: arb_reg(r),
            neg_c: arb_bool(r),
        },
        8 => Op::Imad {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            c: arb_reg(r),
        },
        9 => Op::ImadHi {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            c: arb_reg(r),
        },
        10 => Op::ImadWide {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            c: arb_reg(r),
        },
        11 => Op::Lea {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            shift: (r.next_u32() % 32) as u8,
        },
        12 => Op::Lop3 {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            c: arb_reg(r),
            lut: (r.next_u32() & 0xff) as u8,
        },
        13 => Op::Shf {
            d: arb_reg(r),
            lo: arb_reg(r),
            shift: arb_srcb(r),
            hi: arb_reg(r),
            right: arb_bool(r),
            u32_mode: arb_bool(r),
        },
        14 => Op::Mov {
            d: arb_reg(r),
            b: arb_srcb(r),
        },
        15 => Op::Sel {
            d: arb_reg(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            p: arb_pred_src(r),
        },
        16 => Op::Isetp {
            p: arb_pred(r),
            cmp: arb_cmp(r),
            u32: arb_bool(r),
            a: arb_reg(r),
            b: arb_srcb(r),
            combine: arb_pred_src(r),
        },
        17 => Op::P2r {
            d: arb_reg(r),
            a: arb_reg(r),
            mask: r.next_u32(),
        },
        18 => Op::R2p {
            a: arb_reg(r),
            mask: r.next_u32(),
        },
        19 => Op::S2r {
            d: arb_reg(r),
            sr: SpecialReg::ALL[r.gen_index(SpecialReg::ALL.len())],
        },
        20 => Op::Ld {
            space: arb_space(r),
            width: arb_width(r),
            d: arb_reg(r),
            addr: arb_addr(r),
        },
        21 => Op::St {
            space: arb_space(r),
            width: arb_width(r),
            addr: arb_addr(r),
            src: arb_reg(r),
        },
        22 => Op::BarSync,
        23 => Op::Bra {
            target: r.next_u32() % 10_000,
        },
        24 => Op::Exit,
        _ => Op::Nop,
    }
}

fn arb_ctrl(r: &mut XorShiftRng) -> Ctrl {
    Ctrl {
        stall: (r.next_u32() % 16) as u8,
        yield_flag: arb_bool(r),
        write_bar: if arb_bool(r) {
            Some((r.next_u32() % 6) as u8)
        } else {
            None
        },
        read_bar: if arb_bool(r) {
            Some((r.next_u32() % 6) as u8)
        } else {
            None
        },
        wait_mask: (r.next_u32() % 64) as u8,
        reuse: (r.next_u32() % 16) as u8,
    }
}

fn arb_guard(r: &mut XorShiftRng) -> PredGuard {
    PredGuard {
        pred: arb_pred(r),
        neg: arb_bool(r),
    }
}

fn arb_inst(r: &mut XorShiftRng) -> Instruction {
    Instruction {
        guard: arb_guard(r),
        op: arb_op(r),
        ctrl: arb_ctrl(r),
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut rng = XorShiftRng::new(0xE2CD_0001);
    for case in 0..512 {
        let inst = arb_inst(&mut rng);
        let w = encode(&inst);
        let back = decode(w).expect("decode must succeed on encoder output");
        assert_eq!(back, inst, "case {case}");
    }
}

#[test]
fn cubin_round_trip() {
    let mut rng = XorShiftRng::new(0xCB14_0002);
    for case in 0..512 {
        let n = rng.gen_index(64);
        let insts: Vec<Instruction> = (0..n).map(|_| arb_inst(&mut rng)).collect();
        let smem = rng.next_u32() % 65536;
        let m = Module::new("prop", smem, 64, insts);
        let back = Module::from_cubin(&m.to_cubin()).expect("container round-trip");
        assert_eq!(back, m, "case {case}");
    }
}

/// Instructions whose textual form is unambiguous enough to survive an
/// assemble→disassemble→assemble loop (reuse flags on non-register operands
/// are dropped by design, and `.reuse` is only printed for ALU shapes).
fn arb_textual_inst(r: &mut XorShiftRng) -> Instruction {
    let mut ctrl = Ctrl::new().with_stall((r.next_u32() % 16) as u8);
    ctrl.yield_flag = arb_bool(r);
    Instruction {
        guard: arb_guard(r),
        op: arb_op(r),
        ctrl,
    }
}

#[test]
fn disasm_asm_round_trip() {
    let mut rng = XorShiftRng::new(0xD15A_0003);
    for case in 0..512 {
        let n = 1 + rng.gen_index(31);
        // Clamp branch targets into range so labels resolve.
        let insts: Vec<Instruction> = (0..n)
            .map(|_| {
                let mut i = arb_textual_inst(&mut rng);
                if let Op::Bra { target } = i.op {
                    i.op = Op::Bra {
                        target: target % n as u32,
                    };
                }
                i
            })
            .collect();
        let text = disassemble(&insts);
        let m =
            assemble(&text).unwrap_or_else(|e| panic!("case {case}: assemble failed: {e}\n{text}"));
        assert_eq!(m.insts, insts, "case {case}:\n{}", text);
    }
}
