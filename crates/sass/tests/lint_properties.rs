//! Property tests for the schedule-legality oracle.
//!
//! The tuner's contract (ISSUE 5) is that every candidate it hands to the
//! cycle simulator is *legal*: randomly generated schedule mutations either
//! pass `sass::lint` clean or are rejected before evaluation, and the
//! repairer `fix_schedule_marked` is a fixpoint on everything the tuner
//! produces (repairing an already-clean stream changes nothing, and a
//! second repair after a first one changes nothing either).
//!
//! Programs here are *generated*, not hand-picked: random straight-line
//! streams over a small register file with loads, stores, predicates and
//! scoreboard waits, repaired into legality by `fix_schedule`, then mutated
//! by the real tuner move generators under a recording objective.

use sass::ctrl::Ctrl;
use sass::isa::{build, CmpOp, Instruction, MemWidth, Op, PredGuard, SpecialReg};
use sass::lint::{fix_schedule, fix_schedule_marked, lint};
use sass::tune::{detune, Tuner};
use sass::{Pred, Reg};
use tensor::XorShiftRng;

/// One random straight-line instruction over a compact register window.
/// Destinations stay in R8..R23 so sources (R0..R23) can hit them; R0..R7
/// are "warm inputs" only ever read.
fn random_op(rng: &mut XorShiftRng) -> Op {
    let d = Reg(8 + rng.gen_index(16) as u8);
    let a = Reg(rng.gen_index(24) as u8);
    let b = Reg(rng.gen_index(24) as u8);
    let c = Reg(rng.gen_index(24) as u8);
    match rng.gen_index(12) {
        0 => build::ffma(d, a, b, c),
        1 => build::fadd(d, a, b),
        2 => build::fmul(d, a, b),
        3 => build::iadd3(d, a, b, c),
        4 => build::mov(d, b),
        5 => build::lea(d, a, b, (rng.gen_index(4) + 1) as u8),
        6 => build::and(d, a, b),
        // Loads/stores use an even base so .64/.128 stay aligned; offsets
        // are multiples of 16 inside a private 256 B window per slot.
        7 => build::lds(MemWidth::B32, d, Reg(0), (rng.gen_index(16) * 16) as i32),
        8 => build::sts(MemWidth::B32, Reg(0), (rng.gen_index(16) * 16) as i32, a),
        9 => build::isetp(Pred(rng.gen_index(3) as u8), CmpOp::Lt, a, b),
        10 => build::s2r(d, SpecialReg::TidX),
        _ => build::shl(d, a, (rng.gen_index(8)) as u8),
    }
}

/// Random control word: stall 1..=8, half the streams get sprinkled
/// scoreboard waits on barriers the generator also assigns to loads.
fn random_ctrl(rng: &mut XorShiftRng, op: &Op) -> Ctrl {
    let mut c = Ctrl::stall((1 + rng.gen_index(8)) as u8);
    if rng.gen_index(4) == 0 {
        c = c.no_yield();
    }
    if matches!(op, Op::Ld { .. } | Op::S2r { .. }) {
        c = c.with_write_bar(rng.gen_index(6) as u8);
    }
    // Stores always carry a read barrier: an unprotected store's WAR hazard
    // is the one thing `fix_schedule` cannot repair (it has no barrier to
    // wait on), and the emitters never produce one.
    if matches!(op, Op::St { .. }) {
        c = c.with_read_bar(rng.gen_index(6) as u8);
    }
    if rng.gen_index(3) == 0 {
        c = c.wait_on(rng.gen_index(6) as u8);
    }
    c
}

/// A random program, made legal by the repairer. Occasionally predicated.
fn random_program(rng: &mut XorShiftRng, len: usize) -> Vec<Instruction> {
    let mut insts: Vec<Instruction> = (0..len)
        .map(|_| {
            let op = random_op(rng);
            let ctrl = random_ctrl(rng, &op);
            let mut inst = Instruction::new(op).with_ctrl(ctrl);
            // Guard some non-SETP instructions with a predicate the stream
            // may also define (exercises predicate dependences).
            if rng.gen_index(8) == 0 && !matches!(inst.op, Op::Isetp { .. }) {
                inst = inst.with_guard(PredGuard::on(Pred(rng.gen_index(3) as u8)));
            }
            inst
        })
        .collect();
    insts.push(Instruction::new(Op::Exit).with_ctrl(Ctrl::stall(5)));
    fix_schedule(&mut insts);
    assert!(lint(&insts).is_empty(), "generator produced unfixable code");
    insts
}

/// Every candidate the tuner evaluates — across all move kinds, including
/// reorders and barrier reassignments — lints clean; mutations that would
/// not are rejected before the objective ever sees them.
#[test]
fn tuner_candidates_are_always_legal() {
    let mut rng = XorShiftRng::new(0xfeed);
    for trial in 0..24 {
        let len = 12 + rng.gen_index(30);
        let base = random_program(&mut rng, len);
        let mut tuner = Tuner::new(base.clone(), Vec::new(), 0x1000 + trial);
        let mut seen = 0u64;
        let mut obj = |insts: &[Instruction], perm: &[u32]| {
            seen += 1;
            assert!(
                lint(insts).is_empty(),
                "illegal candidate reached the objective (trial {trial})"
            );
            // The position map is always a permutation of the baseline.
            let mut sorted: Vec<u32> = perm.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..insts.len() as u32).collect::<Vec<_>>());
            Some(insts.iter().map(|i| i.ctrl.stall.max(1) as u64).sum())
        };
        tuner.prime(&mut obj);
        tuner.start_anneal(120);
        for _ in 0..120 {
            tuner.anneal_step(&mut obj);
        }
        assert!(seen > 1, "trial {trial}: tuner never evaluated a candidate");
        assert!(lint(&tuner.best_insts).is_empty());
        assert!(lint(&tuner.insts).is_empty());
        // Rejections really happen (the generators do propose aggressive
        // mutations) but never crash or corrupt the current stream.
        let s = tuner.stats;
        assert_eq!(s.proposed, 120);
        assert_eq!(s.proposed, s.inapplicable + s.illegal + s.evals - 1);
    }
}

/// `fix_schedule_marked` is a fixpoint: on any tuner-visited candidate
/// (already legal) it performs zero repairs; on a freshly generated dirty
/// stream, repairing twice is the same as repairing once.
#[test]
fn fix_schedule_marked_is_a_fixpoint() {
    let mut rng = XorShiftRng::new(0xabcdef);
    for trial in 0..24 {
        // Dirty stream: random ctrl, no repair yet.
        let len = 10 + rng.gen_index(30);
        let mut dirty: Vec<Instruction> = (0..len)
            .map(|_| {
                let op = random_op(&mut rng);
                let ctrl = random_ctrl(&mut rng, &op);
                Instruction::new(op).with_ctrl(ctrl)
            })
            .collect();
        dirty.push(Instruction::new(Op::Exit).with_ctrl(Ctrl::stall(5)));

        let mut markers = vec![0u32; dirty.len()];
        fix_schedule_marked(&mut dirty, &mut markers);
        let after_once = dirty.clone();
        let mut markers2 = vec![0u32; dirty.len()];
        let second = fix_schedule_marked(&mut dirty, &mut markers2);
        assert_eq!(second, 0, "trial {trial}: second repair still changed code");
        assert_eq!(dirty, after_once, "trial {trial}: stream drifted");

        // Tuner-visited candidates are already clean ⇒ zero repairs.
        let blen = 10 + rng.gen_index(20);
        let base = random_program(&mut rng, blen);
        let mut tuner = Tuner::new(base, Vec::new(), 0x2000 + trial);
        let mut candidates: Vec<Vec<Instruction>> = Vec::new();
        let mut obj = |insts: &[Instruction], _: &[u32]| {
            candidates.push(insts.to_vec());
            Some(insts.iter().map(|i| i.ctrl.stall.max(1) as u64).sum())
        };
        tuner.prime(&mut obj);
        tuner.start_anneal(60);
        for _ in 0..60 {
            tuner.anneal_step(&mut obj);
        }
        for (i, cand) in candidates.iter().enumerate() {
            let mut c = cand.clone();
            let mut m = vec![0u32; c.len()];
            let fixes = fix_schedule_marked(&mut c, &mut m);
            assert_eq!(fixes, 0, "trial {trial} candidate {i}: not a fixpoint");
            assert_eq!(&c, cand);
        }
    }
}

/// Detuning is itself a legality-preserving, idempotent transform.
#[test]
fn detune_is_idempotent_on_generated_programs() {
    let mut rng = XorShiftRng::new(77);
    for _ in 0..16 {
        let plen = 8 + rng.gen_index(24);
        let mut p = random_program(&mut rng, plen);
        detune(&mut p);
        assert!(lint(&p).is_empty());
        let once = p.clone();
        detune(&mut p);
        assert_eq!(p, once);
    }
}
