//! The island search's determinism contract (ISSUE 9): for a fixed seed the
//! outcome is a pure function of `(hand stream, regions, priors, config)` —
//! byte-identical for any `--jobs`, including every piece of observable
//! state (best stream, traces, per-island counters, the adaptive policy's
//! learned acceptance rates, snapshots, trajectory).
//!
//! Uses a cheap static objective — summed stalls plus a yield penalty — so
//! thousands of steps run in milliseconds while the *real* move generators,
//! legality gates, migration barriers and policy updates all exercise.

use sass::island::{run_islands, IslandConfig, IslandOutcome, Priors};
use sass::tune::{TrajectoryMode, TuneRegion};
use sass::{assemble, Instruction};

/// A stream with enough independent work that reorders, stall edits, reuse
/// and yield moves all apply.
fn hand_stream() -> Vec<Instruction> {
    let mut insts = assemble(
        r#"
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  SHF.L.U32 R1, R0, 0x4, RZ;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R0, 0x10, R10;
    --:-:0:-:2  LDG.E.128 R4, [R2];
    --:-:-:Y:6  MOV R20, c[0x0][0x168];
    --:-:-:Y:6  SHF.L.U32 R21, R0, 0x2, RZ;
    --:-:-:Y:6  IMAD.WIDE.U32 R22, R0, 0x4, R20;
    --:-:1:-:2  LDG.E R24, [R22];
    01:-:-:Y:1  FFMA R8, R4, R5, R6;
    --:-:-:Y:1  FFMA R9, R4, R5, R7;
    02:-:-:Y:1  FFMA R25, R24, R4, R8;
    --:-:-:Y:4  FADD R12, R8, R9;
    --:-:-:Y:4  FADD R13, R25, R12;
    --:-:-:Y:4  STG.E [R2], R13;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap()
    .insts;
    // The stream above is written for shape, not legality; repair stalls
    // and scoreboard waits so it models a valid "hand" schedule.
    sass::lint::fix_schedule(&mut insts);
    assert!(sass::lint(&insts).is_empty());
    insts
}

fn regions() -> Vec<TuneRegion> {
    vec![
        TuneRegion {
            name: "setup".into(),
            start: 0,
            end: 10,
        },
        TuneRegion {
            name: "math".into(),
            start: 10,
            end: 17,
        },
    ]
}

/// Static objective: total stall cycles plus one cycle per yielding
/// instruction. Deterministic, monotone under tightening, and sensitive to
/// every move family the tuner proposes.
fn cost(insts: &[Instruction], _perm: &[u32]) -> Option<u64> {
    Some(
        insts
            .iter()
            .map(|i| i.ctrl.stall.max(1) as u64 + i.ctrl.yield_flag as u64)
            .sum(),
    )
}

fn run(jobs: usize, seed: u64) -> IslandOutcome {
    let hand = hand_stream();
    let mut cfg = IslandConfig::new(4, 3, 40, seed);
    cfg.jobs = jobs;
    cfg.traj_mode = TrajectoryMode::Full;
    cfg.snapshot_every = 16;
    run_islands(&hand, &regions(), &Priors::default(), &cfg, |_| cost)
}

fn assert_identical(a: &IslandOutcome, b: &IslandOutcome, what: &str) {
    assert_eq!(a.best_cost, b.best_cost, "{what}: best_cost");
    assert_eq!(a.best_insts, b.best_insts, "{what}: best_insts");
    assert_eq!(a.best_perm, b.best_perm, "{what}: best_perm");
    assert_eq!(a.winner, b.winner, "{what}: winner");
    assert_eq!(a.best_trace, b.best_trace, "{what}: best_trace");
    assert_eq!(a.snapshots, b.snapshots, "{what}: snapshots");
    assert_eq!(
        a.trajectory.len(),
        b.trajectory.len(),
        "{what}: trajectory length"
    );
    for (x, y) in a.trajectory.iter().zip(&b.trajectory) {
        assert_eq!(
            (x.step, x.pc, x.region, x.cycles),
            (y.step, y.pc, y.region, y.cycles),
            "{what}: trajectory point"
        );
    }
    assert_eq!(
        a.per_island.len(),
        b.per_island.len(),
        "{what}: island count"
    );
    for (x, y) in a.per_island.iter().zip(&b.per_island) {
        assert_eq!(x.island, y.island, "{what}: island index");
        assert_eq!(x.seed_kind, y.seed_kind, "{what}: seed kind");
        assert_eq!(x.start_cost, y.start_cost, "{what}: start cost");
        assert_eq!(x.best_cost, y.best_cost, "{what}: island best");
        assert_eq!(x.migrations_in, y.migrations_in, "{what}: migrations");
        assert_eq!(
            x.accept_rates, y.accept_rates,
            "{what}: learned acceptance rates"
        );
        let xs = &x.stats;
        let ys = &y.stats;
        assert_eq!(
            (
                xs.proposed,
                xs.inapplicable,
                xs.illegal,
                xs.evals,
                xs.failed,
                xs.accepted
            ),
            (
                ys.proposed,
                ys.inapplicable,
                ys.illegal,
                ys.evals,
                ys.failed,
                ys.accepted
            ),
            "{what}: counters"
        );
    }
}

#[test]
fn outcome_identical_across_jobs_1_2_8() {
    let a = run(1, 0x5eed_2020);
    let b = run(2, 0x5eed_2020);
    let c = run(8, 0x5eed_2020);
    assert_identical(&a, &b, "jobs 1 vs 2");
    assert_identical(&a, &c, "jobs 1 vs 8");
    // And the run did real work: improving moves landed and the search beat
    // the worst island's starting point.
    assert!(a.stats.accepted > 0, "nothing accepted");
    let worst_start = a.per_island.iter().map(|s| s.start_cost).max().unwrap();
    assert!(a.best_cost < worst_start, "no improvement found");
}

#[test]
fn best_trace_is_monotone_and_ends_at_best() {
    let o = run(2, 7);
    assert!(
        o.best_trace.windows(2).all(|w| w[1] <= w[0]),
        "best-so-far trace must never regress: {:?}",
        o.best_trace
    );
    assert_eq!(
        *o.best_trace.last().unwrap(),
        o.best_cost,
        "trace must end at the final best"
    );
}

#[test]
fn different_seeds_explore_differently() {
    let a = run(1, 1);
    let b = run(1, 2);
    // Not a strict requirement of annealing, but with 480 proposals the
    // chance two seeds propose identical move sequences is nil — if the
    // counters match exactly, the RNG plumbing is likely ignoring the seed.
    let fp = |o: &IslandOutcome| {
        o.per_island
            .iter()
            .map(|s| (s.stats.proposed, s.stats.accepted, s.best_cost))
            .collect::<Vec<_>>()
    };
    assert_ne!(fp(&a), fp(&b), "seed does not influence the search");
}
