//! Schedule autotuner: search layer over control codes and instruction order.
//!
//! The paper's headline kernel is *hand*-tuned at the SASS level — stall
//! counts, yield flags, scoreboard barriers, reuse flags and instruction
//! placement (§5.1.4, §6). This module automates that search: it degrades a
//! hand-tuned stream to a naive legal baseline ([`detune`]) and then explores
//! the schedule space with greedy per-region stall tightening followed by
//! simulated annealing, using an externally supplied objective (the cycle
//! simulator, via `gpusim::BatchTimer` in the `bench` tuner binary).
//!
//! Everything a move may produce is gated by a two-level **legality oracle**:
//!
//! 1. a *semantic dependence check* ([`must_precede`]) for reorders —
//!    register RAW/WAR/WAW including wide destinations, predicate defs/uses
//!    (which `Op::dst_regs`/`Op::src_regs` deliberately exclude),
//!    conservative per-address-space memory ordering, and scoreboard
//!    producer/consumer pairing; control flow (`BRA`/`EXIT`/`BAR.SYNC`)
//!    never moves;
//! 2. the whole-stream schedule lint ([`crate::lint::lint`]) — every
//!    candidate handed to the objective lints **clean**, with no repair, so
//!    [`crate::lint::fix_schedule_marked`] is a fixpoint on it (pinned by
//!    `sass/tests/lint_properties.rs`).
//!
//! Moves only touch control codes and intra-block order; no instruction is
//! ever inserted or removed, so region markers, register budget and the
//! functional meaning of the stream are invariant. A dependence-legal
//! reorder cannot even change rounding: any pair the oracle allows to swap
//! shares no registers, so every FFMA accumulation chain keeps its order.

use crate::ctrl::Ctrl;
use crate::isa::{Instruction, MemSpace, Op};
use crate::lint::{block_leaders, fixed_latency, lint};
use crate::reg::Reg;
use tensor::XorShiftRng;

// ---- naive baseline ---------------------------------------------------------

/// Degrade a schedule to the conservative naive-legal baseline the tuner
/// starts from: every fixed-latency producer stalls for its full result
/// latency (as an unscheduled compiler would), all operand-reuse flags are
/// dropped, and every yield flag is set. Scoreboard structure (write/read
/// barriers and wait masks) is kept — allocating scoreboards is the
/// assembler's job, not the scheduler's. Stalls only ever go *up*, so a
/// lint-clean stream stays lint-clean, and nothing here has functional
/// meaning: instruction count, registers and results are unchanged.
pub fn detune(insts: &mut [Instruction]) {
    for inst in insts {
        if let Some(lat) = fixed_latency(&inst.op) {
            inst.ctrl.stall = inst.ctrl.stall.max(lat.min(15) as u8);
        }
        inst.ctrl.reuse = 0;
        inst.ctrl.yield_flag = true;
    }
}

// ---- semantic dependence oracle ---------------------------------------------

/// Read/write footprint of one instruction over the register file, the
/// predicate file and the two memory spaces. 256-bit register sets keep the
/// pairwise test branch-free.
#[derive(Clone, Copy, Default)]
struct Effects {
    reg_read: [u64; 4],
    reg_write: [u64; 4],
    /// Predicate bits 0–6 (`PT` never appears).
    pred_read: u8,
    pred_write: u8,
    /// Bit 0 = shared, bit 1 = global.
    mem_read: u8,
    mem_write: u8,
    /// Control flow / barrier: pinned in place, conflicts with everything.
    fixed: bool,
}

fn set_reg(s: &mut [u64; 4], r: Reg) {
    if !r.is_rz() {
        s[(r.0 >> 6) as usize] |= 1 << (r.0 & 63);
    }
}

fn overlap(a: &[u64; 4], b: &[u64; 4]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

fn mem_bit(space: MemSpace) -> u8 {
    match space {
        MemSpace::Shared => 1,
        MemSpace::Global => 2,
    }
}

fn effects(inst: &Instruction) -> Effects {
    let mut e = Effects::default();
    for (_, r) in inst.op.src_regs() {
        set_reg(&mut e.reg_read, r);
    }
    if let Some((d, n)) = inst.op.dst_regs() {
        for j in 0..n {
            set_reg(&mut e.reg_write, d.offset(j));
        }
    }
    // Predicate defs/uses are not part of dst_regs/src_regs (those describe
    // the *register file* for bank and scoreboard analysis) — handle them
    // here so guarded code and the P2R/R2P idiom reorder safely.
    if !inst.guard.pred.is_pt() {
        e.pred_read |= 1 << inst.guard.pred.0;
    }
    match inst.op {
        Op::Fsetp { p, combine, .. } => {
            e.pred_write |= 1 << p.0;
            if !combine.pred.is_pt() {
                e.pred_read |= 1 << combine.pred.0;
            }
        }
        Op::Isetp { p, combine, .. } => {
            e.pred_write |= 1 << p.0;
            if !combine.pred.is_pt() {
                e.pred_read |= 1 << combine.pred.0;
            }
        }
        Op::Sel { p, .. } if !p.pred.is_pt() => e.pred_read |= 1 << p.pred.0,
        Op::R2p { mask, .. } => e.pred_write |= (mask as u8) & 0x7f,
        Op::P2r { .. } => e.pred_read |= 0x7f,
        Op::Ld { space, .. } => e.mem_read |= mem_bit(space),
        Op::St { space, .. } => e.mem_write |= mem_bit(space),
        Op::Bra { .. } | Op::Exit | Op::BarSync => e.fixed = true,
        _ => {}
    }
    e
}

/// Scoreboards this control word signals (write or read barrier).
fn sb_signals(c: &Ctrl) -> u8 {
    let mut m = 0u8;
    if let Some(b) = c.write_bar {
        m |= 1 << b;
    }
    if let Some(b) = c.read_bar {
        m |= 1 << b;
    }
    m
}

/// Semantic dependence test: must `a` stay before `b` when they are
/// adjacent in program order? Conservative in every direction:
///
/// * register RAW / WAR / WAW (wide destinations and pairs included),
/// * predicate RAW / WAR / WAW (guards, `SETP` combine inputs, `SEL`
///   selectors, `P2R`/`R2P` as whole-file accesses),
/// * memory ordering per address space (loads commute, everything else
///   keeps order; cross-space accesses are independent),
/// * scoreboard structure: a signal and a wait on the same scoreboard keep
///   their order, as do two signals of the same scoreboard,
/// * control flow and barriers never move.
pub fn must_precede(a: &Instruction, b: &Instruction) -> bool {
    let ea = effects(a);
    let eb = effects(b);
    if ea.fixed || eb.fixed {
        return true;
    }
    if overlap(&ea.reg_write, &eb.reg_read)
        || overlap(&ea.reg_write, &eb.reg_write)
        || overlap(&ea.reg_read, &eb.reg_write)
    {
        return true;
    }
    if ea.pred_write & (eb.pred_read | eb.pred_write) != 0 || ea.pred_read & eb.pred_write != 0 {
        return true;
    }
    if ea.mem_write & (eb.mem_read | eb.mem_write) != 0 || ea.mem_read & eb.mem_write != 0 {
        return true;
    }
    let (sig_a, sig_b) = (sb_signals(&a.ctrl), sb_signals(&b.ctrl));
    sig_a & b.ctrl.wait_mask != 0 || a.ctrl.wait_mask & sig_b != 0 || sig_a & sig_b != 0
}

// ---- block helpers ----------------------------------------------------------

/// Bounds `[start, end)` of the basic block containing `pc`.
fn block_of(leaders: &[bool], pc: usize) -> (usize, usize) {
    let mut s = pc;
    while s > 0 && !leaders[s] {
        s -= 1;
    }
    let mut e = pc + 1;
    while e < leaders.len() && !leaders[e] {
        e += 1;
    }
    (s, e)
}

/// Lint one block in isolation. The slice is copied and any branch target is
/// pointed past the end so the linter's leader computation cannot split the
/// block at a coincidental in-slice index (a block contains at most one
/// trailing `BRA`, whose register effects are nil).
fn block_clean(insts: &[Instruction], start: usize, end: usize) -> bool {
    let mut scratch: Vec<Instruction> = insts[start..end].to_vec();
    let n = scratch.len() as u32;
    for inst in &mut scratch {
        if let Op::Bra { target } = &mut inst.op {
            *target = n;
        }
    }
    lint(&scratch).is_empty()
}

/// First source register per operand slot — what a `.reuse` flag latches.
fn slot_first(inst: &Instruction) -> [Option<Reg>; 4] {
    let mut first = [None; 4];
    for (slot, r) in inst.op.src_regs() {
        let f = &mut first[slot as usize];
        if f.is_none() {
            *f = Some(r);
        }
    }
    first
}

// ---- moves ------------------------------------------------------------------

/// The kinds of schedule move the tuner searches over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveKind {
    /// Lower a stall count by one (floor 1).
    TightenStall,
    /// Raise a stall count by one (escape hatch for the annealer).
    RelaxStall,
    /// Set an operand-reuse flag the next instruction can consume.
    SetReuse,
    /// Drop one reuse flag.
    ClearReuse,
    /// Set the yield flag (stay on this warp; enables reuse latching).
    SetYield,
    /// Clear the yield flag (prefer switching warps).
    ClearYield,
    /// Move a scoreboard signal to a free slot and extend dependent waits.
    ReassignBar,
    /// Swap two adjacent, independent instructions within a block.
    SwapDown,
}

impl MoveKind {
    pub const ALL: [MoveKind; 8] = [
        MoveKind::TightenStall,
        MoveKind::RelaxStall,
        MoveKind::SetReuse,
        MoveKind::ClearReuse,
        MoveKind::SetYield,
        MoveKind::ClearYield,
        MoveKind::ReassignBar,
        MoveKind::SwapDown,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MoveKind::TightenStall => "tighten_stall",
            MoveKind::RelaxStall => "relax_stall",
            MoveKind::SetReuse => "set_reuse",
            MoveKind::ClearReuse => "clear_reuse",
            MoveKind::SetYield => "set_yield",
            MoveKind::ClearYield => "clear_yield",
            MoveKind::ReassignBar => "reassign_bar",
            MoveKind::SwapDown => "swap",
        }
    }

    /// The family this kind belongs to for policy purposes.
    pub fn family(self) -> MoveFamily {
        match self {
            MoveKind::TightenStall | MoveKind::RelaxStall => MoveFamily::Stall,
            MoveKind::SetReuse | MoveKind::ClearReuse => MoveFamily::Reuse,
            MoveKind::SetYield | MoveKind::ClearYield => MoveFamily::Yield,
            MoveKind::ReassignBar => MoveFamily::Barrier,
            MoveKind::SwapDown => MoveFamily::Reorder,
        }
    }
}

/// The five move families the adaptive policy reasons over. Kinds within a
/// family share an acceptance-rate estimate (tighten/relax are two arms of
/// the same knob, not independent behaviours).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveFamily {
    Stall,
    Reuse,
    Yield,
    Barrier,
    Reorder,
}

impl MoveFamily {
    pub const COUNT: usize = 5;
    pub const ALL: [MoveFamily; 5] = [
        MoveFamily::Stall,
        MoveFamily::Reuse,
        MoveFamily::Yield,
        MoveFamily::Barrier,
        MoveFamily::Reorder,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MoveFamily::Stall => "stall",
            MoveFamily::Reuse => "reuse",
            MoveFamily::Yield => "yield",
            MoveFamily::Barrier => "barrier",
            MoveFamily::Reorder => "reorder",
        }
    }

    fn index(self) -> usize {
        match self {
            MoveFamily::Stall => 0,
            MoveFamily::Reuse => 1,
            MoveFamily::Yield => 2,
            MoveFamily::Barrier => 3,
            MoveFamily::Reorder => 4,
        }
    }
}

/// Relative priority of each move family, normally derived from the
/// bottleneck classification (`perfmodel::move_weights`): a latency-bound
/// region wants stall work, a bank-conflicted compute-bound region wants
/// reuse flags, and so on. Weights are relative; zero disables a family.
#[derive(Clone, Copy, Debug)]
pub struct MoveWeights {
    pub stall: f64,
    pub reuse: f64,
    pub yld: f64,
    pub barrier: f64,
    pub reorder: f64,
}

impl Default for MoveWeights {
    fn default() -> Self {
        MoveWeights {
            stall: 1.0,
            reuse: 1.0,
            yld: 1.0,
            barrier: 1.0,
            reorder: 1.0,
        }
    }
}

impl MoveWeights {
    /// Weight of one family.
    pub fn family(&self, f: MoveFamily) -> f64 {
        match f {
            MoveFamily::Stall => self.stall,
            MoveFamily::Reuse => self.reuse,
            MoveFamily::Yield => self.yld,
            MoveFamily::Barrier => self.barrier,
            MoveFamily::Reorder => self.reorder,
        }
    }
}

// ---- adaptive proposal policy ----------------------------------------------

/// Exponential-moving-average coefficient for acceptance-rate tracking.
const ADAPT_ALPHA: f64 = 0.1;
/// Exploration floor: a cell whose acceptance rate decays to zero still
/// gets proposed with `FLOOR / (FLOOR + 1)` of its prior weight, so the
/// policy never starves a family the cooling schedule might revive.
const ADAPT_FLOOR: f64 = 0.25;
/// Optimistic initial acceptance estimate (before any observations).
const ADAPT_INIT: f64 = 0.5;

/// One (region × family) proposal cell: a static prior (bottleneck- and
/// profile-derived) times a learned acceptance-rate multiplier.
#[derive(Clone, Copy, Debug)]
struct AdaptCell {
    prior: f64,
    rate: f64,
}

/// Per-region × per-family bandit-style proposal policy. Each anneal
/// proposal draws a cell with probability proportional to
/// `prior(r, f) · (FLOOR + rate(r, f))`, where `rate` is an EMA of that
/// cell's acceptance outcomes (illegal / inapplicable / failed proposals
/// count as rejections — budget spent is budget spent). Updates depend only
/// on the owning chain's own outcomes, so the policy is deterministic for a
/// fixed seed regardless of thread count.
#[derive(Clone, Debug)]
pub struct AdaptivePolicy {
    cells: Vec<[AdaptCell; MoveFamily::COUNT]>,
}

impl AdaptivePolicy {
    /// Build priors from per-region family weights scaled by region weight.
    pub fn new(region_weights: &[f64], family_weights: &[MoveWeights]) -> AdaptivePolicy {
        assert_eq!(region_weights.len(), family_weights.len());
        let cells = region_weights
            .iter()
            .zip(family_weights)
            .map(|(&rw, fw)| {
                let mut row = [AdaptCell {
                    prior: 0.0,
                    rate: ADAPT_INIT,
                }; MoveFamily::COUNT];
                for f in MoveFamily::ALL {
                    row[f.index()].prior = rw.max(0.0) * fw.family(f).max(0.0);
                }
                row
            })
            .collect();
        AdaptivePolicy { cells }
    }

    fn weight(&self, r: usize, f: usize) -> f64 {
        let c = &self.cells[r][f];
        c.prior * (ADAPT_FLOOR + c.rate)
    }

    /// Draw a (region, family) cell by roulette over current cell weights.
    fn pick(&self, rng: &mut XorShiftRng) -> (usize, MoveFamily) {
        let total: f64 = (0..self.cells.len())
            .flat_map(|r| (0..MoveFamily::COUNT).map(move |f| (r, f)))
            .map(|(r, f)| self.weight(r, f))
            .sum();
        if total <= 0.0 {
            let r = rng.gen_index(self.cells.len());
            return (r, MoveFamily::ALL[rng.gen_index(MoveFamily::COUNT)]);
        }
        let mut x = rng.next_f32() as f64 * total;
        for r in 0..self.cells.len() {
            for f in MoveFamily::ALL {
                x -= self.weight(r, f.index());
                if x <= 0.0 {
                    return (r, f);
                }
            }
        }
        (self.cells.len() - 1, MoveFamily::Reorder)
    }

    fn update(&mut self, r: usize, f: MoveFamily, accepted: bool) {
        let c = &mut self.cells[r][f.index()];
        let x = if accepted { 1.0 } else { 0.0 };
        c.rate += ADAPT_ALPHA * (x - c.rate);
    }

    /// Learned acceptance rates, one row per region in `MoveFamily::ALL`
    /// order (for reporting).
    pub fn rates(&self) -> Vec<[f64; MoveFamily::COUNT]> {
        self.cells
            .iter()
            .map(|row| {
                let mut out = [0.0; MoveFamily::COUNT];
                for f in 0..MoveFamily::COUNT {
                    out[f] = row[f].rate;
                }
                out
            })
            .collect()
    }
}

/// Trajectory retention policy (see [`Tuner::trajectory`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrajectoryMode {
    /// Record every strict best-so-far improvement plus every Nth accepted
    /// move — enough to plot convergence without tracking-file bloat.
    Trimmed(u64),
    /// Record every accepted move.
    Full,
}

impl Default for TrajectoryMode {
    fn default() -> Self {
        TrajectoryMode::Trimmed(16)
    }
}

/// Apply one move at `pc`, mutating `insts`/`perm` in place. Returns `false`
/// (stream untouched except for an undone probe) when the move is
/// inapplicable or fails the *semantic* legality checks; the caller must
/// still verify the whole stream lints clean before accepting.
fn apply_move(
    insts: &mut [Instruction],
    perm: &mut [u32],
    leaders: &[bool],
    kind: MoveKind,
    pc: usize,
    rng: &mut XorShiftRng,
) -> bool {
    match kind {
        MoveKind::TightenStall => {
            if insts[pc].ctrl.stall < 2 {
                return false;
            }
            insts[pc].ctrl.stall -= 1;
            true
        }
        MoveKind::RelaxStall => {
            if insts[pc].ctrl.stall >= 15 {
                return false;
            }
            insts[pc].ctrl.stall += 1;
            true
        }
        MoveKind::SetYield => {
            if insts[pc].ctrl.yield_flag {
                return false;
            }
            insts[pc].ctrl.yield_flag = true;
            true
        }
        MoveKind::ClearYield => {
            if !insts[pc].ctrl.yield_flag {
                return false;
            }
            insts[pc].ctrl.yield_flag = false;
            true
        }
        MoveKind::ClearReuse => {
            let reuse = insts[pc].ctrl.reuse;
            if reuse == 0 {
                return false;
            }
            let set: Vec<u8> = (0..4).filter(|s| reuse & (1 << s) != 0).collect();
            insts[pc].ctrl.reuse &= !(1 << set[rng.gen_index(set.len())]);
            true
        }
        MoveKind::SetReuse => {
            // Hardware-strict: flag slot `s` of `pc` only when the *next*
            // instruction reads the same register in the same slot, `pc`
            // itself does not overwrite it (the cache would hold the stale
            // pre-write value on silicon), and the yield flag is set (a
            // cleared flag disables the latch, §5.1.4).
            if pc + 1 >= insts.len() || leaders[pc + 1] || !insts[pc].ctrl.yield_flag {
                return false;
            }
            let here = slot_first(&insts[pc]);
            let next = slot_first(&insts[pc + 1]);
            let dst = {
                let mut d = [0u64; 4];
                if let Some((r, n)) = insts[pc].op.dst_regs() {
                    for j in 0..n {
                        set_reg(&mut d, r.offset(j));
                    }
                }
                d
            };
            let cands: Vec<u8> = (0..4u8)
                .filter(|&s| {
                    insts[pc].ctrl.reuse & (1 << s) == 0
                        && here[s as usize].is_some()
                        && here[s as usize] == next[s as usize]
                        && {
                            let mut probe = [0u64; 4];
                            set_reg(&mut probe, here[s as usize].unwrap());
                            !overlap(&dst, &probe)
                        }
                })
                .collect();
            if cands.is_empty() {
                return false;
            }
            insts[pc].ctrl.reuse |= 1 << cands[rng.gen_index(cands.len())];
            true
        }
        MoveKind::SwapDown => {
            if pc + 1 >= insts.len() || leaders[pc + 1] {
                return false;
            }
            if must_precede(&insts[pc], &insts[pc + 1]) {
                return false;
            }
            insts.swap(pc, pc + 1);
            perm.swap(pc, pc + 1);
            true
        }
        MoveKind::ReassignBar => {
            let (bs, be) = block_of(leaders, pc);
            let ctrl = insts[pc].ctrl;
            // Pick which signal to move: prefer the write barrier, fall back
            // to the read barrier.
            let (is_write, b) = match (ctrl.write_bar, ctrl.read_bar) {
                (Some(w), Some(r)) => {
                    if rng.gen_index(2) == 0 {
                        (true, w)
                    } else {
                        (false, r)
                    }
                }
                (Some(w), None) => (true, w),
                (None, Some(r)) => (false, r),
                (None, None) => return false,
            };
            // A destination scoreboard nothing else in the block touches.
            let mut used: u8 = ctrl.wait_mask | sb_signals(&ctrl);
            for (j, inst) in insts[bs..be].iter().enumerate() {
                if bs + j != pc {
                    used |= sb_signals(&inst.ctrl) | inst.ctrl.wait_mask;
                }
            }
            let free: Vec<u8> = (0..6u8).filter(|&x| used & (1 << x) == 0).collect();
            if free.is_empty() {
                return false;
            }
            let nb = free[rng.gen_index(free.len())];
            // Registers the old barrier protected: results for a write
            // barrier, consumed sources for a read barrier.
            let mut prot = [0u64; 4];
            if is_write {
                if let Some((d, n)) = insts[pc].op.dst_regs() {
                    for j in 0..n {
                        set_reg(&mut prot, d.offset(j));
                    }
                }
                insts[pc].ctrl.write_bar = Some(nb);
            } else {
                for (_, r) in insts[pc].op.src_regs() {
                    set_reg(&mut prot, r);
                }
                insts[pc].ctrl.read_bar = Some(nb);
            }
            // Re-point dependent waits in the rest of the block. The old bit
            // is kept (other producers may still signal it); extra waits are
            // legal, missing ones are what the lint gate would catch.
            for inst in insts[pc + 1..be].iter_mut() {
                if inst.ctrl.wait_mask & (1 << b) == 0 {
                    continue;
                }
                let ej = effects(inst);
                let needs = if is_write {
                    overlap(&prot, &ej.reg_read) || overlap(&prot, &ej.reg_write)
                } else {
                    overlap(&prot, &ej.reg_write)
                };
                if needs {
                    inst.ctrl.wait_mask |= 1 << nb;
                }
            }
            true
        }
    }
}

// ---- search driver ----------------------------------------------------------

/// A named instruction-index range the tuner biases its moves over
/// (mirrors `gpusim::Region`, which `sass` cannot depend on).
#[derive(Clone, Debug)]
pub struct TuneRegion {
    pub name: String,
    pub start: u32,
    pub end: u32,
}

/// One accepted move along the search trajectory.
#[derive(Clone, Debug)]
pub struct TrajPoint {
    /// Monotone step counter (greedy bundles and anneal steps share it).
    pub step: u64,
    pub kind: MoveKind,
    pub pc: u32,
    /// Index into the tuner's region list.
    pub region: usize,
    /// Objective value after accepting the move.
    pub cycles: u64,
}

/// Search counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TuneStats {
    /// Anneal moves proposed.
    pub proposed: u64,
    /// Statically inapplicable proposals (move generator refused).
    pub inapplicable: u64,
    /// Proposals that applied but failed the whole-stream lint gate.
    pub illegal: u64,
    /// Objective evaluations requested (greedy bundles included).
    pub evals: u64,
    /// Objective evaluations that returned `None`.
    pub failed: u64,
    /// Accepted anneal moves.
    pub accepted: u64,
}

/// The annealing schedule-tuner. Owns the current and best-so-far candidate;
/// the objective is a caller-supplied closure from `(insts, perm)` to a cost
/// in simulated cycles (`None` = evaluation failed, proposal dropped), where
/// `perm[i]` names the baseline instruction now at position `i` — the handle
/// `gpusim::BatchTimer` uses to reuse decoded descriptors across candidates.
pub struct Tuner {
    /// Current candidate stream (always lints clean).
    pub insts: Vec<Instruction>,
    /// Position map: `perm[i]` = baseline index of `insts[i]`.
    pub perm: Vec<u32>,
    regions: Vec<TuneRegion>,
    leaders: Vec<bool>,
    rng: XorShiftRng,
    /// Move-family weights (see [`MoveWeights`]) — the prior for every
    /// region unless [`Tuner::region_priors`] is set.
    pub weights: MoveWeights,
    /// Per-region weights, same order as the region list.
    pub region_weights: Vec<f64>,
    /// Optional per-region family priors (same order as the region list),
    /// e.g. derived from profiled stall shares
    /// (`perfmodel::tunehint::region_move_weights`). Overrides `weights`.
    pub region_priors: Option<Vec<MoveWeights>>,
    /// The adaptive proposal policy; (re)built from the priors at
    /// [`Tuner::start_anneal`].
    pub policy: Option<AdaptivePolicy>,
    pub cur_cost: u64,
    pub best_insts: Vec<Instruction>,
    pub best_perm: Vec<u32>,
    pub best_cost: u64,
    pub stats: TuneStats,
    /// Accepted moves, retained per [`Tuner::traj_mode`].
    pub trajectory: Vec<TrajPoint>,
    /// Trajectory retention policy.
    pub traj_mode: TrajectoryMode,
    /// When nonzero, snapshot the current stream every N accepted moves
    /// (consumed by the differential functional tests).
    pub snapshot_every: u64,
    pub snapshots: Vec<Vec<Instruction>>,
    steps: u64,
    temp: f64,
    cooling: f64,
}

impl Tuner {
    /// Build a tuner over `base`, which must already lint clean — the tuner
    /// preserves that invariant for every candidate it evaluates.
    pub fn new(base: Vec<Instruction>, regions: Vec<TuneRegion>, seed: u64) -> Tuner {
        assert!(
            lint(&base).is_empty(),
            "tuner baseline must lint clean (run fix_schedule first)"
        );
        let leaders = block_leaders(&base);
        let n = base.len();
        let regions = if regions.is_empty() {
            vec![TuneRegion {
                name: "kernel".into(),
                start: 0,
                end: n as u32,
            }]
        } else {
            regions
        };
        let region_weights = vec![1.0; regions.len()];
        Tuner {
            insts: base.clone(),
            perm: (0..n as u32).collect(),
            regions,
            leaders,
            rng: XorShiftRng::new(seed),
            weights: MoveWeights::default(),
            region_weights,
            region_priors: None,
            policy: None,
            cur_cost: u64::MAX,
            best_insts: base,
            best_perm: (0..n as u32).collect(),
            best_cost: u64::MAX,
            stats: TuneStats::default(),
            trajectory: Vec::new(),
            traj_mode: TrajectoryMode::default(),
            snapshot_every: 0,
            snapshots: Vec::new(),
            steps: 0,
            temp: 0.0,
            cooling: 1.0,
        }
    }

    pub fn regions(&self) -> &[TuneRegion] {
        &self.regions
    }

    /// Evaluate the starting stream and seed current/best costs.
    pub fn prime<F>(&mut self, objective: &mut F) -> u64
    where
        F: FnMut(&[Instruction], &[u32]) -> Option<u64>,
    {
        self.stats.evals += 1;
        let c = objective(&self.insts, &self.perm).expect("baseline objective evaluation failed");
        self.cur_cost = c;
        self.best_cost = c;
        self.best_insts = self.insts.clone();
        self.best_perm = self.perm.clone();
        c
    }

    fn note_best(&mut self) {
        if self.cur_cost < self.best_cost {
            self.best_cost = self.cur_cost;
            self.best_insts = self.insts.clone();
            self.best_perm = self.perm.clone();
        }
    }

    /// Record an accepted move. Called after `cur_cost` is updated but
    /// before `note_best`, so `cur_cost < best_cost` identifies a strict
    /// best-so-far improvement — those are always kept; other accepted moves
    /// are subsampled per [`TrajectoryMode`].
    fn record(&mut self, kind: MoveKind, pc: u32, region: usize) {
        let keep = match self.traj_mode {
            TrajectoryMode::Full => true,
            TrajectoryMode::Trimmed(n) => {
                self.cur_cost < self.best_cost || self.stats.accepted.is_multiple_of(n.max(1))
            }
        };
        if keep {
            self.trajectory.push(TrajPoint {
                step: self.steps,
                kind,
                pc,
                region,
                cycles: self.cur_cost,
            });
        }
        if self.snapshot_every > 0 && self.stats.accepted.is_multiple_of(self.snapshot_every) {
            self.snapshots.push(self.insts.clone());
        }
    }

    /// Greedy per-region pass: lower every stall in each region to the
    /// minimum the block-local hazard analysis allows and keep the bundle
    /// when the objective improves. Regions are visited in weight order
    /// (hottest first), one evaluation per region bundle. Returns the number
    /// of adopted bundles.
    pub fn greedy_tighten<F>(&mut self, objective: &mut F) -> u32
    where
        F: FnMut(&[Instruction], &[u32]) -> Option<u64>,
    {
        assert!(self.cur_cost != u64::MAX, "prime() the tuner first");
        let mut order: Vec<usize> = (0..self.regions.len()).collect();
        order.sort_by(|&a, &b| {
            self.region_weights[b]
                .partial_cmp(&self.region_weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut adopted = 0u32;
        for r in order {
            let lo = self.regions[r].start as usize;
            let hi = (self.regions[r].end as usize).min(self.insts.len());
            let mut cand = self.insts.clone();
            let mut changed = false;
            for pc in lo..hi {
                while cand[pc].ctrl.stall >= 2 {
                    cand[pc].ctrl.stall -= 1;
                    let (bs, be) = block_of(&self.leaders, pc);
                    if block_clean(&cand, bs, be) {
                        changed = true;
                    } else {
                        cand[pc].ctrl.stall += 1;
                        break;
                    }
                }
            }
            if !changed {
                continue;
            }
            debug_assert!(lint(&cand).is_empty());
            self.stats.evals += 1;
            self.steps += 1;
            let Some(c) = objective(&cand, &self.perm) else {
                self.stats.failed += 1;
                continue;
            };
            if c < self.cur_cost {
                self.insts = cand;
                self.cur_cost = c;
                adopted += 1;
                self.record(MoveKind::TightenStall, lo as u32, r);
                self.note_best();
            }
        }
        adopted
    }

    /// Initialise the annealing temperature for a run of `budget` steps:
    /// starts at 1% of the current cost and cools geometrically to ~1e-5.
    /// Also builds the adaptive proposal policy from the current priors
    /// (`weights` / `region_weights` / `region_priors`) unless one is
    /// already installed.
    pub fn start_anneal(&mut self, budget: u64) {
        let scale = self.cur_cost.max(1) as f64;
        self.temp = scale * 0.01;
        let floor = scale * 1e-5;
        self.cooling = if budget > 0 {
            (floor / self.temp).powf(1.0 / budget as f64)
        } else {
            1.0
        };
        if self.policy.is_none() {
            let fams: Vec<MoveWeights> = match &self.region_priors {
                Some(p) => {
                    assert_eq!(p.len(), self.regions.len());
                    p.clone()
                }
                None => vec![self.weights; self.regions.len()],
            };
            self.policy = Some(AdaptivePolicy::new(&self.region_weights, &fams));
        }
    }

    /// Choose a concrete kind within a family. Intra-family ratios are
    /// fixed (the improving arm is favored 80/20; yield is symmetric) —
    /// cross-family balance is the adaptive policy's job.
    fn pick_kind_in(&mut self, fam: MoveFamily) -> MoveKind {
        match fam {
            MoveFamily::Stall => {
                if (self.rng.next_f32() as f64) < 0.8 {
                    MoveKind::TightenStall
                } else {
                    MoveKind::RelaxStall
                }
            }
            MoveFamily::Reuse => {
                if (self.rng.next_f32() as f64) < 0.8 {
                    MoveKind::SetReuse
                } else {
                    MoveKind::ClearReuse
                }
            }
            MoveFamily::Yield => {
                if (self.rng.next_f32() as f64) < 0.5 {
                    MoveKind::SetYield
                } else {
                    MoveKind::ClearYield
                }
            }
            MoveFamily::Barrier => MoveKind::ReassignBar,
            MoveFamily::Reorder => MoveKind::SwapDown,
        }
    }

    /// One simulated-annealing step: draw a (region, family) cell from the
    /// adaptive policy, propose, legality-gate, evaluate, Metropolis-accept,
    /// and feed the outcome back into the policy. Returns whether the move
    /// was accepted.
    pub fn anneal_step<F>(&mut self, objective: &mut F) -> bool
    where
        F: FnMut(&[Instruction], &[u32]) -> Option<u64>,
    {
        assert!(self.cur_cost != u64::MAX, "prime() the tuner first");
        let mut policy = self.policy.take().expect("start_anneal() the tuner first");
        self.steps += 1;
        self.stats.proposed += 1;

        let (r, fam) = policy.pick(&mut self.rng);
        let span = (self.regions[r].end.saturating_sub(self.regions[r].start)).max(1) as usize;
        let pc = (self.regions[r].start as usize + self.rng.gen_index(span))
            .min(self.insts.len().saturating_sub(1));
        let kind = self.pick_kind_in(fam);

        let mut accepted = false;
        let mut cand = self.insts.clone();
        let mut cperm = self.perm.clone();
        if !apply_move(
            &mut cand,
            &mut cperm,
            &self.leaders,
            kind,
            pc,
            &mut self.rng,
        ) {
            self.stats.inapplicable += 1;
        } else if !lint(&cand).is_empty() {
            self.stats.illegal += 1;
        } else {
            self.stats.evals += 1;
            match objective(&cand, &cperm) {
                None => self.stats.failed += 1,
                Some(c) => {
                    accepted = c <= self.cur_cost || {
                        let d = (c - self.cur_cost) as f64;
                        (self.rng.next_f32() as f64) < (-d / self.temp.max(1e-12)).exp()
                    };
                    if accepted {
                        self.insts = cand;
                        self.perm = cperm;
                        self.cur_cost = c;
                        self.stats.accepted += 1;
                        self.record(kind, pc as u32, r);
                        self.note_best();
                    }
                }
            }
        }
        policy.update(r, fam, accepted);
        self.policy = Some(policy);
        self.temp *= self.cooling;
        accepted
    }

    /// Full search: prime (if needed), greedy per-region tightening, then
    /// `budget` annealing steps.
    pub fn run<F>(&mut self, budget: u64, objective: &mut F)
    where
        F: FnMut(&[Instruction], &[u32]) -> Option<u64>,
    {
        if self.cur_cost == u64::MAX {
            self.prime(objective);
        }
        self.greedy_tighten(objective);
        self.start_anneal(budget);
        for _ in 0..budget {
            self.anneal_step(objective);
        }
        debug_assert!(lint(&self.best_insts).is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn program() -> Vec<Instruction> {
        assemble(
            r#"
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  SHF.L.U32 R1, R0, 0x4, RZ;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R0, 0x10, R10;
    --:-:0:-:2  LDG.E.128 R4, [R2];
    01:-:-:Y:1  FFMA R8, R4, R5, R6;
    --:-:-:Y:1  FFMA R9, R4, R5, R7;
    --:-:-:Y:4  FADD R12, R8, R9;
    --:-:-:Y:4  STG.E [R2], R12;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap()
        .insts
    }

    #[test]
    fn detune_keeps_streams_clean_and_sized() {
        let mut insts = program();
        let n = insts.len();
        detune(&mut insts);
        assert_eq!(insts.len(), n);
        assert!(lint(&insts).is_empty());
        // Fixed-latency producers now stall for their full latency.
        assert!(insts
            .iter()
            .all(|i| fixed_latency(&i.op).is_none_or(|l| i.ctrl.stall as u64 >= l.min(15))));
        assert!(insts.iter().all(|i| i.ctrl.reuse == 0 && i.ctrl.yield_flag));
    }

    #[test]
    fn dependence_oracle_basics() {
        let insts = program();
        // FFMA R8 <- R4 after LDG R4..R7: RAW.
        assert!(must_precede(&insts[5], &insts[6]));
        // The two FFMAs share only sources: independent.
        assert!(!must_precede(&insts[6], &insts[7]));
        // FADD reads both FFMA results: RAW both ways.
        assert!(must_precede(&insts[6], &insts[8]));
        assert!(must_precede(&insts[7], &insts[8]));
        // EXIT is pinned.
        assert!(must_precede(&insts[9], &insts[10]));
    }

    #[test]
    fn predicates_are_dependencies() {
        let m = assemble(
            r#"
    --:-:-:Y:4  ISETP.GT.AND P0, PT, R5, 0, PT;
    --:-:-:Y:1  @P0 MOV R1, 0x1;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        assert!(must_precede(&m.insts[0], &m.insts[1]));
    }

    #[test]
    fn scoreboard_pairs_are_dependencies() {
        let m = assemble(
            r#"
    --:-:0:-:2  LDG.E R4, [R2];
    --:-:1:-:2  LDG.E R8, [R6];
    01:-:-:Y:4  FADD R5, R10, R11;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        // Producer of scoreboard 0 and its waiter keep order even though
        // the waiter touches none of the load's registers.
        assert!(must_precede(&m.insts[0], &m.insts[2]));
        // Independent loads signalling different scoreboards with disjoint
        // registers may commute.
        assert!(!must_precede(&m.insts[0], &m.insts[1]));
    }

    /// Mechanical end-to-end: detune a stream, tune it with an issue-time
    /// proxy objective, and watch the proxy recover.
    #[test]
    fn tuner_recovers_static_cost() {
        let hand = program();
        let mut naive = hand.clone();
        detune(&mut naive);
        let cost = |insts: &[Instruction], _perm: &[u32]| -> Option<u64> {
            Some(insts.iter().map(|i| i.ctrl.stall.max(1) as u64).sum())
        };
        let hand_cost = cost(&hand, &[]).unwrap();
        let mut tuner = Tuner::new(naive, Vec::new(), 42);
        tuner.prime(&mut { cost });
        let naive_cost = tuner.cur_cost;
        assert!(naive_cost > hand_cost);
        tuner.run(200, &mut { cost });
        assert!(lint(&tuner.best_insts).is_empty());
        assert!(
            tuner.best_cost <= hand_cost,
            "tuned {} vs hand {hand_cost}",
            tuner.best_cost
        );
        assert!(!tuner.trajectory.is_empty());
    }

    #[test]
    fn swaps_preserve_the_multiset_and_perm() {
        let mut base = program();
        detune(&mut base);
        let mut tuner = Tuner::new(base, Vec::new(), 7);
        let base = tuner.insts.clone();
        let mut obj = |_: &[Instruction], _: &[u32]| Some(1u64);
        tuner.prime(&mut obj);
        tuner.start_anneal(64);
        for _ in 0..64 {
            tuner.anneal_step(&mut obj);
        }
        assert_eq!(tuner.insts.len(), base.len());
        for (i, &p) in tuner.perm.iter().enumerate() {
            assert_eq!(tuner.insts[i].op, base[p as usize].op, "perm broken at {i}");
        }
        let mut sorted: Vec<u32> = tuner.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..base.len() as u32).collect::<Vec<_>>());
    }
}
