//! Island-model parallel annealing: N independent [`Tuner`] chains with
//! periodic best-candidate migration.
//!
//! Each island owns a full annealing chain (its own RNG, adaptive policy and
//! temperature) seeded from a different ancestry — the naive detuned
//! baseline, the hand schedule, or greedy-tightened variants of either — so
//! the chains start in different basins of the schedule space. Chains run
//! for an epoch of annealing steps, then synchronize: island `i` adopts the
//! best-so-far candidate of island `i-1 (mod N)` (ring topology) whenever
//! that candidate strictly beats island `i`'s *current* cost. Migration
//! moves the chain's current point, never its temperature or learned policy,
//! so a migrant is refined by the recipient's own move distribution.
//!
//! **Determinism.** The outcome is a pure function of `(hand stream,
//! regions, priors, config)` — in particular it is byte-identical for any
//! `--jobs`, the same contract `bench::sweep` and `gpusim::device_sim`
//! honor. The ingredients: per-island RNG seeds are derived from the master
//! seed by island index (splitmix), each chain consumes only its own RNG and
//! its own objective, epoch boundaries are full barriers (the scoped worker
//! pool joins before any migration), and migration applies a *snapshot* of
//! donor bests in island-index order, so neither thread scheduling nor
//! adoption order can feed back into any chain.

use crate::isa::Instruction;
use crate::tune::{
    detune, MoveFamily, MoveWeights, TrajPoint, TrajectoryMode, TuneRegion, TuneStats, Tuner,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which schedule an island's chain starts from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedKind {
    /// The naive detuned baseline (full-latency stalls, no reuse, all-yield).
    Detuned,
    /// Detuned, then greedy per-region stall tightening before annealing.
    DetunedGreedy,
    /// The hand schedule as-is.
    Hand,
    /// The hand schedule, greedy-tightened before annealing.
    HandGreedy,
}

impl SeedKind {
    pub fn name(self) -> &'static str {
        match self {
            SeedKind::Detuned => "detuned",
            SeedKind::DetunedGreedy => "detuned+greedy",
            SeedKind::Hand => "hand",
            SeedKind::HandGreedy => "hand+greedy",
        }
    }

    /// Whether this ancestry runs a greedy tightening pass before annealing.
    fn greedy(self) -> bool {
        matches!(self, SeedKind::DetunedGreedy | SeedKind::HandGreedy)
    }

    /// Whether this ancestry starts from the detuned baseline.
    fn detuned(self) -> bool {
        matches!(self, SeedKind::Detuned | SeedKind::DetunedGreedy)
    }

    /// Default lineup for `n` islands: the naive baseline, the hand
    /// schedule, then alternating greedy-tightened ancestries.
    pub fn lineup(n: usize) -> Vec<SeedKind> {
        (0..n)
            .map(|i| match i {
                0 => SeedKind::Detuned,
                1 => SeedKind::Hand,
                i if i % 2 == 0 => SeedKind::DetunedGreedy,
                _ => SeedKind::HandGreedy,
            })
            .collect()
    }
}

/// Move-policy priors shared by every island.
#[derive(Clone, Debug, Default)]
pub struct Priors {
    /// Kernel-level family weights (fallback for every region).
    pub weights: MoveWeights,
    /// Per-region weights (region list order); `None` = uniform.
    pub region_weights: Option<Vec<f64>>,
    /// Per-region family priors (e.g. profiled stall shares via
    /// `perfmodel::tunehint::region_move_weights`); overrides `weights`.
    pub region_priors: Option<Vec<MoveWeights>>,
}

/// Island-run shape. Total annealing budget per island is
/// `epochs × steps_per_epoch` (greedy evaluations ride on top).
#[derive(Clone, Debug)]
pub struct IslandConfig {
    pub islands: usize,
    pub epochs: u64,
    pub steps_per_epoch: u64,
    /// Master seed; per-island seeds are derived by index.
    pub seed: u64,
    /// Worker threads (capped at the island count). Any value yields
    /// byte-identical results.
    pub jobs: usize,
    /// Ancestry per island; empty = [`SeedKind::lineup`].
    pub seeds: Vec<SeedKind>,
    pub traj_mode: TrajectoryMode,
    /// Forwarded to [`Tuner::snapshot_every`] on every island.
    pub snapshot_every: u64,
}

impl IslandConfig {
    pub fn new(islands: usize, epochs: u64, steps_per_epoch: u64, seed: u64) -> IslandConfig {
        IslandConfig {
            islands,
            epochs,
            steps_per_epoch,
            seed,
            jobs: 1,
            seeds: Vec::new(),
            traj_mode: TrajectoryMode::default(),
            snapshot_every: 0,
        }
    }
}

/// Per-island summary (island-index order).
#[derive(Clone, Debug)]
pub struct IslandStat {
    pub island: usize,
    pub seed_kind: SeedKind,
    /// Primed cost of the island's starting stream.
    pub start_cost: u64,
    pub best_cost: u64,
    pub stats: TuneStats,
    /// Learned per-region acceptance rates, [`MoveFamily::ALL`] order.
    pub accept_rates: Vec<[f64; MoveFamily::COUNT]>,
    /// Migrants this island adopted.
    pub migrations_in: u64,
}

/// Result of an island run.
#[derive(Clone, Debug)]
pub struct IslandOutcome {
    pub best_insts: Vec<Instruction>,
    pub best_perm: Vec<u32>,
    pub best_cost: u64,
    /// Index of the island holding the global best (ties → lowest index).
    pub winner: usize,
    pub per_island: Vec<IslandStat>,
    /// Global best cost after each epoch — non-increasing by construction.
    pub best_trace: Vec<u64>,
    /// Counters summed over all islands.
    pub stats: TuneStats,
    /// The winning island's (retention-trimmed) trajectory.
    pub trajectory: Vec<TrajPoint>,
    /// The winning island's snapshots (when `snapshot_every` is set).
    pub snapshots: Vec<Vec<Instruction>>,
}

/// Splitmix-style per-island seed derivation: decorrelates neighbouring
/// island indices for any master seed.
fn derive_seed(master: u64, island: usize) -> u64 {
    let mut z = master ^ 0x9E3779B97F4A7C15u64.wrapping_mul(island as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)).max(1)
}

struct Island<O> {
    tuner: Tuner,
    obj: Option<O>,
    seed_kind: SeedKind,
    start_cost: u64,
    migrations_in: u64,
}

/// Run the island search. `hand` must lint clean (it is the emitter's
/// output); `make_objective(i)` builds island `i`'s private objective —
/// typically a clone of a shared `gpusim::BatchTimer` closed over the same
/// decoded descriptor table. The result is deterministic for a fixed
/// config regardless of `cfg.jobs`.
pub fn run_islands<O, F>(
    hand: &[Instruction],
    regions: &[TuneRegion],
    priors: &Priors,
    cfg: &IslandConfig,
    make_objective: F,
) -> IslandOutcome
where
    F: Fn(usize) -> O + Sync,
    O: FnMut(&[Instruction], &[u32]) -> Option<u64> + Send,
{
    assert!(cfg.islands > 0, "need at least one island");
    let seeds = if cfg.seeds.is_empty() {
        SeedKind::lineup(cfg.islands)
    } else {
        assert_eq!(cfg.seeds.len(), cfg.islands, "one seed kind per island");
        cfg.seeds.clone()
    };
    let total_budget = cfg.epochs.saturating_mul(cfg.steps_per_epoch);

    // Build islands serially in index order.
    let slots: Vec<Mutex<Island<O>>> = seeds
        .iter()
        .enumerate()
        .map(|(i, &sk)| {
            let mut base = hand.to_vec();
            if sk.detuned() {
                detune(&mut base);
            }
            let mut tuner = Tuner::new(base, regions.to_vec(), derive_seed(cfg.seed, i));
            tuner.weights = priors.weights;
            if let Some(rw) = &priors.region_weights {
                tuner.region_weights = rw.clone();
            }
            tuner.region_priors = priors.region_priors.clone();
            tuner.traj_mode = cfg.traj_mode;
            tuner.snapshot_every = cfg.snapshot_every;
            Mutex::new(Island {
                tuner,
                obj: None,
                seed_kind: sk,
                start_cost: 0,
                migrations_in: 0,
            })
        })
        .collect();

    let n = slots.len();
    let mut best_trace = Vec::with_capacity(cfg.epochs as usize);
    for epoch in 0..cfg.epochs {
        // One epoch of independent annealing on the scoped worker pool
        // (sweep-style: atomic cursor hands out island indices; results
        // land in the island's own slot, so completion order is
        // irrelevant).
        let cursor = AtomicUsize::new(0);
        let workers = cfg.jobs.max(1).min(n);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let isl = &mut *slots[i].lock().unwrap();
                    if isl.obj.is_none() {
                        isl.obj = Some(make_objective(i));
                    }
                    let obj = isl.obj.as_mut().unwrap();
                    if epoch == 0 {
                        isl.start_cost = isl.tuner.prime(obj);
                        if isl.seed_kind.greedy() {
                            isl.tuner.greedy_tighten(obj);
                        }
                        isl.tuner.start_anneal(total_budget);
                    }
                    for _ in 0..cfg.steps_per_epoch {
                        isl.tuner.anneal_step(obj);
                    }
                });
            }
        });
        // Barrier reached: snapshot every island's best, then migrate along
        // the ring in island-index order. Donors are snapshots, so the
        // application order cannot feed back within the pass.
        let bests: Vec<(u64, Vec<Instruction>, Vec<u32>)> = slots
            .iter()
            .map(|m| {
                let isl = m.lock().unwrap();
                (
                    isl.tuner.best_cost,
                    isl.tuner.best_insts.clone(),
                    isl.tuner.best_perm.clone(),
                )
            })
            .collect();
        if n > 1 {
            for (i, slot) in slots.iter().enumerate() {
                let (dc, di, dp) = &bests[(i + n - 1) % n];
                let isl = &mut *slot.lock().unwrap();
                if *dc < isl.tuner.cur_cost {
                    isl.tuner.insts = di.clone();
                    isl.tuner.perm = dp.clone();
                    isl.tuner.cur_cost = *dc;
                    isl.migrations_in += 1;
                    if isl.tuner.cur_cost < isl.tuner.best_cost {
                        isl.tuner.best_cost = isl.tuner.cur_cost;
                        isl.tuner.best_insts = isl.tuner.insts.clone();
                        isl.tuner.best_perm = isl.tuner.perm.clone();
                    }
                }
            }
        }
        best_trace.push(bests.iter().map(|(c, _, _)| *c).min().unwrap_or(u64::MAX));
    }

    // Index-ordered merge.
    let mut per_island = Vec::with_capacity(n);
    let mut stats = TuneStats::default();
    let mut winner = 0usize;
    let mut best_cost = u64::MAX;
    let mut best_insts = Vec::new();
    let mut best_perm = Vec::new();
    let mut trajectory = Vec::new();
    let mut snapshots = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let isl = slot.into_inner().unwrap();
        let t = &isl.tuner;
        stats.proposed += t.stats.proposed;
        stats.inapplicable += t.stats.inapplicable;
        stats.illegal += t.stats.illegal;
        stats.evals += t.stats.evals;
        stats.failed += t.stats.failed;
        stats.accepted += t.stats.accepted;
        per_island.push(IslandStat {
            island: i,
            seed_kind: isl.seed_kind,
            start_cost: isl.start_cost,
            best_cost: t.best_cost,
            stats: t.stats,
            accept_rates: t.policy.as_ref().map(|p| p.rates()).unwrap_or_default(),
            migrations_in: isl.migrations_in,
        });
        if t.best_cost < best_cost {
            winner = i;
            best_cost = t.best_cost;
            best_insts = t.best_insts.clone();
            best_perm = t.best_perm.clone();
            trajectory = t.trajectory.clone();
            snapshots = t.snapshots.clone();
        }
    }
    IslandOutcome {
        best_insts,
        best_perm,
        best_cost,
        winner,
        per_island,
        best_trace,
        stats,
        trajectory,
        snapshots,
    }
}
