//! Scheduling-hazard lint.
//!
//! On Volta/Turing "it is the programmer's/compiler's responsibility to
//! prevent data hazards" (§5.1.4): fixed-latency producers must be covered
//! by stall counts, variable-latency producers by scoreboard wait barriers.
//! The functional simulator is forgiving (results are architecturally
//! visible at issue), so a kernel can pass every correctness test while
//! carrying schedules that would corrupt data on silicon. This linter finds
//! those spots statically.
//!
//! Analysis model: a conservative straight-line walk per basic block
//! (blocks end at branches and at branch targets). Within a block it tracks
//!
//! * when each register's pending fixed-latency write lands (in issue-time
//!   cycles accumulated from stall counts),
//! * which scoreboard each register's pending variable-latency write will
//!   signal, and
//! * which scoreboard protects the *sources* of in-flight stores (WAR).
//!
//! Block boundaries reset the tracked state — cross-block hazards are out
//! of scope, matching how hand-written SASS places barriers around loops.

use crate::isa::{Instruction, MemSpace, Op};
use crate::reg::Reg;

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Reading a register before a fixed-latency producer lands.
    RawHazard,
    /// Reading a register written by an in-flight memory op without waiting
    /// on its scoreboard.
    MissingWait,
    /// Overwriting a register an in-flight store still has to read, without
    /// waiting on its read barrier.
    WarHazard,
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Instruction index in the stream.
    pub index: usize,
    pub severity: Severity,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {:?}: {}", self.index, self.severity, self.message)
    }
}

/// Fixed result latencies, cycles (Jia et al. 2018 measurements, rounded).
/// `None` for variable-latency ops (memory, S2R) that signal a scoreboard.
pub fn fixed_latency(op: &Op) -> Option<u64> {
    match op {
        Op::Ffma { .. } | Op::Fadd { .. } | Op::Fmul { .. } => Some(4),
        Op::Hfma2 { .. } | Op::Hadd2 { .. } | Op::Hmul2 { .. } => Some(4),
        Op::Iadd3 { .. }
        | Op::Lea { .. }
        | Op::Lop3 { .. }
        | Op::Shf { .. }
        | Op::Mov { .. }
        | Op::Sel { .. }
        | Op::Imad { .. }
        | Op::ImadHi { .. }
        | Op::ImadWide { .. } => Some(5),
        Op::P2r { .. } => Some(13),
        // S2R is variable on hardware; 25 cycles is a safe static bound.
        Op::S2r { .. } => Some(25),
        _ => None,
    }
}

/// Lint an instruction stream. Returns all findings, in program order.
pub fn lint(insts: &[Instruction]) -> Vec<Diagnostic> {
    use std::collections::{BTreeSet, HashMap};

    // Block leaders: entry, branch targets, and instructions after branches.
    let mut leaders: BTreeSet<usize> = BTreeSet::new();
    leaders.insert(0);
    for (i, inst) in insts.iter().enumerate() {
        if let Op::Bra { target } = inst.op {
            leaders.insert(target as usize);
            leaders.insert(i + 1);
        }
    }

    let mut diags = Vec::new();
    // Pending fixed-latency writes: reg -> cycle when the value lands.
    let mut pending_fixed: HashMap<u8, u64> = HashMap::new();
    // Pending memory writes: reg -> write scoreboard.
    let mut pending_mem: HashMap<u8, u8> = HashMap::new();
    // Store-source registers: reg -> read scoreboard (None = unprotected).
    let mut store_srcs: HashMap<u8, Option<u8>> = HashMap::new();
    let mut now: u64 = 0;

    for (i, inst) in insts.iter().enumerate() {
        if leaders.contains(&i) {
            pending_fixed.clear();
            pending_mem.clear();
            store_srcs.clear();
            now = 0;
        }

        // A wait mask retires every pending producer signalling those bars.
        if inst.ctrl.wait_mask != 0 {
            pending_mem.retain(|_, b| inst.ctrl.wait_mask & (1 << *b) == 0);
            store_srcs.retain(|_, b| match b {
                Some(b) => inst.ctrl.wait_mask & (1 << *b) == 0,
                None => true,
            });
        }

        // Check sources.
        let mut srcs: Vec<Reg> = inst.op.src_regs().into_iter().map(|(_, r)| r).collect();
        if !inst.guard.pred.is_pt() {
            // Guard predicates come from ISETP/R2P; out of scope here.
        }
        srcs.dedup();
        for r in &srcs {
            if let Some(&lands) = pending_fixed.get(&r.0) {
                if now < lands {
                    diags.push(Diagnostic {
                        index: i,
                        severity: Severity::RawHazard,
                        message: format!(
                            "{} reads {} {} cycle(s) before its producer lands (needs {} more stall)",
                            inst.op.mnemonic(),
                            r,
                            lands - now,
                            lands - now
                        ),
                    });
                }
            }
            if let Some(&bar) = pending_mem.get(&r.0) {
                diags.push(Diagnostic {
                    index: i,
                    severity: Severity::MissingWait,
                    message: format!(
                        "{} reads {} loaded by an in-flight memory op; add wait on scoreboard {}",
                        inst.op.mnemonic(),
                        r,
                        bar
                    ),
                });
            }
        }

        // Check destinations for WAR against in-flight store sources, and
        // WAW against in-flight loads.
        if let Some((d, n)) = inst.op.dst_regs() {
            for j in 0..n {
                let reg = d.offset(j);
                if reg.is_rz() {
                    continue;
                }
                match store_srcs.get(&reg.0) {
                    Some(Some(bar)) => {
                        diags.push(Diagnostic {
                            index: i,
                            severity: Severity::WarHazard,
                            message: format!(
                                "{} overwrites {} while an in-flight store reads it; wait on scoreboard {}",
                                inst.op.mnemonic(),
                                reg,
                                bar
                            ),
                        });
                    }
                    Some(None) => {
                        diags.push(Diagnostic {
                            index: i,
                            severity: Severity::WarHazard,
                            message: format!(
                                "{} overwrites {} while an unprotected in-flight store reads it (no read barrier set)",
                                inst.op.mnemonic(),
                                reg
                            ),
                        });
                    }
                    None => {}
                }
                if let Some(&bar) = pending_mem.get(&reg.0) {
                    diags.push(Diagnostic {
                        index: i,
                        severity: Severity::MissingWait,
                        message: format!(
                            "{} overwrites {} before the prior load completes; wait on scoreboard {}",
                            inst.op.mnemonic(),
                            reg,
                            bar
                        ),
                    });
                }
            }
        }

        // Record this instruction's effects.
        match inst.op {
            Op::Ld { d, width, .. } => {
                for j in 0..width.regs() {
                    let reg = d.offset(j);
                    if !reg.is_rz() {
                        match inst.ctrl.write_bar {
                            Some(b) => {
                                pending_mem.insert(reg.0, b);
                            }
                            None => diags.push(Diagnostic {
                                index: i,
                                severity: Severity::MissingWait,
                                message: format!(
                                    "{} has no write scoreboard; its result in {} is never synchronized",
                                    inst.op.mnemonic(),
                                    reg
                                ),
                            }),
                        }
                        pending_fixed.remove(&reg.0);
                    }
                }
            }
            Op::St {
                src, width, space, ..
            } => {
                let _ = space;
                for j in 0..width.regs() {
                    let reg = src.offset(j);
                    if !reg.is_rz() {
                        store_srcs.insert(reg.0, inst.ctrl.read_bar);
                    }
                }
            }
            Op::BarSync => {
                // BAR.SYNC orders shared memory, not register scoreboards:
                // keep the register state.
            }
            _ => {
                if let (Some(lat), Some((d, n))) = (fixed_latency(&inst.op), inst.op.dst_regs()) {
                    for j in 0..n {
                        let reg = d.offset(j);
                        if !reg.is_rz() {
                            pending_fixed.insert(reg.0, now + lat);
                            pending_mem.remove(&reg.0);
                            store_srcs.remove(&reg.0);
                        }
                    }
                }
            }
        }

        now += inst.ctrl.stall.max(1) as u64;
    }
    diags
}

/// Memory-space import kept local to the lint signature.
#[allow(unused)]
fn _space(_: MemSpace) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        lint(&assemble(src).unwrap().insts)
    }

    #[test]
    fn clean_code_has_no_findings() {
        let d = lint_src(
            r#"
    --:-:-:Y:1  MOV R1, 0x3f800000;
    --:-:-:Y:5  MOV R2, 0x40000000;
    --:-:-:Y:4  FADD R3, R1, R2;
    --:-:-:Y:4  FADD R4, R3, R3;
    --:-:-:Y:5  EXIT;
"#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn detects_underfilled_stall() {
        let d = lint_src(
            r#"
    --:-:-:Y:1  FADD R3, R1, R2;
    --:-:-:Y:4  FADD R4, R3, R3;
    --:-:-:Y:5  EXIT;
"#,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::RawHazard);
        assert_eq!(d[0].index, 1);
        assert!(d[0].message.contains("3 more stall"), "{}", d[0].message);
    }

    #[test]
    fn detects_missing_scoreboard_wait() {
        let d = lint_src(
            r#"
    --:-:0:-:2  LDG.E R4, [R2];
    --:-:-:Y:4  FADD R5, R4, R4;
    --:-:-:Y:5  EXIT;
"#,
        );
        assert!(
            d.iter().any(|x| x.severity == Severity::MissingWait),
            "{d:?}"
        );
        // And the fixed version is clean.
        let d = lint_src(
            r#"
    --:-:0:-:2  LDG.E R4, [R2];
    01:-:-:Y:4  FADD R5, R4, R4;
    --:-:-:Y:5  EXIT;
"#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn detects_load_without_write_barrier() {
        let d = lint_src("--:-:-:Y:2  LDG.E R4, [R2];\nEXIT;");
        assert!(d
            .iter()
            .any(|x| matches!(x.severity, Severity::MissingWait)));
    }

    #[test]
    fn detects_war_on_store_sources() {
        // The store reads R4; the MOV overwrites it with no read barrier.
        let d = lint_src(
            r#"
    --:-:-:Y:1  STG.E [R2], R4;
    --:-:-:Y:1  MOV R4, 0x0;
    --:-:-:Y:5  EXIT;
"#,
        );
        assert!(d.iter().any(|x| x.severity == Severity::WarHazard), "{d:?}");
        // Protected version: read barrier + wait.
        let d = lint_src(
            r#"
    --:4:-:Y:1  STG.E [R2], R4;
    10:-:-:Y:1  MOV R4, 0x0;
    --:-:-:Y:5  EXIT;
"#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wide_destinations_are_tracked() {
        // LDG.128 writes R4..R7; touching R6 without a wait must trip.
        let d = lint_src(
            r#"
    --:-:0:-:2  LDG.E.128 R4, [R2];
    --:-:-:Y:4  FADD R8, R6, R6;
    --:-:-:Y:5  EXIT;
"#,
        );
        assert!(
            d.iter()
                .any(|x| x.severity == Severity::MissingWait && x.message.contains("R6")),
            "{d:?}"
        );
    }

    #[test]
    fn block_boundaries_reset_state() {
        // The hazard spans a branch target, which the per-block analysis
        // conservatively ignores — no finding.
        let d = lint_src(
            r#"
    --:-:-:Y:1  FADD R3, R1, R2;
TOP:
    --:-:-:Y:4  FADD R4, R3, R3;
    --:-:-:Y:4  ISETP.GT.AND P0, PT, R5, 0, PT;
    --:-:-:Y:5  @P0 BRA `(TOP);
    --:-:-:Y:5  EXIT;
"#,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn generated_kernels_main_loops_are_hazard_aware() {
        // The emitted kernels must not contain *unprotected* memory reads:
        // every LDG/LDS result is consumed behind a scoreboard wait.
        // (Full kernel linting lives in the kernels crate's tests; here we
        // check a representative hand excerpt of the main loop schedule.)
        let d = lint_src(
            r#"
    --:-:0:-:1  LDS.128 R32, [R70];
    --:-:1:-:1  LDS.128 R36, [R71];
    03:-:-:Y:1  FFMA R0, R32, R36, R0;
    --:-:-:Y:1  FFMA R1, R32, R37, R1;
    --:-:-:Y:5  EXIT;
"#,
        );
        assert!(d.is_empty(), "{d:?}");
    }
}

/// Automatically repair schedule hazards in place (maxas-style
/// auto-scheduling): raise stall counts to cover fixed-latency producers
/// and OR missing scoreboard waits into consumers. Returns the number of
/// adjustments applied. Branch targets are never moved (no insertion), so
/// deficits are absorbed by the instructions *preceding* each consumer.
///
/// The emitters run this at build time: hand-scheduled streams stay
/// untouched when already clean, and the repaired stream lints clean.
pub fn fix_schedule(insts: &mut Vec<Instruction>) -> u32 {
    fix_schedule_marked(insts, &mut [])
}

/// [`fix_schedule`] variant that keeps a set of instruction-index markers
/// (e.g. region boundaries for timing accounting) consistent across NOP
/// insertions: any marker at or after an insertion point shifts with it.
pub fn fix_schedule_marked(insts: &mut Vec<Instruction>, markers: &mut [u32]) -> u32 {
    let mut total = 0u32;
    // Fixpoint: each walk re-checks with updated stalls/waits. A walk that
    // absorbs a stall deficit restarts, so allow one walk per potential
    // deficit.
    let mut rounds = insts.len() * 4 + 64;

    // Source registers never change under repair (stall counts and wait
    // masks live in the control word, not the op), so decode them once.
    // A NOP insertion splices in an empty entry.
    let mut srcs: Vec<Vec<u8>> = insts
        .iter()
        .map(|inst| inst.op.src_regs().into_iter().map(|(_, r)| r.0).collect())
        .collect();

    // Block leaders only change when a NOP insertion shifts the stream;
    // stall/wait repairs leave them untouched.
    let mut is_leader = compute_leaders(insts);

    // reg -> cycle when its pending fixed-latency write lands (0 = none;
    // land times are always >= the op latency, so 0 is free as a sentinel).
    let mut pending_fixed: [u64; 256];
    let mut pending_mem = RegBarMap::new();
    let mut store_srcs = RegBarMap::new();

    // Every repair touches only the block it was found in, and branch
    // retargets across an insertion don't perturb walk state (BRA carries
    // no register effects; leaders before the insertion point keep their
    // positions). The stream before that block is therefore already at
    // fixpoint, and each walk can resume from the block's leader instead
    // of instruction 0.
    let mut resume = 0usize;
    'walks: while rounds > 0 {
        rounds -= 1;
        let mut changed = false;
        pending_fixed = [0u64; 256];
        pending_mem.clear();
        store_srcs.clear();
        let mut block_start = resume;
        let mut now: u64 = 0;

        let mut i = resume;
        while i < insts.len() {
            if is_leader[i] {
                pending_fixed = [0u64; 256];
                pending_mem.clear();
                store_srcs.clear();
                block_start = i;
                now = 0;
            }
            let wait = insts[i].ctrl.wait_mask;
            if wait != 0 {
                pending_mem.retire(wait);
                store_srcs.retire(wait);
            }

            // RAW deficits on sources → absorb in preceding stalls.
            let mut deficit: u64 = 0;
            let mut wait_bits: u8 = 0;
            for &r in &srcs[i] {
                let lands = pending_fixed[r as usize];
                if now < lands {
                    deficit = deficit.max(lands - now);
                }
                if let Some(b) = pending_mem.get(r) {
                    wait_bits |= 1 << b;
                }
            }
            if let Some((d, n)) = insts[i].op.dst_regs() {
                for j in 0..n {
                    let reg = d.offset(j);
                    if let Some(b) = store_srcs.get(reg.0) {
                        wait_bits |= 1 << b;
                    }
                    if let Some(b) = pending_mem.get(reg.0) {
                        wait_bits |= 1 << b;
                    }
                }
            }
            if wait_bits & !insts[i].ctrl.wait_mask != 0 {
                insts[i].ctrl.wait_mask |= wait_bits;
                pending_mem.retire(wait_bits);
                store_srcs.retire(wait_bits);
                total += 1;
                changed = true;
            }
            if deficit > 0 {
                // Distribute the deficit over predecessors in this block.
                let mut need = deficit;
                let mut j = i;
                while need > 0 && j > block_start {
                    j -= 1;
                    let cur = insts[j].ctrl.stall.max(1) as u64;
                    let room = 15u64.saturating_sub(cur);
                    let take = room.min(need);
                    if take > 0 {
                        insts[j].ctrl.stall = (cur + take) as u8;
                        need -= take;
                        total += 1;
                    }
                }
                if need > 0 {
                    // Predecessor stalls are saturated: insert a stalling
                    // NOP before the consumer and retarget branches across
                    // the insertion point.
                    let mut nop = Instruction::new(Op::Nop);
                    nop.ctrl.stall = need.min(15) as u8;
                    insts.insert(i, nop);
                    srcs.insert(i, Vec::new());
                    for inst in insts.iter_mut() {
                        if let Op::Bra { target } = &mut inst.op {
                            if *target as usize >= i {
                                *target += 1;
                            }
                        }
                    }
                    for m in markers.iter_mut() {
                        if *m as usize >= i {
                            *m += 1;
                        }
                    }
                    total += 1;
                    is_leader = compute_leaders(insts);
                }
                // Re-walk this block with the new stalls.
                resume = block_start;
                continue 'walks;
            }

            // Record effects.
            match insts[i].op {
                Op::Ld { d, width, .. } => {
                    for j in 0..width.regs() {
                        let reg = d.offset(j);
                        if !reg.is_rz() {
                            if let Some(b) = insts[i].ctrl.write_bar {
                                pending_mem.insert(reg.0, b);
                            }
                            pending_fixed[reg.0 as usize] = 0;
                        }
                    }
                }
                Op::St { src, width, .. } => {
                    if let Some(b) = insts[i].ctrl.read_bar {
                        for j in 0..width.regs() {
                            let reg = src.offset(j);
                            if !reg.is_rz() {
                                store_srcs.insert(reg.0, b);
                            }
                        }
                    }
                }
                _ => {
                    if let (Some(lat), Some((d, n))) =
                        (fixed_latency(&insts[i].op), insts[i].op.dst_regs())
                    {
                        for j in 0..n {
                            let reg = d.offset(j);
                            if !reg.is_rz() {
                                pending_fixed[reg.0 as usize] = now + lat;
                                pending_mem.remove(reg.0);
                                store_srcs.remove(reg.0);
                            }
                        }
                    }
                }
            }
            now += insts[i].ctrl.stall.max(1) as u64;
            i += 1;
        }
        if !changed {
            break;
        }
    }
    total
}

/// Block-leader bitmap the linter (and the schedule tuner) partitions a
/// stream with: entry, branch targets, instructions after branches.
pub fn block_leaders(insts: &[Instruction]) -> Vec<bool> {
    compute_leaders(insts)
}

/// Block-leader bitmap: entry, branch targets, instructions after branches.
fn compute_leaders(insts: &[Instruction]) -> Vec<bool> {
    let mut is_leader = vec![false; insts.len()];
    if !is_leader.is_empty() {
        is_leader[0] = true;
    }
    for (i, inst) in insts.iter().enumerate() {
        if let Op::Bra { target } = inst.op {
            if (target as usize) < insts.len() {
                is_leader[target as usize] = true;
            }
            if i + 1 < insts.len() {
                is_leader[i + 1] = true;
            }
        }
    }
    is_leader
}

/// reg -> scoreboard map with O(1) lookup and O(pending) retirement:
/// a flat per-register barrier array paired with per-barrier register
/// bitsets. Replaces the `HashMap<u8, u8>` state of the repair walk.
struct RegBarMap {
    /// Barrier per register; `NONE` = no pending entry.
    bar: [u8; 256],
    /// Registers pending on each barrier, as a 256-bit set.
    regs: [[u64; 4]; 8],
}

impl RegBarMap {
    const NONE: u8 = 0xff;

    fn new() -> Self {
        RegBarMap {
            bar: [Self::NONE; 256],
            regs: [[0; 4]; 8],
        }
    }

    fn clear(&mut self) {
        self.bar = [Self::NONE; 256];
        self.regs = [[0; 4]; 8];
    }

    fn get(&self, reg: u8) -> Option<u8> {
        let b = self.bar[reg as usize];
        (b != Self::NONE).then_some(b)
    }

    fn insert(&mut self, reg: u8, b: u8) {
        self.remove(reg);
        self.bar[reg as usize] = b;
        self.regs[b as usize][(reg >> 6) as usize] |= 1 << (reg & 63);
    }

    fn remove(&mut self, reg: u8) {
        let old = self.bar[reg as usize];
        if old != Self::NONE {
            self.regs[old as usize][(reg >> 6) as usize] &= !(1 << (reg & 63));
            self.bar[reg as usize] = Self::NONE;
        }
    }

    /// Drop every entry whose barrier is set in `mask`.
    fn retire(&mut self, mask: u8) {
        for b in 0..8 {
            if mask & (1 << b) == 0 {
                continue;
            }
            for (w, word) in self.regs[b].iter_mut().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    let r = w * 64 + bits.trailing_zeros() as usize;
                    self.bar[r] = Self::NONE;
                    bits &= bits - 1;
                }
                *word = 0;
            }
        }
    }
}

#[cfg(test)]
mod fix_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn fix_makes_hazardous_code_clean() {
        let mut m = assemble(
            r#"
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  SHF.L.U32 R1, R0, 0x2, RZ;
    --:-:0:-:1  LDG.E R4, [R2];
    --:-:-:Y:1  FADD R5, R4, R4;
    --:-:-:Y:1  FADD R6, R5, R5;
    --:-:-:Y:1  STG.E [R2], R6;
    --:-:-:Y:1  MOV R6, 0x0;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        assert!(!lint(&m.insts).is_empty());
        let fixes = fix_schedule(&mut m.insts);
        assert!(fixes > 0);
        // The unprotected-store WAR (no read barrier on the STG) cannot be
        // auto-fixed without allocating a scoreboard; everything else must
        // be clean.
        let rest = lint(&m.insts);
        assert!(
            rest.iter()
                .all(|d| matches!(d.severity, Severity::WarHazard)),
            "{rest:?}"
        );
        // The SHF consumer now sits ≥25 cycles after the S2R (saturated
        // stall plus an inserted NOP).
        assert_eq!(m.insts[0].ctrl.stall, 15);
        assert!(matches!(m.insts[1].op, Op::Nop));
        // A wait on the load's scoreboard was added to its consumer.
        assert!(m
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::Fadd { .. }) && i.ctrl.wait_mask & 1 == 1));
    }

    #[test]
    fn fix_is_idempotent_on_clean_code() {
        let mut m = assemble(
            r#"
    --:-:-:Y:1  MOV R1, 0x3f800000;
    --:-:-:Y:5  MOV R2, 0x40000000;
    --:-:-:Y:4  FADD R3, R1, R2;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        let before = m.insts.clone();
        assert_eq!(fix_schedule(&mut m.insts), 0);
        assert_eq!(m.insts, before);
    }
}
