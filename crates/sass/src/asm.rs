//! The text assembler.
//!
//! Accepts maxas/TuringAs-style source: one instruction per line with an
//! optional control-code prefix, optional guard predicate, labels, and
//! directives. Example:
//!
//! ```text
//! .kernel axpy
//! .smem   0
//! .params 24
//! .def    tid R0
//!
//!         --:-:-:Y:1   S2R tid, SR_TID.X;
//!         --:-:-:Y:6   MOV R2, c[0x0][0x160];
//!         --:-:-:Y:6   MOV R3, c[0x0][0x164];
//!         --:-:1:-:2   LDG.E R4, [R2];
//! LOOP:
//!         01:-:-:Y:4   FFMA R4, R4, 2.0, R4;
//!         --:-:-:Y:5   @P0 BRA `(LOOP);
//!         --:-:-:Y:5   EXIT;
//! ```
//!
//! Register aliases (`.def name Rn`) play the role of TuringAs's register
//! name mapping (§5.3); `.reuse` suffixes set the control-code reuse flags
//! for the operand's slot.

use std::collections::HashMap;

use crate::ctrl::Ctrl;
use crate::isa::*;
use crate::module::Module;
use crate::reg::{Pred, Reg, PT, RZ};

/// Assembly error with 1-based source line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// Assemble a source string into a [`Module`].
pub fn assemble(src: &str) -> Result<Module, AsmError> {
    let mut name = "kernel".to_string();
    let mut smem = 0u32;
    let mut params = 0u32;
    let mut defs: HashMap<String, Reg> = HashMap::new();
    let mut labels: HashMap<String, u32> = HashMap::new();

    // Pass 1: directives, labels, and the list of instruction lines.
    let mut inst_lines: Vec<(usize, String)> = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            // Directive or a `.Lx:` label.
            if line.ends_with(':') {
                labels.insert(line[..line.len() - 1].to_string(), inst_lines.len() as u32);
                continue;
            }
            let mut it = rest.split_whitespace();
            match it.next() {
                Some("kernel") => {
                    name = it.next().map(str::to_string).unwrap_or(name);
                }
                Some("smem") => {
                    let v = it.next().ok_or(AsmError {
                        line: lineno,
                        msg: ".smem needs a value".into(),
                    })?;
                    smem = parse_u32(v).map_err(|m| AsmError {
                        line: lineno,
                        msg: m,
                    })?;
                }
                Some("params") => {
                    let v = it.next().ok_or(AsmError {
                        line: lineno,
                        msg: ".params needs a value".into(),
                    })?;
                    params = parse_u32(v).map_err(|m| AsmError {
                        line: lineno,
                        msg: m,
                    })?;
                }
                Some("def") => {
                    let (n, r) = match (it.next(), it.next()) {
                        (Some(n), Some(r)) => (n, r),
                        _ => return err(lineno, ".def needs a name and a register"),
                    };
                    let reg = parse_reg_name(r).ok_or(AsmError {
                        line: lineno,
                        msg: format!("bad register in .def: {r}"),
                    })?;
                    defs.insert(n.to_string(), reg);
                }
                other => {
                    return err(
                        lineno,
                        format!("unknown directive .{}", other.unwrap_or("")),
                    )
                }
            }
            continue;
        }
        if line.ends_with(':') && !line.contains(' ') {
            labels.insert(line[..line.len() - 1].to_string(), inst_lines.len() as u32);
            continue;
        }
        inst_lines.push((lineno, line));
    }

    // Pass 2: parse instructions.
    let mut insts = Vec::with_capacity(inst_lines.len());
    for (lineno, line) in inst_lines {
        insts.push(parse_instruction(&line, lineno, &defs, &labels)?);
    }
    Ok(Module::new(name, smem, params, insts))
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find("//")
        .or_else(|| line.find('#'))
        .unwrap_or(line.len());
    &line[..cut]
}

fn parse_u32(s: &str) -> Result<u32, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map_err(|e| format!("bad hex {s}: {e}"))
    } else {
        s.parse::<u32>().map_err(|e| format!("bad number {s}: {e}"))
    }
}

fn parse_i32(s: &str) -> Result<i32, String> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('-') {
        parse_u32(rest).map(|v| -(v as i64) as i32)
    } else {
        parse_u32(s).map(|v| v as i32)
    }
}

fn parse_reg_name(s: &str) -> Option<Reg> {
    if s == "RZ" {
        return Some(RZ);
    }
    let n = s.strip_prefix('R')?;
    let idx: u32 = n.parse().ok()?;
    if idx < 255 {
        Some(Reg(idx as u8))
    } else {
        None
    }
}

fn parse_pred_name(s: &str) -> Option<Pred> {
    if s == "PT" {
        return Some(PT);
    }
    let n = s.strip_prefix('P')?;
    let idx: u32 = n.parse().ok()?;
    if idx < 7 {
        Some(Pred(idx as u8))
    } else {
        None
    }
}

/// Parsed operand, before per-mnemonic interpretation.
#[derive(Clone, Debug)]
enum Tok {
    Reg {
        r: Reg,
        neg: bool,
        reuse: bool,
    },
    Pred {
        p: Pred,
        neg: bool,
    },
    Int {
        v: i64,
        hex: bool,
        neg: bool,
    },
    Float(f32),
    Const {
        off: u16,
        neg: bool,
    },
    Addr(Addr),
    Special(SpecialReg),
    Label(String),
    /// Anything unrecognized — surfaced verbatim in error messages.
    Word(String),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("unrecognized token `{w}`"),
            other => format!("{other:?}"),
        }
    }
}

struct Ctx<'a> {
    line: usize,
    defs: &'a HashMap<String, Reg>,
    labels: &'a HashMap<String, u32>,
}

fn parse_operand(s: &str, ctx: &Ctx) -> Result<Tok, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return err(ctx.line, "empty operand");
    }
    // Address operand.
    if s.starts_with('[') && s.ends_with(']') {
        let inner = &s[1..s.len() - 1];
        let (base_s, off) = if let Some(pos) = inner.rfind('+') {
            (
                &inner[..pos],
                parse_i32(&inner[pos + 1..]).map_err(|m| AsmError {
                    line: ctx.line,
                    msg: m,
                })?,
            )
        } else if let Some(pos) = inner.rfind('-') {
            if pos == 0 {
                (
                    "RZ",
                    parse_i32(inner).map_err(|m| AsmError {
                        line: ctx.line,
                        msg: m,
                    })?,
                )
            } else {
                (
                    &inner[..pos],
                    -parse_i32(&inner[pos + 1..]).map_err(|m| AsmError {
                        line: ctx.line,
                        msg: m,
                    })?,
                )
            }
        } else if parse_reg_name(inner.trim()).is_some() || ctx.defs.contains_key(inner.trim()) {
            (inner, 0)
        } else {
            (
                "RZ",
                parse_i32(inner).map_err(|m| AsmError {
                    line: ctx.line,
                    msg: m,
                })?,
            )
        };
        let base_s = base_s.trim();
        let base = parse_reg_name(base_s)
            .or_else(|| ctx.defs.get(base_s).copied())
            .ok_or(AsmError {
                line: ctx.line,
                msg: format!("bad base register {base_s}"),
            })?;
        return Ok(Tok::Addr(Addr::new(base, off)));
    }
    // Branch label `(NAME).
    if let Some(rest) = s.strip_prefix("`(") {
        let name = rest.strip_suffix(')').ok_or(AsmError {
            line: ctx.line,
            msg: format!("unterminated label ref {s}"),
        })?;
        return Ok(Tok::Label(name.to_string()));
    }
    // Constant memory (with optional negation).
    let (cneg, cbody) = match s.strip_prefix("-c[") {
        Some(_) => (true, &s[1..]),
        None => (false, s),
    };
    if cbody.starts_with("c[") {
        let parts: Vec<&str> = cbody
            .trim_start_matches("c[")
            .trim_end_matches(']')
            .split("][")
            .collect();
        if parts.len() != 2 {
            return err(ctx.line, format!("bad constant operand {s}"));
        }
        let off = parse_u32(parts[1]).map_err(|m| AsmError {
            line: ctx.line,
            msg: m,
        })?;
        return Ok(Tok::Const {
            off: off as u16,
            neg: cneg,
        });
    }
    // Special register.
    for sr in SpecialReg::ALL {
        if s == sr.name() {
            return Ok(Tok::Special(sr));
        }
    }
    // Predicates (incl. negated).
    if let Some(rest) = s.strip_prefix('!') {
        if let Some(p) = parse_pred_name(rest) {
            return Ok(Tok::Pred { p, neg: true });
        }
    }
    if let Some(p) = parse_pred_name(s) {
        return Ok(Tok::Pred { p, neg: false });
    }
    // Registers (with optional - prefix and .reuse suffix), incl. aliases.
    {
        let (neg, body) = match s.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, s),
        };
        let (body, reuse) = match body.strip_suffix(".reuse") {
            Some(b) => (b, true),
            None => (body, false),
        };
        if let Some(r) = parse_reg_name(body).or_else(|| ctx.defs.get(body).copied()) {
            return Ok(Tok::Reg { r, neg, reuse });
        }
        // Fall through: might be a number like -5.
    }
    // Numbers: float if it contains '.' or 'e' (and is not hex), else int.
    // A leading '-' is kept as a separate negation flag so that the operand
    // negation bit survives text round-trips (it is encoded separately from
    // the immediate on real hardware too).
    let is_hex = s.contains("0x") || s.contains("0X");
    if !is_hex && (s.contains('.') || s.contains('e') || s.contains('E')) {
        if let Ok(f) = s.parse::<f32>() {
            return Ok(Tok::Float(f));
        }
    }
    let (neg, mag) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    if let Ok(v) = parse_u32(mag) {
        return Ok(Tok::Int {
            v: v as i64,
            hex: is_hex,
            neg,
        });
    }
    Ok(Tok::Word(s.to_string()))
}

/// Split the operand list at top-level commas (respecting `[...]`).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_instruction(
    line: &str,
    lineno: usize,
    defs: &HashMap<String, Reg>,
    labels: &HashMap<String, u32>,
) -> Result<Instruction, AsmError> {
    let ctx = Ctx {
        line: lineno,
        defs,
        labels,
    };
    let mut rest = line.trim();

    // Optional control-code prefix: the first whitespace-delimited token, if
    // it parses as a control code.
    let mut ctrl = Ctrl::new();
    if let Some((first, tail)) = rest.split_once(char::is_whitespace) {
        if let Some(c) = Ctrl::from_text(first) {
            ctrl = c;
            rest = tail.trim();
        }
    }

    // Optional guard.
    let mut guard = PredGuard::always();
    if let Some(tail) = rest.strip_prefix('@') {
        let (g, tail2) = tail.split_once(char::is_whitespace).ok_or(AsmError {
            line: lineno,
            msg: "guard predicate without instruction".into(),
        })?;
        let (neg, pname) = match g.strip_prefix('!') {
            Some(p) => (true, p),
            None => (false, g),
        };
        let pred = parse_pred_name(pname).ok_or(AsmError {
            line: lineno,
            msg: format!("bad guard predicate {g}"),
        })?;
        guard = PredGuard { pred, neg };
        rest = tail2.trim();
    }

    // Mnemonic and operands.
    let rest = rest.strip_suffix(';').unwrap_or(rest).trim();
    let (mnemonic, operand_str) = match rest.split_once(char::is_whitespace) {
        Some((m, o)) => (m, o.trim()),
        None => (rest, ""),
    };
    let ops: Vec<Tok> = split_operands(operand_str)
        .iter()
        .map(|o| parse_operand(o, &ctx))
        .collect::<Result<_, _>>()?;

    let parts: Vec<&str> = mnemonic.split('.').collect();
    let base = parts[0];
    let suffixes = &parts[1..];

    let mut reuse_mask = 0u8;
    let op = build_op(base, suffixes, &ops, &ctx, &mut reuse_mask)?;
    ctrl.reuse |= reuse_mask;
    Ok(Instruction { guard, op, ctrl })
}

// ---- per-mnemonic operand interpretation ------------------------------------

fn want_reg(
    t: &Tok,
    ctx: &Ctx,
    reuse_mask: &mut u8,
    slot: Option<u8>,
) -> Result<(Reg, bool), AsmError> {
    match t {
        Tok::Reg { r, neg, reuse } => {
            if *reuse {
                match slot {
                    Some(s) => *reuse_mask |= 1 << s,
                    None => return err(ctx.line, ".reuse not allowed on this operand"),
                }
            }
            Ok((*r, *neg))
        }
        other => err(
            ctx.line,
            format!("expected register, got {}", other.describe()),
        ),
    }
}

fn want_srcb(
    t: &Tok,
    ctx: &Ctx,
    float: bool,
    reuse_mask: &mut u8,
    slot: Option<u8>,
) -> Result<(SrcB, bool), AsmError> {
    match t {
        Tok::Reg { r, neg, reuse } => {
            if *reuse {
                match slot {
                    Some(s) => *reuse_mask |= 1 << s,
                    None => return err(ctx.line, ".reuse not allowed on this operand"),
                }
            }
            Ok((SrcB::Reg(*r), *neg))
        }
        Tok::Int { v, hex, neg } => {
            if float && !*hex {
                // Decimal literal on a float instruction: IEEE value.
                let f = if *neg { -(*v as f32) } else { *v as f32 };
                Ok((SrcB::imm_f32(f), false))
            } else {
                // Hex literals are raw bits (float or int); the sign is kept
                // as the operand negation flag.
                Ok((SrcB::Imm(*v as u32), *neg))
            }
        }
        Tok::Float(f) => {
            if float {
                Ok((SrcB::imm_f32(*f), false))
            } else {
                err(ctx.line, "float immediate on integer instruction")
            }
        }
        Tok::Const { off, neg } => Ok((SrcB::Const(*off), *neg)),
        other => err(
            ctx.line,
            format!("expected reg/imm/const, got {}", other.describe()),
        ),
    }
}

fn want_pred(t: &Tok, ctx: &Ctx) -> Result<PredSrc, AsmError> {
    match t {
        Tok::Pred { p, neg } => Ok(PredSrc {
            pred: *p,
            neg: *neg,
        }),
        other => err(
            ctx.line,
            format!("expected predicate, got {}", other.describe()),
        ),
    }
}

fn want_addr(t: &Tok, ctx: &Ctx) -> Result<Addr, AsmError> {
    match t {
        Tok::Addr(a) => Ok(*a),
        other => err(
            ctx.line,
            format!("expected address, got {}", other.describe()),
        ),
    }
}

fn want_int(t: &Tok, ctx: &Ctx) -> Result<i64, AsmError> {
    match t {
        Tok::Int { v, neg, .. } => Ok(if *neg { -*v } else { *v }),
        other => err(
            ctx.line,
            format!("expected integer, got {}", other.describe()),
        ),
    }
}

fn arity(ops: &[Tok], n: usize, ctx: &Ctx, mn: &str) -> Result<(), AsmError> {
    if ops.len() != n {
        err(
            ctx.line,
            format!("{mn} expects {n} operands, got {}", ops.len()),
        )
    } else {
        Ok(())
    }
}

fn mem_width(suffixes: &[&str]) -> MemWidth {
    if suffixes.contains(&"128") {
        MemWidth::B128
    } else if suffixes.contains(&"64") {
        MemWidth::B64
    } else {
        MemWidth::B32
    }
}

fn cmp_from(suffixes: &[&str]) -> Option<CmpOp> {
    for s in suffixes {
        match *s {
            "LT" => return Some(CmpOp::Lt),
            "LE" => return Some(CmpOp::Le),
            "GT" => return Some(CmpOp::Gt),
            "GE" => return Some(CmpOp::Ge),
            "EQ" => return Some(CmpOp::Eq),
            "NE" => return Some(CmpOp::Ne),
            _ => {}
        }
    }
    None
}

fn build_op(
    base: &str,
    suffixes: &[&str],
    ops: &[Tok],
    ctx: &Ctx,
    reuse: &mut u8,
) -> Result<Op, AsmError> {
    let line = ctx.line;
    match base {
        "FFMA" => {
            arity(ops, 4, ctx, "FFMA")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, neg_b) = want_srcb(&ops[2], ctx, true, reuse, Some(1))?;
            let (c, neg_c) = want_reg(&ops[3], ctx, reuse, Some(2))?;
            Ok(Op::Ffma {
                d,
                a,
                b,
                c,
                neg_b,
                neg_c,
            })
        }
        "FADD" => {
            arity(ops, 3, ctx, "FADD")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, neg_a) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, neg_b) = want_srcb(&ops[2], ctx, true, reuse, Some(1))?;
            Ok(Op::Fadd {
                d,
                a,
                neg_a,
                b,
                neg_b,
            })
        }
        "FMUL" => {
            arity(ops, 3, ctx, "FMUL")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, neg_b) = want_srcb(&ops[2], ctx, true, reuse, Some(1))?;
            Ok(Op::Fmul { d, a, b, neg_b })
        }
        "HFMA2" => {
            arity(ops, 4, ctx, "HFMA2")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, _) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            let (c, _) = want_reg(&ops[3], ctx, reuse, Some(2))?;
            Ok(Op::Hfma2 { d, a, b, c })
        }
        "HADD2" => {
            arity(ops, 3, ctx, "HADD2")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, neg_a) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, neg_b) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            Ok(Op::Hadd2 {
                d,
                a,
                neg_a,
                b,
                neg_b,
            })
        }
        "HMUL2" => {
            arity(ops, 3, ctx, "HMUL2")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, _) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            Ok(Op::Hmul2 { d, a, b })
        }
        "FSETP" => {
            // FSETP.cmp.AND Pd, PT, Ra, B, Pc
            arity(ops, 5, ctx, "FSETP")?;
            let cmp = cmp_from(suffixes).ok_or(AsmError {
                line,
                msg: "FSETP needs a comparison suffix".into(),
            })?;
            let p = want_pred(&ops[0], ctx)?.pred;
            let (a, _) = want_reg(&ops[2], ctx, reuse, Some(0))?;
            let (b, _) = want_srcb(&ops[3], ctx, true, reuse, Some(1))?;
            let combine = want_pred(&ops[4], ctx)?;
            Ok(Op::Fsetp {
                p,
                cmp,
                a,
                b,
                combine,
            })
        }
        "IADD3" => {
            arity(ops, 4, ctx, "IADD3")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, neg_a) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, neg_b) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            let (c, neg_c) = want_reg(&ops[3], ctx, reuse, Some(2))?;
            Ok(Op::Iadd3 {
                d,
                a,
                neg_a,
                b,
                neg_b,
                c,
                neg_c,
            })
        }
        "IMAD" => {
            arity(ops, 4, ctx, "IMAD")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, _) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            let (c, _) = want_reg(&ops[3], ctx, reuse, Some(2))?;
            if suffixes.contains(&"WIDE") {
                Ok(Op::ImadWide { d, a, b, c })
            } else if suffixes.contains(&"HI") {
                Ok(Op::ImadHi { d, a, b, c })
            } else {
                Ok(Op::Imad { d, a, b, c })
            }
        }
        "LEA" => {
            arity(ops, 4, ctx, "LEA")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, _) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            let shift = want_int(&ops[3], ctx)? as u8;
            Ok(Op::Lea { d, a, b, shift })
        }
        "LOP3" => {
            arity(ops, 5, ctx, "LOP3")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, _) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            let (c, _) = want_reg(&ops[3], ctx, reuse, Some(2))?;
            let lut = want_int(&ops[4], ctx)? as u8;
            Ok(Op::Lop3 { d, a, b, c, lut })
        }
        "SHF" => {
            arity(ops, 4, ctx, "SHF")?;
            let right = suffixes.contains(&"R");
            let u32_mode = suffixes.contains(&"U32");
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (lo, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (shift, _) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            let (hi, _) = want_reg(&ops[3], ctx, reuse, Some(2))?;
            Ok(Op::Shf {
                d,
                lo,
                shift,
                hi,
                right,
                u32_mode,
            })
        }
        "MOV" => {
            arity(ops, 2, ctx, "MOV")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (b, _) = want_srcb(&ops[1], ctx, false, reuse, Some(1))?;
            Ok(Op::Mov { d, b })
        }
        "SEL" => {
            arity(ops, 4, ctx, "SEL")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let (b, _) = want_srcb(&ops[2], ctx, false, reuse, Some(1))?;
            let p = want_pred(&ops[3], ctx)?;
            Ok(Op::Sel { d, a, b, p })
        }
        "ISETP" => {
            // ISETP.cmp[.U32].AND Pd, PT, Ra, B, Pc
            arity(ops, 5, ctx, "ISETP")?;
            let cmp = cmp_from(suffixes).ok_or(AsmError {
                line,
                msg: "ISETP needs a comparison suffix".into(),
            })?;
            let u32 = suffixes.contains(&"U32");
            let p = want_pred(&ops[0], ctx)?.pred;
            let (a, _) = want_reg(&ops[2], ctx, reuse, Some(0))?;
            let (b, _) = want_srcb(&ops[3], ctx, false, reuse, Some(1))?;
            let combine = want_pred(&ops[4], ctx)?;
            Ok(Op::Isetp {
                p,
                cmp,
                u32,
                a,
                b,
                combine,
            })
        }
        "P2R" => {
            // P2R Rd, PR, Ra, mask
            arity(ops, 4, ctx, "P2R")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let (a, _) = want_reg(&ops[2], ctx, reuse, Some(0))?;
            let mask = want_int(&ops[3], ctx)? as u32;
            Ok(Op::P2r { d, a, mask })
        }
        "R2P" => {
            // R2P PR, Ra, mask
            arity(ops, 3, ctx, "R2P")?;
            let (a, _) = want_reg(&ops[1], ctx, reuse, Some(0))?;
            let mask = want_int(&ops[2], ctx)? as u32;
            Ok(Op::R2p { a, mask })
        }
        "S2R" => {
            arity(ops, 2, ctx, "S2R")?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            match &ops[1] {
                Tok::Special(sr) => Ok(Op::S2r { d, sr: *sr }),
                other => err(
                    line,
                    format!("expected special register, got {}", other.describe()),
                ),
            }
        }
        "LDG" | "LDS" => {
            arity(ops, 2, ctx, base)?;
            let (d, _) = want_reg(&ops[0], ctx, reuse, None)?;
            let addr = want_addr(&ops[1], ctx)?;
            Ok(Op::Ld {
                space: if base == "LDG" {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                },
                width: mem_width(suffixes),
                d,
                addr,
            })
        }
        "STG" | "STS" => {
            arity(ops, 2, ctx, base)?;
            let addr = want_addr(&ops[0], ctx)?;
            let (src, _) = want_reg(&ops[1], ctx, reuse, None)?;
            Ok(Op::St {
                space: if base == "STG" {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                },
                width: mem_width(suffixes),
                addr,
                src,
            })
        }
        "BAR" => Ok(Op::BarSync),
        "BRA" => {
            arity(ops, 1, ctx, "BRA")?;
            match &ops[0] {
                Tok::Label(l) => {
                    let target = *ctx.labels.get(l).ok_or(AsmError {
                        line,
                        msg: format!("undefined label {l}"),
                    })?;
                    Ok(Op::Bra { target })
                }
                Tok::Int { v, .. } => Ok(Op::Bra { target: *v as u32 }),
                other => err(line, format!("expected label, got {}", other.describe())),
            }
        }
        "EXIT" => Ok(Op::Exit),
        "NOP" => Ok(Op::Nop),
        other => err(line, format!("unknown mnemonic {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    #[test]
    fn assembles_minimal_kernel() {
        let src = r#"
.kernel axpy
.smem 0
.params 24
    --:-:-:Y:1   S2R R0, SR_TID.X;
    --:-:-:Y:6   MOV R2, c[0x0][0x160];
    --:-:1:-:2   LDG.E R4, [R2+0x10];
    01:-:-:Y:4   FFMA R4, R4, 2.0, RZ;
    --:-:-:Y:5   EXIT;
"#;
        let m = assemble(src).unwrap();
        assert_eq!(m.info.name, "axpy");
        assert_eq!(m.insts.len(), 5);
        assert_eq!(m.info.param_bytes, 24);
        match m.insts[3].op {
            Op::Ffma {
                b: SrcB::Imm(bits), ..
            } => assert_eq!(f32::from_bits(bits), 2.0),
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.insts[2].ctrl.write_bar, Some(1));
        assert_eq!(m.insts[3].ctrl.wait_mask, 0b01);
    }

    #[test]
    fn guard_and_labels() {
        let src = r#"
LOOP:
    --:-:-:Y:4   IADD3 R0, R0, -1, RZ;
    --:-:-:Y:4   ISETP.GT.AND P0, PT, R0, 0, PT;
    --:-:-:Y:5   @P0 BRA `(LOOP);
    --:-:-:Y:5   EXIT;
"#;
        let m = assemble(src).unwrap();
        assert_eq!(m.insts[2].guard, PredGuard::on(Pred(0)));
        assert_eq!(m.insts[2].op, Op::Bra { target: 0 });
        match m.insts[0].op {
            Op::Iadd3 {
                b: SrcB::Imm(v),
                neg_b,
                ..
            } => {
                // -1 parses as an integer immediate, not a negated operand.
                assert!(v == 0xffff_ffff && !neg_b || v == 1 && neg_b);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_aliases() {
        let src = r#"
.def tid R7
.def ptr R2
    --:-:-:Y:1  S2R tid, SR_TID.X;
    --:-:-:Y:1  LDG.E.128 R8, [ptr+0x40];
    --:-:-:Y:1  STS [tid], R8;
"#;
        let m = assemble(src).unwrap();
        assert_eq!(
            m.insts[0].op,
            Op::S2r {
                d: Reg(7),
                sr: SpecialReg::TidX
            }
        );
        match m.insts[1].op {
            Op::Ld { addr, width, .. } => {
                assert_eq!(addr.base, Reg(2));
                assert_eq!(addr.offset, 0x40);
                assert_eq!(width, MemWidth::B128);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reuse_suffix_sets_ctrl_bits() {
        let m = assemble("--:-:-:Y:2  FFMA R1, R65, R80.reuse, R1;").unwrap();
        assert_eq!(m.insts[0].ctrl.reuse, 0b010);
        let m = assemble("FFMA R1, R65.reuse, R80.reuse, R1;").unwrap();
        assert_eq!(m.insts[0].ctrl.reuse, 0b011);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("\n\n   FROB R1, R2;").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("FROB"));
        let e = assemble("BRA `(NOWHERE);").unwrap_err();
        assert!(e.msg.contains("NOWHERE"));
        let e = assemble("FFMA R1, R2;").unwrap_err();
        assert!(e.msg.contains("expects 4 operands"));
    }

    #[test]
    fn disasm_asm_round_trip() {
        let src = r#"
.kernel rt
    --:-:-:Y:1   S2R R0, SR_CTAID.Y;
    --:-:0:-:2   LDG.E.128 R4, [R2+0x10];
    01:-:-:Y:4   FFMA R8, R4, R5.reuse, R8;
    --:-:-:Y:4   FADD R9, -R8, 1.5;
    --:-:-:Y:4   IADD3 R1, R1, 0x20, RZ;
    --:-:-:-:4   ISETP.LT.U32.AND P2, PT, R1, c[0x0][0x168], PT;
    --:1:-:Y:2   STS.64 [R30+0x100], R8;
    3f:-:-:Y:1   BAR.SYNC 0x0;
    --:-:-:Y:1   P2R R10, PR, RZ, 0xffff;
    --:-:-:Y:1   R2P PR, R10, 0xf;
    --:-:-:Y:1   SEL R3, R4, R5, !P1;
    --:-:-:Y:1   SHF.R.U32 R3, R3, 0x4, RZ;
    --:-:-:Y:5   EXIT;
"#;
        let m = assemble(src).unwrap();
        let text = disassemble(&m.insts);
        let m2 = assemble(&text).unwrap();
        assert_eq!(m2.insts, m.insts, "\n== disassembly ==\n{text}");
    }

    #[test]
    fn const_operand_parses() {
        let m = assemble("MOV R2, c[0x0][0x160];").unwrap();
        assert_eq!(
            m.insts[0].op,
            Op::Mov {
                d: Reg(2),
                b: SrcB::Const(0x160)
            }
        );
    }

    #[test]
    fn comments_are_stripped() {
        let m = assemble("NOP; // trailing\n# full line\nEXIT;").unwrap();
        assert_eq!(m.insts.len(), 2);
    }
}
