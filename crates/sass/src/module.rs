//! Assembled kernel modules — our equivalent of the `.cubin` files TuringAs
//! produces, loadable by the `gpusim` runtime.

use crate::encode::{decode, encode, DecodeError};
use crate::isa::{Instruction, Op};

/// Metadata for one kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelInfo {
    /// Kernel entry name.
    pub name: String,
    /// Registers per thread the kernel requires (highest index used + 1).
    /// Must be ≤ 253 for a launch to be accepted (§5.2.1, footnote 7).
    pub num_regs: u16,
    /// Static shared memory per block, bytes.
    pub smem_bytes: u32,
    /// Kernel parameter area size, bytes (placed at `c[0x0][0x160]`).
    pub param_bytes: u32,
}

/// An assembled kernel: metadata plus its instruction stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    pub info: KernelInfo,
    pub insts: Vec<Instruction>,
}

/// Highest register index referenced (sources or destinations), ignoring RZ.
pub fn max_reg_used(insts: &[Instruction]) -> Option<u8> {
    let mut max: Option<u8> = None;
    let mut bump = |r: crate::reg::Reg| {
        if !r.is_rz() {
            max = Some(max.map_or(r.0, |m| m.max(r.0)));
        }
    };
    for inst in insts {
        if let Some((d, n)) = inst.op.dst_regs() {
            for i in 0..n {
                bump(d.offset(i));
            }
        }
        for (_, r) in inst.op.src_regs() {
            bump(r);
        }
    }
    max
}

impl Module {
    /// Build a module, deriving `num_regs` from the instruction stream.
    pub fn new(
        name: impl Into<String>,
        smem_bytes: u32,
        param_bytes: u32,
        insts: Vec<Instruction>,
    ) -> Self {
        let num_regs = max_reg_used(&insts).map_or(0, |m| m as u16 + 1);
        Module {
            info: KernelInfo {
                name: name.into(),
                num_regs,
                smem_bytes,
                param_bytes,
            },
            insts,
        }
    }

    /// True if any instruction is a block-wide barrier.
    pub fn uses_barriers(&self) -> bool {
        self.insts.iter().any(|i| matches!(i.op, Op::BarSync))
    }

    /// Serialize to our binary container format.
    ///
    /// Layout: magic `b"WCUB"`, u16 version, u16 name length, name bytes,
    /// u16 num_regs, u32 smem, u32 params, u32 inst count, then 16 bytes per
    /// instruction (little-endian u128).
    pub fn to_cubin(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(32 + self.insts.len() * 16);
        v.extend_from_slice(b"WCUB");
        v.extend_from_slice(&1u16.to_le_bytes());
        let name = self.info.name.as_bytes();
        v.extend_from_slice(&(name.len() as u16).to_le_bytes());
        v.extend_from_slice(name);
        v.extend_from_slice(&self.info.num_regs.to_le_bytes());
        v.extend_from_slice(&self.info.smem_bytes.to_le_bytes());
        v.extend_from_slice(&self.info.param_bytes.to_le_bytes());
        v.extend_from_slice(&(self.insts.len() as u32).to_le_bytes());
        for inst in &self.insts {
            v.extend_from_slice(&encode(inst).to_le_bytes());
        }
        v
    }

    /// Deserialize from the binary container format.
    pub fn from_cubin(bytes: &[u8]) -> Result<Module, ModuleError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ModuleError> {
            if *pos + n > bytes.len() {
                return Err(ModuleError::Truncated);
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != b"WCUB" {
            return Err(ModuleError::BadMagic);
        }
        let version = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
        if version != 1 {
            return Err(ModuleError::BadVersion(version));
        }
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| ModuleError::BadName)?;
        let num_regs = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
        let smem_bytes = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let param_bytes = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut insts = Vec::with_capacity(count);
        for _ in 0..count {
            let w = u128::from_le_bytes(take(&mut pos, 16)?.try_into().unwrap());
            insts.push(decode(w).map_err(ModuleError::Decode)?);
        }
        Ok(Module {
            info: KernelInfo {
                name,
                num_regs,
                smem_bytes,
                param_bytes,
            },
            insts,
        })
    }
}

/// Errors deserializing a module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModuleError {
    BadMagic,
    BadVersion(u16),
    BadName,
    Truncated,
    Decode(DecodeError),
}

impl std::fmt::Display for ModuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModuleError::BadMagic => write!(f, "bad magic"),
            ModuleError::BadVersion(v) => write!(f, "unsupported version {v}"),
            ModuleError::BadName => write!(f, "kernel name is not UTF-8"),
            ModuleError::Truncated => write!(f, "truncated module"),
            ModuleError::Decode(e) => write!(f, "instruction decode: {e}"),
        }
    }
}

impl std::error::Error for ModuleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::build::*;
    use crate::isa::MemWidth;
    use crate::reg::Reg;

    fn sample() -> Module {
        Module::new(
            "axpy",
            1024,
            24,
            vec![
                Instruction::new(s2r(Reg(0), crate::isa::SpecialReg::TidX)),
                Instruction::new(ldg(MemWidth::B32, Reg(4), Reg(2), 0)),
                Instruction::new(ffma(Reg(6), Reg(4), Reg(5), Reg(6))),
                Instruction::new(Op::Exit),
            ],
        )
    }

    #[test]
    fn num_regs_derived() {
        let m = sample();
        assert_eq!(m.info.num_regs, 7);
    }

    #[test]
    fn cubin_round_trip() {
        let m = sample();
        let bytes = m.to_cubin();
        let back = Module::from_cubin(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Module::from_cubin(b"nope"), Err(ModuleError::BadMagic));
        let mut bytes = sample().to_cubin();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(Module::from_cubin(&bytes), Err(ModuleError::Truncated));
    }

    #[test]
    fn barrier_detection() {
        assert!(!sample().uses_barriers());
        let m = Module::new("b", 0, 0, vec![Instruction::new(Op::BarSync)]);
        assert!(m.uses_barriers());
    }

    #[test]
    fn empty_module_round_trips() {
        let m = Module::new("empty", 0, 0, vec![]);
        assert_eq!(m.info.num_regs, 0);
        assert_eq!(Module::from_cubin(&m.to_cubin()).unwrap(), m);
    }
}
