//! Per-instruction control codes.
//!
//! On Volta/Turing every 128-bit instruction embeds scheduling information
//! that the hardware obeys blindly — it is the compiler's (or assembler
//! programmer's) job to prevent data hazards (§5.1.4 of the paper):
//!
//! * **stall** — number of cycles to wait before the same warp may issue its
//!   next instruction (covers fixed-latency producers like `FFMA`);
//! * **yield flag** — when *set*, the warp scheduler prefers to keep issuing
//!   from the current warp; when *clear*, it prefers to switch to another
//!   warp, which costs one extra cycle and disables the register reuse cache.
//!   §6.1 shows tuning this bit alone is worth ~10% throughput;
//! * **write barrier** — scoreboard index (0–5) that a variable-latency
//!   instruction (e.g. `LDG`) signals when its *result* is ready;
//! * **read barrier** — scoreboard index signalled when the instruction's
//!   *source operands* have been consumed (protects against WAR on the
//!   registers a store reads);
//! * **wait mask** — 6-bit mask of scoreboards this instruction must wait on
//!   before issuing;
//! * **reuse flags** — 4 bits marking source operand slots whose register
//!   value is latched in the operand-reuse cache, avoiding a register-bank
//!   access (and bank conflict) if the next instruction reads the same
//!   register in the same slot.
//!
//! The text syntax mirrors maxas/TuringAs: `WW:R:W:Y:S` where `WW` is the
//! hex wait mask (`--` for none), `R`/`W` are read/write barrier indices
//! (`-` for none), `Y` or `-` for the yield flag, and `S` the stall count,
//! e.g. `01:-:2:Y:4`.

/// Scheduling control attached to every instruction. See module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ctrl {
    /// Cycles before the same warp may issue again (0–15).
    pub stall: u8,
    /// Yield flag: `true` = prefer to stay on this warp.
    pub yield_flag: bool,
    /// Scoreboard signalled when this instruction's result lands (0–5).
    pub write_bar: Option<u8>,
    /// Scoreboard signalled when this instruction's sources are read (0–5).
    pub read_bar: Option<u8>,
    /// Mask of scoreboards (bits 0–5) to wait on before issue.
    pub wait_mask: u8,
    /// Operand-slot reuse flags (bits 0–3).
    pub reuse: u8,
}

impl Ctrl {
    /// Default control: stall 1, yield set, no barriers.
    ///
    /// Yield defaults to *set* because §6.1 shows the "Natural" strategy
    /// (never clearing the bit) is the fastest; emitters opt in to clearing.
    pub fn new() -> Self {
        Ctrl {
            stall: 1,
            yield_flag: true,
            write_bar: None,
            read_bar: None,
            wait_mask: 0,
            reuse: 0,
        }
    }

    /// Control with just a stall count.
    pub fn stall(n: u8) -> Self {
        Ctrl {
            stall: n,
            ..Ctrl::new()
        }
    }

    /// Builder: set stall.
    pub fn with_stall(mut self, n: u8) -> Self {
        assert!(n < 16, "stall count must be 0-15");
        self.stall = n;
        self
    }

    /// Builder: clear the yield flag (prefer switching warps).
    pub fn no_yield(mut self) -> Self {
        self.yield_flag = false;
        self
    }

    /// Builder: set write scoreboard.
    pub fn with_write_bar(mut self, b: u8) -> Self {
        assert!(b < 6, "scoreboard index must be 0-5");
        self.write_bar = Some(b);
        self
    }

    /// Builder: set read scoreboard.
    pub fn with_read_bar(mut self, b: u8) -> Self {
        assert!(b < 6, "scoreboard index must be 0-5");
        self.read_bar = Some(b);
        self
    }

    /// Builder: wait on scoreboard `b`.
    pub fn wait_on(mut self, b: u8) -> Self {
        assert!(b < 6, "scoreboard index must be 0-5");
        self.wait_mask |= 1 << b;
        self
    }

    /// Builder: wait on a raw mask.
    pub fn with_wait_mask(mut self, m: u8) -> Self {
        assert!(m < 64, "wait mask must fit in 6 bits");
        self.wait_mask = m;
        self
    }

    /// Builder: mark source slot `i` (0–3) for operand reuse.
    pub fn reuse_slot(mut self, i: u8) -> Self {
        assert!(i < 4, "reuse slot must be 0-3");
        self.reuse |= 1 << i;
        self
    }

    /// Render in the maxas-style `WW:R:W:Y:S` text form.
    pub fn to_text(&self) -> String {
        let wait = if self.wait_mask == 0 {
            "--".to_string()
        } else {
            format!("{:02x}", self.wait_mask)
        };
        let rb = self.read_bar.map_or("-".to_string(), |b| b.to_string());
        let wb = self.write_bar.map_or("-".to_string(), |b| b.to_string());
        let y = if self.yield_flag { "Y" } else { "-" };
        format!("{wait}:{rb}:{wb}:{y}:{}", self.stall)
    }

    /// Parse the maxas-style text form. Returns `None` on malformed input.
    pub fn from_text(s: &str) -> Option<Ctrl> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 5 {
            return None;
        }
        let wait_mask = if parts[0] == "--" {
            0
        } else {
            u8::from_str_radix(parts[0], 16).ok().filter(|&m| m < 64)?
        };
        let parse_bar = |p: &str| -> Option<Option<u8>> {
            if p == "-" {
                Some(None)
            } else {
                p.parse::<u8>().ok().filter(|&b| b < 6).map(Some)
            }
        };
        let read_bar = parse_bar(parts[1])?;
        let write_bar = parse_bar(parts[2])?;
        let yield_flag = match parts[3] {
            "Y" | "y" => true,
            "-" => false,
            _ => return None,
        };
        let stall = parts[4].parse::<u8>().ok().filter(|&s| s < 16)?;
        // Reuse flags are attached to operands in the text syntax (`.reuse`),
        // not to the control prefix, so they start at zero here.
        Some(Ctrl {
            stall,
            yield_flag,
            write_bar,
            read_bar,
            wait_mask,
            reuse: 0,
        })
    }
}

impl Default for Ctrl {
    fn default() -> Self {
        Ctrl::new()
    }
}

impl std::fmt::Display for Ctrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let c = Ctrl::new()
            .with_stall(4)
            .no_yield()
            .with_write_bar(2)
            .with_read_bar(0)
            .wait_on(1)
            .wait_on(5);
        let t = c.to_text();
        assert_eq!(t, "22:0:2:-:4");
        assert_eq!(Ctrl::from_text(&t).unwrap(), c);
    }

    #[test]
    fn default_text() {
        assert_eq!(Ctrl::new().to_text(), "--:-:-:Y:1");
        assert_eq!(Ctrl::from_text("--:-:-:Y:1").unwrap(), Ctrl::new());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Ctrl::from_text("--:-:-:Y").is_none());
        assert!(Ctrl::from_text("--:-:-:Z:1").is_none());
        assert!(Ctrl::from_text("--:9:-:Y:1").is_none());
        assert!(Ctrl::from_text("--:-:-:Y:16").is_none());
        assert!(Ctrl::from_text("7f:-:-:Y:1").is_none());
    }

    #[test]
    #[should_panic(expected = "stall count")]
    fn stall_bounds_checked() {
        let _ = Ctrl::new().with_stall(16);
    }

    #[test]
    fn wait_mask_accumulates() {
        let c = Ctrl::new().wait_on(0).wait_on(3);
        assert_eq!(c.wait_mask, 0b1001);
    }

    #[test]
    fn reuse_slots() {
        let c = Ctrl::new().reuse_slot(1).reuse_slot(2);
        assert_eq!(c.reuse, 0b0110);
    }
}
