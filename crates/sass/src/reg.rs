//! Register and predicate-register names.

/// A regular 32-bit register `R0`–`R254`, or the zero register `RZ` (255).
///
/// Volta/Turing expose 255 architectural registers per thread; `RZ` reads as
/// zero and discards writes (§5.1.2 of the paper). The paper notes that in
/// practice kernels must stay below 253 registers for the hardware to accept
/// the encoding — the simulator's occupancy calculator enforces the same
/// limit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// The zero register.
pub const RZ: Reg = Reg(255);

impl Reg {
    /// True for the zero register.
    pub fn is_rz(self) -> bool {
        self.0 == 255
    }

    /// Register bank on Volta/Turing: two 64-bit banks, odd-indexed registers
    /// in one and even-indexed in the other (§5.2.2). `RZ` conflicts with
    /// nothing.
    pub fn bank(self) -> Option<u8> {
        if self.is_rz() {
            None
        } else {
            Some(self.0 & 1)
        }
    }

    /// The `i`-th register of a vector operand starting at `self`
    /// (e.g. `LDG.128 R4` writes `R4..R7`). Saturates at `R254`; a vector
    /// operand that would run past the register file is invalid and is
    /// rejected by the launch-time checks in `gpusim`.
    pub fn offset(self, i: u8) -> Reg {
        if self.is_rz() {
            RZ
        } else {
            Reg((self.0 as u16 + i as u16).min(254) as u8)
        }
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_rz() {
            write!(f, "RZ")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

impl std::fmt::Debug for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

/// A predicate register `P0`–`P6`, or the true predicate `PT` (7).
///
/// Each thread has 7 one-bit predicate registers (§5.2.1); `PT` always reads
/// true and discards writes. The scarcity of predicate registers is exactly
/// why the paper needs `P2R`/`R2P` packing for the 16 zero-padding masks
/// (§3.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub u8);

/// The always-true predicate.
pub const PT: Pred = Pred(7);

impl Pred {
    /// True for the constant-true predicate.
    pub fn is_pt(self) -> bool {
        self.0 == 7
    }
}

impl std::fmt::Display for Pred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_pt() {
            write!(f, "PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

impl std::fmt::Debug for Pred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rz_formats_and_banks() {
        assert_eq!(RZ.to_string(), "RZ");
        assert_eq!(Reg(0).to_string(), "R0");
        assert_eq!(Reg(254).to_string(), "R254");
        assert_eq!(RZ.bank(), None);
        assert_eq!(Reg(4).bank(), Some(0));
        assert_eq!(Reg(5).bank(), Some(1));
    }

    #[test]
    fn vector_offsets() {
        assert_eq!(Reg(4).offset(3), Reg(7));
        assert_eq!(RZ.offset(3), RZ);
    }

    #[test]
    fn pt_formats() {
        assert_eq!(PT.to_string(), "PT");
        assert_eq!(Pred(0).to_string(), "P0");
        assert!(PT.is_pt());
        assert!(!Pred(6).is_pt());
    }
}
