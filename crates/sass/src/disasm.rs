//! Disassembly: render instructions back to the text syntax accepted by
//! [`crate::asm::assemble`]. `asm(disasm(m)) == m` is property-tested.

use crate::isa::*;
use crate::reg::Reg;

fn fmt_srcb(b: &SrcB, neg: bool) -> String {
    let sign = if neg { "-" } else { "" };
    match b {
        SrcB::Reg(r) => format!("{sign}{r}"),
        SrcB::Imm(v) => format!("{sign}{:#x}", v),
        SrcB::Const(off) => format!("{sign}c[0x0][{:#x}]", off),
    }
}

fn fmt_reg(r: Reg, neg: bool) -> String {
    if neg {
        format!("-{r}")
    } else {
        r.to_string()
    }
}

fn fmt_addr(a: &Addr) -> String {
    if a.offset == 0 {
        format!("[{}]", a.base)
    } else if a.offset > 0 {
        format!("[{}+{:#x}]", a.base, a.offset)
    } else {
        format!("[{}-{:#x}]", a.base, -a.offset)
    }
}

fn fmt_pred_src(p: &PredSrc) -> String {
    if p.neg {
        format!("!{}", p.pred)
    } else {
        p.pred.to_string()
    }
}

/// Render the operation body (mnemonic + operands, no guard/ctrl/semicolon).
pub fn op_text(op: &Op) -> String {
    match op {
        Op::Ffma {
            d,
            a,
            b,
            c,
            neg_b,
            neg_c,
        } => {
            format!(
                "FFMA {d}, {a}, {}, {}",
                fmt_srcb(b, *neg_b),
                fmt_reg(*c, *neg_c)
            )
        }
        Op::Fadd {
            d,
            a,
            neg_a,
            b,
            neg_b,
        } => {
            format!("FADD {d}, {}, {}", fmt_reg(*a, *neg_a), fmt_srcb(b, *neg_b))
        }
        Op::Fmul { d, a, b, neg_b } => {
            format!("FMUL {d}, {a}, {}", fmt_srcb(b, *neg_b))
        }
        Op::Hfma2 { d, a, b, c } => {
            format!("HFMA2 {d}, {a}, {}, {c}", fmt_srcb(b, false))
        }
        Op::Hadd2 {
            d,
            a,
            neg_a,
            b,
            neg_b,
        } => {
            format!(
                "HADD2 {d}, {}, {}",
                fmt_reg(*a, *neg_a),
                fmt_srcb(b, *neg_b)
            )
        }
        Op::Hmul2 { d, a, b } => {
            format!("HMUL2 {d}, {a}, {}", fmt_srcb(b, false))
        }
        Op::Fsetp {
            p,
            cmp,
            a,
            b,
            combine,
        } => {
            format!(
                "FSETP.{}.AND {p}, PT, {a}, {}, {}",
                cmp.name(),
                fmt_srcb(b, false),
                fmt_pred_src(combine)
            )
        }
        Op::Iadd3 {
            d,
            a,
            neg_a,
            b,
            neg_b,
            c,
            neg_c,
        } => {
            format!(
                "IADD3 {d}, {}, {}, {}",
                fmt_reg(*a, *neg_a),
                fmt_srcb(b, *neg_b),
                fmt_reg(*c, *neg_c)
            )
        }
        Op::Imad { d, a, b, c } => format!("IMAD {d}, {a}, {}, {c}", fmt_srcb(b, false)),
        Op::ImadHi { d, a, b, c } => {
            format!("IMAD.HI.U32 {d}, {a}, {}, {c}", fmt_srcb(b, false))
        }
        Op::ImadWide { d, a, b, c } => {
            format!("IMAD.WIDE.U32 {d}, {a}, {}, {c}", fmt_srcb(b, false))
        }
        Op::Lea { d, a, b, shift } => {
            format!("LEA {d}, {a}, {}, {:#x}", fmt_srcb(b, false), shift)
        }
        Op::Lop3 { d, a, b, c, lut } => {
            format!("LOP3.LUT {d}, {a}, {}, {c}, {:#x}", fmt_srcb(b, false), lut)
        }
        Op::Shf {
            d,
            lo,
            shift,
            hi,
            right,
            u32_mode,
        } => {
            let dir = if *right { "R" } else { "L" };
            let mode = if *u32_mode { ".U32" } else { "" };
            format!(
                "SHF.{dir}{mode} {d}, {lo}, {}, {hi}",
                fmt_srcb(shift, false)
            )
        }
        Op::Mov { d, b } => format!("MOV {d}, {}", fmt_srcb(b, false)),
        Op::Sel { d, a, b, p } => {
            format!("SEL {d}, {a}, {}, {}", fmt_srcb(b, false), fmt_pred_src(p))
        }
        Op::Isetp {
            p,
            cmp,
            u32,
            a,
            b,
            combine,
        } => {
            let u = if *u32 { ".U32" } else { "" };
            format!(
                "ISETP.{}{u}.AND {p}, PT, {a}, {}, {}",
                cmp.name(),
                fmt_srcb(b, false),
                fmt_pred_src(combine)
            )
        }
        Op::P2r { d, a, mask } => format!("P2R {d}, PR, {a}, {:#x}", mask),
        Op::R2p { a, mask } => format!("R2P PR, {a}, {:#x}", mask),
        Op::S2r { d, sr } => format!("S2R {d}, {}", sr.name()),
        Op::Ld {
            space,
            width,
            d,
            addr,
        } => {
            let (name, e) = match space {
                MemSpace::Global => ("LDG", ".E"),
                MemSpace::Shared => ("LDS", ""),
            };
            let w = match width {
                MemWidth::B32 => "",
                MemWidth::B64 => ".64",
                MemWidth::B128 => ".128",
            };
            format!("{name}{e}{w} {d}, {}", fmt_addr(addr))
        }
        Op::St {
            space,
            width,
            addr,
            src,
        } => {
            let (name, e) = match space {
                MemSpace::Global => ("STG", ".E"),
                MemSpace::Shared => ("STS", ""),
            };
            let w = match width {
                MemWidth::B32 => "",
                MemWidth::B64 => ".64",
                MemWidth::B128 => ".128",
            };
            format!("{name}{e}{w} {}, {src}", fmt_addr(addr))
        }
        Op::BarSync => "BAR.SYNC 0x0".to_string(),
        Op::Bra { target } => format!("BRA `(.L{target})"),
        Op::Exit => "EXIT".to_string(),
        Op::Nop => "NOP".to_string(),
    }
}

/// Render one full instruction line: `ctrl  [@guard] OP ...;`.
///
/// Reuse flags are rendered as `.reuse` suffixes on the matching operand
/// slots, like real SASS listings.
pub fn inst_text(inst: &Instruction) -> String {
    let mut body = op_text(&inst.op);
    // Attach `.reuse` to register operands by slot, in slot order a,b,c.
    if inst.ctrl.reuse != 0 {
        body = attach_reuse(&body, &inst.op, inst.ctrl.reuse);
    }
    let guard = if inst.guard.is_always() {
        String::new()
    } else if inst.guard.neg {
        format!("@!{} ", inst.guard.pred)
    } else {
        format!("@{} ", inst.guard.pred)
    };
    format!("{}  {guard}{body};", inst.ctrl.to_text())
}

fn attach_reuse(body: &str, op: &Op, reuse: u8) -> String {
    // Find register operands by slot and suffix them with `.reuse`.
    // We re-render operand by operand: split at commas after the mnemonic.
    let (mnemonic, rest) = match body.split_once(' ') {
        Some(x) => x,
        None => return body.to_string(),
    };
    let mut parts: Vec<String> = rest.split(", ").map(str::to_string).collect();
    // Map operand text position -> slot. Slot layout depends on the op shape:
    // for 3-src ALU ops the operand list is d, a, b, c -> slots -, 0, 1, 2.
    let slot_of_part: Vec<Option<u8>> = match op {
        Op::Ffma { .. }
        | Op::Hfma2 { .. }
        | Op::Iadd3 { .. }
        | Op::Imad { .. }
        | Op::ImadHi { .. }
        | Op::ImadWide { .. }
        | Op::Lop3 { .. } => {
            vec![None, Some(0), Some(1), Some(2)]
        }
        Op::Fadd { .. }
        | Op::Fmul { .. }
        | Op::Hadd2 { .. }
        | Op::Hmul2 { .. }
        | Op::Lea { .. } => {
            vec![None, Some(0), Some(1)]
        }
        Op::Shf { .. } => vec![None, Some(0), Some(1), Some(2)],
        _ => vec![],
    };
    for (i, slot) in slot_of_part.iter().enumerate() {
        if let Some(s) = slot {
            if reuse & (1 << s) != 0 && i < parts.len() && parts[i].contains('R') {
                parts[i] = format!("{}.reuse", parts[i]);
            }
        }
    }
    format!("{mnemonic} {}", parts.join(", "))
}

/// Disassemble a whole instruction sequence with labels for branch targets.
pub fn disassemble(insts: &[Instruction]) -> String {
    use std::collections::BTreeSet;
    let targets: BTreeSet<u32> = insts
        .iter()
        .filter_map(|i| match i.op {
            Op::Bra { target } => Some(target),
            _ => None,
        })
        .collect();
    let mut out = String::new();
    for (idx, inst) in insts.iter().enumerate() {
        if targets.contains(&(idx as u32)) {
            out.push_str(&format!(".L{idx}:\n"));
        }
        out.push_str(&format!("    {}\n", inst_text(inst)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctrl::Ctrl;
    use crate::isa::build::*;
    use crate::reg::{Pred, Reg, RZ};

    #[test]
    fn basic_rendering() {
        let i = Instruction::new(ffma(Reg(1), Reg(65), Reg(80), Reg(1)))
            .with_ctrl(Ctrl::new().with_stall(4).reuse_slot(1));
        let t = inst_text(&i);
        assert_eq!(t, "--:-:-:Y:4  FFMA R1, R65, R80.reuse, R1;");
    }

    #[test]
    fn guarded_load() {
        let i = Instruction::new(ldg(MemWidth::B32, Reg(0), Reg(2), 16))
            .with_guard(PredGuard::on(Pred(1)))
            .with_ctrl(Ctrl::new().with_write_bar(0).with_stall(2));
        assert_eq!(inst_text(&i), "--:-:0:Y:2  @P1 LDG.E R0, [R2+0x10];");
    }

    #[test]
    fn negative_offset_and_neg_operands() {
        let i = Instruction::new(lds(MemWidth::B128, Reg(80), Reg(30), -32));
        assert!(inst_text(&i).contains("LDS.128 R80, [R30-0x20]"));
        let i = Instruction::new(fsub(Reg(0), Reg(1), Reg(2)));
        assert!(inst_text(&i).contains("FADD R0, R1, -R2"));
    }

    #[test]
    fn labels_emitted_for_branch_targets() {
        let prog = vec![
            Instruction::new(mov(Reg(0), 0u32)),
            Instruction::new(Op::Bra { target: 1 }),
            Instruction::new(Op::Exit),
        ];
        let text = disassemble(&prog);
        assert!(text.contains(".L1:"), "{text}");
        assert!(text.contains("BRA `(.L1)"), "{text}");
    }

    #[test]
    fn sts_renders_src_after_addr() {
        let i = Instruction::new(sts(MemWidth::B32, Reg(5), 4, Reg(9)));
        assert!(inst_text(&i).contains("STS [R5+0x4], R9"));
    }

    #[test]
    fn p2r_r2p_render() {
        let i = Instruction::new(Op::P2r {
            d: Reg(3),
            a: RZ,
            mask: 0xf,
        });
        assert!(inst_text(&i).contains("P2R R3, PR, RZ, 0xf"));
        let i = Instruction::new(Op::R2p {
            a: Reg(3),
            mask: 0xf0,
        });
        assert!(inst_text(&i).contains("R2P PR, R3, 0xf0"));
    }
}
