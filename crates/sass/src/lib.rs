//! `sass` — an assembler for a Volta/Turing-style native GPU ISA.
//!
//! This crate is the workspace's analog of **TuringAs**, the SASS assembler
//! the paper releases for NVIDIA Volta and Turing GPUs (§5). It implements:
//!
//! * the instruction set the paper's kernels need (FFMA/FADD/IADD3/IMAD/
//!   ISETP/LEA/LOP3/SHF/MOV/SEL/S2R/**P2R/R2P**/LDG/STG/LDS/STS/BAR/BRA/EXIT…),
//! * the per-instruction **control code** — stall count, **yield flag**,
//!   read/write scoreboard barriers, wait mask and operand **reuse flags** —
//!   whose tuning is the subject of §5.1.4 and §6,
//! * a 128-bit binary encoding following the field layout of the paper's
//!   Figure 6, with a full decoder (round-trip tested),
//! * a text assembler with maxas/TuringAs-style control-code prefixes,
//!   labels, register-name aliases and predication, and
//! * a [`module::Module`] container (our ".cubin") that the `gpusim` crate
//!   loads and executes.
//!
//! The binary format is *our own documented instantiation* of the Figure 6
//! layout: real SASS opcodes are undocumented by NVIDIA, so bit-for-bit
//! compatibility with hardware is neither possible nor the point; what the
//! reproduction needs is the same *structure* (12-bit opcode, operand fields,
//! flags, control section) and the same assembly-level programming model.

pub mod asm;
pub mod ctrl;
pub mod disasm;
pub mod encode;
pub mod half;
pub mod isa;
pub mod island;
pub mod lint;
pub mod module;
pub mod reg;
pub mod tune;

pub use asm::{assemble, AsmError};
pub use ctrl::Ctrl;
pub use disasm::disassemble;
pub use encode::{decode, encode, DecodeError};
pub use isa::{CmpOp, Instruction, MemSpace, MemWidth, Op, PredGuard, SpecialReg, SrcB};
pub use lint::{lint, Diagnostic, Severity};
pub use module::{KernelInfo, Module};
pub use reg::{Pred, Reg, PT, RZ};
