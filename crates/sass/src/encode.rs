//! 128-bit binary encode/decode.
//!
//! The field layout follows the paper's Figure 6 structure:
//!
//! ```text
//! [ 11:  0] opcode (12 bits — §5.1.1)
//! [ 15: 12] guard predicate (3-bit index, 1 negate bit)
//! [ 23: 16] destination register rd
//! [ 31: 24] source register rs0
//! [ 63: 32] immediate / constant offset / rs1 (operand-B area)
//! [ 71: 64] source register rs2
//! [ 79: 72] predicate operand fields
//! [104: 80] flags ("funct") bits
//! [108:105] stall count        ┐
//! [109]     yield flag         │
//! [112:110] write barrier      │ control code (§5.1.4)
//! [115:113] read barrier       │
//! [121:116] wait barrier mask  │
//! [125:122] reuse flags        ┘
//! ```
//!
//! Opcode values for the instructions the paper documents (`FFMA` = 0x223,
//! `FADD` = 0x221, `LDG` = 0x381, `LDS` = 0x984) match the paper; the rest
//! are our own assignments in the same 12-bit space.
//!
//! One deliberate simplification: `BRA` targets are stored as *absolute*
//! instruction indices rather than byte-relative displacements, which keeps
//! modules trivially relocatable inside the simulator.

use crate::ctrl::Ctrl;
use crate::isa::*;
use crate::reg::{Pred, Reg};

// ---- opcode table -----------------------------------------------------------

pub(crate) const OP_FFMA: u16 = 0x223;
pub(crate) const OP_FADD: u16 = 0x221;
pub(crate) const OP_FMUL: u16 = 0x220;
pub(crate) const OP_HFMA2: u16 = 0x231;
pub(crate) const OP_HADD2: u16 = 0x230;
pub(crate) const OP_HMUL2: u16 = 0x232;
pub(crate) const OP_FSETP: u16 = 0x22b;
pub(crate) const OP_IADD3: u16 = 0x210;
pub(crate) const OP_IMAD: u16 = 0x224;
pub(crate) const OP_IMAD_HI: u16 = 0x227;
pub(crate) const OP_IMAD_WIDE: u16 = 0x225;
pub(crate) const OP_LEA: u16 = 0x211;
pub(crate) const OP_LOP3: u16 = 0x212;
pub(crate) const OP_SHF: u16 = 0x219;
pub(crate) const OP_MOV: u16 = 0x202;
pub(crate) const OP_SEL: u16 = 0x207;
pub(crate) const OP_ISETP: u16 = 0x20c;
pub(crate) const OP_P2R: u16 = 0x803;
pub(crate) const OP_R2P: u16 = 0x804;
pub(crate) const OP_S2R: u16 = 0x919;
pub(crate) const OP_LDG: u16 = 0x381;
pub(crate) const OP_STG: u16 = 0x386;
pub(crate) const OP_LDS: u16 = 0x984;
pub(crate) const OP_STS: u16 = 0x388;
pub(crate) const OP_BAR: u16 = 0xb1d;
pub(crate) const OP_BRA: u16 = 0x947;
pub(crate) const OP_EXIT: u16 = 0x94d;
pub(crate) const OP_NOP: u16 = 0x918;

// ---- bitfield helpers -------------------------------------------------------

#[inline]
fn put(w: &mut u128, lo: u32, len: u32, val: u128) {
    debug_assert!(len == 128 || val < (1u128 << len), "field overflow");
    *w |= val << lo;
}

#[inline]
fn get(w: u128, lo: u32, len: u32) -> u128 {
    (w >> lo) & ((1u128 << len) - 1)
}

/// Errors produced by [`decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown 12-bit opcode.
    UnknownOpcode(u16),
    /// A field held an out-of-range value (e.g. bad width code).
    BadField(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#05x}"),
            DecodeError::BadField(name) => write!(f, "bad field: {name}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---- operand-B sub-encoding --------------------------------------------------

const BKIND_REG: u128 = 0;
const BKIND_IMM: u128 = 1;
const BKIND_CONST: u128 = 2;

fn put_srcb(w: &mut u128, b: SrcB) {
    match b {
        SrcB::Reg(r) => {
            put(w, 80, 2, BKIND_REG);
            put(w, 32, 8, r.0 as u128);
        }
        SrcB::Imm(v) => {
            put(w, 80, 2, BKIND_IMM);
            put(w, 32, 32, v as u128);
        }
        SrcB::Const(off) => {
            put(w, 80, 2, BKIND_CONST);
            put(w, 32, 16, off as u128);
        }
    }
}

fn get_srcb(w: u128) -> Result<SrcB, DecodeError> {
    match get(w, 80, 2) {
        BKIND_REG => Ok(SrcB::Reg(Reg(get(w, 32, 8) as u8))),
        BKIND_IMM => Ok(SrcB::Imm(get(w, 32, 32) as u32)),
        BKIND_CONST => Ok(SrcB::Const(get(w, 32, 16) as u16)),
        _ => Err(DecodeError::BadField("operand-B kind")),
    }
}

fn put_cmp(w: &mut u128, cmp: CmpOp) {
    let v = match cmp {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Gt => 2,
        CmpOp::Ge => 3,
        CmpOp::Eq => 4,
        CmpOp::Ne => 5,
    };
    put(w, 84, 3, v);
}

fn get_cmp(w: u128) -> Result<CmpOp, DecodeError> {
    Ok(match get(w, 84, 3) {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        5 => CmpOp::Ne,
        _ => return Err(DecodeError::BadField("cmp op")),
    })
}

fn put_width(w: &mut u128, width: MemWidth) {
    let v = match width {
        MemWidth::B32 => 0,
        MemWidth::B64 => 1,
        MemWidth::B128 => 2,
    };
    put(w, 85, 2, v);
}

fn get_width(w: u128) -> Result<MemWidth, DecodeError> {
    Ok(match get(w, 85, 2) {
        0 => MemWidth::B32,
        1 => MemWidth::B64,
        2 => MemWidth::B128,
        _ => return Err(DecodeError::BadField("memory width")),
    })
}

fn put_pred_ops(w: &mut u128, dst: Pred, src: PredSrc) {
    put(w, 72, 3, dst.0 as u128);
    put(w, 75, 3, src.pred.0 as u128);
    put(w, 78, 1, src.neg as u128);
}

fn get_pred_ops(w: u128) -> (Pred, PredSrc) {
    (
        Pred(get(w, 72, 3) as u8),
        PredSrc {
            pred: Pred(get(w, 75, 3) as u8),
            neg: get(w, 78, 1) != 0,
        },
    )
}

fn put_mem(w: &mut u128, width: MemWidth, addr: Addr) {
    put_width(w, width);
    put(w, 24, 8, addr.base.0 as u128);
    put(w, 32, 24, (addr.offset & 0x00ff_ffff) as u128);
}

fn get_mem(w: u128) -> Result<(MemWidth, Addr), DecodeError> {
    let width = get_width(w)?;
    let base = Reg(get(w, 24, 8) as u8);
    let raw = get(w, 32, 24) as i32;
    let offset = (raw << 8) >> 8; // sign-extend 24-bit
    Ok((width, Addr { base, offset }))
}

// ---- instruction encode ------------------------------------------------------

/// Encode one instruction into a 128-bit word.
pub fn encode(inst: &Instruction) -> u128 {
    let mut w: u128 = 0;
    // Guard.
    put(&mut w, 12, 3, inst.guard.pred.0 as u128);
    put(&mut w, 15, 1, inst.guard.neg as u128);
    // Control code.
    let c = &inst.ctrl;
    put(&mut w, 105, 4, c.stall as u128);
    put(&mut w, 109, 1, c.yield_flag as u128);
    put(&mut w, 110, 3, c.write_bar.map_or(7, |b| b) as u128);
    put(&mut w, 113, 3, c.read_bar.map_or(7, |b| b) as u128);
    put(&mut w, 116, 6, c.wait_mask as u128);
    put(&mut w, 122, 4, c.reuse as u128);

    let opc = |w: &mut u128, v: u16| put(w, 0, 12, v as u128);
    let rd = |w: &mut u128, r: Reg| put(w, 16, 8, r.0 as u128);
    let rs0 = |w: &mut u128, r: Reg| put(w, 24, 8, r.0 as u128);
    let rs2 = |w: &mut u128, r: Reg| put(w, 64, 8, r.0 as u128);

    match inst.op {
        Op::Ffma {
            d,
            a,
            b,
            c,
            neg_b,
            neg_c,
        } => {
            opc(&mut w, OP_FFMA);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            rs2(&mut w, c);
            put(&mut w, 82, 1, neg_b as u128);
            put(&mut w, 83, 1, neg_c as u128);
        }
        Op::Fadd {
            d,
            a,
            neg_a,
            b,
            neg_b,
        } => {
            opc(&mut w, OP_FADD);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            put(&mut w, 82, 1, neg_a as u128);
            put(&mut w, 83, 1, neg_b as u128);
        }
        Op::Fmul { d, a, b, neg_b } => {
            opc(&mut w, OP_FMUL);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            put(&mut w, 83, 1, neg_b as u128);
        }
        Op::Hfma2 { d, a, b, c } => {
            opc(&mut w, OP_HFMA2);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            rs2(&mut w, c);
        }
        Op::Hadd2 {
            d,
            a,
            neg_a,
            b,
            neg_b,
        } => {
            opc(&mut w, OP_HADD2);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            put(&mut w, 82, 1, neg_a as u128);
            put(&mut w, 83, 1, neg_b as u128);
        }
        Op::Hmul2 { d, a, b } => {
            opc(&mut w, OP_HMUL2);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
        }
        Op::Fsetp {
            p,
            cmp,
            a,
            b,
            combine,
        } => {
            opc(&mut w, OP_FSETP);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            put_cmp(&mut w, cmp);
            put_pred_ops(&mut w, p, combine);
        }
        Op::Iadd3 {
            d,
            a,
            neg_a,
            b,
            neg_b,
            c,
            neg_c,
        } => {
            opc(&mut w, OP_IADD3);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            rs2(&mut w, c);
            put(&mut w, 82, 1, neg_a as u128);
            put(&mut w, 83, 1, neg_b as u128);
            put(&mut w, 84, 1, neg_c as u128);
        }
        Op::Imad { d, a, b, c } => {
            opc(&mut w, OP_IMAD);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            rs2(&mut w, c);
        }
        Op::ImadHi { d, a, b, c } => {
            opc(&mut w, OP_IMAD_HI);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            rs2(&mut w, c);
        }
        Op::ImadWide { d, a, b, c } => {
            opc(&mut w, OP_IMAD_WIDE);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            rs2(&mut w, c);
        }
        Op::Lea { d, a, b, shift } => {
            opc(&mut w, OP_LEA);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            put(&mut w, 87, 5, shift as u128);
        }
        Op::Lop3 { d, a, b, c, lut } => {
            opc(&mut w, OP_LOP3);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            rs2(&mut w, c);
            put(&mut w, 92, 8, lut as u128);
        }
        Op::Shf {
            d,
            lo,
            shift,
            hi,
            right,
            u32_mode,
        } => {
            opc(&mut w, OP_SHF);
            rd(&mut w, d);
            rs0(&mut w, lo);
            put_srcb(&mut w, shift);
            rs2(&mut w, hi);
            put(&mut w, 82, 1, right as u128);
            put(&mut w, 83, 1, u32_mode as u128);
        }
        Op::Mov { d, b } => {
            opc(&mut w, OP_MOV);
            rd(&mut w, d);
            put_srcb(&mut w, b);
        }
        Op::Sel { d, a, b, p } => {
            opc(&mut w, OP_SEL);
            rd(&mut w, d);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            put_pred_ops(&mut w, Pred(0), p);
        }
        Op::Isetp {
            p,
            cmp,
            u32,
            a,
            b,
            combine,
        } => {
            opc(&mut w, OP_ISETP);
            rs0(&mut w, a);
            put_srcb(&mut w, b);
            put_cmp(&mut w, cmp);
            put(&mut w, 90, 1, u32 as u128);
            put_pred_ops(&mut w, p, combine);
        }
        Op::P2r { d, a, mask } => {
            opc(&mut w, OP_P2R);
            rd(&mut w, d);
            rs0(&mut w, a);
            put(&mut w, 32, 32, mask as u128);
        }
        Op::R2p { a, mask } => {
            opc(&mut w, OP_R2P);
            rs0(&mut w, a);
            put(&mut w, 32, 32, mask as u128);
        }
        Op::S2r { d, sr } => {
            opc(&mut w, OP_S2R);
            rd(&mut w, d);
            let idx = SpecialReg::ALL.iter().position(|&s| s == sr).unwrap() as u128;
            put(&mut w, 32, 4, idx);
        }
        Op::Ld {
            space,
            width,
            d,
            addr,
        } => {
            opc(
                &mut w,
                if space == MemSpace::Global {
                    OP_LDG
                } else {
                    OP_LDS
                },
            );
            rd(&mut w, d);
            put_mem(&mut w, width, addr);
        }
        Op::St {
            space,
            width,
            addr,
            src,
        } => {
            opc(
                &mut w,
                if space == MemSpace::Global {
                    OP_STG
                } else {
                    OP_STS
                },
            );
            rd(&mut w, src);
            put_mem(&mut w, width, addr);
        }
        Op::BarSync => opc(&mut w, OP_BAR),
        Op::Bra { target } => {
            opc(&mut w, OP_BRA);
            put(&mut w, 32, 32, target as u128);
        }
        Op::Exit => opc(&mut w, OP_EXIT),
        Op::Nop => opc(&mut w, OP_NOP),
    }
    w
}

/// Decode a 128-bit word back into an [`Instruction`].
pub fn decode(w: u128) -> Result<Instruction, DecodeError> {
    let guard = PredGuard {
        pred: Pred(get(w, 12, 3) as u8),
        neg: get(w, 15, 1) != 0,
    };
    let bar = |v: u128| if v == 7 { None } else { Some(v as u8) };
    let ctrl = Ctrl {
        stall: get(w, 105, 4) as u8,
        yield_flag: get(w, 109, 1) != 0,
        write_bar: bar(get(w, 110, 3)),
        read_bar: bar(get(w, 113, 3)),
        wait_mask: get(w, 116, 6) as u8,
        reuse: get(w, 122, 4) as u8,
    };

    let opcode = get(w, 0, 12) as u16;
    let rd = Reg(get(w, 16, 8) as u8);
    let rs0 = Reg(get(w, 24, 8) as u8);
    let rs2 = Reg(get(w, 64, 8) as u8);

    let op = match opcode {
        OP_FFMA => Op::Ffma {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
            c: rs2,
            neg_b: get(w, 82, 1) != 0,
            neg_c: get(w, 83, 1) != 0,
        },
        OP_FADD => Op::Fadd {
            d: rd,
            a: rs0,
            neg_a: get(w, 82, 1) != 0,
            b: get_srcb(w)?,
            neg_b: get(w, 83, 1) != 0,
        },
        OP_FMUL => Op::Fmul {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
            neg_b: get(w, 83, 1) != 0,
        },
        OP_HFMA2 => Op::Hfma2 {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
            c: rs2,
        },
        OP_HADD2 => Op::Hadd2 {
            d: rd,
            a: rs0,
            neg_a: get(w, 82, 1) != 0,
            b: get_srcb(w)?,
            neg_b: get(w, 83, 1) != 0,
        },
        OP_HMUL2 => Op::Hmul2 {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
        },
        OP_FSETP => {
            let (p, combine) = get_pred_ops(w);
            Op::Fsetp {
                p,
                cmp: get_cmp(w)?,
                a: rs0,
                b: get_srcb(w)?,
                combine,
            }
        }
        OP_IADD3 => Op::Iadd3 {
            d: rd,
            a: rs0,
            neg_a: get(w, 82, 1) != 0,
            b: get_srcb(w)?,
            neg_b: get(w, 83, 1) != 0,
            c: rs2,
            neg_c: get(w, 84, 1) != 0,
        },
        OP_IMAD => Op::Imad {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
            c: rs2,
        },
        OP_IMAD_HI => Op::ImadHi {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
            c: rs2,
        },
        OP_IMAD_WIDE => Op::ImadWide {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
            c: rs2,
        },
        OP_LEA => Op::Lea {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
            shift: get(w, 87, 5) as u8,
        },
        OP_LOP3 => Op::Lop3 {
            d: rd,
            a: rs0,
            b: get_srcb(w)?,
            c: rs2,
            lut: get(w, 92, 8) as u8,
        },
        OP_SHF => Op::Shf {
            d: rd,
            lo: rs0,
            shift: get_srcb(w)?,
            hi: rs2,
            right: get(w, 82, 1) != 0,
            u32_mode: get(w, 83, 1) != 0,
        },
        OP_MOV => Op::Mov {
            d: rd,
            b: get_srcb(w)?,
        },
        OP_SEL => {
            let (_, p) = get_pred_ops(w);
            Op::Sel {
                d: rd,
                a: rs0,
                b: get_srcb(w)?,
                p,
            }
        }
        OP_ISETP => {
            let (p, combine) = get_pred_ops(w);
            Op::Isetp {
                p,
                cmp: get_cmp(w)?,
                u32: get(w, 90, 1) != 0,
                a: rs0,
                b: get_srcb(w)?,
                combine,
            }
        }
        OP_P2R => Op::P2r {
            d: rd,
            a: rs0,
            mask: get(w, 32, 32) as u32,
        },
        OP_R2P => Op::R2p {
            a: rs0,
            mask: get(w, 32, 32) as u32,
        },
        OP_S2R => {
            let idx = get(w, 32, 4) as usize;
            let sr = *SpecialReg::ALL
                .get(idx)
                .ok_or(DecodeError::BadField("special register"))?;
            Op::S2r { d: rd, sr }
        }
        OP_LDG | OP_LDS => {
            let (width, addr) = get_mem(w)?;
            Op::Ld {
                space: if opcode == OP_LDG {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                },
                width,
                d: rd,
                addr,
            }
        }
        OP_STG | OP_STS => {
            let (width, addr) = get_mem(w)?;
            Op::St {
                space: if opcode == OP_STG {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                },
                width,
                addr,
                src: rd,
            }
        }
        OP_BAR => Op::BarSync,
        OP_BRA => Op::Bra {
            target: get(w, 32, 32) as u32,
        },
        OP_EXIT => Op::Exit,
        OP_NOP => Op::Nop,
        other => return Err(DecodeError::UnknownOpcode(other)),
    };

    Ok(Instruction { guard, op, ctrl })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::build;
    use crate::reg::RZ;

    fn rt(inst: Instruction) {
        let w = encode(&inst);
        let back = decode(w).expect("decode");
        assert_eq!(back, inst, "round-trip failed for {:?}", inst.op);
    }

    #[test]
    fn round_trip_float_ops() {
        rt(
            Instruction::new(build::ffma(Reg(8), Reg(64), Reg(80), Reg(8)))
                .with_ctrl(Ctrl::new().with_stall(4).reuse_slot(1)),
        );
        rt(Instruction::new(build::fadd(
            Reg(1),
            Reg(2),
            SrcB::imm_f32(-0.5),
        )));
        rt(Instruction::new(Op::Ffma {
            d: Reg(0),
            a: Reg(1),
            b: SrcB::Const(0x160),
            c: RZ,
            neg_b: true,
            neg_c: true,
        }));
        rt(Instruction::new(build::fmul(Reg(3), Reg(4), 2.0f32)));
    }

    #[test]
    fn round_trip_integer_ops() {
        rt(Instruction::new(build::iadd3(Reg(0), Reg(1), 5u32, Reg(2))));
        rt(Instruction::new(build::isub(Reg(0), Reg(1), Reg(2))));
        rt(Instruction::new(build::imad(
            Reg(0),
            Reg(1),
            SrcB::Const(0x168),
            Reg(2),
        )));
        rt(Instruction::new(build::imad_wide(
            Reg(2),
            Reg(4),
            Reg(6),
            Reg(8),
        )));
        rt(Instruction::new(Op::ImadHi {
            d: Reg(0),
            a: Reg(1),
            b: SrcB::Imm(0x9999),
            c: RZ,
        }));
        rt(Instruction::new(build::lea(Reg(0), Reg(1), Reg(2), 7)));
        rt(Instruction::new(build::and(Reg(0), Reg(1), 0xffu32)));
        rt(Instruction::new(build::shl(Reg(0), Reg(1), 4)));
        rt(Instruction::new(Op::Shf {
            d: Reg(0),
            lo: Reg(1),
            shift: SrcB::Reg(Reg(2)),
            hi: Reg(3),
            right: true,
            u32_mode: false,
        }));
    }

    #[test]
    fn round_trip_pred_ops() {
        rt(Instruction::new(build::isetp(
            Pred(3),
            CmpOp::Ge,
            Reg(0),
            10u32,
        )));
        rt(Instruction::new(Op::Isetp {
            p: Pred(1),
            cmp: CmpOp::Ne,
            u32: true,
            a: Reg(5),
            b: SrcB::Reg(Reg(6)),
            combine: PredSrc::not(Pred(2)),
        }));
        rt(Instruction::new(Op::Fsetp {
            p: Pred(0),
            cmp: CmpOp::Lt,
            a: Reg(1),
            b: SrcB::imm_f32(0.0),
            combine: PredSrc::pt(),
        }));
        rt(Instruction::new(Op::P2r {
            d: Reg(10),
            a: RZ,
            mask: 0xffff,
        }));
        rt(Instruction::new(Op::R2p {
            a: Reg(10),
            mask: 0xf,
        }));
        rt(Instruction::new(Op::Sel {
            d: Reg(0),
            a: Reg(1),
            b: SrcB::Imm(0),
            p: PredSrc::of(Pred(4)),
        }));
    }

    #[test]
    fn round_trip_memory_ops() {
        rt(Instruction::new(build::ldg(
            MemWidth::B128,
            Reg(4),
            Reg(2),
            0x10,
        )));
        rt(
            Instruction::new(build::ldg(MemWidth::B32, Reg(4), Reg(2), -64))
                .with_guard(PredGuard::on_not(Pred(1))),
        );
        rt(Instruction::new(build::stg(
            MemWidth::B64,
            Reg(2),
            0x7f_fff0,
            Reg(8),
        )));
        rt(Instruction::new(build::lds(
            MemWidth::B128,
            Reg(80),
            Reg(30),
            1024,
        )));
        rt(Instruction::new(build::sts(
            MemWidth::B32,
            Reg(31),
            -4,
            Reg(99),
        )));
    }

    #[test]
    fn round_trip_control_ops() {
        rt(Instruction::new(Op::BarSync).with_ctrl(Ctrl::new().with_wait_mask(0x3f)));
        rt(Instruction::new(Op::Bra { target: 12345 }).with_guard(PredGuard::on(Pred(6))));
        rt(Instruction::new(Op::Exit));
        rt(Instruction::new(Op::Nop));
        for sr in SpecialReg::ALL {
            rt(Instruction::new(build::s2r(Reg(0), sr)));
        }
    }

    #[test]
    fn opcode_field_matches_paper_values() {
        let w = encode(&Instruction::new(build::ffma(
            Reg(0),
            Reg(1),
            Reg(2),
            Reg(3),
        )));
        assert_eq!(get(w, 0, 12) as u16, 0x223);
        let w = encode(&Instruction::new(build::fadd(Reg(0), Reg(1), Reg(2))));
        assert_eq!(get(w, 0, 12) as u16, 0x221);
        let w = encode(&Instruction::new(build::ldg(
            MemWidth::B32,
            Reg(0),
            Reg(2),
            0,
        )));
        assert_eq!(get(w, 0, 12) as u16, 0x381);
        let w = encode(&Instruction::new(build::lds(
            MemWidth::B32,
            Reg(0),
            Reg(2),
            0,
        )));
        assert_eq!(get(w, 0, 12) as u16, 0x984);
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert_eq!(decode(0xfff), Err(DecodeError::UnknownOpcode(0xfff)));
    }

    #[test]
    fn control_bits_live_in_high_quarter() {
        let i = Instruction::new(Op::Nop).with_ctrl(
            Ctrl::new()
                .with_stall(15)
                .with_wait_mask(0x3f)
                .with_write_bar(5)
                .with_read_bar(4),
        );
        let w = encode(&i);
        // Everything except opcode+guard+ctrl must be zero for a NOP.
        assert_eq!(get(w, 16, 89 - 16), 0);
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn guard_pt_encodes_as_7() {
        let w = encode(&Instruction::new(Op::Nop));
        assert_eq!(get(w, 12, 3), 7);
        assert_eq!(get(w, 15, 1), 0);
    }
}
