//! The instruction set.
//!
//! The subset implemented here is the "essential subset of instructions for
//! linear algebra routines" the paper's TuringAs targets (§5.3): float math,
//! integer address arithmetic, predicate manipulation (including the
//! `P2R`/`R2P` pair that motivates SASS programming in §3.5), memory access
//! at all widths, and control flow.

use crate::ctrl::Ctrl;
use crate::reg::{Pred, Reg, PT, RZ};

/// Guard predicate on an instruction: `@P0`, `@!P3`, or the implicit `@PT`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredGuard {
    pub pred: Pred,
    pub neg: bool,
}

impl PredGuard {
    /// The always-true guard.
    pub fn always() -> Self {
        PredGuard {
            pred: PT,
            neg: false,
        }
    }

    /// Guard on `p`.
    pub fn on(p: Pred) -> Self {
        PredGuard {
            pred: p,
            neg: false,
        }
    }

    /// Guard on `!p`.
    pub fn on_not(p: Pred) -> Self {
        PredGuard { pred: p, neg: true }
    }

    /// True if this is the implicit `@PT` guard.
    pub fn is_always(&self) -> bool {
        self.pred.is_pt() && !self.neg
    }
}

/// A predicate used as a *source* operand (with optional negation),
/// e.g. the combine input of `ISETP` or the selector of `SEL`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredSrc {
    pub pred: Pred,
    pub neg: bool,
}

impl PredSrc {
    pub fn pt() -> Self {
        PredSrc {
            pred: PT,
            neg: false,
        }
    }
    pub fn of(p: Pred) -> Self {
        PredSrc {
            pred: p,
            neg: false,
        }
    }
    pub fn not(p: Pred) -> Self {
        PredSrc { pred: p, neg: true }
    }
}

/// The flexible "B" source operand: register, 32-bit immediate, or constant
/// memory `c[0x0][off]` (§5.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrcB {
    Reg(Reg),
    /// Raw 32-bit immediate; for float instructions these are the IEEE-754
    /// bits of the value.
    Imm(u32),
    /// Byte offset into constant bank 0. Kernel parameters live at
    /// `0x160` onward, launch dimensions below (the real CUDA ABI layout).
    Const(u16),
}

impl SrcB {
    /// Float immediate helper.
    pub fn imm_f32(v: f32) -> Self {
        SrcB::Imm(v.to_bits())
    }

    /// The register, if this operand is one (used for bank-conflict checks).
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            SrcB::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

/// Memory access width in bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemWidth {
    B32,
    B64,
    B128,
}

impl MemWidth {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B32 => 4,
            MemWidth::B64 => 8,
            MemWidth::B128 => 16,
        }
    }

    /// Number of consecutive 32-bit registers moved.
    pub fn regs(self) -> u8 {
        (self.bytes() / 4) as u8
    }
}

/// Address space of a memory instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemSpace {
    /// Global memory; base register is a 64-bit pair (`LDG.E`).
    Global,
    /// Shared memory; base register is a 32-bit byte offset.
    Shared,
}

/// Memory operand `[Rb + offset]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Addr {
    /// Base register (pair for global). `RZ` means absolute `offset`.
    pub base: Reg,
    /// Signed byte offset, 24-bit range.
    pub offset: i32,
}

impl Addr {
    pub fn new(base: Reg, offset: i32) -> Self {
        assert!(
            (-(1 << 23)..(1 << 23)).contains(&offset),
            "memory offset {offset} out of 24-bit range"
        );
        Addr { base, offset }
    }
}

/// Special registers readable via `S2R`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecialReg {
    TidX,
    TidY,
    TidZ,
    CtaidX,
    CtaidY,
    CtaidZ,
    LaneId,
    /// Warp index within the thread block (`tid / 32` for 1-D blocks).
    WarpId,
}

impl SpecialReg {
    pub const ALL: [SpecialReg; 8] = [
        SpecialReg::TidX,
        SpecialReg::TidY,
        SpecialReg::TidZ,
        SpecialReg::CtaidX,
        SpecialReg::CtaidY,
        SpecialReg::CtaidZ,
        SpecialReg::LaneId,
        SpecialReg::WarpId,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "SR_TID.X",
            SpecialReg::TidY => "SR_TID.Y",
            SpecialReg::TidZ => "SR_TID.Z",
            SpecialReg::CtaidX => "SR_CTAID.X",
            SpecialReg::CtaidY => "SR_CTAID.Y",
            SpecialReg::CtaidZ => "SR_CTAID.Z",
            SpecialReg::LaneId => "SR_LANEID",
            SpecialReg::WarpId => "SR_WARPID",
        }
    }
}

/// Comparison operators for `ISETP`/`FSETP`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
        }
    }

    pub fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// One operation with its typed operands.
///
/// Operand-slot convention for reuse flags and bank-conflict analysis:
/// slot 0 = `a`, slot 1 = `b`, slot 2 = `c`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `FFMA Rd, Ra, B, Rc` — `d = a*b + c` (fp32).
    Ffma {
        d: Reg,
        a: Reg,
        b: SrcB,
        c: Reg,
        neg_b: bool,
        neg_c: bool,
    },
    /// `FADD Rd, Ra, B` — `d = ±a ± b`.
    Fadd {
        d: Reg,
        a: Reg,
        neg_a: bool,
        b: SrcB,
        neg_b: bool,
    },
    /// `FMUL Rd, Ra, B`.
    Fmul {
        d: Reg,
        a: Reg,
        b: SrcB,
        neg_b: bool,
    },
    /// `HFMA2 Rd, Ra, B, Rc` — paired fp16: `d.{lo,hi} = a.{lo,hi} ×
    /// b.{lo,hi} + c.{lo,hi}` (§8.3's fp16 port doubles throughput).
    Hfma2 { d: Reg, a: Reg, b: SrcB, c: Reg },
    /// `HADD2 Rd, ±Ra, ±B` — paired fp16 add.
    Hadd2 {
        d: Reg,
        a: Reg,
        neg_a: bool,
        b: SrcB,
        neg_b: bool,
    },
    /// `HMUL2 Rd, Ra, B` — paired fp16 multiply.
    Hmul2 { d: Reg, a: Reg, b: SrcB },
    /// `FSETP.cmp.AND Pd, PT, Ra, B, Pc`.
    Fsetp {
        p: Pred,
        cmp: CmpOp,
        a: Reg,
        b: SrcB,
        combine: PredSrc,
    },
    /// `IADD3 Rd, ±Ra, ±B, ±Rc`.
    Iadd3 {
        d: Reg,
        a: Reg,
        neg_a: bool,
        b: SrcB,
        neg_b: bool,
        c: Reg,
        neg_c: bool,
    },
    /// `IMAD Rd, Ra, B, Rc` — low 32 bits of `a*b + c`.
    Imad { d: Reg, a: Reg, b: SrcB, c: Reg },
    /// `IMAD.HI.U32 Rd, Ra, B, Rc` — `((a*b) >> 32) + c` (unsigned).
    ImadHi { d: Reg, a: Reg, b: SrcB, c: Reg },
    /// `IMAD.WIDE.U32 Rd, Ra, B, Rc` — 64-bit `a*b + (Rc,Rc+1)` into the
    /// register pair `(Rd, Rd+1)`. The standard Volta addressing idiom.
    ImadWide { d: Reg, a: Reg, b: SrcB, c: Reg },
    /// `LEA Rd, Ra, B, shift` — `d = b + (a << shift)`.
    Lea { d: Reg, a: Reg, b: SrcB, shift: u8 },
    /// `LOP3.LUT Rd, Ra, B, Rc, lut` — bitwise 3-input LUT.
    Lop3 {
        d: Reg,
        a: Reg,
        b: SrcB,
        c: Reg,
        lut: u8,
    },
    /// `SHF.{L,R}[.U32] Rd, Rlo, B, Rhi` — funnel shift, or plain 32-bit
    /// shift of `Rlo` when `u32_mode` (the common `SHF.L.U32 Rd, Ra, n, RZ`).
    Shf {
        d: Reg,
        lo: Reg,
        shift: SrcB,
        hi: Reg,
        right: bool,
        u32_mode: bool,
    },
    /// `MOV Rd, B`.
    Mov { d: Reg, b: SrcB },
    /// `SEL Rd, Ra, B, Pc` — `d = p ? a : b`.
    Sel { d: Reg, a: Reg, b: SrcB, p: PredSrc },
    /// `ISETP.cmp[.U32].AND Pd, PT, Ra, B, Pc`.
    Isetp {
        p: Pred,
        cmp: CmpOp,
        u32: bool,
        a: Reg,
        b: SrcB,
        combine: PredSrc,
    },
    /// `P2R Rd, PR, Ra, mask` — pack predicate file bits into a register:
    /// `d = (a & !mask) | (pred_bits & mask)` (§3.5).
    P2r { d: Reg, a: Reg, mask: u32 },
    /// `R2P PR, Ra, mask` — unpack register bits into predicate registers
    /// selected by `mask`.
    R2p { a: Reg, mask: u32 },
    /// `S2R Rd, SR_*`.
    S2r { d: Reg, sr: SpecialReg },
    /// `LDG.E.width Rd, [Ra(+off)]` / `LDS.width Rd, [Ra(+off)]`.
    Ld {
        space: MemSpace,
        width: MemWidth,
        d: Reg,
        addr: Addr,
    },
    /// `STG.E.width [Ra(+off)], Rs` / `STS.width [Ra(+off)], Rs`.
    St {
        space: MemSpace,
        width: MemWidth,
        addr: Addr,
        src: Reg,
    },
    /// `BAR.SYNC 0` — block-wide barrier.
    BarSync,
    /// `BRA target` — branch to absolute instruction index `target`.
    Bra { target: u32 },
    /// `EXIT` — thread termination.
    Exit,
    /// `NOP`.
    Nop,
}

impl Op {
    /// Destination register range written by this op, as (first, count).
    pub fn dst_regs(&self) -> Option<(Reg, u8)> {
        match *self {
            Op::Ffma { d, .. }
            | Op::Fadd { d, .. }
            | Op::Fmul { d, .. }
            | Op::Hfma2 { d, .. }
            | Op::Hadd2 { d, .. }
            | Op::Hmul2 { d, .. }
            | Op::Iadd3 { d, .. }
            | Op::Imad { d, .. }
            | Op::ImadHi { d, .. }
            | Op::Lea { d, .. }
            | Op::Lop3 { d, .. }
            | Op::Shf { d, .. }
            | Op::Mov { d, .. }
            | Op::Sel { d, .. }
            | Op::P2r { d, .. }
            | Op::S2r { d, .. } => Some((d, 1)),
            Op::ImadWide { d, .. } => Some((d, 2)),
            Op::Ld { d, width, .. } => Some((d, width.regs())),
            _ => None,
        }
    }

    /// Source registers in operand-slot order (slot, reg), for bank-conflict
    /// and scoreboard analysis. Only *register-file* reads are listed.
    pub fn src_regs(&self) -> Vec<(u8, Reg)> {
        let mut v = Vec::new();
        let mut push = |slot: u8, r: Reg| {
            if !r.is_rz() {
                v.push((slot, r));
            }
        };
        match *self {
            Op::Ffma { a, b, c, .. } | Op::Hfma2 { a, b, c, .. } => {
                push(0, a);
                if let SrcB::Reg(r) = b {
                    push(1, r);
                }
                push(2, c);
            }
            Op::Fadd { a, b, .. }
            | Op::Fmul { a, b, .. }
            | Op::Fsetp { a, b, .. }
            | Op::Hadd2 { a, b, .. }
            | Op::Hmul2 { a, b, .. } => {
                push(0, a);
                if let SrcB::Reg(r) = b {
                    push(1, r);
                }
            }
            Op::Iadd3 { a, b, c, .. }
            | Op::Imad { a, b, c, .. }
            | Op::ImadHi { a, b, c, .. }
            | Op::Lop3 { a, b, c, .. } => {
                push(0, a);
                if let SrcB::Reg(r) = b {
                    push(1, r);
                }
                push(2, c);
            }
            Op::ImadWide { a, b, c, .. } => {
                push(0, a);
                if let SrcB::Reg(r) = b {
                    push(1, r);
                }
                push(2, c);
                push(2, c.offset(1));
            }
            Op::Lea { a, b, .. } => {
                push(0, a);
                if let SrcB::Reg(r) = b {
                    push(1, r);
                }
            }
            Op::Shf { lo, shift, hi, .. } => {
                push(0, lo);
                if let SrcB::Reg(r) = shift {
                    push(1, r);
                }
                push(2, hi);
            }
            Op::Mov {
                b: SrcB::Reg(r), ..
            } => push(1, r),
            Op::Mov { .. } => {}
            Op::Sel { a, b, .. } => {
                push(0, a);
                if let SrcB::Reg(r) = b {
                    push(1, r);
                }
            }
            Op::Isetp { a, b, .. } => {
                push(0, a);
                if let SrcB::Reg(r) = b {
                    push(1, r);
                }
            }
            Op::P2r { a, .. } => push(0, a),
            Op::R2p { a, .. } => push(0, a),
            Op::Ld { addr, space, .. } => {
                push(0, addr.base);
                if space == MemSpace::Global {
                    push(0, addr.base.offset(1));
                }
            }
            Op::St {
                addr,
                src,
                width,
                space,
            } => {
                push(0, addr.base);
                if space == MemSpace::Global {
                    push(0, addr.base.offset(1));
                }
                for i in 0..width.regs() {
                    push(2, src.offset(i));
                }
            }
            _ => {}
        }
        v
    }

    /// True for instructions whose completion latency is variable and must be
    /// covered by a scoreboard (memory and, on real hardware, a few others).
    pub fn is_variable_latency(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::St { .. })
    }

    /// Mnemonic for display and encoding dispatch.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Ffma { .. } => "FFMA",
            Op::Fadd { .. } => "FADD",
            Op::Fmul { .. } => "FMUL",
            Op::Hfma2 { .. } => "HFMA2",
            Op::Hadd2 { .. } => "HADD2",
            Op::Hmul2 { .. } => "HMUL2",
            Op::Fsetp { .. } => "FSETP",
            Op::Iadd3 { .. } => "IADD3",
            Op::Imad { .. } => "IMAD",
            Op::ImadHi { .. } => "IMAD.HI.U32",
            Op::ImadWide { .. } => "IMAD.WIDE.U32",
            Op::Lea { .. } => "LEA",
            Op::Lop3 { .. } => "LOP3.LUT",
            Op::Shf { .. } => "SHF",
            Op::Mov { .. } => "MOV",
            Op::Sel { .. } => "SEL",
            Op::Isetp { .. } => "ISETP",
            Op::P2r { .. } => "P2R",
            Op::R2p { .. } => "R2P",
            Op::S2r { .. } => "S2R",
            Op::Ld {
                space: MemSpace::Global,
                ..
            } => "LDG",
            Op::Ld {
                space: MemSpace::Shared,
                ..
            } => "LDS",
            Op::St {
                space: MemSpace::Global,
                ..
            } => "STG",
            Op::St {
                space: MemSpace::Shared,
                ..
            } => "STS",
            Op::BarSync => "BAR.SYNC",
            Op::Bra { .. } => "BRA",
            Op::Exit => "EXIT",
            Op::Nop => "NOP",
        }
    }
}

/// A complete instruction: guard, operation, scheduling control.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Instruction {
    pub guard: PredGuard,
    pub op: Op,
    pub ctrl: Ctrl,
}

impl Instruction {
    /// Unguarded instruction with default control.
    pub fn new(op: Op) -> Self {
        Instruction {
            guard: PredGuard::always(),
            op,
            ctrl: Ctrl::new(),
        }
    }

    /// Builder: attach control.
    pub fn with_ctrl(mut self, ctrl: Ctrl) -> Self {
        self.ctrl = ctrl;
        self
    }

    /// Builder: attach a guard predicate.
    pub fn with_guard(mut self, guard: PredGuard) -> Self {
        self.guard = guard;
        self
    }
}

impl Eq for Instruction {}

/// Convenience constructors used heavily by the kernel emitters.
pub mod build {
    use super::*;

    pub fn ffma(d: Reg, a: Reg, b: impl Into<SrcB>, c: Reg) -> Op {
        Op::Ffma {
            d,
            a,
            b: b.into(),
            c,
            neg_b: false,
            neg_c: false,
        }
    }
    pub fn fadd(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        Op::Fadd {
            d,
            a,
            neg_a: false,
            b: b.into(),
            neg_b: false,
        }
    }
    pub fn fsub(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        Op::Fadd {
            d,
            a,
            neg_a: false,
            b: b.into(),
            neg_b: true,
        }
    }
    pub fn fmul(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        Op::Fmul {
            d,
            a,
            b: b.into(),
            neg_b: false,
        }
    }
    pub fn hfma2(d: Reg, a: Reg, b: impl Into<SrcB>, c: Reg) -> Op {
        Op::Hfma2 {
            d,
            a,
            b: b.into(),
            c,
        }
    }
    pub fn hadd2(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        Op::Hadd2 {
            d,
            a,
            neg_a: false,
            b: b.into(),
            neg_b: false,
        }
    }
    pub fn hsub2(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        Op::Hadd2 {
            d,
            a,
            neg_a: false,
            b: b.into(),
            neg_b: true,
        }
    }
    pub fn iadd3(d: Reg, a: Reg, b: impl Into<SrcB>, c: Reg) -> Op {
        Op::Iadd3 {
            d,
            a,
            neg_a: false,
            b: b.into(),
            neg_b: false,
            c,
            neg_c: false,
        }
    }
    pub fn isub(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        Op::Iadd3 {
            d,
            a,
            neg_a: false,
            b: b.into(),
            neg_b: true,
            c: RZ,
            neg_c: false,
        }
    }
    pub fn imad(d: Reg, a: Reg, b: impl Into<SrcB>, c: Reg) -> Op {
        Op::Imad {
            d,
            a,
            b: b.into(),
            c,
        }
    }
    pub fn imad_wide(d: Reg, a: Reg, b: impl Into<SrcB>, c: Reg) -> Op {
        Op::ImadWide {
            d,
            a,
            b: b.into(),
            c,
        }
    }
    pub fn lea(d: Reg, a: Reg, b: impl Into<SrcB>, shift: u8) -> Op {
        Op::Lea {
            d,
            a,
            b: b.into(),
            shift,
        }
    }
    pub fn mov(d: Reg, b: impl Into<SrcB>) -> Op {
        Op::Mov { d, b: b.into() }
    }
    pub fn shl(d: Reg, a: Reg, n: u8) -> Op {
        Op::Shf {
            d,
            lo: a,
            shift: SrcB::Imm(n as u32),
            hi: RZ,
            right: false,
            u32_mode: true,
        }
    }
    pub fn shr(d: Reg, a: Reg, n: u8) -> Op {
        Op::Shf {
            d,
            lo: a,
            shift: SrcB::Imm(n as u32),
            hi: RZ,
            right: true,
            u32_mode: true,
        }
    }
    pub fn and(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        // LOP3 LUT for a & b: 0xc0.
        Op::Lop3 {
            d,
            a,
            b: b.into(),
            c: RZ,
            lut: 0xc0,
        }
    }
    pub fn or(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        // LOP3 LUT for a | b: 0xfc.
        Op::Lop3 {
            d,
            a,
            b: b.into(),
            c: RZ,
            lut: 0xfc,
        }
    }
    pub fn xor(d: Reg, a: Reg, b: impl Into<SrcB>) -> Op {
        // LOP3 LUT for a ^ b: 0x3c.
        Op::Lop3 {
            d,
            a,
            b: b.into(),
            c: RZ,
            lut: 0x3c,
        }
    }
    pub fn isetp(p: Pred, cmp: CmpOp, a: Reg, b: impl Into<SrcB>) -> Op {
        Op::Isetp {
            p,
            cmp,
            u32: false,
            a,
            b: b.into(),
            combine: PredSrc::pt(),
        }
    }
    pub fn isetp_u32(p: Pred, cmp: CmpOp, a: Reg, b: impl Into<SrcB>) -> Op {
        Op::Isetp {
            p,
            cmp,
            u32: true,
            a,
            b: b.into(),
            combine: PredSrc::pt(),
        }
    }
    pub fn s2r(d: Reg, sr: SpecialReg) -> Op {
        Op::S2r { d, sr }
    }
    pub fn ldg(width: MemWidth, d: Reg, base: Reg, offset: i32) -> Op {
        Op::Ld {
            space: MemSpace::Global,
            width,
            d,
            addr: Addr::new(base, offset),
        }
    }
    pub fn stg(width: MemWidth, base: Reg, offset: i32, src: Reg) -> Op {
        Op::St {
            space: MemSpace::Global,
            width,
            addr: Addr::new(base, offset),
            src,
        }
    }
    pub fn lds(width: MemWidth, d: Reg, base: Reg, offset: i32) -> Op {
        Op::Ld {
            space: MemSpace::Shared,
            width,
            d,
            addr: Addr::new(base, offset),
        }
    }
    pub fn sts(width: MemWidth, base: Reg, offset: i32, src: Reg) -> Op {
        Op::St {
            space: MemSpace::Shared,
            width,
            addr: Addr::new(base, offset),
            src,
        }
    }
}

impl From<Reg> for SrcB {
    fn from(r: Reg) -> Self {
        SrcB::Reg(r)
    }
}

impl From<u32> for SrcB {
    fn from(v: u32) -> Self {
        SrcB::Imm(v)
    }
}

impl From<i32> for SrcB {
    fn from(v: i32) -> Self {
        SrcB::Imm(v as u32)
    }
}

impl From<f32> for SrcB {
    fn from(v: f32) -> Self {
        SrcB::Imm(v.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::reg::PT;

    #[test]
    fn dst_regs_cover_widths() {
        let i = ldg(MemWidth::B128, Reg(4), Reg(2), 0);
        assert_eq!(i.dst_regs(), Some((Reg(4), 4)));
        let i = imad_wide(Reg(2), Reg(0), 4u32, Reg(10));
        assert_eq!(i.dst_regs(), Some((Reg(2), 2)));
        assert_eq!(Op::Exit.dst_regs(), None);
    }

    #[test]
    fn src_regs_skip_rz_and_imm() {
        let i = ffma(Reg(0), Reg(1), SrcB::imm_f32(2.0), RZ);
        assert_eq!(i.src_regs(), vec![(0, Reg(1))]);
        let i = ffma(Reg(0), Reg(1), Reg(2), Reg(3));
        assert_eq!(i.src_regs(), vec![(0, Reg(1)), (1, Reg(2)), (2, Reg(3))]);
    }

    #[test]
    fn store_reads_data_regs() {
        let i = stg(MemWidth::B128, Reg(2), 16, Reg(8));
        let srcs = i.src_regs();
        // base pair + 4 data regs
        assert_eq!(srcs.len(), 6);
        assert!(srcs.contains(&(2, Reg(11))));
    }

    #[test]
    fn guard_constructors() {
        assert!(PredGuard::always().is_always());
        assert!(!PredGuard::on(Pred(0)).is_always());
        assert!(!PredGuard::on_not(PT).is_always());
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval_i64(-1, 0));
        assert!(CmpOp::Ge.eval_i64(5, 5));
        assert!(CmpOp::Ne.eval_f32(1.0, 2.0));
        assert!(!CmpOp::Eq.eval_f32(f32::NAN, f32::NAN));
    }

    #[test]
    #[should_panic(expected = "24-bit range")]
    fn addr_offset_range_checked() {
        let _ = Addr::new(Reg(0), 1 << 23);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(lds(MemWidth::B128, Reg(0), Reg(1), 0).mnemonic(), "LDS");
        assert_eq!(sts(MemWidth::B32, Reg(1), 0, Reg(0)).mnemonic(), "STS");
        assert_eq!(Op::BarSync.mnemonic(), "BAR.SYNC");
    }

    #[test]
    fn variable_latency_flags() {
        assert!(ldg(MemWidth::B32, Reg(0), Reg(2), 0).is_variable_latency());
        assert!(!ffma(Reg(0), Reg(1), Reg(2), Reg(3)).is_variable_latency());
    }
}
