//! IEEE-754 binary16 conversion helpers, used by the fp16 (`H*2`) paired
//! instructions (§8.3: the kernel "can be ported to the fp16 version").
//! Implemented from scratch (no external crates): handles normals,
//! subnormals, zeros, infinities and NaNs, with round-to-nearest-even on
//! the f32→f16 direction.

/// Convert a binary16 bit pattern to f32.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = (h as u32 & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let frac = h as u32 & 0x3ff;
    let bits = match exp {
        0 => {
            if frac == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = frac × 2⁻²⁴.
                let v = frac as f32 * (1.0 / (1 << 24) as f32);
                v.to_bits() | sign
            }
        }
        0x1f => {
            if frac == 0 {
                sign | 0x7f80_0000 // infinity
            } else {
                sign | 0x7fc0_0000 | (frac << 13) // NaN (payload preserved-ish)
            }
        }
        e => sign | (((e as u32) + 127 - 15) << 23) | (frac << 13),
    };
    f32::from_bits(bits)
}

/// Convert an f32 to the nearest binary16 bit pattern (round to nearest,
/// ties to even).
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        return if frac == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00 | ((frac >> 13) as u16 & 0x3ff) | 1
        };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → infinity
    }
    if unbiased >= -14 {
        // Normal half. Round the 13 dropped bits to nearest-even.
        let mut mant = frac >> 13;
        let rest = frac & 0x1fff;
        if rest > 0x1000 || (rest == 0x1000 && mant & 1 == 1) {
            mant += 1;
        }
        let mut e16 = (unbiased + 15) as u32;
        if mant == 0x400 {
            mant = 0;
            e16 += 1;
            if e16 >= 0x1f {
                return sign | 0x7c00;
            }
        }
        return sign | ((e16 as u16) << 10) | mant as u16;
    }
    if unbiased >= -24 {
        // Subnormal half.
        let shift = (-14 - unbiased) as u32; // 0..=10
        let full = frac | 0x80_0000; // implicit leading 1
                                     // value = full·2^(unbiased-23); subnormal mant = value·2^24
                                     //       = full >> (23 - unbiased - 24) = full >> (13 + shift).
        let drop = 13 + shift;
        let mut mant = full >> drop;
        let rest = full & ((1 << drop) - 1);
        let half_ulp = 1u32 << (drop - 1);
        if rest > half_ulp || (rest == half_ulp && mant & 1 == 1) {
            mant += 1;
        }
        return sign | mant as u16; // may carry into the exponent: still valid
    }
    sign // underflow → signed zero
}

/// Unpack a `half2` register word into two f32 lanes (lo, hi).
pub fn unpack_half2(w: u32) -> (f32, f32) {
    (f16_to_f32(w as u16), f16_to_f32((w >> 16) as u16))
}

/// Pack two f32 values into a `half2` register word.
pub fn pack_half2(lo: f32, hi: f32) -> u32 {
    f32_to_f16(lo) as u32 | ((f32_to_f16(hi) as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            1.0 / 1024.0,
        ] {
            let h = f32_to_f16(v);
            assert_eq!(f16_to_f32(h), v, "{v}");
        }
    }

    #[test]
    fn specials() {
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f32_to_f16(1e10), 0x7c00, "overflow saturates to inf");
        assert_eq!(f32_to_f16(1e-10), 0x0000, "underflow flushes to zero");
    }

    #[test]
    fn subnormals() {
        // Smallest positive half subnormal: 2^-24.
        let tiny = (2.0f32).powi(-24);
        assert_eq!(f32_to_f16(tiny), 1);
        assert_eq!(f16_to_f32(1), tiny);
        // Largest subnormal: (1023/1024)·2^-14.
        let big_sub = f16_to_f32(0x3ff);
        assert!((big_sub - 1023.0 / 1024.0 * (2.0f32).powi(-14)).abs() < 1e-12);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half: ties
        // to even keep 1.0.
        let h = f32_to_f16(1.0 + (2.0f32).powi(-11));
        assert_eq!(f16_to_f32(h), 1.0);
        // 1 + 3·2^-11 is halfway between two halves; even neighbour is the
        // upper one here.
        let h = f32_to_f16(1.0 + 3.0 * (2.0f32).powi(-11));
        assert_eq!(f16_to_f32(h), 1.0 + (2.0f32).powi(-9));
    }

    #[test]
    fn round_trip_within_half_precision() {
        let mut x = 0.9137f32;
        for _ in 0..200 {
            let back = f16_to_f32(f32_to_f16(x));
            assert!(
                (back - x).abs() <= x.abs() * (1.0 / 1024.0) + 1e-7,
                "{x} -> {back}"
            );
            x = (x * 1.137).rem_euclid(60000.0) + 1e-4;
        }
    }

    #[test]
    fn half2_packing() {
        let w = pack_half2(1.5, -2.25);
        let (lo, hi) = unpack_half2(w);
        assert_eq!((lo, hi), (1.5, -2.25));
    }
}
