//! `sasm` — the command-line assembler, the workspace's equivalent of the
//! TuringAs tool the paper releases (§5).
//!
//! ```text
//! sasm asm  kernel.sass -o kernel.cubin   assemble text to a cubin
//! sasm dis  kernel.cubin                  disassemble a cubin to text
//! sasm lint kernel.sass                   report scheduling hazards (§5.1.4)
//! sasm fix  kernel.sass -o fixed.cubin    auto-repair stalls/waits, emit cubin
//! ```

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sasm asm  <input.sass> -o <output.cubin>\n  sasm dis  <input.cubin>\n  sasm lint <input.sass|input.cubin>\n  sasm fix  <input.sass> -o <output.cubin>"
    );
    ExitCode::from(2)
}

fn load_module(path: &str) -> Result<sass::Module, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if bytes.starts_with(b"WCUB") {
        sass::Module::from_cubin(&bytes).map_err(|e| format!("{path}: {e}"))
    } else {
        let text = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8"))?;
        sass::assemble(&text).map_err(|e| format!("{path}:{e}"))
    }
}

fn out_path(args: &[String]) -> Option<&str> {
    args.iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, input) = match (args.first(), args.get(1)) {
        (Some(c), Some(i)) => (c.as_str(), i.as_str()),
        _ => return usage(),
    };
    match cmd {
        "asm" | "fix" => {
            let Some(out) = out_path(&args) else {
                return usage();
            };
            let mut module = match load_module(input) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "fix" {
                let n = sass::lint::fix_schedule(&mut module.insts);
                eprintln!("applied {n} schedule fixes");
                module = sass::Module::new(
                    module.info.name.clone(),
                    module.info.smem_bytes,
                    module.info.param_bytes,
                    module.insts,
                );
            }
            let remaining = sass::lint(&module.insts);
            for d in &remaining {
                eprintln!("warning: {d}");
            }
            if let Err(e) = std::fs::write(out, module.to_cubin()) {
                eprintln!("error: {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "{}: {} instructions, {} regs/thread, {} B smem -> {out}",
                module.info.name,
                module.insts.len(),
                module.info.num_regs,
                module.info.smem_bytes
            );
            ExitCode::SUCCESS
        }
        "dis" => match load_module(input) {
            Ok(m) => {
                println!(".kernel {}", m.info.name);
                println!(".smem {}", m.info.smem_bytes);
                println!(".params {}", m.info.param_bytes);
                print!("{}", sass::disassemble(&m.insts));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "lint" => match load_module(input) {
            Ok(m) => {
                let diags = sass::lint(&m.insts);
                for d in &diags {
                    println!("{d}");
                }
                println!(
                    "{} finding(s) in {} instructions",
                    diags.len(),
                    m.insts.len()
                );
                if diags.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
