//! Edge cases of the two address-level cost models the counters are built
//! on: `timing::smem_phases` (bank conflicts, §4.3's Fig. 3 motivation)
//! and `timing::global_sectors` (32 B sector coalescing).

use gpusim::timing::{global_sectors, smem_phases};

// ---- shared-memory phases ----------------------------------------------------

/// All 32 lanes reading the same 4 B word is a broadcast: one phase.
#[test]
fn smem_full_warp_broadcast_is_one_phase() {
    let addrs = [100u32 * 4; 32];
    assert_eq!(smem_phases(&addrs, 4), 1);
}

/// Stride-4 32-bit: one word per bank, one phase. Stride-128 puts every
/// lane in bank 0 with *distinct* words: 32 serialized phases.
#[test]
fn smem_32bit_stride_extremes() {
    let unit: Vec<u32> = (0..32).map(|i| i * 4).collect();
    assert_eq!(smem_phases(&unit, 4), 1);
    let stride128: Vec<u32> = (0..32).map(|i| i * 128).collect();
    assert_eq!(smem_phases(&stride128, 4), 32);
}

/// 64-bit accesses go out in two half-warp phases; unit stride keeps each
/// phase conflict-free, so the whole warp costs exactly 2.
#[test]
fn smem_64bit_unit_stride_is_two_phases() {
    let addrs: Vec<u32> = (0..32).map(|i| i * 8).collect();
    assert_eq!(smem_phases(&addrs, 8), 2);
}

/// A 64-bit access whose two words land in the same bank (stride 128
/// between the words is impossible for one access, but *between lanes* a
/// 128 B stride folds both words of all 16 lanes of a phase onto two
/// banks): 16 distinct words per bank per phase.
#[test]
fn smem_64bit_bank_pair_crossing_serializes() {
    // Lane i reads 8 B at i*128: words 32i and 32i+1, i.e. banks 0 and 1
    // for every lane. Each half-warp phase has 16 distinct words in each
    // of the two banks -> degree 16, two phases -> 32.
    let addrs: Vec<u32> = (0..32).map(|i| i * 128).collect();
    assert_eq!(smem_phases(&addrs, 8), 32);
}

/// 128-bit accesses go out in four quarter-warp phases. Unit stride:
/// each phase's 8 lanes cover all 32 banks once -> 4 phases total.
#[test]
fn smem_128bit_unit_stride_is_four_phases() {
    let addrs: Vec<u32> = (0..32).map(|i| i * 16).collect();
    assert_eq!(smem_phases(&addrs, 16), 4);
}

/// The hardware broadcast rule is per-phase: all lanes reading the same
/// 16 B still cost four phases (one per quarter-warp), never one.
#[test]
fn smem_128bit_broadcast_still_pays_four_phases() {
    let addrs = [64u32; 32];
    assert_eq!(smem_phases(&addrs, 16), 4);
}

/// The Fig. 3 failure mode: 128-bit reads at a 128 B stride look
/// broadcast-friendly across the warp but conflict inside every
/// quarter-warp phase (8 lanes x 4 words folded onto banks 0-3).
#[test]
fn smem_128bit_stride128_conflicts_within_phases() {
    let addrs: Vec<u32> = (0..32).map(|i| i * 128).collect();
    // Per phase: 8 lanes, words 32i..32i+3 -> banks 0..3 each hold 8
    // distinct words -> degree 8; 4 phases -> 32.
    assert_eq!(smem_phases(&addrs, 16), 32);
}

/// A partially-active warp (predication/tail) only pays for the lanes
/// that issued, and an empty access costs nothing.
#[test]
fn smem_partial_and_empty_warps() {
    assert_eq!(smem_phases(&[], 4), 0);
    let three: Vec<u32> = (0..3).map(|i| i * 4).collect();
    assert_eq!(smem_phases(&three, 4), 1);
    // 9 lanes of a 128-bit access: two phases (8 + 1 lanes), unit stride.
    let nine: Vec<u32> = (0..9).map(|i| i * 16).collect();
    assert_eq!(smem_phases(&nine, 16), 2);
}

// ---- global sectors ----------------------------------------------------------

/// Fully coalesced 32-bit loads: 32 lanes x 4 B = 128 B = four 32 B
/// sectors, regardless of lane order.
#[test]
fn sectors_coalesced_warp_is_four() {
    let mut addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
    assert_eq!(global_sectors(&addrs, 4).len(), 4);
    addrs.reverse();
    assert_eq!(global_sectors(&addrs, 4).len(), 4);
}

/// Aligned 128-bit loads: each lane owns a half sector; 32 lanes cover
/// 512 B = 16 sectors.
#[test]
fn sectors_aligned_128bit_warp_is_sixteen() {
    let addrs: Vec<u64> = (0..32).map(|i| i * 16).collect();
    assert_eq!(global_sectors(&addrs, 16).len(), 16);
}

/// Misaligned 128-bit loads split across sector boundaries: offset the
/// same warp by 24 B and every lane straddles two sectors, inflating the
/// footprint from 16 sectors to 17 (the splits overlap pairwise).
#[test]
fn sectors_unaligned_128bit_splits() {
    let addrs: Vec<u64> = (0..32).map(|i| i * 16 + 24).collect();
    let s = global_sectors(&addrs, 16);
    assert_eq!(s.len(), 17);
    // Sanity: one straddling access alone touches exactly two sectors.
    assert_eq!(global_sectors(&[24], 16).len(), 2);
    // ... and an aligned one exactly one.
    assert_eq!(global_sectors(&[32], 16).len(), 1);
}

/// Same-sector accesses dedup: a warp gathering 32 words from one 32 B
/// sector costs one sector, and sectors come back sorted and unique.
#[test]
fn sectors_dedup_and_sort() {
    let addrs: Vec<u64> = (0..32).map(|i| (i % 8) * 4).collect();
    assert_eq!(global_sectors(&addrs, 4), vec![0]);
    let scattered = [96u64, 0, 64, 0, 96];
    assert_eq!(global_sectors(&scattered, 4), vec![0, 2, 3]);
}
