//! Invariants of the `counters` hardware-counter layer (ISSUE: every counter
//! must reconcile exactly with the rest of the model, and collection must be
//! free when off).

use gpusim::{DeviceSpec, Gpu, KernelTiming, LaunchDims, ParamBuilder, TimingOptions};
use sass::assemble;

/// The three stall-profile kernels from `profile_invariants.rs` plus a
/// shared-memory kernel whose stride puts all 32 lanes in one bank — four
/// different dominant counter signatures.
fn kernels() -> Vec<(&'static str, sass::Module, u32, u32, usize)> {
    let ffma = {
        let mut body = String::from(".kernel peak\n");
        body.push_str("MOV R2, 0x3f800000;\nMOV R3, 0x3f800000;\n");
        body.push_str("MOV R63, 0x80;\nLOOP:\n");
        for i in 0..32 {
            let d = 4 + (i % 32);
            body.push_str(&format!("--:-:-:Y:1  FFMA R{d}, R2, R3, R{d};\n"));
        }
        body.push_str("IADD3 R63, R63, -1, RZ;\n");
        body.push_str("ISETP.GT.AND P0, PT, R63, 0, PT;\n");
        body.push_str("--:-:-:Y:5  @P0 BRA `(LOOP);\nEXIT;\n");
        assemble(&body).unwrap()
    };
    let latency = assemble(
        r#"
.kernel lat
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  MOV R20, 0x20;
    --:-:-:Y:6  IMAD R2, R1, 0x40, R0;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R2, 0x4, R10;
LOOP:
    --:-:0:-:2  LDG.E R4, [R2];
    01:-:-:Y:4  FADD R8, R8, R4;
    --:-:-:Y:4  IADD3 R20, R20, -1, RZ;
    --:-:-:Y:4  ISETP.GT.AND P0, PT, R20, 0, PT;
    --:-:-:Y:5  @P0 BRA `(LOOP);
    --:-:-:Y:2  STG.E [R2], R8;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    let barrier = assemble(
        r#"
.kernel bar
.smem 1024
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  IMAD R2, R0, 0x4, RZ;
    --:-:-:Y:2  STS [R2], R0;
    3f:-:-:Y:1  BAR.SYNC 0x0;
    --:-:0:-:2  LDS R4, [R2];
    01:-:-:Y:4  IADD3 R4, R4, 1, RZ;
    3f:-:-:Y:1  BAR.SYNC 0x0;
    --:-:-:Y:2  STS [R2], R4;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    // Stride of 128 B: every lane of a warp lands in bank 0 — a 32-way
    // conflict on each of the three shared accesses.
    let smemconf = assemble(
        r#"
.kernel smemconf
.smem 8192
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  IMAD R2, R0, 0x80, RZ;
    --:-:-:Y:2  STS [R2], R0;
    --:-:0:-:2  LDS R4, [R2];
    01:-:-:Y:4  IADD3 R4, R4, 1, RZ;
    --:-:-:Y:2  STS [R2], R4;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    vec![
        ("ffma", ffma, 144, 256, 1 << 20),
        ("latency", latency, 160, 64, 1 << 24),
        ("barrier", barrier, 72, 256, 1 << 20),
        ("smemconf", smemconf, 36, 64, 1 << 20),
    ]
}

fn run(
    m: &sass::Module,
    blocks: u32,
    mem: usize,
    threads: u32,
    opts: TimingOptions,
) -> KernelTiming {
    let mut gpu = Gpu::new(DeviceSpec::v100(), mem);
    let buf = gpu.alloc(1 << 20);
    let params = ParamBuilder::new().push_ptr(buf).build();
    gpusim::timing::time_kernel(
        &mut gpu,
        m,
        LaunchDims::linear(blocks, threads),
        &params,
        opts,
    )
    .unwrap()
}

fn counted(m: &sass::Module, blocks: u32, mem: usize, threads: u32) -> KernelTiming {
    run(
        m,
        blocks,
        mem,
        threads,
        TimingOptions {
            counters: true,
            ..Default::default()
        },
    )
}

/// `counters: false` must not change the simulation: every other
/// `KernelTiming` field is bit-identical with and without collection.
#[test]
fn counters_off_is_bit_identical() {
    for (name, m, blocks, threads, mem) in kernels() {
        let off = run(&m, blocks, mem, threads, TimingOptions::default());
        let on = counted(&m, blocks, mem, threads);
        assert!(off.counters.is_none());
        assert!(on.counters.is_some());
        assert_eq!(off.wave_cycles, on.wave_cycles, "{name}");
        assert_eq!(off.waves, on.waves, "{name}");
        assert_eq!(off.blocks_per_sm, on.blocks_per_sm, "{name}");
        assert_eq!(off.total_blocks, on.total_blocks, "{name}");
        assert_eq!(off.time_s.to_bits(), on.time_s.to_bits(), "{name}");
        assert_eq!(off.flops.to_bits(), on.flops.to_bits(), "{name}");
        assert_eq!(off.tflops.to_bits(), on.tflops.to_bits(), "{name}");
        assert_eq!(off.sol_pct.to_bits(), on.sol_pct.to_bits(), "{name}");
        assert_eq!(
            off.sol_total_pct.to_bits(),
            on.sol_total_pct.to_bits(),
            "{name}"
        );
        assert_eq!(
            off.issue_util_pct.to_bits(),
            on.issue_util_pct.to_bits(),
            "{name}"
        );
        assert_eq!(off.dram_bytes, on.dram_bytes, "{name}");
        assert_eq!(
            off.dram_time_s.to_bits(),
            on.dram_time_s.to_bits(),
            "{name}"
        );
        assert_eq!(off.region_cycles, on.region_cycles, "{name}");
        assert_eq!(
            off.reg_bank_conflict_cycles, on.reg_bank_conflict_cycles,
            "{name}"
        );
        assert_eq!(off.smem_conflict_cycles, on.smem_conflict_cycles, "{name}");
        assert_eq!(off.yield_switch_cycles, on.yield_switch_cycles, "{name}");
        assert_eq!(off.idle_breakdown, on.idle_breakdown, "{name}");
    }
}

/// Every counter satisfies its reconciliation invariant: the internal
/// identities (`HwCounters::validate`) and the cross-`KernelTiming` ones
/// from the `gpusim::counters` module table.
#[test]
fn counters_validate_and_reconcile_with_kernel_timing() {
    for (name, m, blocks, threads, mem) in kernels() {
        let t = counted(&m, blocks, mem, threads);
        let c = t.counters.as_ref().expect("counters requested");
        c.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(c.wave_cycles, t.wave_cycles, "{name}");
        assert!(c.issued > 0, "{name}: something must have issued");

        // issue_efficiency == KernelTiming's issue_util_pct (same slots).
        assert!(
            (c.issue_efficiency_pct() - t.issue_util_pct).abs() < 1e-9,
            "{name}: issue efficiency {} vs issue_util_pct {}",
            c.issue_efficiency_pct(),
            t.issue_util_pct
        );
        // Register-bank conflicts: one extra pipe cycle each, both views.
        assert_eq!(c.reg_bank_conflicts, t.reg_bank_conflict_cycles, "{name}");
        // Bank-conflict overage is exactly the smem conflict cycles.
        assert_eq!(c.smem_extra_phases, t.smem_conflict_cycles, "{name}");
        // sol_total_pct counts useful FP cycles only: 2 per FP issue.
        let sol_from_counters = 100.0 * (2 * c.fp_issues) as f64 / c.slot_capacity() as f64;
        assert!(
            (sol_from_counters - t.sol_total_pct).abs() < 1e-9,
            "{name}: sol from counters {} vs {}",
            sol_from_counters,
            t.sol_total_pct
        );
        // Wave-local DRAM bytes scale to the whole-grid estimate.
        let scaled = ((c.dram_read_bytes + c.dram_write_bytes) as f64 * t.total_blocks as f64
            / t.blocks_per_sm as f64) as u64;
        assert_eq!(scaled, t.dram_bytes, "{name}: DRAM scaling");

        match name {
            "ffma" => assert!(c.fp_issues > c.issued / 2, "ffma kernel issues mostly FP32"),
            "latency" => {
                assert!(c.global_accesses > 0, "latency kernel loads");
                assert!(
                    c.l1_sector_hits > 0,
                    "repeated loads of one line must hit L1"
                );
            }
            "barrier" => {
                assert!(c.smem_accesses > 0);
                assert_eq!(c.smem_extra_phases, 0, "stride-4 smem is conflict-free");
            }
            "smemconf" => {
                // 3 shared accesses per warp, each a 32-way conflict:
                // 31 extra phases per access, none ideal beyond the floor.
                assert_eq!(c.smem_extra_phases, 31 * c.smem_accesses, "{name}");
                assert!(c.smem_extra_phases > 0);
                assert_eq!(c.smem_accesses_by_width[0], c.smem_accesses);
            }
            _ => unreachable!(),
        }
    }
}

/// Counters and the stall profile are two views of one scheduler loop:
/// enabling both keeps them consistent with each other.
#[test]
fn counters_agree_with_profile() {
    for (name, m, blocks, threads, mem) in kernels() {
        let t = run(
            &m,
            blocks,
            mem,
            threads,
            TimingOptions {
                counters: true,
                profile: true,
                ..Default::default()
            },
        );
        let c = t.counters.as_ref().unwrap();
        let p = t.profile.as_ref().unwrap();
        let issue_slots: u64 = p.lines.iter().map(|l| l.issue_cycles).sum();
        assert_eq!(c.issued, issue_slots, "{name}: issued == profiled issues");
        // A cycle with zero eligible warps on every scheduler is at least as
        // common as a profile-empty slot (blocked warps are ineligible too).
        assert!(
            c.eligible_hist[0] >= p.empty_cycles,
            "{name}: zero-eligible slots {} < empty slots {}",
            c.eligible_hist[0],
            p.empty_cycles
        );
    }
}

/// Cross-path agreement: on a grid the timed wave fully covers (one block),
/// the functional `launch_counted` path and the timing path count the same
/// shared-memory phases and global sectors from the same addresses.
#[test]
fn exec_counters_agree_with_timing_counters() {
    for (name, m, _, threads, mem) in kernels() {
        if name == "ffma" {
            continue; // no memory traffic to compare
        }
        let t = counted(&m, 1, mem, threads);
        let c = t.counters.as_ref().unwrap();

        let mut gpu = Gpu::new(DeviceSpec::v100(), mem);
        let buf = gpu.alloc(1 << 20);
        let params = ParamBuilder::new().push_ptr(buf).build();
        let e = gpu
            .launch_counted(&m, LaunchDims::linear(1, threads), &params)
            .unwrap();
        e.validate().unwrap_or_else(|err| panic!("{name}: {err}"));
        assert_eq!(e.blocks, 1, "{name}");
        assert_eq!(e.smem_accesses, c.smem_accesses, "{name}");
        assert_eq!(e.smem_phases, c.smem_phases, "{name}");
        assert_eq!(e.smem_ideal_phases, c.smem_ideal_phases, "{name}");
        assert_eq!(e.smem_extra_phases, c.smem_extra_phases, "{name}");
        assert_eq!(e.global_accesses, c.global_accesses, "{name}");
        assert_eq!(e.global_sectors, c.global_sectors, "{name}");
    }
}
