//! Property tests: the functional executor's ALU semantics agree with host
//! Rust semantics over random operands, for every lane.

use gpusim::{ConstBank, DeviceSpec, ExecEnv, Gpu, LaunchDims, ParamBuilder, Warp};
use proptest::prelude::*;
use sass::isa::{build, Instruction, Op, SrcB};
use sass::reg::{Reg, RZ};

/// Run a few instructions on one warp and return the register file.
fn run_warp(insts: Vec<Instruction>, init: impl FnOnce(&mut Warp)) -> Warp {
    let mut insts = insts;
    insts.push(Instruction::new(Op::Exit));
    let mut global = gpusim::GlobalMemory::new(1 << 16);
    let mut smem = vec![0u8; 1024];
    let cbank = ConstBank::new([32, 1, 1], [1, 1, 1], &[]);
    let mut warp = Warp::new(32, 0, 32);
    init(&mut warp);
    let mut env = ExecEnv {
        global: &mut global,
        smem: &mut smem,
        cbank: &cbank,
        ctaid: [0, 0, 0],
        block_dim: [32, 1, 1],
    };
    loop {
        let (ev, _) = gpusim::exec::step(&mut warp, &insts, &mut env, 0).unwrap();
        if ev == gpusim::StepEvent::Exited {
            break;
        }
    }
    warp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ffma_matches_host_fma(a in any::<f32>(), b in any::<f32>(), c in any::<f32>()) {
        let w = run_warp(
            vec![Instruction::new(build::ffma(Reg(3), Reg(0), Reg(1), Reg(2)))],
            |w| {
                for lane in 0..32 {
                    w.regs[0][lane] = a.to_bits();
                    w.regs[1][lane] = b.to_bits();
                    w.regs[2][lane] = c.to_bits();
                }
            },
        );
        let want = a.mul_add(b, c);
        for lane in [0usize, 13, 31] {
            let got = f32::from_bits(w.regs[3][lane]);
            prop_assert!(got == want || (got.is_nan() && want.is_nan()), "lane {lane}: {got} vs {want}");
        }
    }

    #[test]
    fn integer_ops_match_host(a in any::<u32>(), b in any::<u32>(), c in any::<u32>(), sh in 0u8..32) {
        let w = run_warp(
            vec![
                Instruction::new(build::iadd3(Reg(3), Reg(0), Reg(1), Reg(2))),
                Instruction::new(build::imad(Reg(4), Reg(0), Reg(1), Reg(2))),
                Instruction::new(Op::ImadHi { d: Reg(5), a: Reg(0), b: SrcB::Reg(Reg(1)), c: Reg(2) }),
                Instruction::new(build::shl(Reg(6), Reg(0), sh)),
                Instruction::new(build::shr(Reg(7), Reg(0), sh)),
                Instruction::new(build::and(Reg(8), Reg(0), Reg(1))),
                Instruction::new(build::or(Reg(9), Reg(0), Reg(1))),
                Instruction::new(build::xor(Reg(10), Reg(0), Reg(1))),
                Instruction::new(build::lea(Reg(11), Reg(0), Reg(1), 3)),
                Instruction::new(build::imad_wide(Reg(12), Reg(0), Reg(1), RZ)),
            ],
            |w| {
                for lane in 0..32 {
                    w.regs[0][lane] = a;
                    w.regs[1][lane] = b;
                    w.regs[2][lane] = c;
                }
            },
        );
        prop_assert_eq!(w.regs[3][0], a.wrapping_add(b).wrapping_add(c));
        prop_assert_eq!(w.regs[4][0], a.wrapping_mul(b).wrapping_add(c));
        prop_assert_eq!(w.regs[5][0], (((a as u64 * b as u64) >> 32) as u32).wrapping_add(c));
        prop_assert_eq!(w.regs[6][0], a << sh);
        prop_assert_eq!(w.regs[7][0], a >> sh);
        prop_assert_eq!(w.regs[8][0], a & b);
        prop_assert_eq!(w.regs[9][0], a | b);
        prop_assert_eq!(w.regs[10][0], a ^ b);
        prop_assert_eq!(w.regs[11][0], b.wrapping_add(a << 3));
        let wide = a as u64 * b as u64;
        prop_assert_eq!(w.regs[12][0], wide as u32);
        prop_assert_eq!(w.regs[13][0], (wide >> 32) as u32);
    }

    #[test]
    fn lop3_implements_its_lut(a in any::<u32>(), b in any::<u32>(), c in any::<u32>(), lut in any::<u8>()) {
        let w = run_warp(
            vec![Instruction::new(Op::Lop3 { d: Reg(3), a: Reg(0), b: SrcB::Reg(Reg(1)), c: Reg(2), lut })],
            |w| {
                for lane in 0..32 {
                    w.regs[0][lane] = a;
                    w.regs[1][lane] = b;
                    w.regs[2][lane] = c;
                }
            },
        );
        let mut want = 0u32;
        for bit in 0..32 {
            let idx = (((a >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | ((c >> bit) & 1);
            if lut & (1 << idx) != 0 {
                want |= 1 << bit;
            }
        }
        prop_assert_eq!(w.regs[3][0], want);
    }

    #[test]
    fn p2r_r2p_round_trips_masks(bits in 0u32..128, mask in 0u32..128) {
        let w = run_warp(
            vec![
                // Set predicates from bits, pack, unpack into fresh preds,
                // and repack: the two packed values must agree under mask.
                Instruction::new(Op::R2p { a: Reg(0), mask: 0x7f }),
                Instruction::new(Op::P2r { d: Reg(1), a: RZ, mask }),
                Instruction::new(Op::R2p { a: Reg(1), mask: 0x7f }),
                Instruction::new(Op::P2r { d: Reg(2), a: RZ, mask: 0x7f }),
            ],
            |w| {
                for lane in 0..32 {
                    w.regs[0][lane] = bits;
                }
            },
        );
        prop_assert_eq!(w.regs[1][0], bits & mask & 0x7f);
        prop_assert_eq!(w.regs[2][0], bits & mask & 0x7f);
    }
}

/// Global memory round trips arbitrary data through a store/load kernel.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gmem_round_trip(data in prop::collection::vec(any::<u32>(), 32)) {
        let m = sass::assemble(
            r#"
.kernel copy
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  MOV R4, c[0x0][0x160];
    --:-:-:Y:6  MOV R5, c[0x0][0x164];
    --:-:-:Y:6  MOV R6, c[0x0][0x168];
    --:-:-:Y:6  MOV R7, c[0x0][0x16c];
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R0, 0x4, R4;
    --:-:-:Y:6  IMAD.WIDE.U32 R8, R0, 0x4, R6;
    --:-:0:-:2  LDG.E R10, [R2];
    01:-:-:Y:2  STG.E [R8], R10;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 16);
        let src = gpu.alloc(128);
        let dst = gpu.alloc(128);
        for (i, v) in data.iter().enumerate() {
            gpu.mem.write_u32(src + i as u64 * 4, *v).unwrap();
        }
        let params = ParamBuilder::new().push_ptr(src).push_ptr(dst).build();
        gpu.launch(&m, LaunchDims::linear(1, 32), &params).unwrap();
        for (i, v) in data.iter().enumerate() {
            prop_assert_eq!(gpu.mem.read_u32(dst + i as u64 * 4).unwrap(), *v);
        }
    }
}
