//! Property tests: the functional executor's ALU semantics agree with host
//! Rust semantics over random operands, for every lane.
//!
//! Randomized with the workspace's deterministic `XorShiftRng` (the registry
//! is not reachable from the build environment, so `proptest` is off-limits);
//! every case prints its operands on failure, so a red run is reproducible.

use gpusim::{ConstBank, DeviceSpec, ExecEnv, Gpu, LaunchDims, ParamBuilder, Warp};
use sass::isa::{build, Instruction, Op, SrcB};
use sass::reg::{Reg, RZ};
use tensor::XorShiftRng;

/// Run a few instructions on one warp and return the register file.
fn run_warp(insts: Vec<Instruction>, init: impl FnOnce(&mut Warp)) -> Warp {
    let mut insts = insts;
    insts.push(Instruction::new(Op::Exit));
    let mut global = gpusim::GlobalMemory::new(1 << 16);
    let mut smem = vec![0u8; 1024];
    let cbank = ConstBank::new([32, 1, 1], [1, 1, 1], &[]);
    let mut warp = Warp::new(32, 0, 32);
    init(&mut warp);
    let mut env = ExecEnv {
        global: &mut global,
        smem: &mut smem,
        cbank: &cbank,
        ctaid: [0, 0, 0],
        block_dim: [32, 1, 1],
    };
    loop {
        let (ev, _) = gpusim::exec::step(&mut warp, &insts, &mut env, 0).unwrap();
        if ev == gpusim::StepEvent::Exited {
            break;
        }
    }
    warp
}

/// A "any::<f32>()"-style generator: uniform over raw bit patterns, which
/// covers NaNs, infinities, subnormals and both zeros.
fn arb_f32(rng: &mut XorShiftRng) -> f32 {
    f32::from_bits(rng.next_u32())
}

#[test]
fn ffma_matches_host_fma() {
    let mut rng = XorShiftRng::new(0xFF3A_0001);
    for case in 0..256 {
        let (a, b, c) = (arb_f32(&mut rng), arb_f32(&mut rng), arb_f32(&mut rng));
        let w = run_warp(
            vec![Instruction::new(build::ffma(
                Reg(3),
                Reg(0),
                Reg(1),
                Reg(2),
            ))],
            |w| {
                for lane in 0..32 {
                    w.regs[0][lane] = a.to_bits();
                    w.regs[1][lane] = b.to_bits();
                    w.regs[2][lane] = c.to_bits();
                }
            },
        );
        let want = a.mul_add(b, c);
        for lane in [0usize, 13, 31] {
            let got = f32::from_bits(w.regs[3][lane]);
            assert!(
                got == want || (got.is_nan() && want.is_nan()),
                "case {case} lane {lane}: fma({a}, {b}, {c}) = {got} vs {want}"
            );
        }
    }
}

#[test]
fn integer_ops_match_host() {
    let mut rng = XorShiftRng::new(0x1217_0002);
    for case in 0..256 {
        let a = rng.next_u32();
        let b = rng.next_u32();
        let c = rng.next_u32();
        let sh = (rng.next_u32() % 32) as u8;
        let w = run_warp(
            vec![
                Instruction::new(build::iadd3(Reg(3), Reg(0), Reg(1), Reg(2))),
                Instruction::new(build::imad(Reg(4), Reg(0), Reg(1), Reg(2))),
                Instruction::new(Op::ImadHi {
                    d: Reg(5),
                    a: Reg(0),
                    b: SrcB::Reg(Reg(1)),
                    c: Reg(2),
                }),
                Instruction::new(build::shl(Reg(6), Reg(0), sh)),
                Instruction::new(build::shr(Reg(7), Reg(0), sh)),
                Instruction::new(build::and(Reg(8), Reg(0), Reg(1))),
                Instruction::new(build::or(Reg(9), Reg(0), Reg(1))),
                Instruction::new(build::xor(Reg(10), Reg(0), Reg(1))),
                Instruction::new(build::lea(Reg(11), Reg(0), Reg(1), 3)),
                Instruction::new(build::imad_wide(Reg(12), Reg(0), Reg(1), RZ)),
            ],
            |w| {
                for lane in 0..32 {
                    w.regs[0][lane] = a;
                    w.regs[1][lane] = b;
                    w.regs[2][lane] = c;
                }
            },
        );
        let ctx = |got: u32, want: u32, op: &str| {
            assert_eq!(
                got, want,
                "case {case} ({a:#x}, {b:#x}, {c:#x}, sh={sh}): {op}"
            );
        };
        ctx(w.regs[3][0], a.wrapping_add(b).wrapping_add(c), "IADD3");
        ctx(w.regs[4][0], a.wrapping_mul(b).wrapping_add(c), "IMAD");
        ctx(
            w.regs[5][0],
            (((a as u64 * b as u64) >> 32) as u32).wrapping_add(c),
            "IMAD.HI",
        );
        ctx(w.regs[6][0], a << sh, "SHL");
        ctx(w.regs[7][0], a >> sh, "SHR");
        ctx(w.regs[8][0], a & b, "AND");
        ctx(w.regs[9][0], a | b, "OR");
        ctx(w.regs[10][0], a ^ b, "XOR");
        ctx(w.regs[11][0], b.wrapping_add(a << 3), "LEA");
        let wide = a as u64 * b as u64;
        ctx(w.regs[12][0], wide as u32, "IMAD.WIDE lo");
        ctx(w.regs[13][0], (wide >> 32) as u32, "IMAD.WIDE hi");
    }
}

#[test]
fn lop3_implements_its_lut() {
    let mut rng = XorShiftRng::new(0x1093_0003);
    for case in 0..256 {
        let a = rng.next_u32();
        let b = rng.next_u32();
        let c = rng.next_u32();
        let lut = (rng.next_u32() & 0xff) as u8;
        let w = run_warp(
            vec![Instruction::new(Op::Lop3 {
                d: Reg(3),
                a: Reg(0),
                b: SrcB::Reg(Reg(1)),
                c: Reg(2),
                lut,
            })],
            |w| {
                for lane in 0..32 {
                    w.regs[0][lane] = a;
                    w.regs[1][lane] = b;
                    w.regs[2][lane] = c;
                }
            },
        );
        let mut want = 0u32;
        for bit in 0..32 {
            let idx = (((a >> bit) & 1) << 2) | (((b >> bit) & 1) << 1) | ((c >> bit) & 1);
            if lut & (1 << idx) != 0 {
                want |= 1 << bit;
            }
        }
        assert_eq!(
            w.regs[3][0], want,
            "case {case}: LOP3({a:#x}, {b:#x}, {c:#x}, lut={lut:#x})"
        );
    }
}

#[test]
fn p2r_r2p_round_trips_masks() {
    let mut rng = XorShiftRng::new(0x92F9_0004);
    for case in 0..256 {
        let bits = rng.next_u32() % 128;
        let mask = rng.next_u32() % 128;
        let w = run_warp(
            vec![
                // Set predicates from bits, pack, unpack into fresh preds,
                // and repack: the two packed values must agree under mask.
                Instruction::new(Op::R2p {
                    a: Reg(0),
                    mask: 0x7f,
                }),
                Instruction::new(Op::P2r {
                    d: Reg(1),
                    a: RZ,
                    mask,
                }),
                Instruction::new(Op::R2p {
                    a: Reg(1),
                    mask: 0x7f,
                }),
                Instruction::new(Op::P2r {
                    d: Reg(2),
                    a: RZ,
                    mask: 0x7f,
                }),
            ],
            |w| {
                for lane in 0..32 {
                    w.regs[0][lane] = bits;
                }
            },
        );
        assert_eq!(
            w.regs[1][0],
            bits & mask & 0x7f,
            "case {case}: bits={bits:#x} mask={mask:#x}"
        );
        assert_eq!(
            w.regs[2][0],
            bits & mask & 0x7f,
            "case {case}: bits={bits:#x} mask={mask:#x}"
        );
    }
}

/// Global memory round trips arbitrary data through a store/load kernel.
#[test]
fn gmem_round_trip() {
    let m = sass::assemble(
        r#"
.kernel copy
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  MOV R4, c[0x0][0x160];
    --:-:-:Y:6  MOV R5, c[0x0][0x164];
    --:-:-:Y:6  MOV R6, c[0x0][0x168];
    --:-:-:Y:6  MOV R7, c[0x0][0x16c];
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R0, 0x4, R4;
    --:-:-:Y:6  IMAD.WIDE.U32 R8, R0, 0x4, R6;
    --:-:0:-:2  LDG.E R10, [R2];
    01:-:-:Y:2  STG.E [R8], R10;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    let mut rng = XorShiftRng::new(0x6333_0005);
    for case in 0..32 {
        let data: Vec<u32> = (0..32).map(|_| rng.next_u32()).collect();
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 16);
        let src = gpu.alloc(128);
        let dst = gpu.alloc(128);
        for (i, v) in data.iter().enumerate() {
            gpu.mem.write_u32(src + i as u64 * 4, *v).unwrap();
        }
        let params = ParamBuilder::new().push_ptr(src).push_ptr(dst).build();
        gpu.launch(&m, LaunchDims::linear(1, 32), &params).unwrap();
        for (i, v) in data.iter().enumerate() {
            assert_eq!(
                gpu.mem.read_u32(dst + i as u64 * 4).unwrap(),
                *v,
                "case {case} word {i}"
            );
        }
    }
}
