//! Golden bit-identity contract for the timing hot loop.
//!
//! Runs the three kernel families the experiments depend on (our fused
//! Winograd kernel, the cuDNN-like fused variant, and a tiled GEMM) on both
//! simulated devices, across every {profile, counters} combination, and
//! checks two things against a committed golden file:
//!
//! 1. a digest of the **complete** `KernelTiming` result — including the
//!    stall profile's per-line buckets and issue-event stream and every
//!    hardware counter — via its `Debug` rendering (Rust's `Debug` for `f64`
//!    prints the shortest round-trippable decimal, so two timings digest
//!    equal iff they are bit-identical);
//! 2. the simcache content address (`gpusim::timing_digest`) of the call, so
//!    warm caches written by earlier revisions still hit.
//!
//! The goldens were originally captured from the pre-optimization
//! cycle-by-cycle loop and reproduced bit-exactly by the event-driven
//! rewrite. They were regenerated once for `TIMING_MODEL_VERSION = 2` (the
//! multi-wave device model): the retained one-wave path now caps residency
//! at `ceil(total/num_sms)`, reports `busy_sms`, and mixes the model version
//! into the cache key, so both digests legitimately moved. Regenerate only
//! when an intentional model change lands:
//!
//! ```text
//! HOTLOOP_GOLDEN_REGEN=1 cargo test -p gpusim --test hotloop_identity
//! ```

use gpusim::{timing, DeviceSpec, Digest, Gpu, TimingOptions};
use kernels::gemm::{GemmConfig, GemmKernel};
use kernels::{FusedConfig, FusedKernel};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/hotloop_identity.txt"
);

/// Allocates a case's buffers on a fresh GPU and returns the parameter block.
type ParamFn = Box<dyn Fn(&mut Gpu) -> Vec<u8>>;

/// One kernel under test: a module plus a closure that allocates its buffers
/// on a fresh GPU and returns the parameter block.
struct Case {
    name: &'static str,
    module: sass::Module,
    dims: gpusim::LaunchDims,
    region: (u32, u32),
    capacity: usize,
    params: ParamFn,
}

fn cases() -> Vec<Case> {
    let mut v = Vec::new();
    // Small problem instances keep 24 full simulations fast while still
    // exercising every mechanism (yield, reuse, bank conflicts, smem phases,
    // scoreboards, L1/L2/DRAM, barriers).
    let (c, h, w, n, k) = (32u32, 4u32, 4u32, 32u32, 64u32);
    for (name, cfg) in [
        ("fused_ours", FusedConfig::ours(c, h, w, n, k)),
        ("fused_cudnn_like", FusedConfig::cudnn_like(c, h, w, n, k)),
    ] {
        let kern = FusedKernel::emit(cfg);
        let (din, dtf, dout) = (
            (c * h * w * n) as u64 * 4,
            (c * 16 * k) as u64 * 4,
            (k * h * w * n) as u64 * 4,
        );
        v.push(Case {
            name,
            dims: kern.launch_dims(),
            region: kern.region,
            capacity: 1 << 22,
            module: kern.module.clone(),
            params: Box::new(move |gpu| {
                let a = gpu.alloc(din);
                let b = gpu.alloc(dtf);
                let o = gpu.alloc(dout);
                kern.params(a, b, o)
            }),
        });
    }
    let (m, nn, kd) = (64u32, 256u32, 288u32);
    let kern = GemmKernel::emit(GemmConfig::new(m, nn, kd));
    v.push(Case {
        name: "gemm",
        dims: kern.launch_dims(),
        region: kern.region,
        capacity: 1 << 22,
        module: kern.module.clone(),
        params: Box::new(move |gpu| {
            let a = gpu.alloc((m * kd) as u64 * 4);
            let b = gpu.alloc((kd * nn) as u64 * 4);
            let c = gpu.alloc((m * nn) as u64 * 4);
            kern.params(a, b, c)
        }),
    });
    v
}

/// Render the full observed state of one timing run as one golden line.
fn run_line(case: &Case, dev: &DeviceSpec, profile: bool, counters: bool) -> String {
    let opts = TimingOptions {
        region: Some(case.region),
        profile,
        counters,
        ..Default::default()
    };
    let mut gpu = Gpu::new(dev.clone(), case.capacity);
    let params = (case.params)(&mut gpu);
    let t = timing::time_kernel(&mut gpu, &case.module, case.dims, &params, opts)
        .expect("timing run failed");
    let key = gpusim::timing_digest(dev, &case.module, case.dims, &params, opts);
    let mut d = Digest::new();
    d.str(&format!("{t:?}"));
    format!(
        "{}/{}/p{}c{} timing={} key={} wave_cycles={} issued_events={} time_bits={:016x}",
        case.name,
        dev.name,
        profile as u8,
        counters as u8,
        d.hex(),
        key,
        t.wave_cycles,
        t.profile.as_ref().map_or(0, |p| p.issue_events.len()),
        t.time_s.to_bits(),
    )
}

#[test]
fn hot_loop_is_bit_identical_to_golden() {
    let devices = [DeviceSpec::v100(), DeviceSpec::rtx2070()];
    let mut lines = Vec::new();
    for case in cases() {
        for dev in &devices {
            for (profile, counters) in [(false, false), (true, false), (false, true), (true, true)]
            {
                lines.push(run_line(&case, dev, profile, counters));
            }
        }
    }
    let text = lines.join("\n") + "\n";

    if std::env::var("HOTLOOP_GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN, &text).unwrap();
        eprintln!("regenerated {GOLDEN}");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN)
        .expect("missing golden file; run with HOTLOOP_GOLDEN_REGEN=1 to create it");
    if text != golden {
        for (got, want) in lines.iter().zip(golden.lines()) {
            if got != want {
                eprintln!("mismatch:\n  got  {got}\n  want {want}");
            }
        }
        panic!("timing output drifted from the committed golden (see above)");
    }
}
