//! Invariants of the `simprof` stall-attribution profile (ISSUE: profiling
//! must reconcile with `KernelTiming`, and must be free when off).

use gpusim::{DeviceSpec, Gpu, KernelTiming, LaunchDims, ParamBuilder, StallCause, TimingOptions};
use sass::assemble;

/// A compute loop (FP32-bound), a latency loop (scoreboard-bound) and a
/// barrier kernel: three different dominant stall profiles.
fn kernels() -> Vec<(&'static str, sass::Module, u32, usize)> {
    let ffma = {
        let mut body = String::from(".kernel peak\n");
        body.push_str("MOV R2, 0x3f800000;\nMOV R3, 0x3f800000;\n");
        body.push_str("MOV R63, 0x80;\nLOOP:\n");
        for i in 0..32 {
            let d = 4 + (i % 32);
            body.push_str(&format!("--:-:-:Y:1  FFMA R{d}, R2, R3, R{d};\n"));
        }
        body.push_str("IADD3 R63, R63, -1, RZ;\n");
        body.push_str("ISETP.GT.AND P0, PT, R63, 0, PT;\n");
        body.push_str("--:-:-:Y:5  @P0 BRA `(LOOP);\nEXIT;\n");
        assemble(&body).unwrap()
    };
    let latency = assemble(
        r#"
.kernel lat
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  MOV R20, 0x20;
    --:-:-:Y:6  IMAD R2, R1, 0x40, R0;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R2, 0x4, R10;
LOOP:
    --:-:0:-:2  LDG.E R4, [R2];
    01:-:-:Y:4  FADD R8, R8, R4;
    --:-:-:Y:4  IADD3 R20, R20, -1, RZ;
    --:-:-:Y:4  ISETP.GT.AND P0, PT, R20, 0, PT;
    --:-:-:Y:5  @P0 BRA `(LOOP);
    --:-:-:Y:2  STG.E [R2], R8;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    let barrier = assemble(
        r#"
.kernel bar
.smem 1024
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  IMAD R2, R0, 0x4, RZ;
    --:-:-:Y:2  STS [R2], R0;
    3f:-:-:Y:1  BAR.SYNC 0x0;
    --:-:0:-:2  LDS R4, [R2];
    01:-:-:Y:4  IADD3 R4, R4, 1, RZ;
    3f:-:-:Y:1  BAR.SYNC 0x0;
    --:-:-:Y:2  STS [R2], R4;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    vec![
        ("ffma", ffma, 144, 1 << 20),
        ("latency", latency, 160, 1 << 24),
        ("barrier", barrier, 72, 1 << 20),
    ]
}

fn run(m: &sass::Module, blocks: u32, mem: usize, threads: u32, profile: bool) -> KernelTiming {
    let mut gpu = Gpu::new(DeviceSpec::v100(), mem);
    let buf = gpu.alloc(1 << 20);
    let params = ParamBuilder::new().push_ptr(buf).build();
    gpusim::timing::time_kernel(
        &mut gpu,
        m,
        LaunchDims::linear(blocks, threads),
        &params,
        TimingOptions {
            profile,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Every scheduler-cycle of the wave lands in exactly one bucket: the
/// per-line issue+stall sums plus the empty bucket reconcile exactly with
/// `schedulers * wave_cycles`, for every kind of dominant stall.
#[test]
fn attribution_reconciles_with_wave_cycles() {
    for (name, m, blocks, mem) in kernels() {
        let threads = if name == "latency" { 64 } else { 256 };
        let t = run(&m, blocks, mem, threads, true);
        let p = t.profile.as_ref().expect("profile requested");
        assert_eq!(
            p.wave_cycles, t.wave_cycles,
            "{name}: profile wave mismatch"
        );
        assert_eq!(
            p.lines.len(),
            m.insts.len(),
            "{name}: one entry per SASS line"
        );
        assert_eq!(
            p.attributed_cycles(),
            p.schedulers as u64 * p.wave_cycles,
            "{name}: per-line sums + empty must cover every scheduler slot"
        );
        // Issue slots are one per executed instruction.
        let exec: u64 = p.lines.iter().map(|l| l.executed).sum();
        let issue: u64 = p.lines.iter().map(|l| l.issue_cycles).sum();
        assert_eq!(exec, issue, "{name}: issue slots == executed count");
        assert!(exec > 0, "{name}: something must have issued");
        // issue_util_pct is derived from the same slot accounting.
        let util = 100.0 * issue as f64 / (p.schedulers as f64 * p.wave_cycles as f64);
        assert!(
            (util - t.issue_util_pct).abs() < 1e-9,
            "{name}: profile issue slots disagree with issue_util_pct"
        );
    }
}

/// The profile's idle breakdown (stalls by cause + yield recovery + empty)
/// sums to exactly the scheduler slots that issued nothing.
#[test]
fn idle_breakdown_sums_to_total_idle() {
    for (name, m, blocks, mem) in kernels() {
        let threads = if name == "latency" { 64 } else { 256 };
        let t = run(&m, blocks, mem, threads, true);
        let p = t.profile.as_ref().unwrap();
        let issue: u64 = p.lines.iter().map(|l| l.issue_cycles).sum();
        let total_idle = p.schedulers as u64 * p.wave_cycles - issue;
        let mut by_cause = [0u64; 5];
        let mut yield_rec = 0u64;
        for l in &p.lines {
            for c in StallCause::ALL {
                by_cause[c as usize] += l.stalls.by_cause[c as usize];
            }
            yield_rec += l.stalls.yield_switch;
        }
        let sum: u64 = by_cause.iter().sum::<u64>() + yield_rec + p.empty_cycles;
        assert_eq!(
            sum, total_idle,
            "{name}: idle components must sum to total idle"
        );
        // Each kernel's dominant cause shows up where expected.
        match name {
            "latency" => assert!(
                by_cause[StallCause::Scoreboard as usize] > 0,
                "latency kernel must show scoreboard stalls"
            ),
            "barrier" => assert!(
                by_cause[StallCause::Barrier as usize] > 0,
                "barrier kernel must show barrier stalls"
            ),
            _ => {}
        }
        // The legacy KernelTiming idle counters sample a subset of the same
        // slots (only cycles visited with the FP pipe free); they can never
        // exceed what the profile accounts.
        assert!(
            t.idle_breakdown.iter().sum::<u64>() <= total_idle,
            "{name}: legacy idle counters exceed profiled idle"
        );
    }
}

/// `profile: false` must not change the simulation: every other
/// `KernelTiming` field is bit-identical with and without profiling.
#[test]
fn profile_off_is_bit_identical() {
    for (name, m, blocks, mem) in kernels() {
        let threads = if name == "latency" { 64 } else { 256 };
        let off = run(&m, blocks, mem, threads, false);
        let on = run(&m, blocks, mem, threads, true);
        assert!(off.profile.is_none());
        assert!(on.profile.is_some());
        assert_eq!(off.wave_cycles, on.wave_cycles, "{name}");
        assert_eq!(off.waves, on.waves, "{name}");
        assert_eq!(off.blocks_per_sm, on.blocks_per_sm, "{name}");
        assert_eq!(off.total_blocks, on.total_blocks, "{name}");
        assert_eq!(off.time_s.to_bits(), on.time_s.to_bits(), "{name}");
        assert_eq!(off.flops.to_bits(), on.flops.to_bits(), "{name}");
        assert_eq!(off.tflops.to_bits(), on.tflops.to_bits(), "{name}");
        assert_eq!(off.sol_pct.to_bits(), on.sol_pct.to_bits(), "{name}");
        assert_eq!(
            off.sol_total_pct.to_bits(),
            on.sol_total_pct.to_bits(),
            "{name}"
        );
        assert_eq!(
            off.issue_util_pct.to_bits(),
            on.issue_util_pct.to_bits(),
            "{name}"
        );
        assert_eq!(off.dram_bytes, on.dram_bytes, "{name}");
        assert_eq!(
            off.dram_time_s.to_bits(),
            on.dram_time_s.to_bits(),
            "{name}"
        );
        assert_eq!(off.region_cycles, on.region_cycles, "{name}");
        assert_eq!(
            off.reg_bank_conflict_cycles, on.reg_bank_conflict_cycles,
            "{name}"
        );
        assert_eq!(off.smem_conflict_cycles, on.smem_conflict_cycles, "{name}");
        assert_eq!(off.yield_switch_cycles, on.yield_switch_cycles, "{name}");
        assert_eq!(off.idle_breakdown, on.idle_breakdown, "{name}");
    }
}

/// The compute kernel's hottest line is an FFMA, and the per-opcode
/// histogram agrees with the per-line counts.
#[test]
fn hot_lines_and_histogram() {
    let (_, m, blocks, mem) = kernels().remove(0);
    let t = run(&m, blocks, mem, 256, true);
    let p = t.profile.unwrap();
    let hot = p.hot_lines(5);
    assert!(!hot.is_empty());
    assert_eq!(
        p.lines[hot[0]].mnemonic, "FFMA",
        "hottest line of an FFMA loop"
    );
    let hist = p.opcode_histogram();
    let ffma = hist.iter().find(|(op, ..)| *op == "FFMA").unwrap();
    let per_line: u64 = p
        .lines
        .iter()
        .filter(|l| l.mnemonic == "FFMA")
        .map(|l| l.executed)
        .sum();
    assert_eq!(ffma.1, per_line);
    // The trace exporter sees the same issue events.
    let trace = p.to_chrome_trace();
    assert!(trace.contains("\"name\":\"FFMA\""));
}
