//! Focused tests of the cycle-level timing model's mechanisms: yield-flag
//! costs, L1 capacity carve-out, warm-up behaviour, idle attribution, and
//! grid-coordinate handling in multi-dimensional launches.

use gpusim::{DeviceSpec, Gpu, LaunchDims, ParamBuilder, TimingOptions};
use sass::assemble;

fn ffma_stream_kernel(yield_every: Option<u32>) -> sass::Module {
    let mut body = String::from(
        ".kernel ystream\nMOV R2, 0x3f800000;\nMOV R3, 0x3f800000;\nMOV R63, 0x100;\nLOOP:\n",
    );
    let mut count = 0u32;
    for i in 0..64 {
        let d = 4 + (i % 32);
        count += 1;
        let y = match yield_every {
            Some(p) if count.is_multiple_of(p) => "-",
            _ => "Y",
        };
        body.push_str(&format!("--:-:-:{y}:1  FFMA R{d}, R2, R3, R{d};\n"));
    }
    body.push_str("IADD3 R63, R63, -1, RZ;\nISETP.GT.AND P0, PT, R63, 0, PT;\n--:-:-:Y:5  @P0 BRA `(LOOP);\nEXIT;\n");
    assemble(&body).unwrap()
}

fn time_module(m: &sass::Module, dev: DeviceSpec, blocks: u32) -> gpusim::KernelTiming {
    let mut gpu = Gpu::new(dev, 1 << 20);
    gpusim::timing::time_kernel(
        &mut gpu,
        m,
        LaunchDims::linear(blocks, 256),
        &[],
        TimingOptions::default(),
    )
    .unwrap()
}

#[test]
fn cleared_yield_costs_issue_slots() {
    // §6.1: clearing the yield flag periodically must cost throughput.
    let natural = time_module(&ffma_stream_kernel(None), DeviceSpec::rtx2070(), 144);
    let every7 = time_module(&ffma_stream_kernel(Some(7)), DeviceSpec::rtx2070(), 144);
    assert!(
        every7.wave_cycles as f64 > 1.03 * natural.wave_cycles as f64,
        "natural {} vs every7 {}",
        natural.wave_cycles,
        every7.wave_cycles
    );
}

#[test]
fn idle_attribution_sums_into_known_buckets() {
    let t = time_module(&ffma_stream_kernel(None), DeviceSpec::v100(), 80);
    let total: u64 = t.idle_breakdown.iter().sum();
    // A pure FFMA stream should lose almost nothing to memory or barriers.
    assert!(
        t.idle_breakdown[0] == 0,
        "no barriers in this kernel: {:?}",
        t.idle_breakdown
    );
    assert!(
        t.idle_breakdown[2] == 0,
        "no MIO in this kernel: {:?}",
        t.idle_breakdown
    );
    let _ = total;
}

/// A streaming kernel whose sectors are re-read must hit the L1 and carry
/// far less DRAM traffic than its cold equivalent.
#[test]
fn l1_absorbs_sector_rewalks() {
    // Each warp reads the same 4 KiB region 32 times.
    let m = assemble(
        r#"
.kernel rewalk
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  MOV R20, 0x20;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R0, 0x4, R10;
LOOP:
    --:-:0:-:2  LDG.E R4, [R2];
    01:-:-:Y:4  FADD R8, R8, R4;
    --:-:-:Y:4  IADD3 R20, R20, -1, RZ;
    --:-:-:Y:4  ISETP.GT.AND P0, PT, R20, 0, PT;
    --:-:-:Y:5  @P0 BRA `(LOOP);
    --:-:-:Y:2  STG.E [R2], R8;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 24);
    let buf = gpu.alloc(1 << 20);
    let params = ParamBuilder::new().push_ptr(buf).build();
    let t = gpusim::timing::time_kernel(
        &mut gpu,
        &m,
        LaunchDims::linear(160, 256),
        &params,
        TimingOptions::default(),
    )
    .unwrap();
    // 32 reads of 1 KiB/warp; DRAM traffic must be ~1 read's worth + the
    // store, not 32 reads' worth.
    let unique_bytes = 160u64 * 256 * 4 * 2; // loads + stores
    assert!(
        t.dram_bytes < 3 * unique_bytes,
        "dram {} vs unique {}",
        t.dram_bytes,
        unique_bytes
    );
}

#[test]
fn multi_dim_grids_resolve_block_coords() {
    // Each block writes its flattened (x,y,z) id; functional + timing paths
    // must agree on block coordinates.
    let m = assemble(
        r#"
.kernel coords
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:1  S2R R2, SR_CTAID.Y;
    --:-:-:Y:6  S2R R3, SR_CTAID.Z;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    // id = (z*GY + y)*GX + x, with GX=3, GY=2 baked in.
    --:-:-:Y:6  IMAD R4, R3, 0x2, R2;
    --:-:-:Y:6  IMAD R4, R4, 0x3, R1;
    --:-:-:Y:6  ISETP.NE.AND P0, PT, R0, 0, PT;
    --:-:-:Y:6  IMAD.WIDE.U32 R6, R4, 0x4, R10;
    --:-:-:Y:2  @!P0 STG.E [R6], R4;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    let dims = LaunchDims::new([3, 2, 4], [32, 1, 1]);
    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 16);
    let buf = gpu.alloc(24 * 4);
    let params = ParamBuilder::new().push_ptr(buf).build();
    gpu.launch(&m, dims, &params).unwrap();
    for id in 0..24u32 {
        assert_eq!(
            gpu.mem.read_u32(buf + id as u64 * 4).unwrap(),
            id,
            "block {id}"
        );
    }
}

#[test]
fn occupancy_override_caps_resident_blocks() {
    let m = ffma_stream_kernel(None);
    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 20);
    let t = gpusim::timing::time_kernel(
        &mut gpu,
        &m,
        LaunchDims::linear(160, 256),
        &[],
        TimingOptions {
            blocks_per_sm: Some(1),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(t.blocks_per_sm, 1);
    assert_eq!(t.waves, 2);
}
