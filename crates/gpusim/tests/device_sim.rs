//! Contracts of the full-device multi-wave timing model (`gpusim::device_sim`)
//! against the retained one-wave analytic path:
//!
//! * **golden agreement** — on grids that are an exact multiple of one full
//!   device wave, the two models must agree bit-for-bit on `time_s` and
//!   `flops`, and the device makespan must equal `waves × wave_cycles`;
//! * **partial-wave correction** — on grids whose last wave is partial, the
//!   device model must charge *less* than the one-wave model's full-wave
//!   extrapolation (that overcharge is the bug the device model fixes);
//! * **determinism** — sharding SMs across worker threads must be
//!   bit-stable: any `jobs` value yields an identical `KernelTiming`,
//!   including the stall profile and hardware counters;
//! * **counter reconciliation** — the `Σ issue + Σ stalls + empty =
//!   schedulers × cycles` identities extend to device totals, with
//!   `HwCounters::wave_cycles` accumulating busy scheduler-cycles over SMs.

use gpusim::{
    time_kernel_device, timing, DeviceOptions, DeviceSpec, Gpu, KernelTiming, LaunchDims,
    ParamBuilder, TimingOptions,
};
use sass::assemble;

/// Compute-only FFMA loop (no memory traffic): timing is independent of
/// block coordinates and cache state, which is what makes exact one-wave
/// agreement provable rather than approximate.
fn ffma_module() -> sass::Module {
    let mut body = String::from(".kernel peak\n");
    body.push_str("MOV R2, 0x3f800000;\nMOV R3, 0x3f800000;\n");
    body.push_str("MOV R63, 0x80;\nLOOP:\n");
    for i in 0..32 {
        let d = 4 + (i % 32);
        body.push_str(&format!("--:-:-:Y:1  FFMA R{d}, R2, R3, R{d};\n"));
    }
    body.push_str("IADD3 R63, R63, -1, RZ;\n");
    body.push_str("ISETP.GT.AND P0, PT, R63, 0, PT;\n");
    body.push_str("--:-:-:Y:5  @P0 BRA `(LOOP);\nEXIT;\n");
    assemble(&body).unwrap()
}

/// Pointer-chasing load loop (global memory + L1/L2 + writeback): exercises
/// the memory backend, whose bandwidth-share and cache-carry terms are the
/// interesting part of the device model.
fn latency_module() -> sass::Module {
    assemble(
        r#"
.kernel lat
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  MOV R20, 0x20;
    --:-:-:Y:6  IMAD R2, R1, 0x40, R0;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R2, 0x4, R10;
LOOP:
    --:-:0:-:2  LDG.E R4, [R2];
    01:-:-:Y:4  FADD R8, R8, R4;
    --:-:-:Y:4  IADD3 R20, R20, -1, RZ;
    --:-:-:Y:4  ISETP.GT.AND P0, PT, R20, 0, PT;
    --:-:-:Y:5  @P0 BRA `(LOOP);
    --:-:-:Y:2  STG.E [R2], R8;
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap()
}

fn one_wave(
    m: &sass::Module,
    dev: &DeviceSpec,
    blocks: u32,
    threads: u32,
    opts: TimingOptions,
) -> KernelTiming {
    let mut gpu = Gpu::new(dev.clone(), 1 << 22);
    let buf = gpu.alloc(1 << 20);
    let params = ParamBuilder::new().push_ptr(buf).build();
    timing::time_kernel(
        &mut gpu,
        m,
        LaunchDims::linear(blocks, threads),
        &params,
        opts,
    )
    .unwrap()
}

fn device(
    m: &sass::Module,
    dev: &DeviceSpec,
    blocks: u32,
    threads: u32,
    opts: DeviceOptions,
) -> KernelTiming {
    let mut gpu = Gpu::new(dev.clone(), 1 << 22);
    let buf = gpu.alloc(1 << 20);
    let params = ParamBuilder::new().push_ptr(buf).build();
    time_kernel_device(
        &mut gpu,
        m,
        LaunchDims::linear(blocks, threads),
        &params,
        opts,
    )
    .unwrap()
}

/// On an exact-multiple grid (RTX2070, 36 SMs, 2 blocks/SM, 144 blocks =
/// exactly two full device waves) the device model must reproduce the
/// one-wave model bit-for-bit, with and without fast-forwarding.
#[test]
fn matches_one_wave_on_exact_multiple_grids() {
    let m = ffma_module();
    let dev = DeviceSpec::rtx2070();
    let base = TimingOptions {
        blocks_per_sm: Some(2),
        ..Default::default()
    };
    let ow = one_wave(&m, &dev, 144, 256, base);
    assert_eq!(ow.waves, 2, "grid chosen to be exactly two full waves");
    assert_eq!(ow.blocks_per_sm, 2);

    let dv = device(
        &m,
        &dev,
        144,
        256,
        DeviceOptions {
            base,
            jobs: 1,
            ..Default::default()
        },
    );
    assert_eq!(
        dv.time_s.to_bits(),
        ow.time_s.to_bits(),
        "exact-multiple grids must agree bit-for-bit: device {} vs one-wave {}",
        dv.time_s,
        ow.time_s
    );
    assert_eq!(
        dv.wave_cycles,
        ow.waves * ow.wave_cycles,
        "device makespan == waves × wave_cycles"
    );
    assert_eq!(dv.flops.to_bits(), ow.flops.to_bits());
    assert_eq!(dv.tflops.to_bits(), ow.tflops.to_bits());
    assert_eq!(dv.waves, ow.waves);
    assert_eq!(dv.busy_sms, 36);
    assert_eq!(ow.busy_sms, 36);
    // Utilization ratios agree up to float reassociation (the device model
    // sums numerator and denominator over 72 SM-waves before dividing).
    assert!((dv.issue_util_pct - ow.issue_util_pct).abs() < 1e-9);
    assert!((dv.sol_total_pct - ow.sol_total_pct).abs() < 1e-9);

    // Fast-forwarding steady-state waves is a pure speedup: the exact
    // simulation of every wave gives the identical result.
    let exact = device(
        &m,
        &dev,
        144,
        256,
        DeviceOptions {
            base,
            jobs: 1,
            exact: true,
            ..Default::default()
        },
    );
    assert_eq!(format!("{exact:?}"), format!("{dv:?}"));
}

/// 180 blocks on 36 SMs at 2 blocks/SM: the one-wave model rounds up to
/// three full device waves; the device model simulates the five-block
/// per-SM tail (two full waves + one single-block wave) and must come in
/// strictly cheaper. This divergence is the mistiming the device model
/// exists to fix.
#[test]
fn partial_wave_grid_costs_less_than_one_wave_model() {
    let m = ffma_module();
    let dev = DeviceSpec::rtx2070();
    let base = TimingOptions {
        blocks_per_sm: Some(2),
        ..Default::default()
    };
    let ow = one_wave(&m, &dev, 180, 256, base);
    assert_eq!(ow.waves, 3, "one-wave model charges three full waves");

    let dv = device(
        &m,
        &dev,
        180,
        256,
        DeviceOptions {
            base,
            jobs: 1,
            ..Default::default()
        },
    );
    assert_eq!(dv.waves, 3);
    assert_eq!(dv.busy_sms, 36);
    assert!(
        dv.time_s < ow.time_s,
        "partial tail wave must cost less than a full wave: device {} vs one-wave {}",
        dv.time_s,
        ow.time_s
    );
    // The correction is bounded: the tail wave still costs something.
    assert!(dv.time_s > ow.time_s * 2.0 / 3.0);
}

/// Sharding SMs across workers must not change a single bit of the result,
/// profile and counters included. 100 blocks on 80 SMs gives an uneven
/// dispatch (20 SMs own two blocks, 60 own one) — the interesting case.
/// `exact: true` forces every SM to be simulated individually so the
/// worker sharding is genuinely exercised.
#[test]
fn bit_stable_under_any_jobs() {
    let m = latency_module();
    let dev = DeviceSpec::v100();
    let opts = |jobs| DeviceOptions {
        base: TimingOptions {
            profile: true,
            counters: true,
            ..Default::default()
        },
        jobs,
        exact: true,
        ..Default::default()
    };
    let t1 = device(&m, &dev, 100, 64, opts(1));
    let t2 = device(&m, &dev, 100, 64, opts(2));
    let t8 = device(&m, &dev, 100, 64, opts(8));
    assert!(t1.profile.is_some() && t1.counters.is_some());
    let r1 = format!("{t1:?}");
    assert_eq!(r1, format!("{t2:?}"), "jobs=2 drifted from jobs=1");
    assert_eq!(r1, format!("{t8:?}"), "jobs=8 drifted from jobs=1");
}

/// Device-total counters keep every internal identity exact
/// (`HwCounters::validate`), reconcile with the `KernelTiming` view, and
/// need no grid-ratio scaling: DRAM bytes are counted, not extrapolated.
#[test]
fn device_counters_reconcile_at_device_totals() {
    let m = latency_module();
    let dev = DeviceSpec::v100();
    let t = device(
        &m,
        &dev,
        100,
        64,
        DeviceOptions {
            base: TimingOptions {
                profile: true,
                counters: true,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert_eq!(t.busy_sms, 80);
    let c = t.counters.as_ref().unwrap();
    c.validate().unwrap();

    // counters.wave_cycles sums busy scheduler-cycles over SMs; the
    // KernelTiming wave_cycles is the device makespan. Busy total is
    // bracketed by makespan (one SM busy) and busy_sms × makespan.
    assert!(c.wave_cycles >= t.wave_cycles);
    assert!(c.wave_cycles <= t.busy_sms as u64 * t.wave_cycles);

    // Same slots, same ratio: issue efficiency from counters matches the
    // timing view built from the merged per-SM sums.
    assert!((c.issue_efficiency_pct() - t.issue_util_pct).abs() < 1e-9);
    assert_eq!(c.reg_bank_conflicts, t.reg_bank_conflict_cycles);
    assert_eq!(c.smem_extra_phases, t.smem_conflict_cycles);

    // The device model counts DRAM traffic exactly — no wave-ratio scaling.
    assert_eq!(c.dram_read_bytes + c.dram_write_bytes, t.dram_bytes);

    // The stall profile keeps its accounting identity at device totals.
    let p = t.profile.as_ref().unwrap();
    assert_eq!(
        p.attributed_cycles(),
        p.schedulers as u64 * p.wave_cycles,
        "attributed == schedulers × busy cycles must survive the merge"
    );
    assert_eq!(c.wave_cycles, p.wave_cycles);
}

/// Satellite fixes in the retained analytic path: an empty grid costs
/// nothing, and a grid smaller than one SM's residency is not charged a
/// full-device wave.
#[test]
fn analytic_path_edge_cases() {
    let m = ffma_module();
    let dev = DeviceSpec::v100();

    // total_blocks == 0: free, and no phantom wave.
    let zero = one_wave(&m, &dev, 0, 256, TimingOptions::default());
    assert_eq!(zero.total_blocks, 0);
    assert_eq!(zero.busy_sms, 0);
    assert_eq!(zero.waves, 0);
    assert_eq!(zero.wave_cycles, 0);
    assert_eq!(zero.time_s, 0.0);
    assert_eq!(zero.flops, 0.0);

    // 3 blocks on an 80-SM device: residency is capped at one block per SM
    // (not the occupancy limit), a single wave, three busy SMs.
    let tiny = one_wave(
        &m,
        &dev,
        3,
        256,
        TimingOptions {
            blocks_per_sm: Some(4),
            ..Default::default()
        },
    );
    assert_eq!(tiny.blocks_per_sm, 1, "residency capped at ceil(3/80)");
    assert_eq!(tiny.waves, 1);
    assert_eq!(tiny.busy_sms, 3);

    // The device model agrees on the tiny grid: three SMs, one wave each.
    let dv = device(
        &m,
        &dev,
        3,
        256,
        DeviceOptions {
            base: TimingOptions {
                blocks_per_sm: Some(4),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert_eq!(dv.busy_sms, 3);
    assert_eq!(dv.waves, 1);
    assert_eq!(dv.time_s.to_bits(), tiny.time_s.to_bits());

    // Empty grid through the device path too.
    let dz = device(&m, &dev, 0, 256, DeviceOptions::default());
    assert_eq!(dz.time_s, 0.0);
    assert_eq!(dz.busy_sms, 0);
}

/// Tracing is pure observability: the traced call returns bit-identical
/// timing, and the recorded wave spans reconcile with it — per-SM repeats
/// sum to that SM's wave count, spans on one lane tile its busy time
/// back-to-back, and the trace makespan is the device makespan.
#[test]
fn traced_timing_is_identical_and_spans_reconcile() {
    let m = latency_module();
    let dev = DeviceSpec::v100();
    // 100 blocks on 80 SMs, exact mode: 20 SMs run two waves, 60 run one.
    let opts = DeviceOptions {
        base: TimingOptions {
            blocks_per_sm: Some(1),
            ..Default::default()
        },
        exact: true,
        ..Default::default()
    };
    let plain = device(&m, &dev, 100, 64, opts);

    let mut gpu = Gpu::new(dev.clone(), 1 << 22);
    let buf = gpu.alloc(1 << 20);
    let params = ParamBuilder::new().push_ptr(buf).build();
    let (timing, trace) =
        gpusim::time_kernel_device_traced(&mut gpu, &m, LaunchDims::linear(100, 64), &params, opts)
            .unwrap();
    assert_eq!(format!("{timing:?}"), format!("{plain:?}"));

    assert!(!trace.truncated);
    assert_eq!(trace.makespan_cycles, timing.wave_cycles);
    let lanes: std::collections::BTreeSet<u32> = trace.spans.iter().map(|s| s.sm).collect();
    assert_eq!(lanes.len(), 80, "exact mode: one lane per busy SM");
    let mut device_end = 0u64;
    for &sm in &lanes {
        let mut cursor = 0u64;
        let mut waves = 0u64;
        for s in trace.spans.iter().filter(|s| s.sm == sm) {
            assert_eq!(s.start_cycle, cursor, "spans tile the lane gaplessly");
            assert!(s.blocks > 0 && s.share_sms > 0);
            cursor += s.duration();
            waves += s.repeats;
        }
        let expect_waves = if u64::from(sm) < 100 % 80 { 2 } else { 1 };
        assert_eq!(waves, expect_waves, "SM {sm}");
        device_end = device_end.max(cursor);
    }
    assert_eq!(device_end, trace.makespan_cycles);
}
