//! `BatchTimer` must be result-identical to a fresh `time_kernel`.
//!
//! The batch path clones baseline `InstDesc`s through the tuner's position
//! map and re-patches only control-code fields; if any op-derived field
//! leaked stale state across a reorder, cycle counts would silently drift.
//! This test drives the real tuner move generators over the fused Winograd
//! kernel to produce representative candidates (re-stalled, reuse-flagged,
//! barrier-reassigned, reordered) and compares the **complete** timing
//! result (`Debug` rendering, which round-trips every f64 bit) between the
//! two paths for each.

use gpusim::{timing, BatchTimer, DeviceSpec, Gpu, TimingOptions};
use kernels::{FusedConfig, FusedKernel};
use sass::tune::{detune, Tuner};
use sass::Module;

#[test]
fn batch_timer_matches_fresh_decode() {
    let (c, h, w, n, k) = (32u32, 4u32, 4u32, 32u32, 64u32);
    let kern = FusedKernel::emit(FusedConfig::ours(c, h, w, n, k));
    let base = kern.module.clone();

    // Collect candidates along a short tuner run: the baseline itself, the
    // detuned stream, and every stream the annealer evaluates. A cheap
    // static objective keeps this a pure schedule-shape generator.
    let mut naive = base.insts.clone();
    detune(&mut naive);
    let mut tuner = Tuner::new(naive.clone(), Vec::new(), 1234);
    let mut cands: Vec<(Vec<sass::Instruction>, Vec<u32>)> = Vec::new();
    cands.push((base.insts.clone(), (0..base.insts.len() as u32).collect()));
    {
        let mut obj = |insts: &[sass::Instruction], perm: &[u32]| {
            cands.push((insts.to_vec(), perm.to_vec()));
            Some(insts.iter().map(|i| i.ctrl.stall.max(1) as u64).sum())
        };
        tuner.prime(&mut obj);
        tuner.start_anneal(40);
        for _ in 0..40 {
            tuner.anneal_step(&mut obj);
        }
    }
    assert!(cands.len() > 5, "tuner produced too few candidates");

    let din = (c * h * w * n) as u64 * 4;
    let dtf = (c * 16 * k) as u64 * 4;
    let dout = (k * h * w * n) as u64 * 4;
    let opts = TimingOptions {
        region: Some(kern.region),
        ..Default::default()
    };

    for dev in [DeviceSpec::v100(), DeviceSpec::rtx2070()] {
        let mut batch = BatchTimer::new(&base);
        for (i, (insts, perm)) in cands.iter().enumerate() {
            let cand = Module::new(
                &base.info.name,
                base.info.smem_bytes,
                base.info.param_bytes,
                insts.clone(),
            );

            let mut gpu = Gpu::new(dev.clone(), 1 << 22);
            let params = kern.params(gpu.alloc(din), gpu.alloc(dtf), gpu.alloc(dout));
            let fresh = timing::time_kernel(&mut gpu, &cand, kern.launch_dims(), &params, opts)
                .expect("fresh timing failed");

            let mut gpu = Gpu::new(dev.clone(), 1 << 22);
            let params = kern.params(gpu.alloc(din), gpu.alloc(dtf), gpu.alloc(dout));
            let batched = batch
                .time(&mut gpu, &cand, perm, kern.launch_dims(), &params, opts)
                .expect("batched timing failed");

            assert_eq!(
                format!("{fresh:?}"),
                format!("{batched:?}"),
                "candidate {i} on {} diverged between fresh and batch decode",
                dev.name
            );
        }
    }
}
