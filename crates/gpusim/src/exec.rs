//! Functional (architectural) execution of warps.
//!
//! This module gives every ISA instruction its semantics. It is used both by
//! the functional grid launcher (correctness runs) and by the cycle-level SM
//! model in [`crate::timing`], which executes instructions functionally at
//! issue time so that memory addresses — and therefore bank conflicts and
//! cache behaviour — are exact rather than statistical.
//!
//! Divergence is handled SIMT-style with a set of `(mask, pc)` execution
//! contexts per warp; the context with the smallest PC runs next, and
//! contexts at equal PCs merge (a simple reconvergence rule that is exact
//! for the structured control flow our kernels use).

use sass::isa::*;
use sass::reg::{Pred, Reg};

use crate::memory::{ConstBank, GlobalMemory, MemError};

/// Maximum lanes per warp.
pub const WARP_SIZE: u32 = 32;

/// One divergence context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarpCtx {
    /// Active-lane mask.
    pub mask: u32,
    /// Next instruction index.
    pub pc: u32,
}

/// Architectural state of one warp.
#[derive(Clone, Debug)]
pub struct Warp {
    /// Register file: `regs[r][lane]`.
    pub regs: Vec<[u32; WARP_SIZE as usize]>,
    /// Predicate file: `preds[p][lane]`, p in 0..7.
    pub preds: [[bool; WARP_SIZE as usize]; 7],
    /// Divergence contexts (invariant: non-empty unless exited; disjoint
    /// masks).
    pub ctxs: Vec<WarpCtx>,
    /// Linear thread id of lane 0 within the block.
    pub base_tid: u32,
    /// True once all lanes have exited.
    pub exited: bool,
}

impl Warp {
    /// Fresh warp: `num_regs` registers, all zero, one context at PC 0.
    pub fn new(num_regs: u16, base_tid: u32, lanes: u32) -> Self {
        assert!((1..=WARP_SIZE).contains(&lanes));
        let mask = if lanes == 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        Warp {
            regs: vec![[0u32; 32]; num_regs as usize],
            preds: [[false; 32]; 7],
            ctxs: vec![WarpCtx { mask, pc: 0 }],
            base_tid,
            exited: false,
        }
    }

    #[inline]
    fn read_reg(&self, r: Reg, lane: usize) -> u32 {
        if r.is_rz() {
            0
        } else {
            self.regs[r.0 as usize][lane]
        }
    }

    #[inline]
    fn write_reg(&mut self, r: Reg, lane: usize, v: u32) {
        if !r.is_rz() {
            self.regs[r.0 as usize][lane] = v;
        }
    }

    #[inline]
    fn read_pred(&self, p: Pred, lane: usize) -> bool {
        if p.is_pt() {
            true
        } else {
            self.preds[p.0 as usize][lane]
        }
    }

    #[inline]
    fn write_pred(&mut self, p: Pred, lane: usize, v: bool) {
        if !p.is_pt() {
            self.preds[p.0 as usize][lane] = v;
        }
    }

    /// The context that executes next (lowest PC), if any.
    pub fn current_ctx(&self) -> Option<WarpCtx> {
        self.ctxs.iter().copied().min_by_key(|c| c.pc)
    }
}

/// What a single step did — the caller (block runner or timing model)
/// schedules around these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// A non-synchronizing instruction was executed.
    Executed,
    /// A `BAR.SYNC` was executed; the warp is now waiting at the barrier.
    Barrier,
    /// The warp has fully exited.
    Exited,
}

/// Execution environment for one block.
pub struct ExecEnv<'a> {
    pub global: &'a mut GlobalMemory,
    pub smem: &'a mut [u8],
    pub cbank: &'a ConstBank,
    pub ctaid: [u32; 3],
    pub block_dim: [u32; 3],
}

/// Execution error with full context.
#[derive(Clone, Debug)]
pub struct ExecError {
    pub ctaid: [u32; 3],
    pub warp: u32,
    pub pc: u32,
    pub inst: String,
    pub msg: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "block ({},{},{}) warp {} pc {}: {} — {}",
            self.ctaid[0], self.ctaid[1], self.ctaid[2], self.warp, self.pc, self.inst, self.msg
        )
    }
}

impl std::error::Error for ExecError {}

/// Side-channel describing the memory behaviour of an executed instruction,
/// consumed by the timing model. Empty for non-memory instructions.
#[derive(Clone, Debug, Default)]
pub struct MemTrace {
    /// Byte addresses touched, one per active lane (global space).
    pub global_addrs: Vec<u64>,
    /// Byte addresses touched, one per active lane (shared space).
    pub shared_addrs: Vec<u32>,
    /// Access width in bytes.
    pub width: u32,
    /// True for a store.
    pub is_store: bool,
    /// Lanes that executed the instruction (guard ∧ divergence mask).
    pub exec_mask: u32,
}

#[inline]
fn f(bits: u32) -> f32 {
    f32::from_bits(bits)
}

#[inline]
fn neg_f(bits: u32, neg: bool) -> u32 {
    if neg {
        bits ^ 0x8000_0000
    } else {
        bits
    }
}

/// Negate both halves of a half2 word.
#[inline]
fn neg_f2(bits: u32, neg: bool) -> u32 {
    if neg {
        bits ^ 0x8000_8000
    } else {
        bits
    }
}

#[inline]
fn neg_i(v: u32, neg: bool) -> u32 {
    if neg {
        v.wrapping_neg()
    } else {
        v
    }
}

fn lop3(a: u32, b: u32, c: u32, lut: u8) -> u32 {
    let mut r = 0u32;
    if lut & 0x01 != 0 {
        r |= !a & !b & !c;
    }
    if lut & 0x02 != 0 {
        r |= !a & !b & c;
    }
    if lut & 0x04 != 0 {
        r |= !a & b & !c;
    }
    if lut & 0x08 != 0 {
        r |= !a & b & c;
    }
    if lut & 0x10 != 0 {
        r |= a & !b & !c;
    }
    if lut & 0x20 != 0 {
        r |= a & !b & c;
    }
    if lut & 0x40 != 0 {
        r |= a & b & !c;
    }
    if lut & 0x80 != 0 {
        r |= a & b & c;
    }
    r
}

/// Execute one instruction step for `warp`. On success, returns the event
/// and (for memory instructions) the per-lane address trace.
pub fn step(
    warp: &mut Warp,
    insts: &[Instruction],
    env: &mut ExecEnv<'_>,
    warp_idx: u32,
) -> Result<(StepEvent, MemTrace), ExecError> {
    let ctx = match warp.current_ctx() {
        Some(c) => c,
        None => {
            warp.exited = true;
            return Ok((StepEvent::Exited, MemTrace::default()));
        }
    };
    let pc = ctx.pc;
    let inst = match insts.get(pc as usize) {
        Some(i) => *i,
        None => {
            return Err(ExecError {
                ctaid: env.ctaid,
                warp: warp_idx,
                pc,
                inst: "<end of code>".into(),
                msg: "fell off the end of the instruction stream (missing EXIT?)".into(),
            })
        }
    };

    let fail = |msg: String| ExecError {
        ctaid: env.ctaid,
        warp: warp_idx,
        pc,
        inst: sass::disasm::inst_text(&inst),
        msg,
    };

    // Per-lane guard evaluation. Unpredicated instructions (@PT, the common
    // case) execute every context lane.
    let mut exec_mask = 0u32;
    if inst.guard.pred.is_pt() {
        if !inst.guard.neg {
            exec_mask = ctx.mask;
        }
    } else {
        for lane in 0..32 {
            if ctx.mask & (1 << lane) != 0 {
                let p = warp.read_pred(inst.guard.pred, lane);
                if p != inst.guard.neg {
                    exec_mask |= 1 << lane;
                }
            }
        }
    }

    // Control flow first (it rewrites contexts).
    match inst.op {
        Op::Exit => {
            // Exit the executing lanes; the rest continue at pc+1.
            remove_ctx(warp, pc);
            if ctx.mask & !exec_mask != 0 {
                push_ctx(
                    warp,
                    WarpCtx {
                        mask: ctx.mask & !exec_mask,
                        pc: pc + 1,
                    },
                );
            }
            if warp.ctxs.is_empty() {
                warp.exited = true;
                return Ok((StepEvent::Exited, MemTrace::default()));
            }
            return Ok((StepEvent::Executed, MemTrace::default()));
        }
        Op::Bra { target } => {
            remove_ctx(warp, pc);
            if exec_mask != 0 {
                push_ctx(
                    warp,
                    WarpCtx {
                        mask: exec_mask,
                        pc: target,
                    },
                );
            }
            if ctx.mask & !exec_mask != 0 {
                push_ctx(
                    warp,
                    WarpCtx {
                        mask: ctx.mask & !exec_mask,
                        pc: pc + 1,
                    },
                );
            }
            return Ok((StepEvent::Executed, MemTrace::default()));
        }
        Op::BarSync => {
            if warp.ctxs.len() > 1 {
                return Err(fail(
                    "BAR.SYNC in divergent control flow is not supported".into(),
                ));
            }
            advance_ctx(warp, pc);
            return Ok((StepEvent::Barrier, MemTrace::default()));
        }
        _ => {}
    }

    // Data instructions: execute lane-by-lane under exec_mask.
    let mut trace = MemTrace {
        exec_mask,
        ..MemTrace::default()
    };
    let cbank = env.cbank;
    let bd = env.block_dim;
    let ctaid = env.ctaid;

    // Resolve SrcB for a lane.
    macro_rules! srcb {
        ($b:expr, $lane:expr) => {
            match $b {
                SrcB::Reg(r) => warp.read_reg(r, $lane),
                SrcB::Imm(v) => v,
                SrcB::Const(off) => cbank.read_u32(off),
            }
        };
    }

    // Full-warp row fast paths: when every lane executes and the destination
    // is a real register, operate on whole 32-lane register rows. Source
    // rows are copied to the stack first (sources may alias the
    // destination; per-lane order then matches the general path exactly),
    // which hoists all bounds checks and lets the lane loop vectorize. Lane
    // arithmetic is identical to the general path, so results stay
    // bit-identical.
    let full = exec_mask == u32::MAX;
    let row = |warp: &Warp, r: Reg| -> [u32; 32] {
        if r.is_rz() {
            [0u32; 32]
        } else {
            warp.regs[r.0 as usize]
        }
    };
    let row_b = |warp: &Warp, b: SrcB| -> [u32; 32] {
        match b {
            SrcB::Reg(r) => row(warp, r),
            SrcB::Imm(v) => [v; 32],
            SrcB::Const(off) => [cbank.read_u32(off); 32],
        }
    };

    match inst.op {
        Op::Ffma {
            d,
            a,
            b,
            c,
            neg_b,
            neg_c,
        } => {
            if full && !d.is_rz() {
                let ra = row(warp, a);
                let rb = row_b(warp, b);
                let rc = row(warp, c);
                ffma_rows(&ra, &rb, &rc, &mut warp.regs[d.0 as usize], neg_b, neg_c);
            } else {
                for lane in lanes(exec_mask) {
                    let va = f(warp.read_reg(a, lane));
                    let vb = f(neg_f(srcb!(b, lane), neg_b));
                    let vc = f(neg_f(warp.read_reg(c, lane), neg_c));
                    warp.write_reg(d, lane, va.mul_add(vb, vc).to_bits());
                }
            }
        }
        Op::Fadd {
            d,
            a,
            neg_a,
            b,
            neg_b,
        } => {
            if full && !d.is_rz() {
                let ra = row(warp, a);
                let rb = row_b(warp, b);
                let rd = &mut warp.regs[d.0 as usize];
                for lane in 0..32 {
                    let va = f(neg_f(ra[lane], neg_a));
                    let vb = f(neg_f(rb[lane], neg_b));
                    rd[lane] = (va + vb).to_bits();
                }
            } else {
                for lane in lanes(exec_mask) {
                    let va = f(neg_f(warp.read_reg(a, lane), neg_a));
                    let vb = f(neg_f(srcb!(b, lane), neg_b));
                    warp.write_reg(d, lane, (va + vb).to_bits());
                }
            }
        }
        Op::Fmul { d, a, b, neg_b } => {
            if full && !d.is_rz() {
                let ra = row(warp, a);
                let rb = row_b(warp, b);
                let rd = &mut warp.regs[d.0 as usize];
                for lane in 0..32 {
                    let va = f(ra[lane]);
                    let vb = f(neg_f(rb[lane], neg_b));
                    rd[lane] = (va * vb).to_bits();
                }
            } else {
                for lane in lanes(exec_mask) {
                    let va = f(warp.read_reg(a, lane));
                    let vb = f(neg_f(srcb!(b, lane), neg_b));
                    warp.write_reg(d, lane, (va * vb).to_bits());
                }
            }
        }
        Op::Hfma2 { d, a, b, c } => {
            // Paired fp16 FMA: compute in f32, round each half to f16
            // (the hardware's fp16 accumulate behaviour, §8.3).
            for lane in lanes(exec_mask) {
                let (a0, a1) = sass::half::unpack_half2(warp.read_reg(a, lane));
                let (b0, b1) = sass::half::unpack_half2(srcb!(b, lane));
                let (c0, c1) = sass::half::unpack_half2(warp.read_reg(c, lane));
                let v = sass::half::pack_half2(a0.mul_add(b0, c0), a1.mul_add(b1, c1));
                warp.write_reg(d, lane, v);
            }
        }
        Op::Hadd2 {
            d,
            a,
            neg_a,
            b,
            neg_b,
        } => {
            for lane in lanes(exec_mask) {
                let (a0, a1) = sass::half::unpack_half2(neg_f2(warp.read_reg(a, lane), neg_a));
                let (b0, b1) = sass::half::unpack_half2(neg_f2(srcb!(b, lane), neg_b));
                warp.write_reg(d, lane, sass::half::pack_half2(a0 + b0, a1 + b1));
            }
        }
        Op::Hmul2 { d, a, b } => {
            for lane in lanes(exec_mask) {
                let (a0, a1) = sass::half::unpack_half2(warp.read_reg(a, lane));
                let (b0, b1) = sass::half::unpack_half2(srcb!(b, lane));
                warp.write_reg(d, lane, sass::half::pack_half2(a0 * b0, a1 * b1));
            }
        }
        Op::Fsetp {
            p,
            cmp,
            a,
            b,
            combine,
        } => {
            for lane in lanes(exec_mask) {
                let va = f(warp.read_reg(a, lane));
                let vb = f(srcb!(b, lane));
                let base = cmp.eval_f32(va, vb);
                let comb = warp.read_pred(combine.pred, lane) != combine.neg;
                warp.write_pred(p, lane, base && comb);
            }
        }
        Op::Iadd3 {
            d,
            a,
            neg_a,
            b,
            neg_b,
            c,
            neg_c,
        } => {
            for lane in lanes(exec_mask) {
                let va = neg_i(warp.read_reg(a, lane), neg_a);
                let vb = neg_i(srcb!(b, lane), neg_b);
                let vc = neg_i(warp.read_reg(c, lane), neg_c);
                warp.write_reg(d, lane, va.wrapping_add(vb).wrapping_add(vc));
            }
        }
        Op::Imad { d, a, b, c } => {
            for lane in lanes(exec_mask) {
                let v = warp
                    .read_reg(a, lane)
                    .wrapping_mul(srcb!(b, lane))
                    .wrapping_add(warp.read_reg(c, lane));
                warp.write_reg(d, lane, v);
            }
        }
        Op::ImadHi { d, a, b, c } => {
            for lane in lanes(exec_mask) {
                let prod = warp.read_reg(a, lane) as u64 * srcb!(b, lane) as u64;
                let v = ((prod >> 32) as u32).wrapping_add(warp.read_reg(c, lane));
                warp.write_reg(d, lane, v);
            }
        }
        Op::ImadWide { d, a, b, c } => {
            for lane in lanes(exec_mask) {
                let clo = warp.read_reg(c, lane) as u64;
                let chi = warp.read_reg(c.offset(1), lane) as u64;
                let prod = warp.read_reg(a, lane) as u64 * srcb!(b, lane) as u64;
                let sum = prod.wrapping_add(clo | (chi << 32));
                warp.write_reg(d, lane, sum as u32);
                warp.write_reg(d.offset(1), lane, (sum >> 32) as u32);
            }
        }
        Op::Lea { d, a, b, shift } => {
            for lane in lanes(exec_mask) {
                let v = srcb!(b, lane).wrapping_add(warp.read_reg(a, lane) << shift);
                warp.write_reg(d, lane, v);
            }
        }
        Op::Lop3 { d, a, b, c, lut } => {
            for lane in lanes(exec_mask) {
                let v = lop3(
                    warp.read_reg(a, lane),
                    srcb!(b, lane),
                    warp.read_reg(c, lane),
                    lut,
                );
                warp.write_reg(d, lane, v);
            }
        }
        Op::Shf {
            d,
            lo,
            shift,
            hi,
            right,
            u32_mode,
        } => {
            for lane in lanes(exec_mask) {
                let n = srcb!(shift, lane) & 63;
                let vlo = warp.read_reg(lo, lane);
                let vhi = warp.read_reg(hi, lane);
                let v = if u32_mode {
                    let n = n & 31;
                    if right {
                        vlo >> n
                    } else {
                        vlo << n
                    }
                } else {
                    let wide = (vhi as u64) << 32 | vlo as u64;
                    if right {
                        (wide >> n) as u32
                    } else {
                        ((wide << n) >> 32) as u32
                    }
                };
                warp.write_reg(d, lane, v);
            }
        }
        Op::Mov { d, b } => {
            for lane in lanes(exec_mask) {
                let v = srcb!(b, lane);
                warp.write_reg(d, lane, v);
            }
        }
        Op::Sel { d, a, b, p } => {
            for lane in lanes(exec_mask) {
                let sel = warp.read_pred(p.pred, lane) != p.neg;
                let v = if sel {
                    warp.read_reg(a, lane)
                } else {
                    srcb!(b, lane)
                };
                warp.write_reg(d, lane, v);
            }
        }
        Op::Isetp {
            p,
            cmp,
            u32: unsigned,
            a,
            b,
            combine,
        } => {
            for lane in lanes(exec_mask) {
                let va = warp.read_reg(a, lane);
                let vb = srcb!(b, lane);
                let base = if unsigned {
                    cmp.eval_i64(va as i64, vb as i64)
                } else {
                    cmp.eval_i64(va as i32 as i64, vb as i32 as i64)
                };
                let comb = warp.read_pred(combine.pred, lane) != combine.neg;
                warp.write_pred(p, lane, base && comb);
            }
        }
        Op::P2r { d, a, mask } => {
            for lane in lanes(exec_mask) {
                let mut bits = 0u32;
                for i in 0..7 {
                    if warp.preds[i][lane] {
                        bits |= 1 << i;
                    }
                }
                let v = (warp.read_reg(a, lane) & !mask) | (bits & mask);
                warp.write_reg(d, lane, v);
            }
        }
        Op::R2p { a, mask } => {
            for lane in lanes(exec_mask) {
                let v = warp.read_reg(a, lane);
                for i in 0..7u32 {
                    if mask & (1 << i) != 0 {
                        warp.preds[i as usize][lane] = v & (1 << i) != 0;
                    }
                }
            }
        }
        Op::S2r { d, sr } => {
            for lane in lanes(exec_mask) {
                let linear = warp.base_tid + lane as u32;
                let v = match sr {
                    SpecialReg::TidX => linear % bd[0],
                    SpecialReg::TidY => (linear / bd[0]) % bd[1],
                    SpecialReg::TidZ => linear / (bd[0] * bd[1]),
                    SpecialReg::CtaidX => ctaid[0],
                    SpecialReg::CtaidY => ctaid[1],
                    SpecialReg::CtaidZ => ctaid[2],
                    SpecialReg::LaneId => lane as u32,
                    SpecialReg::WarpId => linear / WARP_SIZE,
                };
                warp.write_reg(d, lane, v);
            }
        }
        Op::Ld {
            space,
            width,
            d,
            addr,
        } => {
            trace.width = width.bytes();
            trace.is_store = false;
            match space {
                MemSpace::Global => {
                    trace.global_addrs.reserve(exec_mask.count_ones() as usize);
                    for lane in lanes(exec_mask) {
                        let lo = warp.read_reg(addr.base, lane) as u64;
                        let hi = warp.read_reg(addr.base.offset(1), lane) as u64;
                        let a = (lo | (hi << 32)).wrapping_add(addr.offset as i64 as u64);
                        trace.global_addrs.push(a);
                        // Widest access is 16 bytes; stage through a stack
                        // buffer so the per-lane path never heap-allocates.
                        let mut buf = [0u8; 16];
                        let n = width.bytes() as usize;
                        buf[..n].copy_from_slice(
                            env.global
                                .read(a, n)
                                .map_err(|e: MemError| fail(format!("lane {lane}: {e}")))?,
                        );
                        for i in 0..width.regs() {
                            let off = i as usize * 4;
                            warp.write_reg(
                                d.offset(i),
                                lane,
                                u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()),
                            );
                        }
                    }
                }
                MemSpace::Shared => {
                    trace.shared_addrs.reserve(exec_mask.count_ones() as usize);
                    if full {
                        // Row path: resolve and bounds-check all lane
                        // addresses up front (addresses come from the
                        // pre-copied base row, so a destination overlapping
                        // the address register reads the same values the
                        // lane-order path would), then fill each destination
                        // row with one tight pass over the lanes.
                        let base = row(warp, addr.base);
                        let mut addrs = [0u32; 32];
                        for (lane, slot) in addrs.iter_mut().enumerate() {
                            let a = base[lane].wrapping_add(addr.offset as u32);
                            trace.shared_addrs.push(a);
                            if a as usize + width.bytes() as usize > env.smem.len() {
                                return Err(fail(format!(
                                    "lane {lane}: shared load at {a:#x} past smem size {:#x}",
                                    env.smem.len()
                                )));
                            }
                            *slot = a;
                        }
                        for i in 0..width.regs() {
                            let di = d.offset(i);
                            if di.is_rz() {
                                continue;
                            }
                            let rd = &mut warp.regs[di.0 as usize];
                            for lane in 0..32 {
                                let off = addrs[lane] as usize + i as usize * 4;
                                rd[lane] =
                                    u32::from_le_bytes(env.smem[off..off + 4].try_into().unwrap());
                            }
                        }
                    } else {
                        for lane in lanes(exec_mask) {
                            let a = warp
                                .read_reg(addr.base, lane)
                                .wrapping_add(addr.offset as u32);
                            trace.shared_addrs.push(a);
                            let end = a as usize + width.bytes() as usize;
                            if end > env.smem.len() {
                                return Err(fail(format!(
                                    "lane {lane}: shared load at {a:#x} past smem size {:#x}",
                                    env.smem.len()
                                )));
                            }
                            for i in 0..width.regs() {
                                let off = a as usize + i as usize * 4;
                                let v =
                                    u32::from_le_bytes(env.smem[off..off + 4].try_into().unwrap());
                                warp.write_reg(d.offset(i), lane, v);
                            }
                        }
                    }
                }
            }
        }
        Op::St {
            space,
            width,
            addr,
            src,
        } => {
            trace.width = width.bytes();
            trace.is_store = true;
            match space {
                MemSpace::Global => {
                    trace.global_addrs.reserve(exec_mask.count_ones() as usize);
                    for lane in lanes(exec_mask) {
                        let lo = warp.read_reg(addr.base, lane) as u64;
                        let hi = warp.read_reg(addr.base.offset(1), lane) as u64;
                        let a = (lo | (hi << 32)).wrapping_add(addr.offset as i64 as u64);
                        trace.global_addrs.push(a);
                        let mut buf = [0u8; 16];
                        for i in 0..width.regs() {
                            buf[i as usize * 4..i as usize * 4 + 4]
                                .copy_from_slice(&warp.read_reg(src.offset(i), lane).to_le_bytes());
                        }
                        env.global
                            .write(a, &buf[..width.bytes() as usize])
                            .map_err(|e| fail(format!("lane {lane}: {e}")))?;
                    }
                }
                MemSpace::Shared => {
                    trace.shared_addrs.reserve(exec_mask.count_ones() as usize);
                    if full {
                        // Stores only read registers, so staging the source
                        // rows is purely a bounds-check hoist. Writes stay
                        // lane-major like the general path, so overlapping
                        // lane addresses resolve identically.
                        let base = row(warp, addr.base);
                        let mut rows = [[0u32; 32]; 4];
                        for (i, r) in rows.iter_mut().take(width.regs() as usize).enumerate() {
                            *r = row(warp, src.offset(i as u8));
                        }
                        for (lane, &b) in base.iter().enumerate() {
                            let a = b.wrapping_add(addr.offset as u32);
                            trace.shared_addrs.push(a);
                            if a as usize + width.bytes() as usize > env.smem.len() {
                                return Err(fail(format!(
                                    "lane {lane}: shared store at {a:#x} past smem size {:#x}",
                                    env.smem.len()
                                )));
                            }
                            for (i, r) in rows.iter().take(width.regs() as usize).enumerate() {
                                let off = a as usize + i * 4;
                                env.smem[off..off + 4].copy_from_slice(&r[lane].to_le_bytes());
                            }
                        }
                    } else {
                        for lane in lanes(exec_mask) {
                            let a = warp
                                .read_reg(addr.base, lane)
                                .wrapping_add(addr.offset as u32);
                            trace.shared_addrs.push(a);
                            let end = a as usize + width.bytes() as usize;
                            if end > env.smem.len() {
                                return Err(fail(format!(
                                    "lane {lane}: shared store at {a:#x} past smem size {:#x}",
                                    env.smem.len()
                                )));
                            }
                            for i in 0..width.regs() {
                                let off = a as usize + i as usize * 4;
                                env.smem[off..off + 4].copy_from_slice(
                                    &warp.read_reg(src.offset(i), lane).to_le_bytes(),
                                );
                            }
                        }
                    }
                }
            }
        }
        Op::Nop => {}
        Op::Exit | Op::Bra { .. } | Op::BarSync => unreachable!("handled above"),
    }

    advance_ctx(warp, pc);
    Ok((StepEvent::Executed, trace))
}

fn lanes(mask: u32) -> impl Iterator<Item = usize> {
    (0..32).filter(move |l| mask & (1 << l) != 0)
}

/// 32-lane FFMA row kernel: `rd = ra * (±rb) + (±rc)` per lane, fused
/// rounding. On x86-64 with FMA support this compiles with the FMA target
/// feature enabled, so `mul_add` inlines to `vfmadd` instead of calling
/// libm's `fmaf` per lane; both are IEEE correctly-rounded, so the result
/// bits are identical on every path.
#[inline]
fn ffma_rows(
    ra: &[u32; 32],
    rb: &[u32; 32],
    rc: &[u32; 32],
    rd: &mut [u32; 32],
    neg_b: bool,
    neg_c: bool,
) {
    #[inline(always)]
    fn rows(
        ra: &[u32; 32],
        rb: &[u32; 32],
        rc: &[u32; 32],
        rd: &mut [u32; 32],
        neg_b: bool,
        neg_c: bool,
    ) {
        for lane in 0..32 {
            let va = f(ra[lane]);
            let vb = f(neg_f(rb[lane], neg_b));
            let vc = f(neg_f(rc[lane], neg_c));
            rd[lane] = va.mul_add(vb, vc).to_bits();
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        #[target_feature(enable = "fma")]
        unsafe fn rows_hw(
            ra: &[u32; 32],
            rb: &[u32; 32],
            rc: &[u32; 32],
            rd: &mut [u32; 32],
            neg_b: bool,
            neg_c: bool,
        ) {
            rows(ra, rb, rc, rd, neg_b, neg_c)
        }
        if std::arch::is_x86_feature_detected!("fma") {
            // SAFETY: the FMA feature was just detected at runtime.
            return unsafe { rows_hw(ra, rb, rc, rd, neg_b, neg_c) };
        }
    }
    rows(ra, rb, rc, rd, neg_b, neg_c)
}

fn remove_ctx(warp: &mut Warp, pc: u32) {
    warp.ctxs.retain(|c| c.pc != pc);
}

fn push_ctx(warp: &mut Warp, ctx: WarpCtx) {
    // Merge with an existing context at the same PC (reconvergence).
    for c in &mut warp.ctxs {
        if c.pc == ctx.pc {
            c.mask |= ctx.mask;
            return;
        }
    }
    warp.ctxs.push(ctx);
}

fn advance_ctx(warp: &mut Warp, pc: u32) {
    let mut moved = 0u32;
    warp.ctxs.retain(|c| {
        if c.pc == pc {
            moved |= c.mask;
            false
        } else {
            true
        }
    });
    if moved != 0 {
        push_ctx(
            warp,
            WarpCtx {
                mask: moved,
                pc: pc + 1,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{ConstBank, GlobalMemory, ParamBuilder};
    use sass::isa::build::*;
    use sass::reg::{Pred, Reg, RZ};

    fn env_fixture<'a>(
        global: &'a mut GlobalMemory,
        smem: &'a mut [u8],
        cbank: &'a ConstBank,
    ) -> ExecEnv<'a> {
        // Lifetimes: caller holds the storage.
        ExecEnv {
            global,
            smem,
            cbank,
            ctaid: [3, 2, 1],
            block_dim: [64, 1, 1],
        }
    }

    fn run_insts(
        insts: Vec<Instruction>,
        setup: impl FnOnce(&mut Warp, &mut GlobalMemory),
    ) -> (Warp, GlobalMemory) {
        let mut insts = insts;
        insts.push(Instruction::new(Op::Exit));
        let mut global = GlobalMemory::new(1 << 20);
        let mut smem = vec![0u8; 48 * 1024];
        let cbank = ConstBank::new(
            [64, 1, 1],
            [8, 8, 8],
            &ParamBuilder::new().push_u32(42).push_u32(7).build(),
        );
        let mut warp = Warp::new(64, 0, 32);
        setup(&mut warp, &mut global);
        let mut env = ExecEnv {
            global: &mut global,
            smem: &mut smem,
            cbank: &cbank,
            ctaid: [3, 2, 1],
            block_dim: [64, 1, 1],
        };
        for _ in 0..10_000 {
            match step(&mut warp, &insts, &mut env, 0).unwrap().0 {
                StepEvent::Exited => break,
                StepEvent::Barrier => panic!("unexpected barrier"),
                StepEvent::Executed => {}
            }
        }
        assert!(warp.exited, "warp did not exit");
        (warp, global)
    }

    #[test]
    fn ffma_and_fadd_semantics() {
        let (w, _) = run_insts(
            vec![
                Instruction::new(mov(Reg(1), 3.0f32)),
                Instruction::new(mov(Reg(2), 4.0f32)),
                Instruction::new(mov(Reg(3), 10.0f32)),
                Instruction::new(ffma(Reg(4), Reg(1), Reg(2), Reg(3))),
                Instruction::new(fsub(Reg(5), Reg(4), Reg(3))),
                Instruction::new(Op::Ffma {
                    d: Reg(6),
                    a: Reg(1),
                    b: SrcB::Reg(Reg(2)),
                    c: Reg(3),
                    neg_b: true,
                    neg_c: true,
                }),
            ],
            |_, _| {},
        );
        assert_eq!(f32::from_bits(w.regs[4][0]), 22.0);
        assert_eq!(f32::from_bits(w.regs[5][7]), 12.0);
        assert_eq!(f32::from_bits(w.regs[6][31]), -22.0);
    }

    #[test]
    fn integer_ops() {
        let (w, _) = run_insts(
            vec![
                Instruction::new(mov(Reg(1), 100u32)),
                Instruction::new(iadd3(Reg(2), Reg(1), 28u32, Reg(1))), // 228
                Instruction::new(imad(Reg(3), Reg(1), 3u32, Reg(2))),   // 528
                Instruction::new(isub(Reg(4), Reg(3), Reg(1))),         // 428
                Instruction::new(shl(Reg(5), Reg(1), 4)),               // 1600
                Instruction::new(shr(Reg(6), Reg(5), 2)),               // 400
                Instruction::new(and(Reg(7), Reg(1), 0x6cu32)),         // 0x64 & 0x6c = 0x64
                Instruction::new(or(Reg(8), Reg(1), 0x1u32)),
                Instruction::new(xor(Reg(9), Reg(1), Reg(1))),
                Instruction::new(lea(Reg(10), Reg(1), 5u32, 2)), // 5 + 100*4 = 405
            ],
            |_, _| {},
        );
        assert_eq!(w.regs[2][0], 228);
        assert_eq!(w.regs[3][0], 528);
        assert_eq!(w.regs[4][0], 428);
        assert_eq!(w.regs[5][0], 1600);
        assert_eq!(w.regs[6][0], 400);
        assert_eq!(w.regs[7][0], 0x64);
        assert_eq!(w.regs[8][0], 101);
        assert_eq!(w.regs[9][0], 0);
        assert_eq!(w.regs[10][0], 405);
    }

    #[test]
    fn imad_wide_builds_64bit_addresses() {
        let (w, _) = run_insts(
            vec![
                Instruction::new(mov(Reg(4), 0x8000_0000u32)), // c lo
                Instruction::new(mov(Reg(5), 0x1u32)),         // c hi
                Instruction::new(mov(Reg(1), 0x4000_0000u32)),
                Instruction::new(imad_wide(Reg(2), Reg(1), 4u32, Reg(4))),
            ],
            |_, _| {},
        );
        // 0x4000_0000 * 4 + 0x1_8000_0000 = 0x2_8000_0000
        assert_eq!(w.regs[2][0], 0x8000_0000);
        assert_eq!(w.regs[3][0], 0x2);
    }

    #[test]
    fn imad_hi_for_magic_division() {
        // Divide 1000 by 28 via magic number: m = ceil(2^34/28)=613566757,
        // shift = 2 (classic magicu). q = hi(1000*m) >> 2 = 35.
        let (w, _) = run_insts(
            vec![
                Instruction::new(mov(Reg(1), 1000u32)),
                Instruction::new(mov(Reg(2), 613566757u32)),
                Instruction::new(Op::ImadHi {
                    d: Reg(3),
                    a: Reg(1),
                    b: SrcB::Reg(Reg(2)),
                    c: RZ,
                }),
                Instruction::new(shr(Reg(4), Reg(3), 2)),
            ],
            |_, _| {},
        );
        assert_eq!(w.regs[4][0], 1000 / 28);
    }

    #[test]
    fn s2r_thread_indices() {
        let (w, _) = run_insts(
            vec![
                Instruction::new(s2r(Reg(1), SpecialReg::TidX)),
                Instruction::new(s2r(Reg(2), SpecialReg::CtaidY)),
                Instruction::new(s2r(Reg(3), SpecialReg::LaneId)),
                Instruction::new(s2r(Reg(4), SpecialReg::WarpId)),
            ],
            |_, _| {},
        );
        assert_eq!(w.regs[1][5], 5);
        assert_eq!(w.regs[2][0], 2);
        assert_eq!(w.regs[3][9], 9);
        assert_eq!(w.regs[4][0], 0);
    }

    #[test]
    fn predicates_and_sel() {
        let (w, _) = run_insts(
            vec![
                Instruction::new(s2r(Reg(1), SpecialReg::LaneId)),
                Instruction::new(isetp(Pred(0), CmpOp::Lt, Reg(1), 16u32)),
                Instruction::new(mov(Reg(2), 111u32)),
                Instruction::new(mov(Reg(3), 222u32)),
                Instruction::new(Op::Sel {
                    d: Reg(4),
                    a: Reg(2),
                    b: SrcB::Reg(Reg(3)),
                    p: PredSrc::of(Pred(0)),
                }),
            ],
            |_, _| {},
        );
        assert_eq!(w.regs[4][3], 111);
        assert_eq!(w.regs[4][20], 222);
    }

    #[test]
    fn p2r_r2p_round_trip() {
        let (w, _) = run_insts(
            vec![
                Instruction::new(s2r(Reg(1), SpecialReg::LaneId)),
                // P0 = lane < 8, P1 = lane is even, P2 = lane >= 30.
                Instruction::new(isetp(Pred(0), CmpOp::Lt, Reg(1), 8u32)),
                Instruction::new(and(Reg(2), Reg(1), 1u32)),
                Instruction::new(isetp(Pred(1), CmpOp::Eq, Reg(2), 0u32)),
                Instruction::new(isetp(Pred(2), CmpOp::Ge, Reg(1), 30u32)),
                // Pack into R3, clobber preds, unpack.
                Instruction::new(Op::P2r {
                    d: Reg(3),
                    a: RZ,
                    mask: 0x7f,
                }),
                Instruction::new(isetp(Pred(0), CmpOp::Ge, Reg(1), 0u32)), // true
                Instruction::new(isetp(Pred(1), CmpOp::Ge, Reg(1), 0u32)),
                Instruction::new(isetp(Pred(2), CmpOp::Ge, Reg(1), 0u32)),
                Instruction::new(Op::R2p {
                    a: Reg(3),
                    mask: 0x7,
                }),
                // Read back via SEL.
                Instruction::new(Op::Sel {
                    d: Reg(4),
                    a: Reg(1),
                    b: SrcB::Imm(999),
                    p: PredSrc::of(Pred(0)),
                }),
                Instruction::new(Op::Sel {
                    d: Reg(5),
                    a: Reg(1),
                    b: SrcB::Imm(999),
                    p: PredSrc::of(Pred(1)),
                }),
                Instruction::new(Op::Sel {
                    d: Reg(6),
                    a: Reg(1),
                    b: SrcB::Imm(999),
                    p: PredSrc::of(Pred(2)),
                }),
            ],
            |_, _| {},
        );
        assert_eq!(w.regs[4][5], 5); // P0 true for lane 5
        assert_eq!(w.regs[4][9], 999);
        assert_eq!(w.regs[5][4], 4); // even lane
        assert_eq!(w.regs[5][5], 999);
        assert_eq!(w.regs[6][31], 31);
        assert_eq!(w.regs[6][2], 999);
    }

    #[test]
    fn global_memory_round_trip_and_predication() {
        let (w, g) = run_insts(
            vec![
                // R2:R3 = base pointer from params? use direct setup value.
                Instruction::new(s2r(Reg(1), SpecialReg::LaneId)),
                Instruction::new(shl(Reg(6), Reg(1), 2)),
                Instruction::new(iadd3(Reg(2), Reg(6), Reg(4), RZ)),
                Instruction::new(mov(Reg(3), Reg(5))),
                // Guarded load: only lanes < 16 load.
                Instruction::new(isetp(Pred(1), CmpOp::Lt, Reg(1), 16u32)),
                Instruction::new(mov(Reg(8), 0xdeadu32)),
                Instruction::new(ldg(MemWidth::B32, Reg(8), Reg(2), 0))
                    .with_guard(PredGuard::on(Pred(1))),
                // All lanes store R8 to base + 256 + lane*4.
                Instruction::new(stg(MemWidth::B32, Reg(2), 256, Reg(8))),
            ],
            |w, g| {
                let p = g.alloc(1024);
                let vals: Vec<f32> = (0..32).map(|i| i as f32).collect();
                g.upload_f32(p, &vals).unwrap();
                for lane in 0..32 {
                    w.regs[4][lane] = p as u32;
                    w.regs[5][lane] = (p >> 32) as u32;
                }
            },
        );
        assert_eq!(f32::from_bits(w.regs[8][3]), 3.0);
        assert_eq!(w.regs[8][20], 0xdead, "guarded-off lane keeps old value");
        let base = 0x1000_0000u64; // first alloc
        let stored = g.download_f32(base + 256, 32).unwrap();
        assert_eq!(stored[7], 7.0);
        assert_eq!(stored[25], f32::from_bits(0xdead));
    }

    #[test]
    fn shared_memory_and_vector_widths() {
        let (w, _) = run_insts(
            vec![
                Instruction::new(s2r(Reg(1), SpecialReg::LaneId)),
                Instruction::new(shl(Reg(2), Reg(1), 4)),
                Instruction::new(mov(Reg(4), 1.0f32)),
                Instruction::new(mov(Reg(5), 2.0f32)),
                Instruction::new(mov(Reg(6), 3.0f32)),
                Instruction::new(mov(Reg(7), 4.0f32)),
                Instruction::new(sts(MemWidth::B128, Reg(2), 0, Reg(4))),
                Instruction::new(lds(MemWidth::B64, Reg(8), Reg(2), 8)),
            ],
            |_, _| {},
        );
        assert_eq!(f32::from_bits(w.regs[8][0]), 3.0);
        assert_eq!(f32::from_bits(w.regs[9][0]), 4.0);
    }

    #[test]
    fn divergent_branch_reconverges() {
        // if (lane < 4) R2 = 7; else R2 = 9;  then all lanes R3 = R2 + 1.
        let insts = vec![
            /* 0 */ Instruction::new(s2r(Reg(1), SpecialReg::LaneId)),
            /* 1 */ Instruction::new(isetp(Pred(0), CmpOp::Ge, Reg(1), 4u32)),
            /* 2 */
            Instruction::new(Op::Bra { target: 5 }).with_guard(PredGuard::on(Pred(0))),
            /* 3 */ Instruction::new(mov(Reg(2), 7u32)),
            /* 4 */ Instruction::new(Op::Bra { target: 6 }),
            /* 5 */ Instruction::new(mov(Reg(2), 9u32)),
            /* 6 */ Instruction::new(iadd3(Reg(3), Reg(2), 1u32, RZ)),
        ];
        let (w, _) = run_insts(insts, |_, _| {});
        assert_eq!(w.regs[3][0], 8);
        assert_eq!(w.regs[3][3], 8);
        assert_eq!(w.regs[3][4], 10);
        assert_eq!(w.regs[3][31], 10);
    }

    #[test]
    fn loop_with_backward_branch() {
        // R2 = sum of 1..=10 via a loop.
        let insts = vec![
            /* 0 */ Instruction::new(mov(Reg(1), 10u32)),
            /* 1 */ Instruction::new(mov(Reg(2), 0u32)),
            /* 2 */ Instruction::new(iadd3(Reg(2), Reg(2), Reg(1), RZ)),
            /* 3 */ Instruction::new(iadd3(Reg(1), Reg(1), (-1i32) as u32, RZ)),
            /* 4 */ Instruction::new(isetp(Pred(0), CmpOp::Gt, Reg(1), 0u32)),
            /* 5 */
            Instruction::new(Op::Bra { target: 2 }).with_guard(PredGuard::on(Pred(0))),
        ];
        let (w, _) = run_insts(insts, |_, _| {});
        assert_eq!(w.regs[2][0], 55);
    }

    #[test]
    fn const_bank_reads() {
        let (w, _) = run_insts(
            vec![
                Instruction::new(mov(Reg(1), SrcB::Const(0x160))),
                Instruction::new(mov(Reg(2), SrcB::Const(0x164))),
                Instruction::new(mov(Reg(3), SrcB::Const(0x0))), // blockDim.x
                Instruction::new(mov(Reg(4), SrcB::Const(0x10))), // gridDim.y
            ],
            |_, _| {},
        );
        assert_eq!(w.regs[1][0], 42);
        assert_eq!(w.regs[2][0], 7);
        assert_eq!(w.regs[3][0], 64);
        assert_eq!(w.regs[4][0], 8);
    }

    #[test]
    fn oob_global_access_reports_context() {
        let insts = vec![
            Instruction::new(mov(Reg(2), 0u32)),
            Instruction::new(mov(Reg(3), 0u32)),
            Instruction::new(ldg(MemWidth::B32, Reg(4), Reg(2), 0)),
            Instruction::new(Op::Exit),
        ];
        let mut global = GlobalMemory::new(1024);
        let mut smem = vec![0u8; 0];
        let cbank = ConstBank::new([32, 1, 1], [1, 1, 1], &[]);
        let mut warp = Warp::new(16, 0, 32);
        let mut env = env_fixture(&mut global, &mut smem, &cbank);
        let mut res = Ok((StepEvent::Executed, MemTrace::default()));
        for _ in 0..4 {
            res = step(&mut warp, &insts, &mut env, 5);
            if res.is_err() {
                break;
            }
        }
        let err = res.unwrap_err();
        assert_eq!(err.warp, 5);
        assert_eq!(err.pc, 2);
        assert!(err.msg.contains("out-of-bounds"), "{err}");
        assert!(err.inst.contains("LDG"), "{err}");
    }

    #[test]
    fn partial_warp_masks_inactive_lanes() {
        let mut global = GlobalMemory::new(1024);
        let mut smem = vec![0u8; 256];
        let cbank = ConstBank::new([8, 1, 1], [1, 1, 1], &[]);
        // Block of 8 threads: only lanes 0-7 active.
        let mut warp = Warp::new(16, 0, 8);
        let insts = vec![
            Instruction::new(mov(Reg(1), 5u32)),
            Instruction::new(Op::Exit),
        ];
        let mut env = env_fixture(&mut global, &mut smem, &cbank);
        loop {
            if step(&mut warp, &insts, &mut env, 0).unwrap().0 == StepEvent::Exited {
                break;
            }
        }
        assert_eq!(warp.regs[1][7], 5);
        assert_eq!(warp.regs[1][8], 0, "inactive lane untouched");
    }
}
