//! Global-memory arena, constant bank and kernel-parameter layout.

/// A device pointer: a byte address into the global-memory arena.
pub type DevPtr = u64;

/// Flat global-memory arena with a bump allocator.
///
/// Addresses start at a nonzero base so that a null pointer dereference in a
/// kernel faults instead of silently reading buffer 0.
#[derive(Debug)]
pub struct GlobalMemory {
    base: u64,
    data: Vec<u8>,
    next: u64,
}

/// Alignment of all allocations (matches cudaMalloc's 256-byte contract).
const ALLOC_ALIGN: u64 = 256;
const BASE_ADDR: u64 = 0x1000_0000;

impl GlobalMemory {
    /// Arena with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        GlobalMemory {
            base: BASE_ADDR,
            data: vec![0u8; capacity],
            next: BASE_ADDR,
        }
    }

    /// Allocate `bytes`, zero-initialized, 256-byte aligned.
    pub fn alloc(&mut self, bytes: u64) -> DevPtr {
        let ptr = self.next;
        let end = ptr + bytes;
        assert!(
            (end - self.base) as usize <= self.data.len(),
            "device OOM: arena {} bytes, requested up to {}",
            self.data.len(),
            end - self.base,
        );
        self.next = end.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        ptr
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.next - self.base
    }

    fn index(&self, addr: u64, len: usize) -> Result<usize, MemError> {
        if addr < self.base {
            return Err(MemError::OutOfBounds { addr, len });
        }
        let off = (addr - self.base) as usize;
        if off + len > self.data.len() {
            return Err(MemError::OutOfBounds { addr, len });
        }
        Ok(off)
    }

    /// Read `len` bytes at `addr`.
    pub fn read(&self, addr: u64, len: usize) -> Result<&[u8], MemError> {
        let off = self.index(addr, len)?;
        Ok(&self.data[off..off + len])
    }

    /// Write bytes at `addr`.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemError> {
        let off = self.index(addr, bytes.len())?;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Read one 32-bit word.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        Ok(u32::from_le_bytes(self.read(addr, 4)?.try_into().unwrap()))
    }

    /// Write one 32-bit word.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Upload an `f32` slice to `addr`.
    pub fn upload_f32(&mut self, addr: u64, data: &[f32]) -> Result<(), MemError> {
        let off = self.index(addr, data.len() * 4)?;
        for (i, &v) in data.iter().enumerate() {
            self.data[off + i * 4..off + i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    /// Download `len` `f32`s from `addr`.
    pub fn download_f32(&self, addr: u64, len: usize) -> Result<Vec<f32>, MemError> {
        let off = self.index(addr, len * 4)?;
        Ok((0..len)
            .map(|i| {
                f32::from_le_bytes(self.data[off + i * 4..off + i * 4 + 4].try_into().unwrap())
            })
            .collect())
    }

    /// Zero a byte range.
    pub fn memset_zero(&mut self, addr: u64, len: usize) -> Result<(), MemError> {
        let off = self.index(addr, len)?;
        self.data[off..off + len].fill(0);
        Ok(())
    }
}

/// Memory access errors, reported with the faulting address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    OutOfBounds { addr: u64, len: usize },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len } => {
                write!(f, "out-of-bounds access: {len} bytes at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Kernel parameter area and launch dimensions, mapped into constant bank 0
/// with the real CUDA ABI layout: launch dims in the low words, parameters
/// from byte `0x160` (§5.1.2: "Parameters passed to CUDA kernels are stored
/// in constant memory").
#[derive(Clone, Debug, Default)]
pub struct ConstBank {
    bytes: Vec<u8>,
}

/// Byte offset of the first kernel parameter in constant bank 0.
pub const PARAM_BASE: u16 = 0x160;

impl ConstBank {
    /// Build the bank from launch dims and the raw parameter bytes.
    pub fn new(block_dim: [u32; 3], grid_dim: [u32; 3], params: &[u8]) -> Self {
        let mut bytes = vec![0u8; PARAM_BASE as usize + params.len()];
        for (i, v) in block_dim.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        for (i, v) in grid_dim.iter().enumerate() {
            bytes[12 + i * 4..16 + i * 4].copy_from_slice(&v.to_le_bytes());
        }
        bytes[PARAM_BASE as usize..].copy_from_slice(params);
        ConstBank { bytes }
    }

    /// Read a 32-bit word at byte offset `off` (out-of-range reads are 0,
    /// like real constant memory's zero-fill behaviour for unwritten slots).
    pub fn read_u32(&self, off: u16) -> u32 {
        let off = off as usize;
        if off + 4 <= self.bytes.len() {
            u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
        } else {
            0
        }
    }
}

/// Helper to build a kernel parameter blob (u32s and 64-bit pointers with
/// natural alignment, like the CUDA driver packs them).
#[derive(Clone, Debug, Default)]
pub struct ParamBuilder {
    bytes: Vec<u8>,
}

impl ParamBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a 4-byte value.
    pub fn push_u32(mut self, v: u32) -> Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a 4-byte float.
    pub fn push_f32(self, v: f32) -> Self {
        self.push_u32(v.to_bits())
    }

    /// Append an 8-byte pointer, aligning to 8 first.
    pub fn push_ptr(mut self, p: DevPtr) -> Self {
        while !self.bytes.len().is_multiple_of(8) {
            self.bytes.push(0);
        }
        self.bytes.extend_from_slice(&p.to_le_bytes());
        self
    }

    /// Byte offset the *next* pushed value would land at, relative to
    /// `PARAM_BASE`. Useful for writing kernels against fixed offsets.
    pub fn next_offset(&self) -> usize {
        self.bytes.len()
    }

    pub fn build(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert_eq!(a % ALLOC_ALIGN, 0);
        assert_eq!(b % ALLOC_ALIGN, 0);
        assert!(b >= a + 100);
        assert_eq!(m.used(), (b - a) + 256);
    }

    #[test]
    #[should_panic(expected = "device OOM")]
    fn alloc_oom_panics() {
        let mut m = GlobalMemory::new(1024);
        let _ = m.alloc(2048);
    }

    #[test]
    fn f32_round_trip() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(64);
        let data = vec![1.0, -2.5, 3.25, f32::MIN_POSITIVE];
        m.upload_f32(p, &data).unwrap();
        assert_eq!(m.download_f32(p, 4).unwrap(), data);
    }

    #[test]
    fn oob_reads_fault() {
        let m = GlobalMemory::new(4096);
        assert!(m.read_u32(0).is_err(), "null deref must fault");
        assert!(m.read_u32(BASE_ADDR + 4096).is_err());
        let mut m = GlobalMemory::new(4096);
        assert!(m.write_u32(0x10, 1).is_err());
    }

    #[test]
    fn const_bank_layout() {
        let params = ParamBuilder::new()
            .push_u32(7)
            .push_ptr(0xdead_beef_0000)
            .push_f32(1.5)
            .build();
        // u32 at 0, pad to 8, ptr at 8..16, f32 at 16.
        assert_eq!(params.len(), 20);
        let cb = ConstBank::new([256, 1, 1], [10, 20, 30], &params);
        assert_eq!(cb.read_u32(0x0), 256);
        assert_eq!(cb.read_u32(0xc), 10);
        assert_eq!(cb.read_u32(0x14), 30);
        assert_eq!(cb.read_u32(PARAM_BASE), 7);
        assert_eq!(cb.read_u32(PARAM_BASE + 8), 0xbeef_0000);
        assert_eq!(cb.read_u32(PARAM_BASE + 12), 0xdead);
        assert_eq!(f32::from_bits(cb.read_u32(PARAM_BASE + 16)), 1.5);
        // Past the end reads zero.
        assert_eq!(cb.read_u32(0x400), 0);
    }

    #[test]
    fn memset_zero_works() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(16);
        m.upload_f32(p, &[1.0; 4]).unwrap();
        m.memset_zero(p, 16).unwrap();
        assert_eq!(m.download_f32(p, 4).unwrap(), vec![0.0; 4]);
    }
}
