//! `simprof` — per-instruction stall-attribution profiling for the timing
//! model (our equivalent of Nsight Compute's per-SASS-line counters, §7.2 of
//! the paper).
//!
//! When [`crate::TimingOptions::profile`] is set, the cycle loop in
//! [`crate::timing::time_kernel`] charges every scheduler-cycle of the
//! simulated wave to exactly one bucket:
//!
//! * **issued** — an instruction left the scheduler; charged to its SASS line;
//! * a **stall cause** — nothing issued; charged to the line the
//!   highest-priority blocked warp was *about to* issue (priority: barrier >
//!   scoreboard > MIO queue > stall count > pipe busy), matching how Nsight's
//!   warp-state sampling names the instruction that waits;
//! * **yield switch** — the scheduler is recovering from a warp switch or a
//!   cleared yield flag; charged to the line that caused it;
//! * **empty** — no live warp on the scheduler.
//!
//! This makes the books balance exactly:
//! `Σ_lines (issue + stalls) + empty == schedulers × wave_cycles`,
//! which the report prints as a reconciliation line and the tests assert.
//! Bank-conflict cycles (register-bank and shared-memory) are *pipe*
//! occupancy, not issue slots, so they are tracked per line as a separate
//! column outside the sum.

use sass::Module;

/// Scheduler-idle causes, in attribution-priority order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// Warp parked at `BAR.SYNC`.
    Barrier = 0,
    /// Control-code wait mask on a pending scoreboard.
    Scoreboard = 1,
    /// MIO (shared-memory / global) queue full.
    MioQueue = 2,
    /// Control-code stall count not yet elapsed.
    StallCount = 3,
    /// FP32/INT issue port still occupied.
    PipeBusy = 4,
}

impl StallCause {
    pub const ALL: [StallCause; 5] = [
        StallCause::Barrier,
        StallCause::Scoreboard,
        StallCause::MioQueue,
        StallCause::StallCount,
        StallCause::PipeBusy,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StallCause::Barrier => "barrier",
            StallCause::Scoreboard => "scoreboard",
            StallCause::MioQueue => "mio_queue",
            StallCause::StallCount => "stall_count",
            StallCause::PipeBusy => "pipe_busy",
        }
    }
}

/// Stall cycles by cause, plus the yield-switch recovery column.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Indexed by [`StallCause`].
    pub by_cause: [u64; 5],
    /// Scheduler slots lost recovering from a warp switch / cleared yield
    /// flag caused by this line (§5.1.4's "one more clock cycle").
    pub yield_switch: u64,
}

impl StallBreakdown {
    /// All stall cycles attributed to the line.
    pub fn total(&self) -> u64 {
        self.by_cause.iter().sum::<u64>() + self.yield_switch
    }
}

/// Profile of one SASS line (one instruction index in the module).
#[derive(Clone, Debug, Default)]
pub struct LineProfile {
    /// Warp-instructions issued from this line during the wave.
    pub executed: u64,
    /// Scheduler issue slots this line consumed (== `executed`; kept
    /// separate so the identity is checkable).
    pub issue_cycles: u64,
    /// Scheduler slots the wave lost waiting *on this line*.
    pub stalls: StallBreakdown,
    /// Extra pipe cycles from register-bank or shared-memory bank conflicts
    /// this line caused (pipe occupancy, outside the issue-slot sum).
    pub bank_conflict_cycles: u64,
    /// Disassembly text (without control code), for reports.
    pub text: String,
    /// Opcode mnemonic, for per-opcode histograms.
    pub mnemonic: &'static str,
}

impl LineProfile {
    /// Issue + stall cycles: the line's total claim on scheduler slots.
    pub fn slot_cycles(&self) -> u64 {
        self.issue_cycles + self.stalls.total()
    }
}

/// A named instruction-index range `[start, end)` mapping profile lines back
/// to a kernel phase (setup / main loop / epilogue / ...). Emitted by
/// `kernels::emit` and repaired alongside the schedule, so the ranges stay
/// valid after NOP insertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    pub name: String,
    pub start: u32,
    pub end: u32,
}

impl Region {
    pub fn contains(&self, pc: u32) -> bool {
        pc >= self.start && pc < self.end
    }
}

/// One issued warp-instruction, for schedule traces.
#[derive(Clone, Copy, Debug)]
pub struct IssueEvent {
    pub cycle: u64,
    pub scheduler: u32,
    /// Warp slot index on the SM (unique across the wave's resident blocks).
    pub warp: u32,
    pub pc: u32,
}

/// Full profile of one simulated wave.
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    /// Warp schedulers per SM during the run.
    pub schedulers: u32,
    /// Cycles of the simulated wave (same as `KernelTiming::wave_cycles`).
    pub wave_cycles: u64,
    /// Scheduler-cycles with no live warp assigned.
    pub empty_cycles: u64,
    /// Per-instruction-index profile, length == module instruction count.
    pub lines: Vec<LineProfile>,
    /// Issued instructions in order, capped at [`ISSUE_EVENT_CAP`].
    pub issue_events: Vec<IssueEvent>,
    /// True when the wave issued more instructions than the event cap.
    pub issue_events_truncated: bool,
    /// Named kernel phases, when the emitter provided them.
    pub regions: Vec<Region>,
}

/// Cap on recorded issue events (~24 MB of trace at most).
pub const ISSUE_EVENT_CAP: usize = 1_000_000;

impl KernelProfile {
    /// Attach named regions (builder style, used by the `kernels` layer).
    pub fn with_regions(mut self, regions: Vec<Region>) -> Self {
        self.regions = regions;
        self
    }

    /// The region containing `pc`, if any. Inner (later-emitted) regions win
    /// on overlap so `main_loop` can sit inside a whole-kernel region.
    pub fn region_of(&self, pc: u32) -> Option<&Region> {
        self.regions.iter().rev().find(|r| r.contains(pc))
    }

    /// Scheduler-cycles attributed across all buckets. The profiling
    /// invariant is `attributed_cycles() == schedulers * wave_cycles`.
    pub fn attributed_cycles(&self) -> u64 {
        self.empty_cycles + self.lines.iter().map(|l| l.slot_cycles()).sum::<u64>()
    }

    /// Accumulate `k` copies of `other` into `self` — the device model's
    /// merge across an SM's waves (with `k > 1` for fast-forwarded
    /// steady-state waves) and then across SMs. Per-line tallies are linear,
    /// so the `attributed == schedulers × wave_cycles` identity survives
    /// with `wave_cycles` accumulating busy scheduler-cycles (the sum over
    /// SMs, not the device makespan). Issue events are *not* merged — the
    /// first wave's trace is kept and `issue_events_truncated` records the
    /// drop; a full multi-SM event trace would be unboundedly large.
    pub fn add_scaled(&mut self, other: &KernelProfile, k: u64) {
        debug_assert_eq!(self.schedulers, other.schedulers);
        debug_assert_eq!(self.lines.len(), other.lines.len());
        self.wave_cycles += k * other.wave_cycles;
        self.empty_cycles += k * other.empty_cycles;
        for (l, o) in self.lines.iter_mut().zip(&other.lines) {
            l.executed += k * o.executed;
            l.issue_cycles += k * o.issue_cycles;
            for c in 0..5 {
                l.stalls.by_cause[c] += k * o.stalls.by_cause[c];
            }
            l.stalls.yield_switch += k * o.stalls.yield_switch;
            l.bank_conflict_cycles += k * o.bank_conflict_cycles;
        }
        if !other.issue_events.is_empty() || other.issue_events_truncated {
            self.issue_events_truncated = true;
        }
    }

    /// Line indices sorted hottest-first by issue+stall slot cycles.
    pub fn hot_lines(&self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.lines.len())
            .filter(|&i| self.lines[i].slot_cycles() > 0)
            .collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(self.lines[i].slot_cycles()));
        idx.truncate(n);
        idx
    }

    /// Per-opcode histogram: mnemonic -> (executed, issue_cycles, stall
    /// cycles), sorted by executed count descending.
    pub fn opcode_histogram(&self) -> Vec<(&'static str, u64, u64, u64)> {
        let mut map: std::collections::HashMap<&'static str, (u64, u64, u64)> =
            std::collections::HashMap::new();
        for l in &self.lines {
            if l.executed == 0 && l.stalls.total() == 0 {
                continue;
            }
            let e = map.entry(l.mnemonic).or_default();
            e.0 += l.executed;
            e.1 += l.issue_cycles;
            e.2 += l.stalls.total();
        }
        let mut v: Vec<_> = map.into_iter().map(|(k, (a, b, c))| (k, a, b, c)).collect();
        v.sort_by_key(|&(_, executed, _, _)| std::cmp::Reverse(executed));
        v
    }

    /// Aggregate issue+stall slot cycles per named region, in region order,
    /// with an `<unattributed>` bucket for lines outside every region.
    pub fn region_totals(&self) -> Vec<(String, u64, u64)> {
        let mut totals: Vec<(String, u64, u64)> = self
            .regions
            .iter()
            .map(|r| (r.name.clone(), 0, 0))
            .collect();
        let mut other = (0u64, 0u64);
        for (pc, l) in self.lines.iter().enumerate() {
            let cycles = l.slot_cycles();
            if cycles == 0 && l.executed == 0 {
                continue;
            }
            match self.regions.iter().position(|r| r.contains(pc as u32)) {
                Some(i) => {
                    totals[i].1 += l.executed;
                    totals[i].2 += cycles;
                }
                None => {
                    other.0 += l.executed;
                    other.1 += cycles;
                }
            }
        }
        if other != (0, 0) {
            totals.push(("<unattributed>".into(), other.0, other.1));
        }
        totals
    }

    /// Serialize the recorded warp-level schedule as Chrome trace-event JSON
    /// (open in `chrome://tracing` or Perfetto). One complete event per
    /// issued instruction: pid = SM, tid = warp slot, ts/dur in "µs" (1 cycle
    /// = 1 µs so the viewer's zoom math stays sane). A top-level
    /// `"truncated"` field says whether the wave issued more instructions
    /// than [`ISSUE_EVENT_CAP`] kept — a truncated trace ends mid-wave and
    /// must not be read as the whole schedule.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(self.issue_events.len() * 96 + 64);
        out.push_str(&format!(
            "{{\"displayTimeUnit\":\"ns\",\"truncated\":{},\"traceEvents\":[",
            self.issue_events_truncated
        ));
        let mut first = true;
        for ev in &self.issue_events {
            let name = self
                .lines
                .get(ev.pc as usize)
                .map(|l| l.mnemonic)
                .unwrap_or("?");
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":1,\
                 \"args\":{{\"pc\":{},\"scheduler\":{}}}}}",
                name, ev.warp, ev.cycle, ev.pc, ev.scheduler
            ));
        }
        // Thread names: warp slot → "warp N".
        for warp in self
            .issue_events
            .iter()
            .map(|e| e.warp)
            .collect::<std::collections::BTreeSet<_>>()
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{warp},\
                 \"args\":{{\"name\":\"warp {warp}\"}}}}"
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Wave-profile collector driven by the cycle loop in `timing.rs`.
///
/// Per visited cycle the loop classifies every scheduler into a
/// [`SchedClass`], then calls [`Collector::commit`] with the number of
/// cycles the classification stands for (1 normally; the dead-time jump
/// width when nothing could issue).
pub(crate) struct Collector {
    lines: Vec<LineProfile>,
    events: Vec<IssueEvent>,
    truncated: bool,
    empty: u64,
    /// Scratch: this cycle's classification per scheduler.
    pub class: Vec<SchedClass>,
    /// Last line issued per scheduler (yield-switch attribution target).
    pub last_pc: Vec<Option<u32>>,
}

/// What one scheduler did in one visited cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SchedClass {
    Issued(u32),
    Blocked(StallCause, u32),
    /// Recovering from a warp switch or cleared yield flag caused by `pc`.
    YieldRecover(u32),
    Empty,
}

impl Collector {
    pub fn new(module: &Module, schedulers: usize) -> Self {
        let lines = module
            .insts
            .iter()
            .map(|inst| LineProfile {
                text: sass::disasm::inst_text(inst),
                mnemonic: inst.op.mnemonic(),
                ..Default::default()
            })
            .collect();
        Collector {
            lines,
            events: Vec::new(),
            truncated: false,
            empty: 0,
            class: vec![SchedClass::Empty; schedulers],
            last_pc: vec![None; schedulers],
        }
    }

    /// Record an issue (called at the issue site; slot accounting happens in
    /// `commit`).
    pub fn issued(&mut self, s: usize, warp: usize, pc: u32, cycle: u64) {
        self.class[s] = SchedClass::Issued(pc);
        self.last_pc[s] = Some(pc);
        self.lines[pc as usize].executed += 1;
        if self.events.len() < ISSUE_EVENT_CAP {
            self.events.push(IssueEvent {
                cycle,
                scheduler: s as u32,
                warp: warp as u32,
                pc,
            });
        } else {
            self.truncated = true;
        }
    }

    /// Extra pipe cycles from a bank conflict on `pc`.
    pub fn bank_conflict(&mut self, pc: u32, cycles: u64) {
        self.lines[pc as usize].bank_conflict_cycles += cycles;
    }

    /// Charge the cycle's classifications; `span` cycles elapsed since the
    /// classification was made (1 unless the loop jumped over dead time).
    pub fn commit(&mut self, span: u64) {
        for class in &mut self.class {
            match *class {
                SchedClass::Issued(pc) => {
                    // An issue always advances time by exactly one cycle.
                    debug_assert_eq!(span, 1);
                    self.lines[pc as usize].issue_cycles += 1;
                }
                SchedClass::Blocked(cause, pc) => {
                    self.lines[pc as usize].stalls.by_cause[cause as usize] += span;
                }
                SchedClass::YieldRecover(pc) => {
                    self.lines[pc as usize].stalls.yield_switch += span;
                }
                SchedClass::Empty => self.empty += span,
            }
            *class = SchedClass::Empty;
        }
    }

    pub fn finish(self, wave_cycles: u64) -> KernelProfile {
        KernelProfile {
            schedulers: self.class.len() as u32,
            wave_cycles,
            empty_cycles: self.empty,
            lines: self.lines,
            issue_events: self.events,
            issue_events_truncated: self.truncated,
            regions: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(executed: u64, stall: u64) -> LineProfile {
        LineProfile {
            executed,
            issue_cycles: executed,
            stalls: StallBreakdown {
                by_cause: [stall, 0, 0, 0, 0],
                yield_switch: 0,
            },
            ..Default::default()
        }
    }

    #[test]
    fn attribution_sums() {
        let p = KernelProfile {
            schedulers: 4,
            wave_cycles: 10,
            empty_cycles: 30,
            lines: vec![line(3, 2), line(5, 0)],
            ..Default::default()
        };
        assert_eq!(p.attributed_cycles(), 30 + 3 + 2 + 5);
    }

    #[test]
    fn regions_inner_wins() {
        let p = KernelProfile {
            regions: vec![
                Region {
                    name: "kernel".into(),
                    start: 0,
                    end: 100,
                },
                Region {
                    name: "main_loop".into(),
                    start: 10,
                    end: 50,
                },
            ],
            ..Default::default()
        };
        assert_eq!(p.region_of(5).unwrap().name, "kernel");
        assert_eq!(p.region_of(20).unwrap().name, "main_loop");
        assert!(p.region_of(200).is_none());
    }

    #[test]
    fn chrome_trace_shape() {
        let p = KernelProfile {
            lines: vec![LineProfile {
                mnemonic: "FFMA",
                ..Default::default()
            }],
            issue_events: vec![IssueEvent {
                cycle: 7,
                scheduler: 1,
                warp: 3,
                pc: 0,
            }],
            ..Default::default()
        };
        let t = p.to_chrome_trace();
        assert!(t.starts_with('{') && t.ends_with('}'));
        assert!(t.contains("\"name\":\"FFMA\""));
        assert!(t.contains("\"ts\":7"));
        assert!(t.contains("\"tid\":3"));
        assert!(t.contains("warp 3"));
        assert!(t.contains("\"truncated\":false"));
        let mut p = p;
        p.issue_events_truncated = true;
        assert!(p.to_chrome_trace().contains("\"truncated\":true"));
    }

    #[test]
    fn hot_lines_sorted() {
        let p = KernelProfile {
            lines: vec![line(1, 0), line(10, 5), line(3, 9)],
            ..Default::default()
        };
        assert_eq!(p.hot_lines(2), vec![1, 2]);
    }
}
