//! Batch evaluation of schedule-tuner candidates.
//!
//! The schedule autotuner (`sass::tune`) evaluates thousands of candidate
//! streams that all share one baseline's *instructions* and differ only in
//! control codes and intra-block order. Building a fresh `InstDesc` table
//! per candidate would redo the operand analysis (source lists, bank-parity
//! masks, reuse latches) for every proposal even though none of it changed.
//! [`BatchTimer`] decodes the baseline once, then serves each candidate by
//! cloning the baseline descriptor of the *same instruction* (located through
//! the tuner's position map) and re-patching only the control-code-derived
//! fields (`InstDesc::repatch_ctrl`).
//!
//! `gpusim/tests/batch_identity.rs` pins that this path is result-identical
//! to a fresh [`time_kernel`] on every candidate shape the tuner produces.

use crate::decode::{decode_module, InstDesc};
use crate::launch::{Gpu, LaunchDims, LaunchError};
use crate::timing::{time_kernel, time_kernel_with_table, KernelTiming, TimingOptions};
use sass::Module;

/// Reusable decoded-descriptor table for timing many schedule variants of
/// one baseline module.
///
/// `Clone` hands each chain of a parallel search (`sass::island`) its own
/// scratch space over the *same* decoded baseline, so the operand analysis
/// is still done exactly once per module no matter how many islands evaluate
/// candidates concurrently (the clone shares no mutable state — `scratch`
/// starts empty).
#[derive(Clone)]
pub struct BatchTimer {
    /// Baseline descriptors, decoded with `region: None` (the per-candidate
    /// region is re-patched in, since reorders move PCs across markers).
    base: Vec<InstDesc>,
    /// Baseline ops, kept to `debug_assert` that the position map really
    /// points each candidate instruction at its own descriptor.
    #[cfg(debug_assertions)]
    base_ops: Vec<sass::Op>,
    scratch: Vec<InstDesc>,
}

impl BatchTimer {
    /// Decode `base` once. Candidates handed to [`BatchTimer::time`] must be
    /// permutations of this module's instruction list (with arbitrary
    /// control codes).
    pub fn new(base: &Module) -> BatchTimer {
        BatchTimer {
            base: decode_module(&base.insts, None),
            #[cfg(debug_assertions)]
            base_ops: base.insts.iter().map(|i| i.op).collect(),
            scratch: Vec::new(),
        }
    }

    /// Time `candidate`, whose instruction at position `i` is baseline
    /// instruction `perm[i]`. Falls back to a fresh decode when the shapes
    /// don't match (different length — e.g. a candidate from some other
    /// module), so the call is always safe.
    pub fn time(
        &mut self,
        gpu: &mut Gpu,
        candidate: &Module,
        perm: &[u32],
        dims: LaunchDims,
        params: &[u8],
        opts: TimingOptions,
    ) -> Result<KernelTiming, LaunchError> {
        let n = candidate.insts.len();
        if perm.len() != n || self.base.len() != n {
            return time_kernel(gpu, candidate, dims, params, opts);
        }
        self.scratch.clear();
        for (pc, inst) in candidate.insts.iter().enumerate() {
            let src = perm[pc] as usize;
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                self.base_ops[src], inst.op,
                "position map mismatch at pc {pc}: perm says baseline {src}"
            );
            let mut d = self.base[src].clone();
            d.repatch_ctrl(inst, pc as u32, opts.region);
            self.scratch.push(d);
        }
        time_kernel_with_table(gpu, candidate, dims, params, opts, &self.scratch)
    }
}
