//! `counters` — per-launch hardware-counter collection for the timing model
//! (our equivalent of an Nsight Compute section set: memory workload,
//! scheduler statistics, occupancy and pipe utilization).
//!
//! When [`crate::TimingOptions::counters`] is set, the cycle loop in
//! [`crate::timing::time_kernel`] fills an [`HwCounters`] alongside the
//! ordinary [`crate::KernelTiming`] result, following the same zero-cost
//! pattern as [`crate::simprof`]: the collector lives in an `Option`, every
//! instrumentation site is a pure read of state the loop already computes,
//! and with the flag off the timing numbers are bit-identical (asserted by
//! `gpusim/tests/counter_invariants.rs`) — which is also why the flag is
//! excluded from cache digests ([`crate::digest`]).
//!
//! Every counter carries an **exactness invariant** that reconciles it with
//! the rest of the model ([`HwCounters::validate`] checks the internal ones;
//! the integration tests check the cross-`KernelTiming` ones):
//!
//! | counter | invariant |
//! |---|---|
//! | `issued_by_pipe` | sums to `issued`; `issued / (schedulers × wave_cycles)` is `issue_util_pct` |
//! | `eligible_hist` | one bucket entry per scheduler per cycle: sums to `schedulers × wave_cycles` |
//! | `fp_pipe_busy_cycles` | `== 2 × fp_issues + reg_bank_conflicts` (the pipe's §5.2.2 occupancy law) |
//! | `reg_bank_conflicts` | `== KernelTiming::reg_bank_conflict_cycles` |
//! | `smem_phases` | `== smem_ideal_phases + smem_extra_phases` |
//! | `smem_extra_phases` | `== KernelTiming::smem_conflict_cycles` (MIO occupancy attributed to bank conflicts) |
//! | `smem_mio_cycles + global_mio_cycles` | total MIO-pipe busy cycles; `≤ wave_cycles` |
//! | `global_sectors` | `== l1_sector_hits + l2_sector_hits + l2_sector_misses` |
//! | `dram_read_bytes + dram_write_bytes` | wave-local DRAM traffic; scaled by `total/simulated` blocks it equals `KernelTiming::dram_bytes` |
//!
//! The functional launch path has a narrower sibling,
//! [`crate::launch::ExecCounters`], for kernels run outside the timing model;
//! on a grid the timed wave fully covers, the shared counters agree exactly.

/// Shared-memory access width buckets: 32-bit, 64-bit, 128-bit.
pub const SMEM_WIDTHS: [&str; 3] = ["32-bit", "64-bit", "128-bit"];

/// Per-launch hardware counters of one simulated wave (unscaled: counts are
/// for the `blocks_per_sm` resident blocks the wave executes, like the
/// per-SM counters hardware profilers report).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HwCounters {
    // ---- issue statistics ----------------------------------------------------
    /// Cycles of the simulated wave (same as `KernelTiming::wave_cycles`).
    pub wave_cycles: u64,
    /// Warp schedulers per SM during the run.
    pub schedulers: u32,
    /// Warp instructions issued.
    pub issued: u64,
    /// Issues by pipe: `[fp32, int, mio, ctrl]`. Sums to `issued`.
    pub issued_by_pipe: [u64; 4],
    /// Eligible-warps histogram: `eligible_hist[k]` is the number of
    /// scheduler-cycles that had exactly `k` warps ready to issue
    /// (bucket 8 = "8 or more"). A scheduler recovering from a warp switch
    /// counts as 0 eligible — it cannot select that cycle.
    pub eligible_hist: [u64; 9],
    /// Warps resident on the SM during the wave.
    pub resident_warps: u32,
    /// Device limit on resident warps per SM (occupancy denominator).
    pub max_warps_per_sm: u32,

    // ---- FP32 pipe and register file -----------------------------------------
    /// FP32-pipe warp instructions issued.
    pub fp_issues: u64,
    /// FP32-pipe busy cycles across all schedulers:
    /// `2 × fp_issues + reg_bank_conflicts`.
    pub fp_pipe_busy_cycles: u64,
    /// Register-bank conflict stalls (one extra pipe cycle each, §5.2.2).
    pub reg_bank_conflicts: u64,
    /// Operand fetches served by the reuse cache, per operand slot.
    pub reuse_hits: [u64; 4],
    /// Operand fetches that read the register banks, per operand slot.
    pub reuse_misses: [u64; 4],

    // ---- shared memory -------------------------------------------------------
    /// Shared-memory warp accesses (LDS + STS).
    pub smem_accesses: u64,
    /// Shared-memory accesses by width: `[32-bit, 64-bit, 128-bit]`. Wide
    /// accesses are served in multiple half/quarter-warp phases — the count
    /// here times the per-width minimum phases gives `smem_ideal_phases`.
    pub smem_accesses_by_width: [u64; 3],
    /// Total MIO phases all shared accesses needed (bank-exact).
    pub smem_phases: u64,
    /// Conflict-free phase floor (`max(1, bytes/128)` per access).
    pub smem_ideal_phases: u64,
    /// Extra phases from bank conflicts: `smem_phases - smem_ideal_phases`.
    pub smem_extra_phases: u64,
    /// MIO-pipe busy cycles spent on shared accesses (`max(1, phases)` each).
    pub smem_mio_cycles: u64,

    // ---- global memory / L2 / DRAM -------------------------------------------
    /// Global-memory warp accesses (LDG + STG).
    pub global_accesses: u64,
    /// Distinct 32 B sectors those accesses touched (post-coalescing).
    pub global_sectors: u64,
    /// Load sectors served by the L1 (no backend traffic).
    pub l1_sector_hits: u64,
    /// Sectors served by the L2.
    pub l2_sector_hits: u64,
    /// Sectors that missed the L2 and went to DRAM.
    pub l2_sector_misses: u64,
    /// MIO-pipe busy cycles spent on global accesses.
    pub global_mio_cycles: u64,
    /// DRAM bytes read by the wave (32 B per missed load sector).
    pub dram_read_bytes: u64,
    /// DRAM bytes written by the wave (32 B per missed store sector).
    pub dram_write_bytes: u64,
}

impl HwCounters {
    pub(crate) fn new(schedulers: u32, resident_warps: u32, max_warps_per_sm: u32) -> Self {
        HwCounters {
            schedulers,
            resident_warps,
            max_warps_per_sm,
            ..Default::default()
        }
    }

    /// Accumulate `k` copies of `other` into `self` — the device model's
    /// merge: per-wave counters add across an SM's waves (with `k > 1` for
    /// fast-forwarded steady-state waves) and then across SMs. Every event
    /// count is linear, so all [`HwCounters::validate`] identities survive
    /// the merge: `wave_cycles` accumulates the *busy* scheduler-cycles
    /// (the sum over SMs, not the device makespan), keeping
    /// `Σ eligible_hist = schedulers × wave_cycles` exact.
    pub fn add_scaled(&mut self, other: &HwCounters, k: u64) {
        debug_assert_eq!(self.schedulers, other.schedulers);
        self.wave_cycles += k * other.wave_cycles;
        self.issued += k * other.issued;
        for i in 0..4 {
            self.issued_by_pipe[i] += k * other.issued_by_pipe[i];
            self.reuse_hits[i] += k * other.reuse_hits[i];
            self.reuse_misses[i] += k * other.reuse_misses[i];
        }
        for i in 0..9 {
            self.eligible_hist[i] += k * other.eligible_hist[i];
        }
        self.resident_warps = self.resident_warps.max(other.resident_warps);
        self.max_warps_per_sm = self.max_warps_per_sm.max(other.max_warps_per_sm);
        self.fp_issues += k * other.fp_issues;
        self.fp_pipe_busy_cycles += k * other.fp_pipe_busy_cycles;
        self.reg_bank_conflicts += k * other.reg_bank_conflicts;
        self.smem_accesses += k * other.smem_accesses;
        for i in 0..3 {
            self.smem_accesses_by_width[i] += k * other.smem_accesses_by_width[i];
        }
        self.smem_phases += k * other.smem_phases;
        self.smem_ideal_phases += k * other.smem_ideal_phases;
        self.smem_extra_phases += k * other.smem_extra_phases;
        self.smem_mio_cycles += k * other.smem_mio_cycles;
        self.global_accesses += k * other.global_accesses;
        self.global_sectors += k * other.global_sectors;
        self.l1_sector_hits += k * other.l1_sector_hits;
        self.l2_sector_hits += k * other.l2_sector_hits;
        self.l2_sector_misses += k * other.l2_sector_misses;
        self.global_mio_cycles += k * other.global_mio_cycles;
        self.dram_read_bytes += k * other.dram_read_bytes;
        self.dram_write_bytes += k * other.dram_write_bytes;
    }

    // ---- derived metrics (the numbers profilers print) -----------------------

    /// Issued slots over available slots, percent (Nsight's "issue slot
    /// utilization"; equals `KernelTiming::issue_util_pct`).
    pub fn issue_efficiency_pct(&self) -> f64 {
        100.0 * self.issued as f64 / self.slot_capacity() as f64
    }

    /// Resident warps over the device limit, percent.
    pub fn achieved_occupancy_pct(&self) -> f64 {
        100.0 * self.resident_warps as f64 / self.max_warps_per_sm.max(1) as f64
    }

    /// Mean eligible warps per scheduler-cycle (bucket 8 counted as 8).
    pub fn eligible_warps_avg(&self) -> f64 {
        let slots: u64 = self.eligible_hist.iter().sum();
        if slots == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .eligible_hist
            .iter()
            .enumerate()
            .map(|(k, &n)| k as u64 * n)
            .sum();
        weighted as f64 / slots as f64
    }

    /// FP32-pipe busy fraction of its issue capacity, percent. Unlike
    /// `KernelTiming::sol_total_pct` this includes register-bank conflict
    /// cycles — busy is busy, even when the cycle does no useful math.
    pub fn fp_pipe_util_pct(&self) -> f64 {
        100.0 * self.fp_pipe_busy_cycles as f64 / self.slot_capacity() as f64
    }

    /// MIO-pipe busy fraction of the wave, percent (one MIO pipe per SM).
    pub fn mio_util_pct(&self) -> f64 {
        100.0 * (self.smem_mio_cycles + self.global_mio_cycles) as f64
            / self.wave_cycles.max(1) as f64
    }

    /// Reuse-cache hit rate over all FP32 operand fetches, percent.
    pub fn reuse_hit_pct(&self) -> f64 {
        let hits: u64 = self.reuse_hits.iter().sum();
        let total = hits + self.reuse_misses.iter().sum::<u64>();
        if total == 0 {
            return 0.0;
        }
        100.0 * hits as f64 / total as f64
    }

    /// L1 hit rate over all load/store sectors, percent.
    pub fn l1_hit_pct(&self) -> f64 {
        if self.global_sectors == 0 {
            return 0.0;
        }
        100.0 * self.l1_sector_hits as f64 / self.global_sectors as f64
    }

    /// L2 hit rate over the sectors that reached it, percent.
    pub fn l2_hit_pct(&self) -> f64 {
        let reached = self.l2_sector_hits + self.l2_sector_misses;
        if reached == 0 {
            return 0.0;
        }
        100.0 * self.l2_sector_hits as f64 / reached as f64
    }

    /// Scheduler issue slots available during the wave.
    pub fn slot_capacity(&self) -> u64 {
        self.schedulers as u64 * self.wave_cycles.max(1)
    }

    /// Check every internal exactness invariant (see the module table);
    /// returns the first violated identity as an error string.
    pub fn validate(&self) -> Result<(), String> {
        let by_pipe: u64 = self.issued_by_pipe.iter().sum();
        if by_pipe != self.issued {
            return Err(format!(
                "issued_by_pipe sums to {by_pipe}, issued is {}",
                self.issued
            ));
        }
        let hist: u64 = self.eligible_hist.iter().sum();
        if hist != self.slot_capacity() {
            return Err(format!(
                "eligible_hist covers {hist} scheduler-cycles, expected {} ({} schedulers x {} wave_cycles)",
                self.slot_capacity(),
                self.schedulers,
                self.wave_cycles
            ));
        }
        if self.fp_pipe_busy_cycles != 2 * self.fp_issues + self.reg_bank_conflicts {
            return Err(format!(
                "fp_pipe_busy_cycles {} != 2*{} fp_issues + {} conflicts",
                self.fp_pipe_busy_cycles, self.fp_issues, self.reg_bank_conflicts
            ));
        }
        if self.fp_issues > self.issued_by_pipe[0] {
            return Err(format!(
                "fp_issues {} exceeds fp32 pipe issues {}",
                self.fp_issues, self.issued_by_pipe[0]
            ));
        }
        if self.smem_phases != self.smem_ideal_phases + self.smem_extra_phases {
            return Err(format!(
                "smem_phases {} != ideal {} + extra {}",
                self.smem_phases, self.smem_ideal_phases, self.smem_extra_phases
            ));
        }
        let widths: u64 = self.smem_accesses_by_width.iter().sum();
        if widths != self.smem_accesses {
            return Err(format!(
                "smem width buckets sum to {widths}, accesses are {}",
                self.smem_accesses
            ));
        }
        if self.smem_mio_cycles < self.smem_phases {
            return Err(format!(
                "smem_mio_cycles {} below phase count {} (each access occupies max(1, phases))",
                self.smem_mio_cycles, self.smem_phases
            ));
        }
        let served = self.l1_sector_hits + self.l2_sector_hits + self.l2_sector_misses;
        if served != self.global_sectors {
            return Err(format!(
                "sector hits {} + {} + misses {} != global_sectors {}",
                self.l1_sector_hits,
                self.l2_sector_hits,
                self.l2_sector_misses,
                self.global_sectors
            ));
        }
        if self.dram_read_bytes + self.dram_write_bytes != 32 * self.l2_sector_misses {
            return Err(format!(
                "DRAM bytes {}+{} != 32 B x {} L2 misses",
                self.dram_read_bytes, self.dram_write_bytes, self.l2_sector_misses
            ));
        }
        if self.smem_mio_cycles + self.global_mio_cycles > self.wave_cycles {
            return Err(format!(
                "MIO busy {} + {} exceeds wave_cycles {}",
                self.smem_mio_cycles, self.global_mio_cycles, self.wave_cycles
            ));
        }
        Ok(())
    }
}

/// Counter collector driven by the cycle loop in `timing.rs`, mirroring the
/// [`crate::simprof::Collector`] pattern: the scheduler loop records this
/// cycle's eligible-warp counts into scratch, and [`CounterCollector::commit`]
/// charges them for the span of cycles the classification stands for
/// (1 normally; the dead-time jump width when nothing could issue — a window
/// in which, by construction, no scheduler had an eligible warp).
pub(crate) struct CounterCollector {
    pub c: HwCounters,
    /// Scratch: eligible warps per scheduler this visited cycle.
    pub eligible: Vec<usize>,
}

impl CounterCollector {
    pub fn new(schedulers: usize, resident_warps: u32, max_warps_per_sm: u32) -> Self {
        CounterCollector {
            c: HwCounters::new(schedulers as u32, resident_warps, max_warps_per_sm),
            eligible: vec![0; schedulers],
        }
    }

    /// Charge this cycle's eligible counts for `span` cycles and reset.
    pub fn commit(&mut self, span: u64) {
        for e in &mut self.eligible {
            self.c.eligible_hist[(*e).min(8)] += span;
            *e = 0;
        }
    }

    /// Finalize with the wave length (after the loop exits).
    pub fn finish(mut self, wave_cycles: u64) -> HwCounters {
        self.c.wave_cycles = wave_cycles;
        self.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HwCounters {
        HwCounters {
            wave_cycles: 10,
            schedulers: 4,
            issued: 12,
            issued_by_pipe: [8, 2, 1, 1],
            eligible_hist: [20, 12, 8, 0, 0, 0, 0, 0, 0],
            resident_warps: 8,
            max_warps_per_sm: 64,
            fp_issues: 8,
            fp_pipe_busy_cycles: 18,
            reg_bank_conflicts: 2,
            reuse_hits: [3, 0, 0, 0],
            reuse_misses: [5, 8, 8, 0],
            smem_accesses: 1,
            smem_accesses_by_width: [0, 0, 1],
            smem_phases: 6,
            smem_ideal_phases: 4,
            smem_extra_phases: 2,
            smem_mio_cycles: 6,
            global_accesses: 1,
            global_sectors: 4,
            l1_sector_hits: 1,
            l2_sector_hits: 2,
            l2_sector_misses: 1,
            global_mio_cycles: 1,
            dram_read_bytes: 32,
            dram_write_bytes: 0,
        }
    }

    #[test]
    fn sample_validates_and_derives() {
        let c = sample();
        c.validate().unwrap();
        assert!((c.issue_efficiency_pct() - 30.0).abs() < 1e-9);
        assert!((c.achieved_occupancy_pct() - 12.5).abs() < 1e-9);
        assert!((c.fp_pipe_util_pct() - 45.0).abs() < 1e-9);
        assert!((c.mio_util_pct() - 70.0).abs() < 1e-9);
        assert!((c.l1_hit_pct() - 25.0).abs() < 1e-9);
        assert!((c.l2_hit_pct() - 100.0 * 2.0 / 3.0).abs() < 1e-9);
        assert!((c.eligible_warps_avg() - 0.7).abs() < 1e-9);
        assert!((c.reuse_hit_pct() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_each_broken_identity() {
        let mut c = sample();
        c.issued += 1;
        assert!(c.validate().unwrap_err().contains("issued_by_pipe"));

        let mut c = sample();
        c.eligible_hist[0] += 1;
        assert!(c.validate().unwrap_err().contains("eligible_hist"));

        let mut c = sample();
        c.reg_bank_conflicts += 1;
        assert!(c.validate().unwrap_err().contains("fp_pipe_busy_cycles"));

        let mut c = sample();
        c.smem_extra_phases += 1;
        assert!(c.validate().unwrap_err().contains("smem_phases"));

        let mut c = sample();
        c.l1_sector_hits += 1;
        assert!(c.validate().unwrap_err().contains("global_sectors"));

        let mut c = sample();
        c.dram_write_bytes += 32;
        assert!(c.validate().unwrap_err().contains("DRAM bytes"));
    }

    #[test]
    fn collector_commit_spans_cover_slots() {
        let mut cc = CounterCollector::new(4, 8, 64);
        cc.eligible = vec![2, 0, 1, 9];
        cc.commit(1);
        // Scratch resets, so a jump charges the zero bucket.
        cc.commit(5);
        let c = cc.finish(6);
        assert_eq!(c.eligible_hist.iter().sum::<u64>(), 4 * 6);
        assert_eq!(c.eligible_hist[2], 1);
        assert_eq!(c.eligible_hist[8], 1);
        assert_eq!(c.eligible_hist[0], 1 + 4 * 5);
        assert_eq!(c.wave_cycles, 6);
    }
}
