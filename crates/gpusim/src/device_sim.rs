//! Full-device, multi-wave, event-driven timing model.
//!
//! The one-wave path ([`crate::timing::time_kernel`]) times one steady-state
//! wave on one SM and extrapolates `waves = ceil(total / (resident × S))`.
//! That arithmetic mistimes every grid whose last wave is partial: a handful
//! of straggler blocks is charged a full-device wave, and cross-SM tail
//! imbalance is invisible. This module fixes that by simulating the whole
//! device:
//!
//! * a **block dispatcher** places every thread block of the launch on its
//!   SM — static round-robin, block `b` on SM `b mod S`, like hardware's
//!   initial distribution of an even grid;
//! * each SM consumes its blocks in waves of at most `resident` blocks and
//!   runs the existing decoded-table/cycle-skipping wave loop
//!   (`crate::timing::simulate_wave`) per wave, with the SM's L1/L2 image
//!   and memory-backend backlog carried from wave to wave;
//! * a device-level [`TimeQueue`] — the per-scheduler wake-up logic lifted
//!   to device scope — advances SMs event-driven: each busy SM sits in the
//!   queue at its next wave boundary, workers always pop the earliest, and
//!   idle SMs (no blocks assigned) are never enqueued, so they cost
//!   nothing;
//! * the L2/DRAM **bandwidth share** charged inside a wave is
//!   `1/busy_sms(wave)` of the device, not `1/S`, so the tail waves of an
//!   uneven grid see their true (larger) share;
//! * SMs are **sharded across worker threads** the way `bench::sweep`
//!   shards grid points (shared work queue + scoped threads), and results
//!   merge in SM-index order. Per-SM simulations are mutually independent
//!   (the share curve is precomputed from the dispatch alone), so
//!   `KernelTiming`, `HwCounters` and stall profiles are bit-stable under
//!   any `jobs` value.
//!
//! **Steady-state fast-forward.** The paper's kernels run thousands of
//! identical blocks; simulating every wave of every SM would cost hundreds
//! of times the one-wave model. Once two consecutive full waves of an SM
//! agree on cycle count to within 1/128, the following full waves with the
//! same bandwidth share are charged at the last simulated wave's cost and
//! their counter/profile deltas are scaled in
//! ([`HwCounters::add_scaled`]); each share transition and the final
//! partial wave are always simulated exactly.
//!
//! The same steady-state assumption applies **across SMs**: round-robin
//! dispatch of a 1-D grid produces at most two SM classes (the first
//! `total mod S` SMs own one extra block), and SMs within a class differ
//! only in block coordinates, hence memory addresses. By default one
//! representative SM per class is simulated and its tallies scaled by the
//! class size. [`DeviceOptions::exact`] disables both shortcuts — every SM,
//! every wave — and the golden tests pin that the default, the exact mode
//! and the one-wave model all agree on exact-multiple grids.
//!
//! Semantics notes:
//!
//! * `KernelTiming::wave_cycles` from this model is the device **makespan**
//!   (the latest SM finish time); `HwCounters::wave_cycles` and
//!   `KernelProfile::wave_cycles` accumulate **busy** scheduler-cycles
//!   summed over SMs, so the `Σ issue + Σ stalls + empty = schedulers ×
//!   cycles` identities stay exact per SM and for the device totals.
//! * `flops`/`dram_bytes` are exact sums over all simulated (and
//!   fast-forwarded) waves — no grid-ratio scaling.
//! * Like the one-wave path, this is a timing model: blocks covered by a
//!   fast-forwarded wave are not executed functionally. Use
//!   [`Gpu::launch`] / [`Gpu::launch_parallel`] for functional results.

use crate::counters::HwCounters;
use crate::decode::{decode_module, InstDesc};
use crate::device::DeviceSpec;
use crate::launch::{Gpu, LaunchDims, LaunchError, SharedMem};
use crate::memory::{ConstBank, GlobalMemory};
use crate::simprof::KernelProfile;
use crate::timeq::TimeQueue;
use crate::timing::{
    effective_residency, grid_coord, simulate_wave, zero_timing, KernelTiming, SmCarry,
    TimingOptions, WaveOutput, WaveParams,
};
use sass::Module;

/// Options for a full-device timing run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceOptions {
    /// The per-wave options (occupancy override, region, strict writeback,
    /// profile, counters) — same meaning as in the one-wave model.
    pub base: TimingOptions,
    /// Worker threads to shard SMs across. `0` uses the host's available
    /// parallelism. Results are bit-identical for every value.
    pub jobs: usize,
    /// Simulate every SM and every wave individually instead of
    /// fast-forwarding steady-state waves and deduplicating SM dispatch
    /// classes. Much slower; results legitimately differ from the default
    /// only where the steady-state assumption is imperfect, so this
    /// participates in digests ([`DeviceOptions::digest_into`]).
    pub exact: bool,
    /// Record a [`DeviceTrace`] (per-SM wave spans) alongside the timing.
    /// Observability only — it never changes a single timing number — so
    /// like `jobs` it is excluded from digests. Prefer the
    /// [`time_kernel_device_traced`] entry point over setting this by hand.
    pub trace: bool,
}

impl DeviceOptions {
    /// Digest the options that change results. `jobs` is deliberately
    /// excluded: sharding is bit-stable, so a cache entry computed under any
    /// `jobs` serves all of them. `trace` is excluded for the same reason:
    /// recording spans changes no result bytes.
    pub fn digest_into(&self, d: &mut crate::digest::Digest) {
        self.base.digest_into(d);
        d.bool(self.exact);
    }
}

/// Cap on recorded wave spans per simulated SM; past it the trace sets
/// `truncated` and keeps timing (mirrors `simprof`'s issue-event cap).
pub const WAVE_SPAN_CAP: usize = 1 << 20;

/// One contiguous chunk of one SM's timeline: a simulated wave and the
/// fast-forwarded repeats it stands for (device cycles, SM-local origin 0 —
/// SMs start together and run their waves back-to-back).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaveSpan {
    /// SM that ran the chunk (a class representative unless
    /// [`DeviceOptions::exact`] is set).
    pub sm: u32,
    /// First wave index the chunk covers.
    pub wave: u64,
    /// Chunk start, cycles since launch.
    pub start_cycle: u64,
    /// Cycles of the simulated wave (one repeat).
    pub cycles: u64,
    /// Waves the chunk stands for (`> 1` when fast-forwarded).
    pub repeats: u64,
    /// Blocks resident in each covered wave.
    pub blocks: u32,
    /// SMs sharing L2/DRAM bandwidth during the chunk.
    pub share_sms: u64,
}

impl WaveSpan {
    /// Total duration of the chunk, cycles.
    pub fn duration(&self) -> u64 {
        self.cycles * self.repeats
    }
}

/// The device-timeline record of one launch: every simulated SM's wave
/// spans, in SM-index order and per-SM time order. `bench`'s `convbench
/// --trace` renders this as a Chrome trace with one lane per SM.
#[derive(Clone, Debug, Default)]
pub struct DeviceTrace {
    pub spans: Vec<WaveSpan>,
    /// Some SM hit [`WAVE_SPAN_CAP`] and dropped spans (timing unaffected).
    pub truncated: bool,
    /// Device makespan (latest SM finish), cycles.
    pub makespan_cycles: u64,
}

/// Immutable per-launch context shared by every SM simulation.
struct Ctx<'a> {
    device: &'a DeviceSpec,
    module: &'a Module,
    table: &'a [InstDesc],
    dims: LaunchDims,
    cbank: &'a ConstBank,
    base: TimingOptions,
    exact: bool,
    trace: bool,
    resident: u32,
    num_sms: u64,
    /// Dispatch shape: every SM owns `q` blocks, the first `r` SMs one more.
    q: u64,
    r: u64,
}

impl Ctx<'_> {
    /// Blocks dispatched to SM `sm` (round-robin: `sm, sm+S, sm+2S, …`).
    fn count(&self, sm: u64) -> u64 {
        self.q + u64::from(sm < self.r)
    }

    /// SMs still holding blocks at wave index `w` — the bandwidth-share
    /// curve. Monotone non-increasing in `w`, so a range is share-constant
    /// iff its two endpoints agree.
    fn share_at(&self, w: u64) -> u64 {
        let need = w.saturating_mul(self.resident as u64);
        let mut n = 0;
        if self.q > need {
            n += self.num_sms - self.r;
        }
        if self.q + 1 > need {
            n += self.r;
        }
        n
    }

    /// Grid coordinates of the `n` blocks SM `sm` runs in wave `wave`.
    fn coords(&self, sm: u64, wave: u64, n: u32) -> Vec<[u32; 3]> {
        (0..n as u64)
            .map(|i| {
                grid_coord(
                    self.dims,
                    sm + (wave * self.resident as u64 + i) * self.num_sms,
                )
            })
            .collect()
    }
}

/// Per-SM accumulation across its waves.
#[derive(Default)]
struct SmAcc {
    /// Busy cycles on this SM (sum of its wave cycles).
    cycles: u64,
    waves: u64,
    issued: u64,
    fp_active: u64,
    flops: u64,
    dram_bytes: u64,
    reg_conflicts: u64,
    smem_conflict_cycles: u64,
    yield_switches: u64,
    idle_attr: [u64; 5],
    region_cycles: u64,
    region_fp_active: u64,
    profile: Option<KernelProfile>,
    counters: Option<HwCounters>,
    /// Wave spans recorded when tracing (empty otherwise).
    spans: Vec<WaveSpan>,
    spans_truncated: bool,
}

impl SmAcc {
    /// Record one advance chunk when tracing, respecting the span cap.
    fn trace_span(&mut self, span: WaveSpan) {
        if self.spans.len() < WAVE_SPAN_CAP {
            self.spans.push(span);
        } else {
            self.spans_truncated = true;
        }
    }
}

impl SmAcc {
    /// Fold `k` copies of one simulated wave in (`k > 1` when the wave
    /// stands for itself plus fast-forwarded repeats).
    fn add(&mut self, out: WaveOutput, k: u64) {
        self.cycles += k * out.cycles;
        self.waves += k;
        self.issued += k * out.issued;
        self.fp_active += k * out.fp_active;
        self.flops += k * out.flops;
        self.dram_bytes += k * out.dram_bytes;
        self.reg_conflicts += k * out.reg_conflicts;
        self.smem_conflict_cycles += k * out.smem_conflict_cycles;
        self.yield_switches += k * out.yield_switches;
        for i in 0..5 {
            self.idle_attr[i] += k * out.idle_attr[i];
        }
        self.region_cycles += k * out.region_cycles();
        self.region_fp_active += k * out.region_fp_active;
        let cycles = out.cycles;
        if let Some(col) = out.prof {
            let p = col.finish(cycles);
            match &mut self.profile {
                Some(mp) => mp.add_scaled(&p, k),
                None => {
                    let mut p0 = p;
                    if k > 1 {
                        let once = p0.clone();
                        p0.add_scaled(&once, k - 1);
                    }
                    self.profile = Some(p0);
                }
            }
        }
        if let Some(col) = out.ctr {
            let c = col.finish(cycles);
            match &mut self.counters {
                Some(mc) => mc.add_scaled(&c, k),
                None => {
                    let mut c0 = c;
                    if k > 1 {
                        let once = c0.clone();
                        c0.add_scaled(&once, k - 1);
                    }
                    self.counters = Some(c0);
                }
            }
        }
    }
}

/// One SM's progress through its block list: the payload parked in the
/// device [`TimeQueue`] at the SM's next wave boundary.
struct SmState {
    sm: u64,
    /// Full waves of `resident` blocks this SM runs.
    full: u64,
    /// Blocks in the trailing partial wave (0 if none, or once simulated).
    rem: u32,
    /// Next full-wave index to simulate.
    w: u64,
    prev_cycles: Option<u64>,
    carry: SmCarry,
    acc: SmAcc,
}

impl SmState {
    fn new(cx: &Ctx<'_>, sm: u64) -> Self {
        let count = cx.count(sm);
        SmState {
            sm,
            full: count / cx.resident as u64,
            rem: (count % cx.resident as u64) as u32,
            w: 0,
            prev_cycles: None,
            carry: SmCarry::new(cx.device, cx.module.info.smem_bytes, cx.resident),
            acc: SmAcc::default(),
        }
    }

    fn done(&self) -> bool {
        self.w >= self.full && self.rem == 0
    }

    /// Simulate this SM's next wave (or fast-forward chunk); returns the
    /// device-time cycles consumed, i.e. this SM's next wave boundary
    /// relative to its current one.
    fn advance(&mut self, cx: &Ctx<'_>, mem: &mut GlobalMemory) -> Result<u64, LaunchError> {
        let (wave, n, share) = if self.w < self.full {
            (self.w, cx.resident, cx.share_at(self.w))
        } else {
            (self.full, self.rem, cx.share_at(self.full))
        };
        let coords = cx.coords(self.sm, wave, n);
        let out = simulate_wave(
            mem,
            &WaveParams {
                device: cx.device,
                module: cx.module,
                table: cx.table,
                dims: cx.dims,
                cbank: cx.cbank,
                opts: cx.base,
                coords: &coords,
                share_sms: share as f64,
            },
            &mut self.carry,
        )?;
        let cycles = out.cycles;
        if n < cx.resident {
            // Trailing partial wave: always simulated exactly, never
            // fast-forwarded.
            self.rem = 0;
            if cx.trace {
                self.acc.trace_span(WaveSpan {
                    sm: self.sm as u32,
                    wave,
                    start_cycle: self.acc.cycles,
                    cycles,
                    repeats: 1,
                    blocks: n,
                    share_sms: share,
                });
            }
            self.acc.add(out, 1);
            return Ok(cycles);
        }
        // Steady-state fast-forward: this wave plus every following full
        // wave with the same bandwidth share, once the cost has settled
        // (within 1/128 of the previous wave). `share_at` is monotone
        // non-increasing, so the share-constant run extends to the largest
        // wave index still at `share` (binary search); the wave after the
        // run sees fewer sharing SMs and is simulated afresh.
        let mut k = 1u64;
        if !cx.exact && self.w + 1 < self.full {
            if let Some(pc) = self.prev_cycles {
                let settled = cycles.abs_diff(pc).saturating_mul(128) <= pc;
                if settled && cx.share_at(self.w + 1) == share {
                    let (mut lo, mut hi) = (self.w + 1, self.full - 1);
                    while lo < hi {
                        let mid = lo + (hi - lo).div_ceil(2);
                        if cx.share_at(mid) == share {
                            lo = mid;
                        } else {
                            hi = mid - 1;
                        }
                    }
                    k = lo - self.w + 1;
                }
            }
        }
        self.prev_cycles = Some(cycles);
        if cx.trace {
            self.acc.trace_span(WaveSpan {
                sm: self.sm as u32,
                wave,
                start_cycle: self.acc.cycles,
                cycles,
                repeats: k,
                blocks: n,
                share_sms: share,
            });
        }
        self.acc.add(out, k);
        self.w += k;
        Ok(k * cycles)
    }
}

/// Time one kernel launch by simulating the full device. See the module
/// docs for the model; the signature mirrors
/// [`crate::timing::time_kernel`].
pub fn time_kernel_device(
    gpu: &mut Gpu,
    module: &Module,
    dims: LaunchDims,
    params: &[u8],
    opts: DeviceOptions,
) -> Result<KernelTiming, LaunchError> {
    let table: Vec<InstDesc> = decode_module(&module.insts, opts.base.region);
    time_kernel_device_with_table(gpu, module, dims, params, opts, &table)
}

/// [`time_kernel_device`] that also records the device timeline: per-SM
/// [`WaveSpan`]s plus the makespan. Timing numbers are bit-identical to the
/// untraced call with the same options. Pair with
/// [`DeviceOptions::exact`] when every SM should get its own real lane —
/// the default mode simulates one representative SM per dispatch class, so
/// its trace has at most two lanes.
pub fn time_kernel_device_traced(
    gpu: &mut Gpu,
    module: &Module,
    dims: LaunchDims,
    params: &[u8],
    opts: DeviceOptions,
) -> Result<(KernelTiming, DeviceTrace), LaunchError> {
    let opts = DeviceOptions {
        trace: true,
        ..opts
    };
    let table: Vec<InstDesc> = decode_module(&module.insts, opts.base.region);
    let (timing, trace) = run_device(gpu, module, dims, params, opts, &table)?;
    Ok((timing, trace.expect("trace requested")))
}

/// [`time_kernel_device`] with a caller-supplied descriptor table (the same
/// sharing contract as `timing::time_kernel_with_table`).
pub(crate) fn time_kernel_device_with_table(
    gpu: &mut Gpu,
    module: &Module,
    dims: LaunchDims,
    params: &[u8],
    opts: DeviceOptions,
    table: &[InstDesc],
) -> Result<KernelTiming, LaunchError> {
    run_device(gpu, module, dims, params, opts, table).map(|(t, _)| t)
}

/// Shared body of the device-timing entry points; returns the trace record
/// when `opts.trace` is set.
fn run_device(
    gpu: &mut Gpu,
    module: &Module,
    dims: LaunchDims,
    params: &[u8],
    opts: DeviceOptions,
    table: &[InstDesc],
) -> Result<(KernelTiming, Option<DeviceTrace>), LaunchError> {
    debug_assert_eq!(table.len(), module.insts.len());
    let device = gpu.device.clone();
    let total_blocks = dims.num_blocks();
    let resident = effective_residency(&device, module, dims, &opts.base)?;
    if total_blocks == 0 {
        return Ok((zero_timing(0), opts.trace.then(DeviceTrace::default)));
    }

    let num_sms = device.num_sms as u64;
    let busy = total_blocks.min(num_sms) as usize;
    let cbank = ConstBank::new(dims.block, dims.grid, params);
    let cx = Ctx {
        device: &device,
        module,
        table,
        dims,
        cbank: &cbank,
        base: opts.base,
        exact: opts.exact,
        trace: opts.trace,
        resident,
        num_sms,
        q: total_blocks / num_sms,
        r: total_blocks % num_sms,
    };

    // The round-robin dispatch produces at most two SM classes: the first
    // `r` SMs own `q + 1` blocks, the rest own `q`. Within a class the
    // per-SM simulations are identical except for block coordinates (hence
    // memory addresses) — for the paper's uniformly tiled kernels the same
    // steady-state assumption the wave fast-forward rests on. By default
    // one representative SM per class is simulated and its tallies scaled
    // by the class size; `exact: true` simulates every SM individually.
    // Exact-multiple grids have a single class, so the golden one-wave
    // agreement is unaffected by the choice.
    let plan: Vec<(u64, u64)> = if opts.exact {
        (0..busy as u64).map(|sm| (sm, 1)).collect()
    } else {
        let r = cx.r;
        let mut v = Vec::new();
        if r > 0 {
            // Representative SM 0, class of the `q + 1`-block SMs.
            v.push((0, r.min(busy as u64)));
        }
        if cx.q > 0 && (busy as u64) > r {
            // Representative SM `r`, class of the `q`-block SMs.
            v.push((r, busy as u64 - r));
        }
        v
    };

    // The device event queue: every simulated SM parked at its next wave
    // boundary; idle SMs are never enqueued. Workers pop the earliest SM,
    // simulate its next wave, and park it again — event-driven advancement
    // in global time order.
    let mut seed: TimeQueue<u64, SmState> = TimeQueue::new();
    for (i, &(sm, _)) in plan.iter().enumerate() {
        seed.push(0, i as u64, SmState::new(&cx, sm));
    }
    let queue = std::sync::Mutex::new(seed);
    let slots_total = plan.len();
    let mut results: Vec<Option<Result<SmAcc, LaunchError>>> = Vec::new();
    results.resize_with(slots_total, || None);
    let finished = std::sync::atomic::AtomicUsize::new(0);

    // One scheduling step: pop the earliest SM, advance it one wave, park
    // it again or retire it. Returns false when no work was available.
    let step = |mem: &mut GlobalMemory,
                slots: &mut dyn FnMut(usize, Result<SmAcc, LaunchError>)| {
        let popped = queue.lock().unwrap().pop();
        let Some((t, i, mut st)) = popped else {
            return false;
        };
        match st.advance(&cx, mem) {
            Err(e) => {
                slots(i as usize, Err(e));
                finished.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            Ok(dt) => {
                if st.done() {
                    slots(i as usize, Ok(st.acc));
                    finished.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                } else {
                    queue.lock().unwrap().push(t + dt, i, st);
                }
            }
        }
        true
    };

    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.jobs
    }
    .clamp(1, slots_total);
    if jobs == 1 {
        let mut place = |i: usize, r: Result<SmAcc, LaunchError>| results[i] = Some(r);
        while step(&mut gpu.mem, &mut place) {}
    } else {
        // Shard across workers, `bench::sweep`-style. The SAFETY contract of
        // `SharedMem` holds because the paper's kernels write disjoint
        // regions per block and never read another block's output — the
        // same contract `Gpu::launch_parallel` runs under. Per-SM results
        // are independent of pop interleaving, so the merge below is
        // bit-stable for any worker count.
        let mem_ptr = &SharedMem(&mut gpu.mem as *mut GlobalMemory);
        let slots_mx = std::sync::Mutex::new(&mut results);
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    if finished.load(std::sync::atomic::Ordering::Relaxed) >= slots_total {
                        break;
                    }
                    // SAFETY: disjoint-block-writes contract, see above.
                    let mem = unsafe { mem_ptr.get() };
                    let mut place = |i: usize, r: Result<SmAcc, LaunchError>| {
                        slots_mx.lock().unwrap()[i] = Some(r);
                    };
                    if !step(mem, &mut place) {
                        // Another worker holds the only in-flight SMs; wait
                        // for them to be parked again or retired.
                        std::thread::yield_now();
                    }
                });
            }
        });
    }

    // Deterministic merge, in SM-index order.
    let schedulers = device.schedulers_per_sm as usize;
    let mut makespan = 0u64;
    let mut busy_cycles = 0u64;
    let mut waves = 0u64;
    let mut issued = 0u64;
    let mut fp_active = 0u64;
    let mut flops = 0u64;
    let mut dram_bytes = 0u64;
    let mut reg_conflicts = 0u64;
    let mut smem_conflict_cycles = 0u64;
    let mut yield_switches = 0u64;
    let mut idle_attr = [0u64; 5];
    let mut region_cycles_max = 0u64;
    let mut region_cycles_sum = 0u64;
    let mut region_fp_active = 0u64;
    let mut profile: Option<KernelProfile> = None;
    let mut counters: Option<HwCounters> = None;
    let mut trace = opts.trace.then(DeviceTrace::default);
    for (slot, &(_, k)) in results.into_iter().zip(plan.iter()) {
        let acc = slot.expect("every planned SM simulated")?;
        if let Some(tr) = &mut trace {
            // Plan order is SM-index order, so spans land lane-sorted.
            tr.spans.extend_from_slice(&acc.spans);
            tr.truncated |= acc.spans_truncated;
        }
        makespan = makespan.max(acc.cycles);
        busy_cycles += k * acc.cycles;
        waves = waves.max(acc.waves);
        issued += k * acc.issued;
        fp_active += k * acc.fp_active;
        flops += k * acc.flops;
        dram_bytes += k * acc.dram_bytes;
        reg_conflicts += k * acc.reg_conflicts;
        smem_conflict_cycles += k * acc.smem_conflict_cycles;
        yield_switches += k * acc.yield_switches;
        for (tot, d) in idle_attr.iter_mut().zip(acc.idle_attr) {
            *tot += k * d;
        }
        region_cycles_max = region_cycles_max.max(acc.region_cycles);
        region_cycles_sum += k * acc.region_cycles;
        region_fp_active += k * acc.region_fp_active;
        if let Some(p) = acc.profile {
            match &mut profile {
                Some(mp) => mp.add_scaled(&p, k),
                None => {
                    let mut p0 = p;
                    if k > 1 {
                        let once = p0.clone();
                        p0.add_scaled(&once, k - 1);
                    }
                    profile = Some(p0);
                }
            }
        }
        if let Some(c) = acc.counters {
            match &mut counters {
                Some(mc) => mc.add_scaled(&c, k),
                None => {
                    let mut c0 = c;
                    if k > 1 {
                        let once = c0.clone();
                        c0.add_scaled(&once, k - 1);
                    }
                    counters = Some(c0);
                }
            }
        }
    }

    let wave_cycles = makespan.max(1);
    let compute_time = wave_cycles as f64 / device.clock_hz;
    let dram_time = dram_bytes as f64 / device.dram_bw;
    let time_s = compute_time.max(dram_time);
    let denom = schedulers as f64 * busy_cycles.max(1) as f64;
    let sol_total = fp_active as f64 / denom;
    let sol_base = if opts.base.region.is_some() && region_cycles_sum > 0 {
        region_fp_active as f64 / (schedulers as f64 * region_cycles_sum as f64)
    } else {
        sol_total
    };

    if let Some(tr) = &mut trace {
        tr.makespan_cycles = makespan;
    }
    let timing = KernelTiming {
        wave_cycles,
        waves,
        blocks_per_sm: resident,
        total_blocks,
        busy_sms: busy as u32,
        time_s,
        flops: flops as f64,
        tflops: flops as f64 / time_s / 1e12,
        sol_pct: 100.0 * sol_base,
        sol_total_pct: 100.0 * sol_total,
        issue_util_pct: 100.0 * issued as f64 / denom,
        dram_bytes,
        dram_time_s: dram_time,
        region_cycles: region_cycles_max,
        reg_bank_conflict_cycles: reg_conflicts,
        smem_conflict_cycles,
        yield_switch_cycles: yield_switches,
        idle_breakdown: idle_attr,
        profile,
        counters,
    };
    Ok((timing, trace))
}
